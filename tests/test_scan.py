"""Scan chain bookkeeping, cost formula, scan-view composition."""

import pytest

from repro.components import build_alu
from repro.components.socket import build_socket
from repro.scan import (
    ScanChain,
    compose_netlists,
    full_scan_cycles,
    scan_test_cycles,
    scan_view,
    stitch_chains,
)


def test_chain_length_accumulates():
    chain = ScanChain("c")
    chain.add_segment("alu", 57)
    chain.add_segment("cmp", 42)
    assert chain.length == 99
    assert chain.offset_of("alu") == 0
    assert chain.offset_of("cmp") == 57


def test_chain_rejects_negative_segment():
    chain = ScanChain()
    with pytest.raises(ValueError):
        chain.add_segment("x", -1)


def test_chain_missing_component():
    chain = ScanChain()
    with pytest.raises(KeyError):
        chain.offset_of("ghost")


def test_stitch_single_chain():
    a = ScanChain("a")
    a.add_segment("alu", 10)
    b = ScanChain("b")
    b.add_segment("rf", 20)
    top = stitch_chains([a, b])
    assert top.length == 30
    assert top.offset_of("b.rf") == 10


def test_scan_cycles_formula():
    # n_p * (n_l + 1) + n_l: the paper's ALU row shape (7208 on a 58 chain)
    assert scan_test_cycles(0, 58) == 0
    assert scan_test_cycles(1, 58) == 59 + 58
    assert scan_test_cycles(122, 58) == 122 * 59 + 58
    assert full_scan_cycles(10, 7) == scan_test_cycles(10, 7)


def test_scan_cycles_validation():
    with pytest.raises(ValueError):
        scan_test_cycles(-1, 10)


def test_compose_netlists_disjoint_union():
    alu = build_alu(8)
    sock = build_socket()
    view = compose_netlists("v", [alu, sock])
    assert view.num_gates == alu.num_gates + sock.num_gates
    assert len(view.inputs) == len(alu.inputs) + len(sock.inputs)
    assert len(view.outputs) == len(alu.outputs) + len(sock.outputs)
    view.check()


def test_compose_preserves_function():
    alu = build_alu(8)
    sock = build_socket()
    view = scan_view(alu, [sock])
    # drive the ALU part: a=3, b=5, op=0 (add)
    pi_values = {}
    for pi in view.inputs:
        name = view.net_name(pi)
        if name.startswith("u0_"):
            base = name[len("u0_alu8."):]
            if base.startswith("a["):
                bit_index = int(base[2:-1])
                pi_values[pi] = (3 >> bit_index) & 1
            elif base.startswith("b["):
                bit_index = int(base[2:-1])
                pi_values[pi] = (5 >> bit_index) & 1
    values = view.evaluate(pi_values)
    out = 0
    for po in view.outputs:
        name = view.net_name(po)
        if name.startswith("u0_") and ".y[" in name:
            bit_index = int(name[name.index("y[") + 2 : -1])
            out |= (values[po] & 1) << bit_index
    assert out == 8  # 3 + 5
