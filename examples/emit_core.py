#!/usr/bin/env python3
"""From study to silicon: emit a Pareto point as a full Verilog core.

Every number the study layer reports comes from a *model* — datasheet
areas, a static cycle count, technology-weighted energies.  This
walkthrough closes the loop with :mod:`repro.rtl`: run a small study,
pick an architecture off the Pareto front, elaborate it into a
complete synthesizable TTA core (sockets, move decoders mirroring the
instruction encoding, bus muxes, instruction fetch with the compiled
GCD program as the ROM), lint the emitted text, and then *audit the
model against the gates* — simulated cycles must equal the static
objective exactly, and each modelled area category must land inside
its documented rtl/model tolerance band.

Run:  python examples/emit_core.py       (writes out/core.v)
"""

from pathlib import Path

from repro import StudySpec, run_study
from repro.apps.registry import build_workload
from repro.explore.evaluate import EvaluationContext
from repro.explore.space import build_architecture_cached
from repro.study.engine import workload_profile
from repro.rtl import (
    calibrate,
    elaborate_core,
    format_calibration_report,
    lint_core,
)

WORKLOAD = "gcd"
WIDTH = 16

# 1. A tiny study; the winner is the selected (area, cycles, code_size)
#    compromise on the exhaustive small-space front.
study = run_study(StudySpec(
    name="emit-core",
    workloads=(WORKLOAD,),
    space="small",
    objectives=("area", "cycles", "code_size"),
    select=True,
))
point = study.selection.point
print(study.summary())
print(f"\nselected point: {point.label} — area={point.area:.0f} "
      f"cycles={point.cycles} code_size={point.code_size} bits")

# 2. Elaborate that configuration into a full core.  Re-evaluating with
#    keep_compile_result gives us the scheduled program to embed as the
#    instruction ROM.
workload = build_workload(WORKLOAD)
profile = workload_profile(WORKLOAD, WIDTH)
context = EvaluationContext(workload, profile, WIDTH)
evaluated = context.evaluate(point.config, keep_compile_result=True)
arch = build_architecture_cached(point.config, WIDTH)
design = elaborate_core(
    arch, program=evaluated.compile_result.program, top_name="gcd_core"
)

out = Path(__file__).resolve().parent.parent / "out"
out.mkdir(exist_ok=True)
core_path = out / "core.v"
core_path.write_text(design.verilog)
print(f"\nwrote {core_path}: {len(design.modules)} modules, "
      f"{sum(design.instances.values())} instances, "
      f"{sum(design.flop_bits.values())} flip-flops, "
      f"{design.num_instructions} x {design.instruction_bits}-bit "
      f"instructions")

# 3. The emitted text must be self-consistent: every instantiated
#    module emitted, every port list matching its netlist bit for bit.
problems = lint_core(design)
assert not problems, problems
print("lint: clean")

# 4. The audit.  cycles_delta == 0 pins the scheduler's timing model to
#    the simulator; the area ratios quantify what the model abstracts
#    (flip-flop RFs vs memory macros, per-connection sockets) and the
#    'decode'/'fetch' rows show what it never priced at all.
report = calibrate(workload, point.config, width=WIDTH, context=context)
print()
print(format_calibration_report(report))
assert report.ok, "model drifted from the emitted core"
