"""Functional memory model with injectable bit-cell faults.

The fault classes follow van de Goor's taxonomy:

* **SAF** — a cell permanently reads (and stays at) 0 or 1;
* **TF** — a cell cannot make one of its transitions (up or down);
* **CFid** — an *idempotent* coupling fault: a transition of the aggressor
  cell forces the victim cell to a fixed value;
* **CFin** — an *inversion* coupling fault: a transition of the aggressor
  inverts the victim.

Cells are addressed as ``(word, bit)``.  The model is deliberately
behavioural — it exists to *validate* that the march algorithms in
:mod:`repro.memtest.march` detect what they claim to detect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.bitops import mask


@dataclass(frozen=True)
class CellFault:
    """Base class for injectable memory faults."""

    word: int
    bit: int


@dataclass(frozen=True)
class StuckAtCellFault(CellFault):
    """Cell (word, bit) stuck at ``value``."""

    value: int = 0


@dataclass(frozen=True)
class TransitionFault(CellFault):
    """Cell cannot transition upward (``rising=True``) or downward."""

    rising: bool = True


@dataclass(frozen=True)
class CouplingFault(CellFault):
    """Aggressor (word, bit); transition couples into the victim cell.

    ``inversion`` selects CFin (victim flips) over CFid (victim forced to
    ``forced_value``).  ``rising`` selects the sensitising aggressor edge.
    """

    victim_word: int = 0
    victim_bit: int = 0
    rising: bool = True
    inversion: bool = False
    forced_value: int = 0


class FaultyMemory:
    """``num_words`` x ``width`` memory with at most a few injected faults."""

    def __init__(
        self,
        num_words: int,
        width: int,
        faults: list[CellFault] | None = None,
    ):
        if num_words < 1 or width < 1:
            raise ValueError("memory dimensions must be positive")
        self.num_words = num_words
        self.width = width
        self.faults = list(faults or [])
        for fault in self.faults:
            if not (0 <= fault.word < num_words and 0 <= fault.bit < width):
                raise ValueError(f"fault site {fault} outside memory")
        self._cells = [[0] * width for _ in range(num_words)]
        self._apply_stuck()

    def _apply_stuck(self) -> None:
        for fault in self.faults:
            if isinstance(fault, StuckAtCellFault):
                self._cells[fault.word][fault.bit] = fault.value

    # ------------------------------------------------------------------
    def write(self, addr: int, value: int) -> None:
        """Word write, filtered through the injected fault behaviour."""
        if not 0 <= addr < self.num_words:
            raise IndexError(f"address {addr} out of range")
        value &= mask(self.width)
        for bit in range(self.width):
            self._write_cell(addr, bit, (value >> bit) & 1)

    def _write_cell(self, word: int, bit: int, new: int) -> None:
        old = self._cells[word][bit]
        effective = new
        for fault in self.faults:
            if isinstance(fault, StuckAtCellFault):
                if (fault.word, fault.bit) == (word, bit):
                    effective = fault.value
            elif isinstance(fault, TransitionFault):
                if (fault.word, fault.bit) == (word, bit):
                    blocked_up = fault.rising and old == 0 and new == 1
                    blocked_down = not fault.rising and old == 1 and new == 0
                    if blocked_up or blocked_down:
                        effective = old
        self._cells[word][bit] = effective

        # Coupling: a *transition* of this (aggressor) cell disturbs victims.
        if effective != old:
            rising = effective == 1
            for fault in self.faults:
                if not isinstance(fault, CouplingFault):
                    continue
                if (fault.word, fault.bit) != (word, bit):
                    continue
                if fault.rising != rising:
                    continue
                victim = self._cells[fault.victim_word]
                if fault.inversion:
                    victim[fault.victim_bit] ^= 1
                else:
                    victim[fault.victim_bit] = fault.forced_value
                self._apply_stuck()

    def read(self, addr: int) -> int:
        """Word read (stuck cells dominate)."""
        if not 0 <= addr < self.num_words:
            raise IndexError(f"address {addr} out of range")
        value = 0
        for bit in range(self.width):
            v = self._cells[addr][bit]
            for fault in self.faults:
                if isinstance(fault, StuckAtCellFault):
                    if (fault.word, fault.bit) == (addr, bit):
                        v = fault.value
            value |= v << bit
        return value
