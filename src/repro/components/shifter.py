"""Stand-alone barrel shifter FU.

Not part of the Fig. 9 architecture (its ALU shifts), but a member of the
MOVE component library so the explorer can trade a second shift resource
against a full second ALU.

Ports: ``a[width]`` (O), ``b[width]`` (T, low bits = amount), ``op[2]``,
``y[width]`` (R).  Ops: shl, shr, sra.
"""

from __future__ import annotations

from repro.netlist.builder import WordBuilder
from repro.netlist.netlist import Netlist

OPCODE_BITS = 2


def build_shifter(width: int = 16, name: str = "shifter") -> Netlist:
    """Build a ``width``-bit 3-op barrel shifter netlist."""
    if width < 2 or width & (width - 1):
        raise ValueError(f"shifter width must be a power of two >= 2, got {width}")
    wb = WordBuilder(f"{name}{width}")
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)
    op = wb.input_word("op", OPCODE_BITS)

    # Ops encoded LSB-first: shl -> 0, shr -> 1, sra -> 2.
    right = wb.or_(op[0], op[1])
    arith = op[1]
    # ALU convention: shift operand `a` by the low bits of trigger `b`.
    amount = b[: (width - 1).bit_length()]
    shifted = wb.barrel_shifter(a, amount, right, arith)
    wb.output_word("y", shifted)
    wb.netlist.check()
    return wb.netlist
