"""The wire protocol: line-delimited JSON over a stream socket.

One connection carries a sequence of *requests* (client → server, each
``{"op": ..., ...}``) answered in order by *responses* (``{"ok": true,
...}`` or ``{"ok": false, "error": ...}``).  A ``watch`` request
switches the connection to streaming: the server pushes *event* frames
(``{"event": ..., ...}``) until the watched job reaches a terminal
state, then resumes request/response.  Every frame is one JSON object
on one ``\\n``-terminated line — trivially parseable from any
language, inspectable with ``nc`` and a pair of eyes.

No web framework, by design: the transport is ``asyncio`` streams on
the server and a blocking socket file on the client, both stdlib.
Addresses name either family — :func:`parse_address` maps a CLI string
(``/path/to.sock``, ``unix:/path``, ``host:port``, ``tcp:host:port``)
to ``("unix", path)`` or ``("tcp", (host, port))``.
"""

from __future__ import annotations

import json

__all__ = [
    "METRICS_VERSION",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "format_address",
    "parse_address",
]

#: Bumped when a frame shape changes incompatibly; ``hello`` responses
#: carry it so a client can refuse to talk across versions.
PROTOCOL_VERSION = 1

#: Request operations the server understands (documented here, handled
#: in :mod:`repro.service.server`).
OPS = (
    "ping",        # liveness + version
    "submit",      # {"spec": {...}, "tenant", "priority"} -> job id
    "jobs",        # queue listing
    "status",      # {"job"} -> one job's state
    "watch",       # {"job"} -> stream job_state/front events until done
    "result",      # {"job"} -> the finished study's result dict
    "cancel",      # {"job"} -> cancel queued or running job
    "stats",       # cache + queue + dedupe counters
    "metrics",     # {"tenant"?} -> live registry snapshot + aggregates
    "shutdown",    # graceful stop (drains running jobs)
)

#: Version of the ``metrics`` response shape (independent of the frame
#: protocol so dashboards can evolve without a protocol bump).
METRICS_VERSION = 1


class ProtocolError(ValueError):
    """A frame that is not one JSON object per line."""


def encode_frame(frame: dict) -> bytes:
    """One frame as its wire bytes (compact JSON + newline)."""
    return (json.dumps(frame, separators=(",", ":")) + "\n").encode()


def decode_frame(line: bytes | str) -> dict:
    """Invert :func:`encode_frame`; raises :class:`ProtocolError`."""
    if isinstance(line, bytes):
        line = line.decode(errors="replace")
    try:
        frame = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"bad frame (not JSON): {line!r:.80}") from exc
    if not isinstance(frame, dict):
        raise ProtocolError(f"bad frame (not an object): {line!r:.80}")
    return frame


def ok(**fields) -> dict:
    """A success response frame."""
    return {"ok": True, **fields}


def error(message: str, **fields) -> dict:
    """A failure response frame."""
    return {"ok": False, "error": message, **fields}


def event(kind: str, **fields) -> dict:
    """A streamed event frame (``watch`` subscriptions).

    The parameter is ``kind`` (not ``name``) so fields named ``name``
    — a job's study name, say — pass through without colliding.
    """
    return {"event": kind, **fields}


def parse_address(address: str) -> tuple[str, object]:
    """A CLI address string as ``(family, target)``.

    Explicit prefixes always win: ``unix:PATH`` and ``tcp:HOST:PORT``.
    Unprefixed strings are classified by shape — anything with a ``/``
    or a ``.sock`` suffix is a unix socket path, ``HOST:PORT`` is TCP,
    and a bare integer is a TCP port on localhost.
    """
    if address.startswith("unix:"):
        return ("unix", address[len("unix:"):])
    if address.startswith("tcp:"):
        rest = address[len("tcp:"):]
        host, sep, port = rest.rpartition(":")
        if not sep:
            host, port = "127.0.0.1", rest
        return ("tcp", (host or "127.0.0.1", int(port)))
    if "/" in address or address.endswith(".sock"):
        return ("unix", address)
    if address.isdigit():
        return ("tcp", ("127.0.0.1", int(address)))
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit():
        return ("tcp", (host or "127.0.0.1", int(port)))
    raise ValueError(
        f"cannot parse server address {address!r} "
        "(want unix:PATH, PATH.sock, tcp:HOST:PORT, HOST:PORT or PORT)"
    )


def format_address(address: str) -> str:
    """Normalised human-readable form of a parsed address."""
    family, target = parse_address(address)
    if family == "unix":
        return f"unix:{target}"
    host, port = target
    return f"tcp:{host}:{port}"
