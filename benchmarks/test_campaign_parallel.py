"""Campaign engine — the parallel evaluation hot path on the Crypt grid.

Each of the 168 Crypt templates compiles independently, so the campaign
runner fans ``evaluate_config`` out over a process pool.  This bench
measures the fan-out against the serial loop on the full grid, records
both timings as an artifact, and — the part that must never regress —
asserts the two paths produce point-for-point identical results.

A wall-clock win is only asserted on multi-core machines; on a single
CPU the bench still verifies determinism and bounds the pool overhead.
"""

from __future__ import annotations

import os
from time import perf_counter

from benchmarks.conftest import save_artifact
from repro.apps.registry import build_workload
from repro.campaign.runner import evaluate_configs
from repro.compiler import IRInterpreter
from repro.explore import crypt_space, pareto_filter


def _inputs():
    workload = build_workload("crypt")
    profile = IRInterpreter(workload, width=16).run().block_counts
    return workload, profile, crypt_space()


def test_campaign_parallel_evaluation(benchmark):
    workload, profile, configs = _inputs()
    workers = min(4, os.cpu_count() or 1)

    t0 = perf_counter()
    serial = evaluate_configs(configs, workload, profile, workers=1)
    serial_s = perf_counter() - t0

    t0 = perf_counter()
    parallel = benchmark.pedantic(
        evaluate_configs,
        args=(configs, workload, profile),
        kwargs={"workers": workers},
        rounds=1,
        iterations=1,
    )
    parallel_s = perf_counter() - t0

    # determinism: the fan-out must be a drop-in for the serial loop
    assert [(p.label, p.area, p.cycles) for p in serial] == [
        (p.label, p.area, p.cycles) for p in parallel
    ]
    serial_pareto = pareto_filter(
        [p for p in serial if p.feasible], key=lambda p: p.cost2d()
    )
    parallel_pareto = pareto_filter(
        [p for p in parallel if p.feasible], key=lambda p: p.cost2d()
    )
    assert [p.label for p in serial_pareto] == [
        p.label for p in parallel_pareto
    ]

    on_ci = bool(os.environ.get("CI"))
    if workers > 1 and (os.cpu_count() or 1) > 1 and not on_ci:
        # multi-core, dedicated machine: the pool must buy wall-clock
        assert parallel_s < serial_s, (
            f"parallel ({parallel_s:.2f}s) not faster than serial "
            f"({serial_s:.2f}s) with {workers} workers"
        )
    else:
        # single core or a shared CI runner: timing is not trustworthy
        # enough for a strict win, only bound the pool overhead
        assert parallel_s < serial_s * 2.0

    save_artifact(
        "campaign_parallel",
        "\n".join(
            [
                "campaign engine: crypt_space() evaluation "
                f"({len(configs)} points)",
                f"  cpus            : {os.cpu_count()}",
                f"  serial          : {serial_s:.2f} s",
                f"  parallel (n={workers}) : {parallel_s:.2f} s",
                f"  speedup         : {serial_s / parallel_s:.2f}x",
                f"  pareto points   : {len(parallel_pareto)} (identical "
                "serial vs parallel)",
            ]
        ),
    )
