"""Gate-level comparator (CMP unit of Fig. 9).

Produces a single guard bit from two words under a 3-bit opcode
(:data:`~repro.components.reference.CMP_OPS`).  In the TTA the result
feeds the guard register file that predicates conditional moves.

Ports: ``a[width]`` (O), ``b[width]`` (T), ``op[3]``, ``y`` (1-bit R).
"""

from __future__ import annotations

from repro.netlist.builder import WordBuilder
from repro.netlist.netlist import Netlist

OPCODE_BITS = 3


def build_comparator(width: int = 16, name: str = "cmp") -> Netlist:
    """Build a ``width``-bit comparator netlist with a 1-bit result."""
    if width < 2:
        raise ValueError(f"comparator width must be >= 2, got {width}")
    wb = WordBuilder(f"{name}{width}")
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)
    op = wb.input_word("op", OPCODE_BITS)

    eq = wb.equal(a, b)
    ne = wb.not_(eq)
    ltu = wb.less_than_unsigned(a, b)
    geu = wb.not_(ltu)
    lts = wb.less_than_signed(a, b)
    ges = wb.not_(lts)

    # Opcode order: eq ne ltu geu lts ges (6 and 7 alias the last entry).
    result = wb.mux_tree(list(op), [[eq], [ne], [ltu], [geu], [lts], [ges]])
    wb.output_bit("y", result[0])
    wb.netlist.check()
    return wb.netlist
