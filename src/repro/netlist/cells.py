"""Primitive cell library.

A deliberately small, generic standard-cell library: the paper's flow only
needs *relative* area/delay numbers to rank architectures, so unit weights
loosely follow a typical CMOS library (NAND cheapest, XOR most expensive).

Cell evaluation works on *pattern vectors*: each signal value is a Python int
whose bit ``k`` holds the signal's logic value under pattern ``k``.  Because
Python ints are arbitrary precision this gives free N-way bit-parallel
simulation, which the ATPG fault simulator relies on.
"""

from __future__ import annotations

import enum


class CellType(enum.Enum):
    """Primitive combinational cell types (flip-flops live outside cores)."""

    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    CONST0 = "const0"
    CONST1 = "const1"


#: Relative cell area (NAND2-equivalents, loosely after a 0.35um library).
CELL_AREA: dict[CellType, float] = {
    CellType.BUF: 0.75,
    CellType.NOT: 0.5,
    CellType.AND: 1.25,
    CellType.OR: 1.25,
    CellType.NAND: 1.0,
    CellType.NOR: 1.0,
    CellType.XOR: 2.5,
    CellType.XNOR: 2.5,
    CellType.CONST0: 0.0,
    CellType.CONST1: 0.0,
}

#: Relative cell delay (normalised inverter delays).
CELL_DELAY: dict[CellType, float] = {
    CellType.BUF: 1.0,
    CellType.NOT: 0.5,
    CellType.AND: 1.5,
    CellType.OR: 1.5,
    CellType.NAND: 1.0,
    CellType.NOR: 1.0,
    CellType.XOR: 2.0,
    CellType.XNOR: 2.0,
    CellType.CONST0: 0.0,
    CellType.CONST1: 0.0,
}

#: Extra area per input beyond the second, for fan-in > 2 gates.
_EXTRA_INPUT_AREA = 0.5

#: Allowed fan-in range per cell type.
FAN_IN: dict[CellType, tuple[int, int]] = {
    CellType.BUF: (1, 1),
    CellType.NOT: (1, 1),
    CellType.AND: (2, 4),
    CellType.OR: (2, 4),
    CellType.NAND: (2, 4),
    CellType.NOR: (2, 4),
    CellType.XOR: (2, 2),
    CellType.XNOR: (2, 2),
    CellType.CONST0: (0, 0),
    CellType.CONST1: (0, 0),
}

#: (controlling value, inversion) for gates that have a controlling value.
#: The controlling value at any input fixes the output to value ^ inversion.
CONTROLLING: dict[CellType, tuple[int, int]] = {
    CellType.AND: (0, 0),
    CellType.NAND: (0, 1),
    CellType.OR: (1, 0),
    CellType.NOR: (1, 1),
}


def cell_area(cell_type: CellType, fan_in: int) -> float:
    """Area of one cell instance, growing mildly with fan-in."""
    base = CELL_AREA[cell_type]
    extra = max(0, fan_in - 2) * _EXTRA_INPUT_AREA
    return base + extra


def cell_delay(cell_type: CellType, fan_in: int) -> float:
    """Propagation delay of one cell instance."""
    base = CELL_DELAY[cell_type]
    extra = max(0, fan_in - 2) * 0.25
    return base + extra


def evaluate_cell(cell_type: CellType, inputs: list[int], all_ones: int) -> int:
    """Evaluate one cell on bit-parallel pattern vectors.

    ``all_ones`` is the mask covering every simulated pattern; inversion is
    XOR with that mask so unused high bits stay zero.
    """
    if cell_type is CellType.CONST0:
        return 0
    if cell_type is CellType.CONST1:
        return all_ones
    if cell_type is CellType.BUF:
        return inputs[0]
    if cell_type is CellType.NOT:
        return inputs[0] ^ all_ones

    acc = inputs[0]
    if cell_type in (CellType.AND, CellType.NAND):
        for v in inputs[1:]:
            acc &= v
        return acc ^ all_ones if cell_type is CellType.NAND else acc
    if cell_type in (CellType.OR, CellType.NOR):
        for v in inputs[1:]:
            acc |= v
        return acc ^ all_ones if cell_type is CellType.NOR else acc
    if cell_type in (CellType.XOR, CellType.XNOR):
        for v in inputs[1:]:
            acc ^= v
        return acc ^ all_ones if cell_type is CellType.XNOR else acc
    raise ValueError(f"unknown cell type: {cell_type}")
