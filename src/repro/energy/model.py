"""Per-event energy weights from the gate-level view.

The repo's substitute for a power-annotated standard-cell library: the
component datasheets already carry synthesised netlists whose cell areas
(NAND2-equivalents) are the same proxy for switched capacitance that the
area model uses for silicon — so dynamic energy per toggle is made
*proportional to the capacitance the toggle moves*, and leakage
proportional to placed area per cycle.  Absolute units are generic
(call them femtojoule-equivalents); relative comparisons between design
points are faithful because every weight is derived from the actual
structure, exactly like the area numbers.

Event weights (all per :class:`~repro.tta.activity.ActivityTrace`
event/toggle):

==================  =================================================
event               weight derivation
==================  =================================================
bus bit toggle      wire capacitance of one bus bit run plus the input
                    capacitance of every switch hanging on that bus
                    (``CONNECTION_AREA`` per connected port)
socket transport    select/decode control flip per move end
FU input toggle     a documented fraction of the unit's combinational
                    core re-evaluates per flipped input bit
                    (core netlist area / datapath width)
FU result toggle    one pipeline flip-flop plus the output driver
FU activation       opcode/control decode per trigger
RF read toggle      bitline swing of one storage column (memory-cell
                    area grows with the port count, so does the weight)
RF write toggle     storage-cell flip plus bitline drive
RF access           wordline decode per read/write event
fetch bit toggle    instruction-memory read path per flipped word bit
guard toggle        one predicate flip-flop
leakage             placed architecture area per simulated cycle
==================  =================================================

:class:`TechnologyParameters` scales each class; alternative weight
sets register by name via :func:`register_technology` and are
addressable from study specs (``StudySpec(tech="...")``) and the CLI.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.components.library import (
    FF_AREA,
    MEM_PORT_FACTOR,
    MEMCELL_AREA,
    component_datasheet,
)
from repro.components.spec import ComponentKind
from repro.tta.arch import BUS_AREA_PER_BIT, CONNECTION_AREA, Architecture


@dataclass(frozen=True)
class TechnologyParameters:
    """Scaling constants of the energy model (one per event class).

    All dynamic constants are energies per *unit of switched
    capacitance* (NAND2-equivalent area units), except the per-event
    control constants which are energies per event.  ``leakage_per_area``
    is static energy per area unit per clock cycle.  The defaults form
    the ``default`` registry entry; register alternatives with
    :func:`register_technology`.
    """

    name: str = "default"
    #: dynamic energy per toggled NAND2-equivalent of logic capacitance
    cap_per_area: float = 1.0
    #: fraction of an FU/LSU core assumed to re-evaluate per input-bit flip
    fu_switch_fraction: float = 0.35
    #: wire energy per toggled bus bit (one bit's bus run)
    wire_cap_per_bit: float = float(BUS_AREA_PER_BIT)
    #: per-switch loading added to a bus bit toggle, per connected port
    switch_cap: float = float(CONNECTION_AREA) / 16.0
    #: socket select/decode energy per transport through a socket
    socket_select_energy: float = 1.5
    #: control/opcode decode energy per activation, per decoded bit
    decode_energy_per_bit: float = 0.5
    #: instruction-memory read energy per toggled instruction-word bit
    fetch_cap_per_bit: float = 0.8
    #: static energy per placed area unit per cycle
    leakage_per_area: float = 2e-5
    #: glitch/short-circuit multiplier on FU input-toggle energy.
    #:
    #: Deep combinational cores (the array multiplier) glitch more
    #: than shallow ones: spurious transitions multiply roughly with
    #: logic depth.  A unit whose core critical path is ``d`` times the
    #: architecture's shallowest non-RF core scales its per-input-bit
    #: energy by ``1 + (glitch_factor - 1) * (d - 1)`` — the shallowest
    #: unit is never scaled, and the default of exactly ``1.0`` leaves
    #: every weight (and the fingerprint-cached energies) byte-identical
    #: to the glitch-free model.
    glitch_factor: float = 1.0

    def fingerprint(self) -> str:
        """Stable identity string (cache tag for stored energies).

        Content-hashed (not just the name) so editing a registered
        parameter set invalidates previously cached energies.
        """
        payload = json.dumps(asdict(self), sort_keys=True)
        digest = hashlib.sha256(payload.encode()).hexdigest()[:12]
        return f"{self.name}:{digest}"


_TECHNOLOGIES: dict[str, TechnologyParameters] = {}


def register_technology(params: TechnologyParameters) -> TechnologyParameters:
    """Add (or replace) a named technology parameter set."""
    _TECHNOLOGIES[params.name] = params
    return params


def technology_names() -> list[str]:
    """Names accepted by :func:`technology_by_name` (sorted)."""
    return sorted(_TECHNOLOGIES)


def technology_by_name(name: str) -> TechnologyParameters:
    try:
        return _TECHNOLOGIES[name]
    except KeyError:
        known = ", ".join(technology_names())
        raise KeyError(
            f"unknown technology {name!r} (known: {known})"
        ) from None


register_technology(TechnologyParameters())
#: A low-leakage/low-drive corner, mostly as a worked registry example.
register_technology(
    TechnologyParameters(
        name="low_power",
        cap_per_area=0.6,
        wire_cap_per_bit=float(BUS_AREA_PER_BIT) * 0.7,
        socket_select_energy=1.0,
        fetch_cap_per_bit=0.5,
        leakage_per_area=5e-6,
    )
)


class EnergyModel:
    """Per-event weights for one concrete architecture.

    Built once per (architecture, technology); every weight is derived
    from the architecture's structure and the component datasheets the
    area model already uses, so the energy axis needs no new
    characterisation data.
    """

    def __init__(self, arch: Architecture, tech: TechnologyParameters):
        self.arch = arch
        self.tech = tech
        self.leakage_per_cycle = tech.leakage_per_area * arch.area()

        # bus index -> energy per toggled bit: the wire run plus the
        # input capacitance of every switch (connected port) on the bus.
        fanout = [0] * arch.num_buses
        for buses in arch.connectivity.values():
            for bus in buses:
                fanout[bus] += 1
        self.bus_bit_energy = [
            tech.cap_per_area * (tech.wire_cap_per_bit + tech.switch_cap * n)
            for n in fanout
        ]

        # per-unit weights
        self._input_bit: dict[str, float] = {}    # operand/trigger toggles
        self._result_bit: dict[str, float] = {}   # result-register toggles
        self._activation: dict[str, float] = {}   # per trigger
        self._rf_read_bit: dict[str, float] = {}
        self._rf_write_bit: dict[str, float] = {}
        self._rf_access: dict[str, float] = {}
        # Depth reference for the glitch model: the shallowest non-RF
        # core's critical path (its input-toggle weight is never scaled).
        min_delay = min(
            (
                component_datasheet(u.spec).delay
                for u in arch.units.values()
                if u.spec.kind is not ComponentKind.RF
            ),
            default=1.0,
        )
        for unit in arch.units.values():
            spec = unit.spec
            sheet = component_datasheet(spec)
            if spec.kind is ComponentKind.RF:
                ports = spec.n_in + spec.n_out
                cell = MEMCELL_AREA * (1.0 + MEM_PORT_FACTOR * ports)
                self._rf_read_bit[unit.name] = tech.cap_per_area * cell
                self._rf_write_bit[unit.name] = tech.cap_per_area * (
                    cell + FF_AREA * 0.5
                )
                abits = max(1, (spec.num_regs - 1).bit_length())
                self._rf_access[unit.name] = (
                    tech.decode_energy_per_bit * abits
                )
            else:
                core = sheet.core_area
                width = max(1, spec.width)
                glitch = 1.0 + (tech.glitch_factor - 1.0) * (
                    sheet.delay / max(min_delay, 1e-9) - 1.0
                )
                self._input_bit[unit.name] = (
                    glitch
                    * tech.cap_per_area
                    * tech.fu_switch_fraction
                    * core
                    / width
                )
                self._result_bit[unit.name] = tech.cap_per_area * FF_AREA
                self._activation[unit.name] = tech.decode_energy_per_bit * (
                    spec.opcode_bits + 1
                )

    # ------------------------------------------------------------------
    # per-event weights (consumed by repro.energy.report)
    # ------------------------------------------------------------------
    def bus_toggle(self, bus: int) -> float:
        return self.bus_bit_energy[bus]

    def socket_transport(self) -> float:
        return self.tech.socket_select_energy

    def port_toggle(self, unit: str, port: str) -> float:
        spec = self.arch.unit(unit).spec
        port_spec = spec.port(port)
        if port_spec.is_input:
            return self._input_bit[unit]
        return self._result_bit[unit]

    def activation(self, unit: str) -> float:
        return self._activation[unit]

    def rf_read_toggle(self, unit: str) -> float:
        return self._rf_read_bit[unit]

    def rf_write_toggle(self, unit: str) -> float:
        return self._rf_write_bit[unit]

    def rf_access(self, unit: str) -> float:
        return self._rf_access[unit]

    def fetch_toggle(self) -> float:
        return self.tech.cap_per_area * self.tech.fetch_cap_per_bit

    def guard_toggle(self) -> float:
        return self.tech.cap_per_area * FF_AREA
