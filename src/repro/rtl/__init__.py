"""Full-core RTL emission and model calibration (ROADMAP open item 5).

``repro.rtl`` closes the hardware loop: :mod:`repro.rtl.core` elaborates a
complete TTA core — interconnect sockets and bus muxes from the port
table, a move decoder mirroring :class:`~repro.tta.encoding.MoveEncoder`'s
instruction format, instruction fetch and program memory — around the
existing gate-level component netlists, and emits it as synthesizable
Verilog.  :mod:`repro.rtl.calibrate` then audits the study layer's
numbers against that structure: per-component area deltas between the
emitted gates and the ``TechnologyParameters``-weighted model, and the
static ``cycles`` objective against simulated cycles from the energy
pass's activity trace.  :mod:`repro.rtl.lint` keeps the emitted text
self-consistent.
"""

from repro.rtl.core import CoreDesign, RTLError, elaborate_core
from repro.rtl.calibrate import (
    CalibrationReport,
    ComponentDelta,
    calibrate,
    format_calibration_report,
)
from repro.rtl.lint import lint_core, lint_verilog

__all__ = [
    "CalibrationReport",
    "ComponentDelta",
    "CoreDesign",
    "RTLError",
    "calibrate",
    "elaborate_core",
    "format_calibration_report",
    "lint_core",
    "lint_verilog",
]
