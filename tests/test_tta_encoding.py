"""Binary move encoding: roundtrips and format properties."""

import pytest

from repro.apps import build_gcd_ir
from repro.compiler import IRInterpreter, compile_ir
from repro.tta import Guard, Literal, Move, PortRef, assemble
from repro.tta.encoding import EncodingError, MoveEncoder

from tests.conftest import make_arch


def _moves_equal(a, b):
    if a is None or b is None:
        return a is b
    return (
        a.src == b.src
        and a.dst == b.dst
        and a.opcode == b.opcode
        and (a.src_reg or 0) == (b.src_reg or 0)
        and (a.dst_reg or 0) == (b.dst_reg or 0)
        and a.guard == b.guard
    )


def test_format_fields_positive(arch2):
    encoder = MoveEncoder(arch2)
    fmt = encoder.format
    assert fmt.slot_bits > 10
    assert fmt.instruction_bits == 2 * fmt.slot_bits + fmt.imm_ext_bits


def test_single_move_roundtrip(arch2):
    encoder = MoveEncoder(arch2)
    move = Move(
        src=PortRef("rf0", "r0"),
        dst=PortRef("alu0", "b"),
        opcode="add",
        src_reg=5,
        guard=Guard(2, invert=True),
    )
    slot, long_imm = encoder.encode_move(move)
    decoded = encoder.decode_move(slot, long_imm or 0)
    assert _moves_equal(move, decoded)


def test_short_immediate_roundtrip(arch2):
    encoder = MoveEncoder(arch2)
    for value in (0, 1, 127, -1, -128):
        move = Move(src=Literal(value), dst=PortRef("alu0", "a"))
        slot, long_imm = encoder.encode_move(move)
        assert long_imm is None
        decoded = encoder.decode_move(slot, 0)
        assert decoded.src == Literal(value)


def test_long_immediate_roundtrip(arch2):
    encoder = MoveEncoder(arch2)
    for value in (128, 1000, 0x7FFF, -129):
        move = Move(src=Literal(value), dst=PortRef("rf0", "w0"), dst_reg=3)
        slot, long_imm = encoder.encode_move(move)
        assert long_imm is not None
        decoded = encoder.decode_move(slot, long_imm)
        assert decoded.src == Literal(value)
        assert decoded.dst_reg == 3


def test_empty_slot_is_zero(arch2):
    encoder = MoveEncoder(arch2)
    assert encoder.decode_move(0, 0) is None
    # and no real move encodes to zero
    move = Move(src=PortRef("alu0", "y"), dst=PortRef("rf0", "w0"), dst_reg=0)
    slot, _ = encoder.encode_move(move)
    assert slot != 0


def test_unknown_port_rejected(arch2):
    encoder = MoveEncoder(arch2)
    with pytest.raises(EncodingError):
        encoder.encode_move(Move(src=PortRef("ghost", "y"),
                                 dst=PortRef("rf0", "w0"), dst_reg=0))
    with pytest.raises(EncodingError):
        encoder.encode_move(Move(src=Literal(1), dst=PortRef("ghost", "a")))


def test_assembled_program_roundtrip(arch2):
    program = assemble(
        """
        #5 -> alu0.a ; #1000 -> rf0.w0[2]
    loop:
        rf0.r0[2] -> alu0.b:add
        alu0.y -> rf0.w0[0]
        (g0) @loop -> pc.target:jump
        halt
        """,
        arch2,
    )
    encoder = MoveEncoder(arch2)
    words = encoder.encode_program(program)
    assert len(words) == len(program.instructions)
    for word, original in zip(words, program.instructions):
        decoded = encoder.decode_instruction(word)
        for a, b in zip(original.slots, decoded.slots):
            assert _moves_equal(a, b), (str(a), str(b))


@pytest.mark.parametrize("buses", [1, 2, 3])
def test_compiled_program_roundtrip(buses):
    arch = make_arch(buses)
    fn = build_gcd_ir(252, 105)
    profile = IRInterpreter(fn, width=16).run().block_counts
    compiled = compile_ir(fn, arch, profile=profile)
    encoder = MoveEncoder(arch)
    words = encoder.encode_program(compiled.program)
    for word, original in zip(words, compiled.program.instructions):
        decoded = encoder.decode_instruction(word)
        for a, b in zip(original.slots, decoded.slots):
            assert _moves_equal(a, b), (str(a), str(b))


def test_instruction_memory_grows_with_buses():
    fn = build_gcd_ir(24, 36)
    profile = IRInterpreter(fn, width=16).run().block_counts
    widths = {}
    for buses in (1, 3):
        arch = make_arch(buses)
        compiled = compile_ir(fn, arch, profile=profile)
        encoder = MoveEncoder(arch)
        widths[buses] = encoder.format.instruction_bits
        assert encoder.program_memory_bits(compiled.program) == len(
            compiled.program.instructions
        ) * encoder.format.instruction_bits
    assert widths[3] > widths[1]
