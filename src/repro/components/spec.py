"""Architectural component descriptions.

:class:`ComponentSpec` is the *architecture-level* view of a datapath
component: what the TTA template, the scheduler, the explorer and the test
cost formulas see.  The gate level (netlists) hangs off the datasheet in
:mod:`repro.components.library`.

Terminology follows the paper:

* an FU has operand register(s) O, exactly one trigger register T and
  result register(s) R — writing T starts the operation;
* a register file exposes read and write ports (``n_in`` / ``n_out`` in
  eq. 12);
* ``n_conn`` is the number of a component's bus connectors (all data ports).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property


class ComponentKind(enum.Enum):
    """Coarse component classes with distinct cost treatment (Sec. 3/4)."""

    FU = "fu"       # ALU, CMP, shifter, multiplier: f_tfu applies
    RF = "rf"       # register files: f_trf applies
    LSU = "lsu"     # once per architecture, excluded from ranking
    PC = "pc"       # once per architecture, excluded from ranking
    IMM = "imm"     # once per architecture, excluded from ranking


class PortDirection(enum.Enum):
    IN = "in"
    OUT = "out"


@dataclass(frozen=True)
class PortSpec:
    """One bus connector of a component."""

    name: str
    direction: PortDirection
    width: int
    is_trigger: bool = False

    @property
    def is_input(self) -> bool:
        return self.direction is PortDirection.IN


@dataclass(frozen=True)
class ComponentSpec:
    """Architecture-level description of one component type."""

    name: str
    kind: ComponentKind
    width: int
    ops: tuple[str, ...]
    latency: int                       # trigger -> result cycles (eq. 3: >= 1)
    ports: tuple[PortSpec, ...]
    num_regs: int = 0                  # RF only: words in the bank
    fsm_bits: int = 3                  # stage-control FSM state register
    opcode_bits: int = field(default=0)
    extra_ff_bits: int = 0             # e.g. RF port address registers

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(f"{self.name}: latency must be >= 1 (paper eq. 3)")
        triggers = [p for p in self.ports if p.is_trigger]
        if self.kind is ComponentKind.FU and len(triggers) != 1:
            raise ValueError(
                f"{self.name}: an FU needs exactly one trigger port, "
                f"found {len(triggers)}"
            )

    # ------------------------------------------------------------------
    # port views
    #
    # Cached: the scheduler and the timing validator consult these for
    # every single move they place or check, and ``ports`` is frozen.
    # (``cached_property`` writes straight into ``__dict__``, which a
    # frozen dataclass permits; dataclass eq/hash only see fields.)
    # ------------------------------------------------------------------
    @cached_property
    def input_ports(self) -> tuple[PortSpec, ...]:
        return tuple(p for p in self.ports if p.is_input)

    @cached_property
    def output_ports(self) -> tuple[PortSpec, ...]:
        return tuple(p for p in self.ports if not p.is_input)

    @cached_property
    def trigger_port(self) -> PortSpec | None:
        for p in self.ports:
            if p.is_trigger:
                return p
        return None

    @cached_property
    def _port_map(self) -> dict[str, PortSpec]:
        return {p.name: p for p in self.ports}

    @property
    def n_conn(self) -> int:
        """Number of bus connectors (the paper's ``n_conn``)."""
        return len(self.ports)

    @property
    def n_in(self) -> int:
        """Input-port count (RF write ports for eq. 12)."""
        return len(self.input_ports)

    @property
    def n_out(self) -> int:
        """Output-port count (RF read ports for eq. 12)."""
        return len(self.output_ports)

    def port(self, name: str) -> PortSpec:
        try:
            return self._port_map[name]
        except KeyError:
            raise KeyError(f"{self.name} has no port '{name}'") from None

    # ------------------------------------------------------------------
    # flip-flop accounting (drives scan-chain length n_l, eq. 13)
    # ------------------------------------------------------------------
    @property
    def pipeline_ff_bits(self) -> int:
        """Bits in the O/T/R pipeline registers plus opcode/address regs."""
        data_bits = sum(p.width for p in self.ports)
        return data_bits + self.opcode_bits + self.extra_ff_bits

    @property
    def socket_ff_bits(self) -> int:
        """Fin/Fout socket flip-flops (one per connector) plus stage FSM."""
        return len(self.ports) + self.fsm_bits

    @property
    def scan_chain_length(self) -> int:
        """``n_l``: every functional flip-flop made scannable (Sec. 3)."""
        return self.pipeline_ff_bits + self.socket_ff_bits
