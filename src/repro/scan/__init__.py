"""Full-scan baseline: chains, cycle accounting and the scan view.

The paper's comparison column ("full scan" in Table 1) assumes every
functional flip-flop of a component is replaced by a scan cell on a single
chain; test application then costs shift-in/shift-out serialisation.  This
package models exactly that — no more, because the whole point of the
paper is that the *functional* transport test avoids it.
"""

from repro.scan.chain import ScanChain, stitch_chains
from repro.scan.cost import (
    full_scan_cycles,
    scan_test_cycles,
)
from repro.scan.insertion import (
    ScanCell,
    ScannedDesign,
    scan_cells_by_prefix,
    scan_test_detects,
)
from repro.scan.scanview import compose_netlists, scan_view

__all__ = [
    "ScanCell",
    "ScanChain",
    "ScannedDesign",
    "compose_netlists",
    "full_scan_cycles",
    "scan_cells_by_prefix",
    "scan_test_cycles",
    "scan_test_detects",
    "scan_view",
    "stitch_chains",
]
