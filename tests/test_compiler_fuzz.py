"""Differential fuzzing: random IR programs, compiled vs interpreted.

The strongest correctness net in the suite: generate random programs
with loops, branches, memory traffic and heavy register pressure,
compile them onto randomly-shaped architectures, simulate cycle by
cycle, and demand bit-identical memory against the IR interpreter.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import IRBuilder, IRInterpreter, compile_ir, optimize_ir
from repro.tta import TTASimulator, validate_program

from tests.conftest import make_arch

_BINOPS = ["add", "sub", "and", "or", "xor", "shl", "shr", "sra"]
_CMPS = ["eq", "ne", "ltu", "geu", "lts", "ges"]


def _random_program(seed: int):
    """A 2-4 block program with a bounded loop and random data flow."""
    rng = random.Random(seed)
    b = IRBuilder(f"fuzz{seed}")

    b.block("entry")
    live = [b.li(rng.getrandbits(8), f"%v{i}") for i in range(4)]
    b.li(rng.randrange(2, 6), "%iters")
    b.jump("loop")

    b.block("loop")
    for _ in range(rng.randrange(3, 12)):
        pick = rng.random()
        if pick < 0.55:
            op = rng.choice(_BINOPS)
            x = rng.choice(live)
            y = rng.choice(live) if rng.random() < 0.7 else rng.getrandbits(6)
            dst = rng.choice(live) if rng.random() < 0.5 else None
            result = b._binary(op, x, y, dst)
            if result not in live:
                live.append(result)
        elif pick < 0.7:
            c = b._binary(rng.choice(_CMPS), rng.choice(live),
                          rng.choice(live))
            live.append(c)
        elif pick < 0.85:
            addr = 300 + rng.randrange(6)
            b.store(addr, rng.choice(live))
        else:
            addr = 300 + rng.randrange(6)
            live.append(b.load(addr))
        if len(live) > 8:
            live = live[-8:]
    b.sub("%iters", 1, "%iters")
    more = b.ne("%iters", 0)
    b.branch(more, "loop", "done")

    b.block("done")
    for i, v in enumerate(live[-4:]):
        b.store(i, v)
    b.halt()
    return b.finish()


_SHAPES = [
    dict(num_buses=1),
    dict(num_buses=2),
    dict(num_buses=3, num_alus=2),
    dict(num_buses=2, rf_setups=((4, 1, 1),)),
    dict(num_buses=4, rf_setups=((8, 2, 1), (12, 1, 1))),
]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_compiled_program_matches_interpreter(seed):
    fn = _random_program(seed)
    reference = IRInterpreter(fn, width=16).run()

    shape = _SHAPES[seed % len(_SHAPES)]
    arch = make_arch(**shape)
    compiled = compile_ir(fn, arch, profile=reference.block_counts)
    assert validate_program(arch, compiled.program, strict=False) == []

    sim = TTASimulator(arch, compiled.program)
    result = sim.run(max_cycles=500_000)
    assert result.halted
    for addr in range(4):
        assert sim.dmem_read(addr) == reference.memory.get(addr, 0), (
            f"seed {seed}, shape {shape}, mem[{addr}]"
        )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_optimized_compiled_program_matches_interpreter(seed):
    """Optimiser + scheduler composed must stay semantics-preserving."""
    fn = _random_program(seed)
    reference = IRInterpreter(fn, width=16).run()
    optimized = optimize_ir(fn)

    arch = make_arch(**_SHAPES[(seed // 7) % len(_SHAPES)])
    compiled = compile_ir(optimized, arch)
    sim = TTASimulator(arch, compiled.program)
    result = sim.run(max_cycles=500_000)
    assert result.halted
    for addr in range(4):
        assert sim.dmem_read(addr) == reference.memory.get(addr, 0)
