"""Transport latency of functional test patterns (eqs. 9-10).

``CD_c(tDin, tDout)`` is the number of cycles from applying test data on
a MOVE bus to reading the response back: with every input port reaching a
*distinct* bus the minimum is 3 (eq. 9 — one cycle input transport +
decode, one cycle compute, one cycle result transport), and each input
port that must share a bus with another input adds a serialisation cycle
(eq. 10: operand and trigger on the same bus -> 4).  A result port tied
to an input bus adds one more ("the number of cycles will further
increase if all of the registers are tied to the same bus").

This is what makes Fig. 6 tick: two *identical* FUs in the same
architecture get different test costs purely from their port->bus
binding.
"""

from __future__ import annotations

from repro.components.spec import ComponentKind
from repro.tta.arch import Architecture

#: Baseline: decode+input transport, compute, result transport (eq. 9).
MIN_TRANSPORT_LATENCY = 3


def test_bus_assignment(arch: Architecture, unit_name: str) -> dict[str, int]:
    """Designated test bus per port of one unit.

    Greedy balancing: input ports take the least-loaded bus from their
    connectivity set; output ports then prefer a bus no input uses.
    Only intra-unit conflicts matter — components are tested one at a
    time (the paper's test order requirement, Sec. 3.2).
    """
    unit = arch.unit(unit_name)
    load: dict[int, int] = {b: 0 for b in range(arch.num_buses)}
    assignment: dict[str, int] = {}
    for port in unit.spec.input_ports:
        buses = arch.port_buses(unit_name, port.name)
        best = min(sorted(buses), key=lambda b: load[b])
        assignment[port.name] = best
        load[best] += 1
    input_buses = set(assignment.values())
    for port in unit.spec.output_ports:
        buses = sorted(arch.port_buses(unit_name, port.name))
        free = [b for b in buses if b not in input_buses]
        assignment[port.name] = free[0] if free else buses[0]
    return assignment


def transport_latency(arch: Architecture, unit_name: str) -> int:
    """``CD`` for one component under its designated test-bus binding."""
    unit = arch.unit(unit_name)
    spec = unit.spec
    assignment = test_bus_assignment(arch, unit_name)

    input_load: dict[int, int] = {}
    for port in spec.input_ports:
        bus = assignment[port.name]
        input_load[bus] = input_load.get(bus, 0) + 1
    serialisation = max(input_load.values(), default=1)

    output_penalty = 0
    if spec.kind is not ComponentKind.IMM:
        for port in spec.output_ports:
            if assignment[port.name] in input_load:
                output_penalty = 1
                break

    return 2 + serialisation + output_penalty
