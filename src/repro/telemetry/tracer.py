"""Structured tracing: span/event records onto a JSONL sink.

A :class:`Tracer` is a thin, zero-dependency writer of the records
documented in :mod:`repro.telemetry.schema`.  Timestamps come from
``time.perf_counter`` relative to the moment the tracer opened, so the
stream is monotonic and durations subtract exactly; the wall-clock
start lives in the header record for humans.

Tracing is strictly opt-in: nothing in the study stack constructs a
tracer on its own, and every instrumented call site accepts
``tracer=None`` (the default) and skips all work in that case.  Only
the parent process traces — pool workers report their share through
metric snapshots merged on wave completion, never through the sink —
so one file descriptor owns the file and records never interleave.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter
from typing import IO, Iterator

from repro.telemetry.schema import SCHEMA_VERSION


class Tracer:
    """Emit schema-versioned span/event records as JSON lines.

    ``sink`` is a path (opened for writing, parents created) or any
    object with ``write``/``flush``.  ``study`` stamps every record
    with the study id; the engine fills it in lazily when the CLI did
    not.  Each record is flushed as written, so a killed run keeps a
    valid trace of everything that happened.
    """

    def __init__(
        self,
        sink: str | Path | IO[str],
        study: str | None = None,
    ) -> None:
        if isinstance(sink, (str, Path)):
            path = Path(sink)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._file: IO[str] = path.open("w")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self.study = study
        self._t0 = perf_counter()
        self._closed = False
        self._write({
            "v": SCHEMA_VERSION,
            "kind": "meta",
            "ts": 0.0,
            "name": "trace",
            "data": {
                "schema": SCHEMA_VERSION,
                "started": time.time(),
                "pid": os.getpid(),
            },
        })

    # ------------------------------------------------------------------
    def _write(self, record: dict) -> None:
        if self._closed:
            return
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def _record(
        self,
        kind: str,
        name: str,
        ts: float,
        run: str | None,
        wave: int | None,
        config: str | None,
        data: dict | None,
        dur: float | None = None,
    ) -> None:
        record: dict = {
            "v": SCHEMA_VERSION,
            "kind": kind,
            "ts": round(ts, 6),
            "name": name,
        }
        if dur is not None:
            record["dur"] = round(dur, 6)
        if self.study is not None:
            record["study"] = self.study
        if run is not None:
            record["run"] = run
        if wave is not None:
            record["wave"] = wave
        if config is not None:
            record["config"] = config
        if data:
            record["data"] = data
        self._write(record)

    # ------------------------------------------------------------------
    def event(
        self,
        name: str,
        run: str | None = None,
        wave: int | None = None,
        config: str | None = None,
        **data,
    ) -> None:
        """Emit one point-in-time event record."""
        self._record(
            "event", name, perf_counter() - self._t0, run, wave, config,
            data or None,
        )

    @contextmanager
    def span(
        self,
        name: str,
        run: str | None = None,
        wave: int | None = None,
        config: str | None = None,
        **data,
    ) -> Iterator[None]:
        """Time a block; emits one complete span record on exit.

        The record is written even when the block raises, so traces of
        failed runs still account for the time spent.
        """
        start = perf_counter()
        try:
            yield
        finally:
            end = perf_counter()
            self._record(
                "span", name, start - self._t0, run, wave, config,
                data or None, dur=end - start,
            )

    def close(self) -> None:
        if not self._closed and self._owns_file:
            self._file.close()
        self._closed = True

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
