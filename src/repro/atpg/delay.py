"""Transition (delay) fault testing.

Sec. 3.2: "the functional test of the components may also be used for
delay fault tests, since it basically checks not only the structure of
the components but also their timing relations (2-8)."

A transition fault — a net slow to rise or slow to fall — needs a
*pattern pair*: an initialisation pattern that puts the net at the
pre-transition value, immediately followed by a launch/capture pattern
that (a) flips the net and (b) propagates the late value to an output
(i.e. detects the corresponding stuck-at fault).  When the paper's
functional test streams its stuck-at patterns back-to-back through the
component pipeline, every *consecutive* pair in the sequence doubles as
a delay test; this module measures that coverage and greedily reorders /
extends the sequence to raise it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atpg.faults import Fault
from repro.atpg.faultsim import WORD, FaultSimulator
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class TransitionFault:
    """Net ``net`` slow to rise (``rising=True``) or slow to fall."""

    net: int
    rising: bool

    def describe(self, netlist: Netlist) -> str:
        kind = "slow-to-rise" if self.rising else "slow-to-fall"
        return f"{netlist.net_name(self.net)} {kind}"

    @property
    def stuck_equivalent(self) -> Fault:
        """The stuck-at fault the capture pattern must detect.

        A node that fails to rise behaves, for the capture pattern, like
        a stuck-at-0 (and vice versa).
        """
        return Fault(self.net, 0 if self.rising else 1)


def enumerate_transition_faults(netlist: Netlist) -> list[TransitionFault]:
    """Both transition faults on every driven or primary-input stem."""
    out: list[TransitionFault] = []
    for net in netlist.nets:
        is_stem = net.driver is not None or net.nid in netlist.inputs
        is_used = bool(net.fanout) or net.nid in netlist.outputs
        if is_stem and is_used:
            out.append(TransitionFault(net.nid, rising=True))
            out.append(TransitionFault(net.nid, rising=False))
    return out


@dataclass
class DelayCoverage:
    """Transition coverage of one ordered pattern sequence."""

    netlist_name: str
    num_faults: int
    detected: int
    sequence_length: int

    @property
    def coverage(self) -> float:
        if self.num_faults == 0:
            return 100.0
        return 100.0 * self.detected / self.num_faults


class DelayAnalyzer:
    """Transition-fault analysis over a netlist and pattern sequences."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self.sim = FaultSimulator(netlist)
        self.faults = enumerate_transition_faults(netlist)

    # ------------------------------------------------------------------
    def _net_values(self, pattern: int) -> list[int]:
        pi_map = {
            pi: (pattern >> i) & 1 for i, pi in enumerate(self.netlist.inputs)
        }
        return self.netlist.evaluate(pi_map, 1)

    def _detects_stuck(self, pattern: int, fault: Fault) -> bool:
        return bool(self.sim.simulate_word([pattern], [fault])[fault])

    def pair_detects(self, init: int, capture: int, fault: TransitionFault) -> bool:
        """Does the ordered pair (init, capture) detect ``fault``?

        init must set the pre-transition value; capture must flip the
        net and observe the stuck-at equivalent.
        """
        pre = 0 if fault.rising else 1
        init_values = self._net_values(init)
        if init_values[fault.net] != pre:
            return False
        capture_values = self._net_values(capture)
        if capture_values[fault.net] != 1 - pre:
            return False
        return self._detects_stuck(capture, fault.stuck_equivalent)

    # ------------------------------------------------------------------
    def coverage_of_sequence(self, patterns: list[int]) -> DelayCoverage:
        """Transition coverage of *consecutive* pairs in one sequence.

        This is exactly what the paper's functional application gives for
        free: pattern k initialises the pair (k, k+1) launches/captures.
        """
        detected: set[TransitionFault] = set()
        if len(patterns) >= 2:
            value_cache = [self._net_values(p) for p in patterns]
            # stuck-at detection sets per capture pattern, bit-parallel
            remaining = list(self.faults)
            for fault in remaining:
                if fault in detected:
                    continue
                stuck = fault.stuck_equivalent
                pre = 0 if fault.rising else 1
                for k in range(len(patterns) - 1):
                    if value_cache[k][fault.net] != pre:
                        continue
                    if value_cache[k + 1][fault.net] != 1 - pre:
                        continue
                    if self._detects_stuck(patterns[k + 1], stuck):
                        detected.add(fault)
                        break
        return DelayCoverage(
            netlist_name=self.netlist.name,
            num_faults=len(self.faults),
            detected=len(detected),
            sequence_length=len(patterns),
        )

    def augment_sequence(
        self, patterns: list[int], max_extra: int = 64
    ) -> list[int]:
        """Greedily append initialisation patterns to raise pair coverage.

        For each uncovered transition fault whose stuck-at equivalent is
        detected by some pattern ``c`` in the set, prepend-before-``c`` a
        copy of a pattern that holds the pre-transition value (reusing
        set members only — no new ATPG), until the budget runs out.
        """
        sequence = list(patterns)
        extra = 0
        value_cache = {p: self._net_values(p) for p in set(sequence)}

        for fault in self.faults:
            if extra >= max_extra:
                break
            pre = 0 if fault.rising else 1
            stuck = fault.stuck_equivalent
            # already covered by a consecutive pair?
            if any(
                value_cache[sequence[k]][fault.net] == pre
                and value_cache[sequence[k + 1]][fault.net] == 1 - pre
                and self._detects_stuck(sequence[k + 1], stuck)
                for k in range(len(sequence) - 1)
            ):
                continue
            capture = next(
                (
                    p
                    for p in sequence
                    if value_cache[p][fault.net] == 1 - pre
                    and self._detects_stuck(p, stuck)
                ),
                None,
            )
            if capture is None:
                continue
            init = next(
                (p for p in sequence if value_cache[p][fault.net] == pre),
                None,
            )
            if init is None:
                continue
            position = sequence.index(capture)
            sequence.insert(position, init)
            extra += 1
        return sequence


def delay_test_cycles(num_pairs: int, transport_latency: int) -> int:
    """Application cost of delay pairs through the transport path.

    Each pair is two back-to-back functional patterns; the launch and
    capture ride the pipeline one cycle apart, so a pair costs
    ``CD + 1`` cycles (the paper's at-speed argument: the existing
    timing relations provide the launch/capture clocking for free).
    """
    if num_pairs < 0 or transport_latency < 1:
        raise ValueError("invalid delay-test parameters")
    return num_pairs * (transport_latency + 1)
