"""Load/store unit read-path netlist.

The data memory itself is behavioural (the paper's LD/ST unit talks to an
external data memory, Fig. 9); what is synthesised — and what the paper's
Table 1 scans — is the unit's datapath: the read-data extension/alignment
logic plus the write-data pass-through.

The paper excludes LD/ST from the *cost ranking* because every candidate
architecture contains exactly one ("they contribute equally"), but Table 1
still reports its scan numbers, so the netlist is needed.

Ports: ``addr[width]`` (T), ``wdata[width]`` (O), ``rdata_mem[width]``
(from memory), ``mode[2]`` — outputs ``addr_mem``, ``wdata_mem``,
``rdata[width]`` (R, extended per :data:`~repro.components.reference.LSU_OPS`).
"""

from __future__ import annotations

from repro.netlist.builder import WordBuilder
from repro.netlist.netlist import Netlist

MODE_BITS = 2


def build_lsu(width: int = 16, name: str = "lsu") -> Netlist:
    """Build the LSU datapath netlist for an even ``width``."""
    if width < 4 or width % 2:
        raise ValueError(f"LSU width must be even and >= 4, got {width}")
    half = width // 2
    wb = WordBuilder(f"{name}{width}")
    addr = wb.input_word("addr", width)
    wdata = wb.input_word("wdata", width)
    rdata_mem = wb.input_word("rdata_mem", width)
    mode = wb.input_word("mode", MODE_BITS)

    # Address/write-data pass through buffered drivers (bus isolation).
    wb.output_word("addr_mem", [wb.buf(x) for x in addr])
    wb.output_word("wdata_mem", [wb.buf(x) for x in wdata])

    # Read path: word / low-half sign-extended / low-half zero / high-half.
    low = rdata_mem[:half]
    high = rdata_mem[half:]
    zero = wb.const_bit(0)
    sign = low[-1]
    word_r = list(rdata_mem)
    low_s = low + [sign] * half
    low_u = low + [zero] * half
    high_r = high + [zero] * half
    rdata = wb.mux_tree(list(mode), [word_r, low_s, low_u, high_r])
    wb.output_word("rdata", rdata)
    wb.netlist.check()
    return wb.netlist
