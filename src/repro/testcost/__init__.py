"""The paper's contribution: analytical test cost as a third DSE axis.

* :mod:`repro.testcost.transport` — transport latency CD from the
  port->bus binding (eqs. 9-10, the Fig. 6 effect);
* :mod:`repro.testcost.backannotate` — per-component ``n_p``/coverage
  from the ATPG (FUs), march length (RFs), socket ATPG;
* :mod:`repro.testcost.cost` — eqs. (11)-(14);
* :mod:`repro.testcost.fullscan` — the full-scan baseline;
* :mod:`repro.testcost.table` — the Table 1 generator.
"""

from repro.testcost.transport import test_bus_assignment, transport_latency
from repro.testcost.backannotate import (
    Backannotation,
    component_backannotation,
    socket_pattern_count,
)
from repro.testcost.cost import (
    TestCostBreakdown,
    UnitTestCost,
    architecture_test_cost,
    attach_test_costs,
    fu_test_cost,
    rf_test_cost,
    socket_test_cost,
)
from repro.testcost.fullscan import full_scan_component_cycles
from repro.testcost.interconnect import (
    InterconnectCost,
    interconnect_sessions,
    interconnect_test_cost,
)
from repro.testcost.multichain import (
    TestSchedule,
    TestSession,
    schedule_tests,
    sessions_from_breakdown,
)
from repro.testcost.table import Table1Row, build_table1, format_table1

__all__ = [
    "Backannotation",
    "Table1Row",
    "TestCostBreakdown",
    "UnitTestCost",
    "architecture_test_cost",
    "attach_test_costs",
    "build_table1",
    "component_backannotation",
    "format_table1",
    "fu_test_cost",
    "full_scan_component_cycles",
    "InterconnectCost",
    "interconnect_sessions",
    "interconnect_test_cost",
    "rf_test_cost",
    "schedule_tests",
    "sessions_from_breakdown",
    "socket_pattern_count",
    "socket_test_cost",
    "test_bus_assignment",
    "TestSchedule",
    "TestSession",
    "transport_latency",
]
