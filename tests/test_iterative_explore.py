"""Iterative explorer: finds the frontier with far fewer evaluations."""

from repro.apps import build_gcd_ir
from repro.apps.crypt_kernel import build_crypt_ir
from repro.explore import crypt_space, explore
from repro.explore.iterative import iterative_explore, neighbours
from repro.explore.space import ArchConfig, RFConfig


def test_neighbours_single_mutations():
    config = ArchConfig(num_buses=2, num_alus=2, rfs=(RFConfig(8),))
    near = neighbours(config)
    labels = {c.label() for c in near}
    assert len(labels) == len(near), "no duplicate neighbours"
    assert config.label() not in labels
    # one parameter changes at a time
    for candidate in near:
        diffs = sum(
            [
                candidate.num_buses != config.num_buses,
                candidate.num_alus != config.num_alus,
                candidate.num_shifters != config.num_shifters,
                candidate.rfs != config.rfs,
            ]
        )
        assert diffs == 1


def test_neighbours_respect_bounds():
    low = ArchConfig(num_buses=1, num_alus=1, rfs=(RFConfig(4),))
    for candidate in neighbours(low):
        assert candidate.num_buses >= 1
        assert candidate.num_alus >= 1


def test_iterative_matches_exhaustive_on_gcd():
    fn = build_gcd_ir(252, 105)
    exhaustive = explore(fn, crypt_space())
    target = {
        (p.area, p.cycles) for p in exhaustive.pareto2d
    }

    iterative = iterative_explore(fn, max_evaluations=80)
    found = {
        (p.area, p.cycles) for p in iterative.result.pareto2d
    }
    # the search needs far fewer evaluations than the sweep...
    assert iterative.evaluations <= 80 < len(crypt_space())
    # ...and recovers most of the true frontier
    recovered = len(found & target) / len(target)
    assert recovered >= 0.6, f"only {recovered:.0%} of the frontier found"


def test_iterative_on_crypt_is_budgeted():
    fn = build_crypt_ir("x", "ab")
    iterative = iterative_explore(fn, max_evaluations=30)
    assert iterative.evaluations <= 30
    assert iterative.result.pareto2d
    # the frontier never shrinks during the search
    history = iterative.frontier_history
    assert history == sorted(history) or len(set(history)) > 1
