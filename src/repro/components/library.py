"""Component datasheets and the default MOVE-style catalog.

A :class:`ComponentDatasheet` bundles the architecture-level spec with the
lazily-synthesised gate-level netlist, its area/delay statistics and an
area model for the whole placed component (core + pipeline flip-flops +
socket logic).  This is our substitute for the paper's "components are
already predesigned up to the gate-level using the Synopsys synthesis
package" — every number is derived from an actual structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.components.alu import OPCODE_BITS as ALU_OPCODE_BITS
from repro.components.alu import build_alu
from repro.components.comparator import OPCODE_BITS as CMP_OPCODE_BITS
from repro.components.comparator import build_comparator
from repro.components.immediate import build_immediate
from repro.components.loadstore import MODE_BITS as LSU_MODE_BITS
from repro.components.loadstore import build_lsu
from repro.components.multiplier import build_multiplier
from repro.components.pc import build_pc
from repro.components.reference import (
    ALU_OPS,
    CMP_OPS,
    MUL_OPS,
    SHIFTER_OPS,
)
from repro.components.register_file import build_ff_register_file
from repro.components.shifter import OPCODE_BITS as SHIFTER_OPCODE_BITS
from repro.components.shifter import build_shifter
from repro.components.spec import (
    ComponentKind,
    ComponentSpec,
    PortDirection,
    PortSpec,
)
from repro.netlist.netlist import Netlist
from repro.netlist.stats import NetlistStats, netlist_stats

#: Area of one scannable flip-flop, in NAND2-equivalents.
FF_AREA = 4.0

#: Fixed socket control/decode area per connector plus per-bit drivers.
SOCKET_AREA_BASE = 12.0
SOCKET_AREA_PER_BIT = 0.5

#: Multi-port memory cell area per bit and port-growth factor: wordlines
#: and bitlines replicate per port, so area grows with the port count.
MEMCELL_AREA = 0.6
MEM_PORT_FACTOR = 0.25


def _in(name: str, width: int, trigger: bool = False) -> PortSpec:
    return PortSpec(name, PortDirection.IN, width, is_trigger=trigger)


def _out(name: str, width: int) -> PortSpec:
    return PortSpec(name, PortDirection.OUT, width)


# ----------------------------------------------------------------------
# spec constructors
# ----------------------------------------------------------------------
def alu_spec(width: int = 16) -> ComponentSpec:
    return ComponentSpec(
        name=f"alu{width}",
        kind=ComponentKind.FU,
        width=width,
        ops=ALU_OPS,
        latency=1,
        ports=(_in("a", width), _in("b", width, trigger=True), _out("y", width)),
        opcode_bits=ALU_OPCODE_BITS,
    )


def cmp_spec(width: int = 16) -> ComponentSpec:
    return ComponentSpec(
        name=f"cmp{width}",
        kind=ComponentKind.FU,
        width=width,
        ops=CMP_OPS,
        latency=1,
        ports=(_in("a", width), _in("b", width, trigger=True), _out("y", width)),
        opcode_bits=CMP_OPCODE_BITS,
    )


def shifter_spec(width: int = 16) -> ComponentSpec:
    return ComponentSpec(
        name=f"shifter{width}",
        kind=ComponentKind.FU,
        width=width,
        ops=SHIFTER_OPS,
        latency=1,
        ports=(_in("a", width), _in("b", width, trigger=True), _out("y", width)),
        opcode_bits=SHIFTER_OPCODE_BITS,
    )


def mul_spec(width: int = 16) -> ComponentSpec:
    return ComponentSpec(
        name=f"mul{width}",
        kind=ComponentKind.FU,
        width=width,
        ops=MUL_OPS,
        latency=2,
        ports=(_in("a", width), _in("b", width, trigger=True), _out("y", width)),
        opcode_bits=0,
    )


def rf_spec(
    num_regs: int,
    width: int = 16,
    read_ports: int = 1,
    write_ports: int = 1,
) -> ComponentSpec:
    abits = (num_regs - 1).bit_length()
    ports = tuple(
        [_in(f"w{p}", width) for p in range(write_ports)]
        + [_out(f"r{p}", width) for p in range(read_ports)]
    )
    return ComponentSpec(
        name=f"rf{num_regs}x{width}_{write_ports}w{read_ports}r",
        kind=ComponentKind.RF,
        width=width,
        ops=("read", "write"),
        latency=1,
        ports=ports,
        num_regs=num_regs,
        extra_ff_bits=abits * (read_ports + write_ports),
    )


def lsu_spec(width: int = 16) -> ComponentSpec:
    return ComponentSpec(
        name=f"lsu{width}",
        kind=ComponentKind.LSU,
        width=width,
        ops=("ld", "st"),
        latency=2,
        ports=(
            _in("wdata", width),
            _in("addr", width, trigger=True),
            _out("rdata", width),
        ),
        opcode_bits=LSU_MODE_BITS + 1,   # mode plus load/store select
    )


def pc_spec(width: int = 16) -> ComponentSpec:
    return ComponentSpec(
        name=f"pc{width}",
        kind=ComponentKind.PC,
        width=width,
        ops=("jump",),
        latency=1,
        ports=(_in("target", width, trigger=True),),
        opcode_bits=1,
    )


def imm_spec(width: int = 16) -> ComponentSpec:
    return ComponentSpec(
        name=f"imm{width}",
        kind=ComponentKind.IMM,
        width=width,
        ops=("imm",),
        latency=1,
        ports=(_out("value", width),),
        opcode_bits=1,
    )


# ----------------------------------------------------------------------
# datasheets
# ----------------------------------------------------------------------
_NETLIST_BUILDERS: dict[ComponentKind, Callable[..., Netlist] | None] = {
    ComponentKind.FU: None,   # resolved per spec name below
    ComponentKind.RF: None,   # behavioural memory; FF netlist on demand
}


@dataclass
class ComponentDatasheet:
    """Spec + synthesised structure + area model for one component type."""

    spec: ComponentSpec

    @property
    def name(self) -> str:
        return self.spec.name

    # -- gate level ----------------------------------------------------
    def netlist(self) -> Netlist | None:
        """Combinational core netlist (None for multi-port-memory RFs)."""
        return _build_core_netlist(self.spec.name)

    def ff_netlist(self) -> Netlist | None:
        """Flip-flop strawman netlist (RF only; for the full-scan column)."""
        if self.spec.kind is not ComponentKind.RF:
            return None
        return _build_rf_ff_netlist(self.spec.name)

    def core_stats(self) -> NetlistStats | None:
        return _core_stats(self.spec.name)

    # -- area model ------------------------------------------------------
    @property
    def core_area(self) -> float:
        """Logic-core area: netlist gates, or the memory macro for RFs."""
        if self.spec.kind is ComponentKind.RF:
            ports = self.spec.n_in + self.spec.n_out
            cell = MEMCELL_AREA * (1.0 + MEM_PORT_FACTOR * ports)
            decode = 6.0 * ports * (self.spec.num_regs - 1).bit_length()
            return self.spec.num_regs * self.spec.width * cell + decode
        stats = self.core_stats()
        return stats.area if stats is not None else 0.0

    @property
    def register_area(self) -> float:
        """Pipeline/opcode/address registers (scannable flip-flops)."""
        return FF_AREA * self.spec.pipeline_ff_bits

    @property
    def socket_area(self) -> float:
        """Input/output socket control, decode and bus-driver area."""
        per_port = (
            SOCKET_AREA_BASE
            + SOCKET_AREA_PER_BIT * self.spec.width
            + FF_AREA  # the Fin/Fout flip-flop
        )
        return per_port * len(self.spec.ports) + FF_AREA * self.spec.fsm_bits

    @property
    def total_area(self) -> float:
        """Placed-component area used by the explorer."""
        return round(self.core_area + self.register_area + self.socket_area, 3)

    @property
    def delay(self) -> float:
        """Critical-path delay of the core (memory RFs use a fixed model)."""
        if self.spec.kind is ComponentKind.RF:
            return 4.0 + 0.5 * (self.spec.num_regs - 1).bit_length()
        stats = self.core_stats()
        return stats.critical_path if stats is not None else 1.0


@lru_cache(maxsize=None)
def _build_core_netlist(spec_name: str) -> Netlist | None:
    """Synthesise (and cache) the combinational core for a spec name."""
    kind, width, extras = _parse_spec_name(spec_name)
    if kind == "alu":
        return build_alu(width)
    if kind == "cmp":
        return build_comparator(width)
    if kind == "shifter":
        return build_shifter(width)
    if kind == "mul":
        return build_multiplier(width)
    if kind == "lsu":
        return build_lsu(width)
    if kind == "pc":
        return build_pc(width)
    if kind == "imm":
        return build_immediate(width)
    if kind == "rf":
        return None
    raise ValueError(f"unknown component family in '{spec_name}'")


@lru_cache(maxsize=None)
def _core_stats(spec_name: str) -> NetlistStats | None:
    """Area/delay statistics of a core netlist, computed once per type.

    The explorer costs hundreds of architectures sharing a handful of
    component types; without this cache every ``Architecture.area()``
    re-walks the synthesised netlists (the dominant cost of a sweep's
    area model).  Statistics are immutable, so sharing is safe.
    """
    netlist = _build_core_netlist(spec_name)
    return netlist_stats(netlist) if netlist is not None else None


@lru_cache(maxsize=None)
def _build_rf_ff_netlist(spec_name: str) -> Netlist:
    kind, width, extras = _parse_spec_name(spec_name)
    if kind != "rf":
        raise ValueError(f"'{spec_name}' is not a register file")
    num_regs, write_ports, read_ports = extras
    return build_ff_register_file(num_regs, width, read_ports, write_ports)


def _parse_spec_name(name: str) -> tuple[str, int, tuple[int, ...]]:
    """Parse names like ``alu16`` or ``rf8x16_1w2r``."""
    if name.startswith("rf"):
        body = name[2:]
        regs_part, _, rest = body.partition("x")
        width_part, _, ports_part = rest.partition("_")
        wp, _, rp = ports_part.partition("w")
        return "rf", int(width_part), (int(regs_part), int(wp), int(rp.rstrip("r")))
    kind = name.rstrip("0123456789")
    width = int(name[len(kind):])
    return kind, width, ()


@lru_cache(maxsize=None)
def component_datasheet(spec: ComponentSpec) -> ComponentDatasheet:
    """Datasheet for a spec (cached; specs are frozen/hashable)."""
    return ComponentDatasheet(spec)


def default_catalog(width: int = 16) -> dict[str, ComponentSpec]:
    """The MOVE-style component library the explorer draws from."""
    specs = [
        alu_spec(width),
        cmp_spec(width),
        shifter_spec(width),
        mul_spec(width),
        rf_spec(4, width, read_ports=1, write_ports=1),
        rf_spec(8, width, read_ports=1, write_ports=1),
        rf_spec(8, width, read_ports=2, write_ports=1),
        rf_spec(12, width, read_ports=1, write_ports=1),
        rf_spec(12, width, read_ports=2, write_ports=1),
        rf_spec(16, width, read_ports=2, write_ports=2),
        lsu_spec(width),
        pc_spec(width),
        imm_spec(width),
    ]
    return {spec.name: spec for spec in specs}
