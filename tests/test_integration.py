"""End-to-end integration: the full reproduction chain under one roof."""

import pytest

from repro import (
    ArchConfig,
    RFConfig,
    StudySpec,
    TTASimulator,
    build_architecture,
    build_crypt_ir,
    build_table1,
    crypt_output_from_memory,
    run_study,
    unix_crypt,
)
from repro.compiler import IRInterpreter, compile_ir


@pytest.mark.slow
def test_crypt_bit_exact_on_tta():
    """crypt(3) compiled onto a Fig. 9-style TTA matches pure Python."""
    password, salt = "password", "ab"
    workload = build_crypt_ir(password, salt)
    profile = IRInterpreter(workload, width=16).run().block_counts
    arch = build_architecture(
        ArchConfig(num_buses=2, rfs=(RFConfig(8), RFConfig(12)))
    )
    compiled = compile_ir(workload, arch, profile=profile)
    sim = TTASimulator(arch, compiled.program)
    result = sim.run(max_cycles=5_000_000)
    assert result.halted
    assert crypt_output_from_memory(sim.dmem, salt) == unix_crypt(
        password, salt
    )


@pytest.mark.slow
def test_crypt_bit_exact_on_minimal_machine():
    """Even a single-bus, single-RF machine computes the exact hash."""
    password, salt = "tta", "./"
    workload = build_crypt_ir(password, salt)
    profile = IRInterpreter(workload, width=16).run().block_counts
    arch = build_architecture(ArchConfig(num_buses=1, rfs=(RFConfig(12),)))
    compiled = compile_ir(workload, arch, profile=profile)
    sim = TTASimulator(arch, compiled.program)
    result = sim.run(max_cycles=10_000_000)
    assert result.halted
    assert crypt_output_from_memory(sim.dmem, salt) == unix_crypt(
        password, salt
    )


@pytest.mark.slow
def test_whole_paper_flow():
    """Study -> Pareto -> test costs -> selection -> Table 1."""
    study = run_study(
        StudySpec(
            name="paper",
            workloads=("crypt",),
            space="small",
            objectives=("area", "cycles", "test_cost"),
            select=True,
        )
    )
    run = study.single
    result = run.result
    assert result.pareto2d
    assert all(p.test_cost is not None for p in result.pareto2d)

    best = run.selection
    assert best is not None
    arch = build_architecture(best.point.config)
    rows, breakdown = build_table1(arch)
    counted = [r for r in rows if r.counted]
    assert counted
    for row in counted:
        assert row.our_approach < row.full_scan
    assert breakdown.total == sum(r.our_approach for r in counted)


def test_static_estimate_tracks_simulation():
    """The DSE's profile-weighted estimate stays close to cycle truth."""
    workload = build_crypt_ir("x", "ab")
    profile = IRInterpreter(workload, width=16).run().block_counts
    arch = build_architecture(ArchConfig(num_buses=3, rfs=(RFConfig(12),)))
    compiled = compile_ir(workload, arch, profile=profile)
    estimate = compiled.static_cycles(profile)
    sim = TTASimulator(arch, compiled.program)
    actual = sim.run(max_cycles=5_000_000).cycles
    assert abs(estimate - actual) / actual < 0.05
