"""Architecture selection by weighted vector norms (Sec. 4, Fig. 9).

"The selection of the most appropriate architecture can be done using any
of the standard weighted norm techniques within the vector space R^3 ...
The standard Euclid norm with equal constraint weights has been used."

Axes are min-max normalised over the candidate set before weighting so
that cycles (~1e5) cannot drown area (~1e3); the paper's equal-weight
choice then genuinely balances the three constraints.

The norm works over *any* objective vector: pass ``key`` (typically
``repro.study.objectives.cost_vector`` over a study's objective set) to
select under an arbitrary axis list; the ``use_test_cost`` switch keeps
the paper's fixed (area, cycles[, test]) vectors as the default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.explore.evaluate import EvaluatedPoint


@dataclass(frozen=True)
class SelectionResult:
    """The chosen architecture plus its norm value."""

    point: EvaluatedPoint
    norm: float
    normalized: tuple[float, ...]


def normalize_points(
    points: list[EvaluatedPoint],
    use_test_cost: bool = True,
    key: Callable[[EvaluatedPoint], Sequence[float]] | None = None,
) -> list[tuple[EvaluatedPoint, tuple[float, ...]]]:
    """Min-max normalise each axis over the candidate set.

    ``key`` maps a point to its raw cost vector; when omitted, the
    paper's (area, cycles, test) — or (area, cycles) with
    ``use_test_cost=False`` — is used.
    """
    if not points:
        raise ValueError("no candidate points")
    vectors = []
    for p in points:
        if not p.feasible:
            raise ValueError(f"infeasible point {p.label} in selection")
        if key is not None:
            vectors.append(tuple(float(x) for x in key(p)))
        elif use_test_cost:
            if p.test_cost is None:
                raise ValueError(f"point {p.label} lacks a test cost")
            vectors.append((p.area, float(p.cycles), float(p.test_cost)))
        else:
            vectors.append((p.area, float(p.cycles)))
    dims = len(vectors[0])
    if any(len(v) != dims for v in vectors):
        raise ValueError("cost vectors must have equal dimension")
    lows = [min(v[d] for v in vectors) for d in range(dims)]
    highs = [max(v[d] for v in vectors) for d in range(dims)]
    out = []
    for p, v in zip(points, vectors):
        normalized = tuple(
            0.0 if highs[d] == lows[d] else (v[d] - lows[d]) / (highs[d] - lows[d])
            for d in range(dims)
        )
        out.append((p, normalized))
    return out


def select_architecture(
    points: list[EvaluatedPoint],
    weights: tuple[float, ...] = (1.0, 1.0, 1.0),
    order: float = 2.0,
    use_test_cost: bool = True,
    key: Callable[[EvaluatedPoint], Sequence[float]] | None = None,
) -> SelectionResult:
    """Pick the candidate with the smallest weighted p-norm.

    ``order=2`` with equal weights is the paper's choice; other orders
    (1 = Manhattan, inf supported via ``float('inf')``) are available for
    the ablation benches.  ``key`` selects under an arbitrary objective
    vector (see :func:`normalize_points`); extra weights beyond the
    vector's dimension are ignored.
    """
    normalized = normalize_points(points, use_test_cost, key=key)
    dims = len(normalized[0][1])
    if len(weights) < dims:
        raise ValueError(f"need {dims} weights, got {len(weights)}")

    best: SelectionResult | None = None
    for point, vector in normalized:
        weighted = [w * x for w, x in zip(weights, vector)]
        if order == float("inf"):
            norm = max(weighted)
        else:
            norm = sum(x**order for x in weighted) ** (1.0 / order)
        if best is None or norm < best.norm or (
            norm == best.norm and point.area < best.point.area
        ):
            best = SelectionResult(point=point, norm=norm, normalized=vector)
    assert best is not None
    return best
