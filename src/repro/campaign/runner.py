"""Campaign execution: fan out, cache, resume.

A campaign is N studies sharing one :class:`~repro.campaign.cache.
ResultCache`: every (workload, space, width) job of the spec is built
into a single-workload :class:`~repro.study.spec.StudySpec` (exhaustive
strategy, the paper's objective vector) and executed by the study
engine, which owns the evaluation hot path — shared-work caching, the
process-pool fan-out for ``workers > 1``, and streaming results into
the cache so a killed campaign resumes at the first un-cached point.

Serial and parallel runs keep the space's configuration order, so both
paths produce identical point lists and Pareto sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.cache import ResultCache
from repro.campaign.spec import CampaignSpec
from repro.explore.explorer import ExplorationResult
from repro.explore.selection import SelectionResult
from repro.study.engine import (
    ProgressFn,
    RunStats,
    Study,
    evaluate_configs,
)
from repro.study.spec import StudySpec
from repro.telemetry.metrics import format_phases, merge_snapshots
from repro.telemetry.tracer import Tracer

__all__ = [
    "CampaignResult",
    "RunStats",
    "WorkloadRun",
    "evaluate_configs",
    "run_campaign",
]


@dataclass
class WorkloadRun:
    """One job's exploration, optional selection, and run accounting."""

    workload: str
    space: str
    width: int
    result: ExplorationResult
    selection: SelectionResult | None
    stats: RunStats

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.space}/w{self.width}"


@dataclass
class CampaignResult:
    """Everything a campaign produced, in spec job order."""

    spec: CampaignSpec
    runs: list[WorkloadRun] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(r.stats.cache_hits for r in self.runs)

    @property
    def evaluated(self) -> int:
        return sum(r.stats.evaluated for r in self.runs)

    def run(self, label: str) -> WorkloadRun:
        for r in self.runs:
            if r.label == label:
                return r
        raise KeyError(f"no run {label!r} in campaign {self.spec.name!r}")

    def summary(self) -> str:
        lines = [
            f"campaign {self.spec.name!r}: {len(self.runs)} runs, "
            f"{self.evaluated} evaluated, {self.cache_hits} cache hits"
        ]
        for r in self.runs:
            res = r.result
            cached = str(r.stats.cache_hits)
            if r.stats.post_pass_hits:
                cached += f"+{r.stats.post_pass_hits}pp"
            parts = [
                f"  {r.label:<24} {len(res.points):>4} points",
                f"{len(res.feasible_points):>4} feasible",
                f"{len(res.pareto2d):>3} Pareto-2D",
            ]
            if self.spec.attach_test_costs:
                parts.append(f"{len(res.pareto3d):>3} Pareto-3D")
            parts.append(
                f"[{cached} cached, {r.stats.evaluated} "
                f"evaluated, {r.stats.elapsed:.2f}s]"
            )
            if r.selection is not None:
                parts.append(f"-> {r.selection.point.label}")
            elif self.spec.select:
                parts.append("-> (no feasible points)")
            lines.append(" ".join(parts))
        if any(r.stats.phases for r in self.runs):
            merged = merge_snapshots(
                [
                    {"phases": r.stats.phases, "counters": r.stats.counters}
                    for r in self.runs
                ]
            )
            lines.append("phases (all runs):")
            lines.append(format_phases(merged, indent="  "))
        return "\n".join(lines)


def study_spec_for_job(
    spec: CampaignSpec, workload_name: str, space_name: str, width: int
) -> StudySpec:
    """The single-workload study one campaign job denotes.

    The campaign surface is a fixed slice of the study surface: the
    exhaustive strategy, the paper's objective vector — (area, cycles),
    plus the test axis when the spec attaches test costs.
    """
    objectives = ("area", "cycles")
    if spec.attach_test_costs:
        objectives += ("test_cost",)
    return StudySpec(
        name=f"{spec.name}:{workload_name}/{space_name}/w{width}",
        workloads=(workload_name,),
        space=space_name,
        width=width,
        objectives=objectives,
        strategy="exhaustive",
        select=spec.select,
        weights=spec.weights,
        march=spec.march,
    )


def _run_job(
    spec: CampaignSpec,
    workload_name: str,
    space_name: str,
    width: int,
    workers: int,
    cache: ResultCache | None,
    progress: ProgressFn | None,
    tracer: "Tracer | None" = None,
    collect_metrics: bool = False,
    policy=None,
) -> WorkloadRun:
    study = Study(
        study_spec_for_job(spec, workload_name, space_name, width),
        cache=cache,
        workers=workers,
        progress=progress,
        tracer=tracer,
        collect_metrics=collect_metrics,
        policy=policy,
    )
    run = study.run().single
    return WorkloadRun(
        workload=workload_name,
        space=space_name,
        width=width,
        result=run.result,
        selection=run.selection,
        stats=run.stats,
    )


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: ProgressFn | None = None,
    tracer: "Tracer | None" = None,
    collect_metrics: bool = False,
    policy=None,
) -> CampaignResult:
    """Run every (workload, space, width) job of ``spec``.

    ``cache=None`` disables caching entirely (every point re-evaluates);
    pass ``ResultCache()`` for the default on-disk location.  ``workers``
    is per job: 1 keeps everything in-process and deterministic,
    anything larger fans the un-cached points out over a process pool.

    ``tracer``/``collect_metrics`` thread straight through to each
    job's :class:`~repro.study.engine.Study` — one trace covers the
    whole campaign (the tracer's study field is the campaign name), and
    per-job phase tables land in each run's stats.  ``policy`` (a
    :class:`~repro.resilience.policy.FaultPolicy`) likewise applies to
    every job: under ``skip``/``retry`` a configuration whose
    evaluation dies costs the campaign one point, not the whole run.
    """
    # Everything that can be rejected cheaply is rejected before any
    # evaluation starts: the worker count, then every registry name the
    # spec references (the cache directory validated itself when the
    # ResultCache was constructed).
    if workers < 1:
        raise ValueError(
            f"workers must be >= 1 (got {workers}); "
            "use workers=1 for the serial path"
        )
    spec.validate()
    if tracer is not None and tracer.study is None:
        tracer.study = spec.name
    campaign = CampaignResult(spec=spec)
    for workload_name, space_name, width in spec.jobs:
        campaign.runs.append(
            _run_job(
                spec, workload_name, space_name, width,
                workers, cache, progress,
                tracer=tracer, collect_metrics=collect_metrics,
                policy=policy,
            )
        )
    return campaign
