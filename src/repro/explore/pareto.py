"""Pareto filtering in any number of cost dimensions.

The paper bounds the solution space with local optima: "Pareto points
limit the design space such that for all (a, t) in the solution space,
a >= a_p or t >= t_p".  All axes are costs (smaller is better).

:func:`pareto_filter` is the hot-path entry point: the 2-D and 3-D
cases (the paper's Fig. 2 and Fig. 8 planes) run as O(n log n) sorted
sweeps, higher dimensions fall back to the quadratic reference filter.
:func:`pareto_filter_naive` keeps the O(n^2) reference implementation
importable — the property suite cross-checks the sweeps against it.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when cost vector ``a`` dominates ``b`` (<= everywhere, < once)."""
    if len(a) != len(b):
        raise ValueError("cost vectors must have equal dimension")
    no_worse = all(x <= y for x, y in zip(a, b))
    better = any(x < y for x, y in zip(a, b))
    return no_worse and better


def pareto_filter_naive(
    items: Iterable[T],
    key: Callable[[T], Sequence[float]],
) -> list[T]:
    """Reference O(n^2) non-dominated filter (any dimension).

    Deterministic: input order is preserved; among items with *identical*
    cost vectors the first is kept.  Kept as the oracle for the sorted
    sweeps and as the fallback for cost vectors of 4+ dimensions.
    """
    pool = list(items)
    costs = [tuple(key(item)) for item in pool]
    kept: list[T] = []
    seen: set[tuple] = set()
    for i, item in enumerate(pool):
        ci = costs[i]
        if ci in seen:
            continue
        dominated = False
        for j, cj in enumerate(costs):
            if j != i and dominates(cj, ci):
                dominated = True
                break
        if not dominated:
            kept.append(item)
            seen.add(ci)
    return kept


def pareto_filter(
    items: Iterable[T],
    key: Callable[[T], Sequence[float]],
) -> list[T]:
    """Non-dominated subset of ``items`` under the cost vector ``key``.

    Deterministic: input order is preserved; among items with *identical*
    cost vectors the first is kept.  O(n log n) for 1-3 cost dimensions,
    O(n^2) beyond that.
    """
    pool = list(items)
    if not pool:
        return []
    costs = [tuple(key(item)) for item in pool]
    dim = len(costs[0])
    if any(len(c) != dim for c in costs):
        raise ValueError("cost vectors must have equal dimension")
    if dim == 1:
        best = min(costs)
        return [pool[costs.index(best)]]
    if dim == 2:
        kept = _sweep_2d(costs)
    elif dim == 3:
        kept = _sweep_3d(costs)
    else:
        return pareto_filter_naive(pool, key)
    return [pool[i] for i in sorted(kept)]


def _sweep_2d(costs: list[tuple]) -> list[int]:
    """Indices of the 2-D front: sort by (x, y), keep strict y minima.

    After sorting, any earlier point has x' <= x, so the current point
    is dominated (or a duplicate — also dropped) exactly when some
    earlier point also has y' <= y, i.e. when y does not improve on the
    running minimum.  The index tie-break makes the first input
    occurrence of equal cost vectors the one that is kept.
    """
    order = sorted(range(len(costs)), key=lambda i: (costs[i], i))
    kept: list[int] = []
    best_y = None
    for i in order:
        y = costs[i][1]
        if best_y is None or y < best_y:
            kept.append(i)
            best_y = y
    return kept


def _sweep_3d(costs: list[tuple]) -> list[int]:
    """Indices of the 3-D front via a (y, z) staircase sweep.

    Points are processed in (x, y, z) order, so every potential
    dominator of the current point has already been seen: a point is
    dominated (or duplicates an earlier one) exactly when some kept
    point has y' <= y and z' <= z.  Kept points form a staircase —
    y ascending, z strictly descending — so that query is one bisect:
    the kept point with the largest y' <= y carries the minimum z'
    over that prefix.
    """
    order = sorted(range(len(costs)), key=lambda i: (costs[i], i))
    kept: list[int] = []
    stair_y: list[float] = []      # ascending
    stair_z: list[float] = []      # strictly descending, parallel to stair_y
    for i in order:
        _x, y, z = costs[i]
        pos = bisect_right(stair_y, y)
        if pos and stair_z[pos - 1] <= z:
            continue                # dominated or duplicate
        kept.append(i)
        # Insert (y, z) and restore the staircase invariant: drop kept
        # staircase entries the new point makes redundant (y' >= y and
        # z' >= z).  Each entry is removed at most once over the whole
        # sweep, so maintenance is amortised O(n) list traffic.
        cut = pos
        while cut < len(stair_y) and stair_z[cut] >= z:
            cut += 1
        stair_y[pos:cut] = [y]
        stair_z[pos:cut] = [z]
    return kept
