"""Campaign engine: spec round-trip, cache hit/miss/resume, parallelism."""

import json

import pytest

from repro.apps import build_workload, workload_entry, workload_names
from repro.campaign import (
    CampaignSpec,
    ResultCache,
    cache_key,
    run_campaign,
)
from repro.explore import ArchConfig, RFConfig, space_by_name, space_names


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------
def test_workload_registry_builds_ir():
    assert {"crypt", "gcd", "fir", "dotprod", "checksum", "crc16"} <= set(
        workload_names()
    )
    ir = build_workload("gcd")
    assert ir.name == "gcd"
    with pytest.raises(KeyError, match="unknown workload"):
        build_workload("nope")


def test_space_registry():
    assert {"crypt", "small", "dsp"} <= set(space_names())
    assert len(space_by_name("small")) == 12
    assert all(c.num_muls == 1 for c in space_by_name("dsp"))
    with pytest.raises(KeyError, match="unknown space"):
        space_by_name("nope")


# ----------------------------------------------------------------------
# config serialization (satellite)
# ----------------------------------------------------------------------
def test_archconfig_dict_round_trip():
    config = ArchConfig(
        num_buses=3,
        num_alus=2,
        num_shifters=1,
        num_muls=1,
        rfs=(RFConfig(8), RFConfig(12, read_ports=2, write_ports=2)),
    )
    data = json.loads(json.dumps(config.to_dict()))
    assert ArchConfig.from_dict(data) == config


def test_archconfig_from_dict_defaults():
    assert ArchConfig.from_dict({"num_buses": 2}) == ArchConfig(num_buses=2)


# ----------------------------------------------------------------------
# spec
# ----------------------------------------------------------------------
def test_spec_json_round_trip():
    spec = CampaignSpec(
        name="sweep",
        workloads=("crypt", "gcd"),
        spaces=("small", "dsp"),
        widths=(16, 32),
        attach_test_costs=True,
        select=True,
        weights=(2.0, 1.0, 1.0),
    )
    assert CampaignSpec.from_json(spec.to_json()) == spec
    assert len(spec.jobs) == 2 * 2 * 2
    assert spec.jobs[0] == ("crypt", "small", 16)


def test_spec_validation():
    with pytest.raises(ValueError, match="workload"):
        CampaignSpec(name="x", workloads=())
    with pytest.raises(ValueError, match="widths"):
        CampaignSpec(name="x", workloads=("gcd",), widths=(0,))
    bad = CampaignSpec(name="x", workloads=("nope",))
    with pytest.raises(KeyError, match="unknown workload"):
        bad.validate()


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def test_cache_key_stable_and_distinct():
    a = ArchConfig(num_buses=2)
    assert cache_key("gcd", a, 16) == cache_key("gcd", ArchConfig(2), 16)
    assert cache_key("gcd", a, 16) != cache_key("gcd", a, 32)
    assert cache_key("gcd", a, 16) != cache_key("fir", a, 16)
    assert cache_key("gcd", a, 16) != cache_key(
        "gcd", ArchConfig(num_buses=2, rfs=(RFConfig(8, read_ports=2),)), 16
    )


def test_cache_miss_then_hit(tmp_path):
    from repro.explore import EvaluatedPoint

    cache = ResultCache(tmp_path)
    config = ArchConfig(num_buses=2)
    assert cache.get("gcd", config, 16) is None
    cache.put("gcd", EvaluatedPoint(config=config, area=10.5, cycles=42), 16)
    hit = cache.get("gcd", config, 16)
    assert hit is not None
    assert (hit.config, hit.area, hit.cycles) == (config, 10.5, 42)
    assert len(cache) == 1
    assert cache.clear() == 1
    assert cache.get("gcd", config, 16) is None


def test_cache_infeasible_and_corrupt(tmp_path):
    from repro.explore import EvaluatedPoint

    cache = ResultCache(tmp_path)
    config = ArchConfig(num_buses=1)
    cache.put("gcd", EvaluatedPoint(config=config, area=5.0, cycles=None), 16)
    hit = cache.get("gcd", config, 16)
    assert hit is not None and not hit.feasible
    # corrupt entry degrades to a miss
    for path in cache.directory.glob("shards/*/*.json"):
        path.write_text("{ not json")
    assert cache.get("gcd", config, 16) is None


def test_cache_test_cost_tied_to_march(tmp_path):
    from repro.explore import EvaluatedPoint

    cache = ResultCache(tmp_path)
    config = ArchConfig(num_buses=2)
    point = EvaluatedPoint(config=config, area=1.0, cycles=10, test_cost=99)
    cache.put("gcd", point, 16, march="March C-")
    same = cache.get("gcd", config, 16, march="March C-")
    other = cache.get("gcd", config, 16, march="MATS+")
    assert same.test_cost == 99
    assert other is not None and other.test_cost is None
    assert other.cycles == 10


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
def _spec(**kw):
    defaults = dict(name="t", workloads=("gcd",), spaces=("small",))
    defaults.update(kw)
    return CampaignSpec(**defaults)


def test_campaign_matches_one_shot_study():
    from repro.study import StudySpec, run_study

    campaign = run_campaign(_spec(), cache=None)
    run = campaign.runs[0]
    one_shot = run_study(
        StudySpec(name="one", workloads=("gcd",), space="small")
    ).single.result
    assert [p.label for p in run.result.pareto2d] == [
        p.label for p in one_shot.pareto2d
    ]
    assert [(p.area, p.cycles) for p in run.result.points] == [
        (p.area, p.cycles) for p in one_shot.points
    ]


def test_campaign_cache_resume(tmp_path):
    cache = ResultCache(tmp_path)
    first = run_campaign(_spec(), cache=cache)
    assert first.evaluated == 12 and first.cache_hits == 0
    second = run_campaign(_spec(), cache=cache)
    assert second.evaluated == 0 and second.cache_hits == 12
    assert [p.label for p in second.runs[0].result.pareto2d] == [
        p.label for p in first.runs[0].result.pareto2d
    ]


def test_campaign_partial_cache_resumes(tmp_path):
    cache = ResultCache(tmp_path)
    run_campaign(_spec(), cache=cache)
    # drop a third of the entries: an interrupted campaign
    for path in sorted(cache.directory.glob("shards/*/*.json"))[:4]:
        path.unlink()
    resumed = run_campaign(_spec(), cache=cache)
    assert resumed.cache_hits == 8 and resumed.evaluated == 4
    assert len(resumed.runs[0].result.points) == 12


def test_campaign_persists_incrementally(tmp_path):
    """A campaign killed mid-sweep must keep every finished point."""

    class DyingCache(ResultCache):
        def __init__(self, directory, die_after):
            super().__init__(directory)
            self.die_after = die_after

        def put(self, workload, point, width, march=None,
                energy_model=None):
            if self.die_after == 0:
                raise RuntimeError("simulated crash")
            self.die_after -= 1
            super().put(workload, point, width, march,
                        energy_model=energy_model)

    dying = DyingCache(tmp_path, die_after=5)
    with pytest.raises(RuntimeError, match="simulated crash"):
        run_campaign(_spec(), cache=dying)
    assert len(dying) == 5                  # finished points survived
    resumed = run_campaign(_spec(), cache=ResultCache(tmp_path))
    assert resumed.cache_hits == 5 and resumed.evaluated == 7


def test_campaign_parallel_equals_serial(tmp_path):
    serial = run_campaign(_spec(), workers=1, cache=None)
    parallel = run_campaign(_spec(), workers=2, cache=None)
    s, p = serial.runs[0].result, parallel.runs[0].result
    assert [(q.label, q.area, q.cycles) for q in s.points] == [
        (q.label, q.area, q.cycles) for q in p.points
    ]
    assert [q.label for q in s.pareto2d] == [q.label for q in p.pareto2d]


def test_campaign_test_costs_and_selection(tmp_path):
    spec = _spec(attach_test_costs=True, select=True)
    campaign = run_campaign(spec, cache=ResultCache(tmp_path))
    run = campaign.runs[0]
    assert all(p.test_cost is not None for p in run.result.pareto2d)
    assert run.result.pareto3d
    assert run.selection is not None
    assert run.selection.point in run.result.pareto3d
    # cached test costs survive the round trip
    again = run_campaign(spec, cache=ResultCache(tmp_path))
    assert again.evaluated == 0
    assert again.runs[0].selection.point.label == run.selection.point.label


def test_campaign_selection_without_test_costs():
    campaign = run_campaign(_spec(select=True), cache=None)
    assert campaign.runs[0].selection is not None


def test_campaign_infeasible_workload_handled():
    # fir needs a MUL; the small space has none -> nothing feasible
    campaign = run_campaign(
        _spec(workloads=("fir",), select=True), cache=None
    )
    run = campaign.runs[0]
    assert not run.result.feasible_points
    assert run.selection is None
    assert "fir/small/w16" in campaign.summary()


def test_campaign_dsp_space_carries_mul():
    campaign = run_campaign(
        _spec(workloads=("dotprod",), spaces=("dsp",)), cache=None
    )
    assert campaign.runs[0].result.feasible_points


def test_campaign_progress_and_lookup():
    lines = []
    campaign = run_campaign(_spec(), cache=None, progress=lines.append)
    assert any("gcd/small/w16" in line for line in lines)
    assert campaign.run("gcd/small/w16") is campaign.runs[0]
    with pytest.raises(KeyError):
        campaign.run("nope")
    with pytest.raises(ValueError, match="workers"):
        run_campaign(_spec(), workers=0)


# ----------------------------------------------------------------------
# memoized Pareto properties (satellite)
# ----------------------------------------------------------------------
def test_pareto_properties_memoized():
    from repro.testcost import attach_test_costs

    campaign = run_campaign(_spec(), cache=None)
    result = campaign.runs[0].result
    first = result.pareto2d
    assert result.pareto2d is first
    assert result.pareto3d == []           # no test costs yet
    attach_test_costs(result.pareto2d)
    refreshed = result.pareto3d
    assert refreshed                        # cache invalidated by attach
    assert result.pareto3d is refreshed
