"""Move ISA data model tests."""

import pytest

from repro.tta import Guard, Instruction, Literal, Move, PortRef, Program


def test_move_formatting():
    m = Move(
        src=PortRef("rf0", "r0"),
        dst=PortRef("alu0", "b"),
        opcode="add",
        src_reg=3,
        guard=Guard(1, invert=True),
    )
    text = str(m)
    assert "rf0.r0[3]" in text
    assert "alu0.b:add" in text
    assert "(!g1)" in text


def test_literal_move():
    m = Move(src=Literal(42), dst=PortRef("alu0", "a"))
    assert m.is_immediate()
    assert not m.needs_long_immediate()
    assert "#42" in str(m)


def test_long_immediate_threshold():
    assert not Move(Literal(127), PortRef("x", "p")).needs_long_immediate()
    assert Move(Literal(128), PortRef("x", "p")).needs_long_immediate()
    assert not Move(Literal(-128), PortRef("x", "p")).needs_long_immediate()
    assert Move(Literal(-129), PortRef("x", "p")).needs_long_immediate()


def test_instruction_slots_used():
    short = Move(Literal(5), PortRef("alu0", "a"))
    long = Move(Literal(1000), PortRef("alu0", "b"))
    instr = Instruction(slots=[short, long, None])
    assert len(instr.moves) == 2
    assert instr.slots_used() == 3


def test_instruction_bus_of():
    m = Move(Literal(5), PortRef("alu0", "a"))
    instr = Instruction(slots=[None, m])
    assert instr.bus_of(m) == 1
    with pytest.raises(ValueError):
        instr.bus_of(Move(Literal(1), PortRef("x", "y")))


def test_program_labels():
    p = Program()
    p.append(Instruction(slots=[None], label="start"))
    p.append(Instruction(slots=[None]))
    p.append(Instruction(slots=[None], label="loop"))
    assert p.labels == {"start": 0, "loop": 2}
    assert len(p) == 3


def test_program_duplicate_label_rejected():
    p = Program()
    p.append(Instruction(slots=[None], label="x"))
    with pytest.raises(ValueError):
        p.append(Instruction(slots=[None], label="x"))


def test_program_listing_contains_moves():
    p = Program(name="demo")
    p.append(Instruction(slots=[Move(Literal(1), PortRef("rf0", "w0"), dst_reg=0)]))
    listing = p.listing()
    assert "demo" in listing
    assert "#1" in listing
    assert "rf0.w0[0]" in listing
