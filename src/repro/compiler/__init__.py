"""MOVE-like compiler: IR -> scheduled move programs.

The paper's flow uses the MOVE co-design framework to compile C/C++ onto
candidate TTAs.  Our substitute keeps the part that matters for design
space exploration — *transport scheduling under the timing relations
(2)-(8) and the architecture's bus/port resources* — and replaces the C
frontend with a small IR builder DSL (:class:`~repro.compiler.ir.IRBuilder`).

* :mod:`repro.compiler.ir` — three-address IR with basic blocks;
* :mod:`repro.compiler.interp` — reference interpreter + block profiler;
* :mod:`repro.compiler.regalloc` — RF allocation with spilling;
* :mod:`repro.compiler.scheduler` — transport list scheduler + codegen.
"""

from repro.compiler.ir import (
    Block,
    Branch,
    Halt,
    IRBuilder,
    IRFunction,
    IRError,
    Jump,
    Op,
)
from repro.compiler.interp import IRInterpreter, InterpResult
from repro.compiler.optimizer import optimize_ir
from repro.compiler.regalloc import AllocationError, RegisterAllocation, allocate
from repro.compiler.scheduler import CompileResult, ScheduleError, compile_ir

__all__ = [
    "AllocationError",
    "Block",
    "Branch",
    "CompileResult",
    "Halt",
    "IRBuilder",
    "IRError",
    "IRFunction",
    "IRInterpreter",
    "InterpResult",
    "Jump",
    "Op",
    "RegisterAllocation",
    "ScheduleError",
    "allocate",
    "compile_ir",
    "optimize_ir",
]
