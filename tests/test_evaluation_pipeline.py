"""The fast evaluation pipeline: caches must never change results.

Covers the PR-2 invariants: the sort-based Pareto filter matches the
naive quadratic oracle on adversarial point sets, memoized register
allocation produces byte-identical schedules, the feasibility pre-check
agrees exactly with the compiler, and the worker entry points evaluate
through the same context as the serial loop.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_gcd_ir
from repro.apps.registry import build_workload
from repro.compiler.interp import IRInterpreter
from repro.compiler.regalloc import AllocationError
from repro.compiler.scheduler import ScheduleError, compile_ir
from repro.explore import (
    ArchConfig,
    EvaluationContext,
    RFConfig,
    build_architecture,
    build_architecture_cached,
    evaluate_config_worker,
    init_evaluation_worker,
    pareto_filter,
    pareto_filter_naive,
    required_fu_opcodes,
    small_space,
)
from repro.explore.space import dsp_space


def _workload_and_profile(name="gcd"):
    if name == "gcd":
        workload = build_gcd_ir(252, 105)
    else:
        workload = build_workload(name)
    profile = IRInterpreter(workload, width=16).run().block_counts
    return workload, profile


# ----------------------------------------------------------------------
# sort-based pareto filter vs the naive oracle
# ----------------------------------------------------------------------
# Narrow value ranges force heavy ties and exact duplicates — the cases
# where a sweep with sloppy strictness handling diverges from dominance.
@settings(max_examples=200)
@given(
    st.integers(min_value=1, max_value=4),
    st.data(),
)
def test_pareto_sweep_matches_naive(dim, data):
    points = data.draw(
        st.lists(
            st.tuples(*[st.integers(min_value=0, max_value=4)] * dim),
            max_size=40,
        )
    )
    items = list(enumerate(points))     # make duplicates distinguishable
    fast = pareto_filter(items, key=lambda it: it[1])
    naive = pareto_filter_naive(items, key=lambda it: it[1])
    assert fast == naive


def test_pareto_sweep_keeps_first_duplicate_and_order():
    points = [("b", (2, 1)), ("a", (1, 2)), ("c", (1, 2)), ("d", (3, 3))]
    kept = pareto_filter(points, key=lambda p: p[1])
    # input order preserved, first duplicate kept, dominated (3,3) gone
    assert [p[0] for p in kept] == ["b", "a"]


def test_pareto_dimension_mismatch_raises():
    with pytest.raises(ValueError):
        pareto_filter([(1, 2), (1, 2, 3)], key=lambda p: p)


def test_pareto_empty():
    assert pareto_filter([], key=lambda p: p) == []


# ----------------------------------------------------------------------
# memoized register allocation
# ----------------------------------------------------------------------
def test_memoized_regalloc_schedules_byte_identical():
    """Context-cached allocation must reproduce fresh compiles exactly."""
    workload, profile = _workload_and_profile("gcd")
    context = EvaluationContext(workload, profile, width=16)
    for config in small_space():
        point = context.evaluate(config, keep_compile_result=True)
        arch = build_architecture(config, 16)
        fresh = compile_ir(workload, arch, profile=profile)
        assert point.feasible
        assert point.compile_result is not None
        assert (
            point.compile_result.program.listing() == fresh.program.listing()
        )
        assert point.cycles == fresh.static_cycles(profile)
    # the cache really was shared: one allocation per RF arrangement
    distinct_rfs = {config.rfs for config in small_space()}
    assert set(context._allocations) == distinct_rfs


def test_context_matches_one_shot_evaluation():
    """A long-lived context's memoized evaluations equal fresh ones."""
    workload, profile = _workload_and_profile("gcd")
    context = EvaluationContext(workload, profile, width=16)
    for config in small_space():
        a = context.evaluate(config)
        b = EvaluationContext(workload, profile, 16).evaluate(config)
        assert (a.label, a.area, a.cycles) == (b.label, b.area, b.cycles)


# ----------------------------------------------------------------------
# feasibility pre-check is exact
# ----------------------------------------------------------------------
def _compiles(workload, profile, config, width=16):
    arch = build_architecture(config, width)
    try:
        compile_ir(workload, arch, profile=profile)
        return True
    except (AllocationError, ScheduleError):
        return False


def test_precheck_rejects_exactly_what_the_compiler_rejects():
    # fir needs a multiplier: infeasible on every mul-less small-space
    # point, feasible on the dsp grid — the pre-check must agree with a
    # real compile attempt on every single configuration.
    for name, space in (("fir", small_space()), ("fir", dsp_space()),
                        ("gcd", small_space())):
        workload, profile = _workload_and_profile(name)
        context = EvaluationContext(workload, profile, width=16)
        for config in space:
            assert context.evaluate(config).feasible == _compiles(
                workload, profile, config
            ), f"{name} on {config.label()}"


def test_precheck_tiny_register_file():
    workload, profile = _workload_and_profile("gcd")
    context = EvaluationContext(workload, profile, width=16)
    config = ArchConfig(num_buses=2, rfs=(RFConfig(2),))
    point = context.evaluate(config)
    assert not point.feasible
    assert point.area > 0
    assert not _compiles(workload, profile, config)


def test_required_fu_opcodes():
    workload, _ = _workload_and_profile("fir")
    ops = required_fu_opcodes(workload)
    assert "mul" in ops
    # memory traffic and literals never require an FU
    assert not ops & {"li", "mov", "ld", "st"}


# ----------------------------------------------------------------------
# shared architecture builder + worker path
# ----------------------------------------------------------------------
def test_cached_builder_returns_shared_instance():
    config = small_space()[0]
    assert build_architecture_cached(config, 16) is build_architecture_cached(
        config, 16
    )
    # distinct widths are distinct cache entries
    assert build_architecture_cached(config, 16) is not (
        build_architecture_cached(config, 32)
    )


def test_worker_entry_points_share_context_semantics():
    workload, profile = _workload_and_profile("gcd")
    init_evaluation_worker(workload, profile, 16)
    context = EvaluationContext(workload, profile, 16)
    for config in small_space()[:4]:
        a = evaluate_config_worker(config)
        b = context.evaluate(config)
        assert (a.label, a.area, a.cycles) == (b.label, b.area, b.cycles)
