"""Structural Verilog export.

Purely for inspection/interchange: lets a user dump any generated component
and eyeball it or feed it to an external tool.  Only primitive gates appear,
so the output is plain Verilog-1995 structural code.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.netlist.cells import CellType
from repro.netlist.netlist import Netlist

_VERILOG_PRIMITIVE = {
    CellType.BUF: "buf",
    CellType.NOT: "not",
    CellType.AND: "and",
    CellType.OR: "or",
    CellType.NAND: "nand",
    CellType.NOR: "nor",
    CellType.XOR: "xor",
    CellType.XNOR: "xnor",
}


def _escape(name: str) -> str:
    """Verilog-escape identifiers containing brackets."""
    if any(ch in name for ch in "[]. "):
        return f"\\{name} "
    return name


@dataclass(frozen=True)
class WordPort:
    """One logical port of a netlist, grouped from its per-bit nets.

    ``scalar`` ports come from nets named exactly ``name``; vector ports
    come from LSB-first runs of ``name[0] .. name[width-1]``.
    """

    name: str
    width: int
    direction: str  # "input" | "output"
    scalar: bool


_BIT_RE = re.compile(r"^(?P<base>.+)\[(?P<index>\d+)\]$")


def word_ports(netlist: Netlist) -> tuple[WordPort, ...]:
    """Group a netlist's per-bit PI/PO nets into word-level ports.

    Order follows first appearance in the input then output lists, which
    matches the order :class:`~repro.netlist.builder.WordBuilder` created
    them in.  Vector ports are checked for dense LSB-first indices so an
    emitted instantiation can rely on ``name[i]`` existing for every
    ``i < width``.
    """
    ports: list[WordPort] = []
    for direction, nids in (("input", netlist.inputs), ("output", netlist.outputs)):
        groups: dict[str, list[int]] = {}
        order: list[tuple[str, bool]] = []
        for nid in nids:
            name = netlist.net_name(nid)
            match = _BIT_RE.match(name)
            if match is None:
                order.append((name, True))
                continue
            base = match.group("base")
            if base not in groups:
                groups[base] = []
                order.append((base, False))
            groups[base].append(int(match.group("index")))
        for name, scalar in order:
            if scalar:
                ports.append(WordPort(name, 1, direction, True))
                continue
            indices = groups[name]
            if sorted(indices) != list(range(len(indices))):
                raise ValueError(
                    f"port {name!r} has non-dense bit indices {indices}"
                )
            ports.append(WordPort(name, len(indices), direction, False))
    return tuple(ports)


def to_structural_verilog(netlist: Netlist, module_name: str | None = None) -> str:
    """Render the netlist as a structural Verilog module string."""
    module = module_name or netlist.name.replace("-", "_")
    in_names = [_escape(netlist.net_name(n)) for n in netlist.inputs]
    out_names = [_escape(netlist.net_name(n)) for n in netlist.outputs]
    lines = [f"module {module} ("]
    ports = [f"  input  {n}" for n in in_names] + [f"  output {n}" for n in out_names]
    lines.append(",\n".join(ports))
    lines.append(");")

    declared = set(netlist.inputs) | set(netlist.outputs)
    for net in netlist.nets:
        if net.nid not in declared and (net.driver is not None or net.fanout):
            lines.append(f"  wire {_escape(net.name)};")

    for gate in netlist.gates:
        out = _escape(netlist.net_name(gate.output))
        if gate.cell_type is CellType.CONST0:
            lines.append(f"  assign {out} = 1'b0;")
            continue
        if gate.cell_type is CellType.CONST1:
            lines.append(f"  assign {out} = 1'b1;")
            continue
        prim = _VERILOG_PRIMITIVE[gate.cell_type]
        ins = ", ".join(_escape(netlist.net_name(n)) for n in gate.inputs)
        lines.append(f"  {prim} g{gate.gid} ({out}, {ins});")

    lines.append("endmodule")
    return "\n".join(lines) + "\n"
