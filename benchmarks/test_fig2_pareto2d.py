"""Fig. 2 — the 2-D area/execution-time Pareto set for Crypt.

Regenerates the solution space of the MOVE-style exploration and checks
its *shape*: a monotone trade-off frontier with a wide dynamic range in
both axes (the paper's Fig. 2 spans roughly 3x in area and 4x in
cycles).  Absolute units differ (our areas are NAND2-equivalents, the
paper's are library mm^2) — shape, ordering and crossovers are the
reproduction target.
"""

from benchmarks.conftest import save_artifact
from repro.apps.crypt_kernel import build_crypt_ir
from repro.explore import crypt_space, pareto_filter
from repro.compiler import IRInterpreter
from repro.study import evaluate_configs


def _run_exploration():
    workload = build_crypt_ir("password", "ab")
    profile = IRInterpreter(workload, width=16).run().block_counts
    points = evaluate_configs(crypt_space(), workload, profile)
    feasible = [p for p in points if p.feasible]
    pareto = pareto_filter(feasible, key=lambda p: p.cost2d())
    return points, feasible, pareto


def test_fig2_pareto_2d(benchmark):
    points, feasible, pareto = benchmark.pedantic(
        _run_exploration, rounds=1, iterations=1
    )

    assert len(points) == len(crypt_space())
    assert len(feasible) >= 100, "most templates should compile Crypt"
    assert len(pareto) >= 10, "a rich Pareto frontier"

    ordered = sorted(pareto, key=lambda p: p.area)
    # Pareto property: increasing area must strictly buy cycles.
    for a, b in zip(ordered, ordered[1:]):
        assert b.cycles < a.cycles

    # Dynamic range similar to the paper's figure.
    area_span = ordered[-1].area / ordered[0].area
    cycle_span = ordered[0].cycles / ordered[-1].cycles
    assert area_span > 1.8
    assert cycle_span > 3.0

    lines = [
        "Fig. 2 reproduction: Crypt area/execution-time Pareto points",
        f"configs evaluated: {len(points)}, feasible: {len(feasible)}, "
        f"Pareto: {len(pareto)}",
        f"{'architecture':<34}{'area':>9}{'cycles':>10}",
    ]
    for p in ordered:
        lines.append(f"{p.label:<34}{p.area:>9.0f}{p.cycles:>10}")
    lines.append(f"area span: {area_span:.2f}x, cycle span: {cycle_span:.2f}x")
    save_artifact("fig2_pareto2d", "\n".join(lines))
