#!/usr/bin/env python3
"""Quickstart: build a TTA, write move code, simulate, price its test.

Covers the library's three layers in ~60 lines:
  1. assemble a hand-written move program and run it cycle-accurately,
  2. compile an IR workload onto the same machine,
  3. evaluate the paper's analytical test cost for the datapath.

Run:  python examples/quickstart.py
"""

from repro import (
    TTASimulator,
    architecture_test_cost,
    assemble,
    build_architecture,
    ArchConfig,
    RFConfig,
)
from repro.apps import build_gcd_ir
from repro.compiler import IRInterpreter, compile_ir

# 1. A small TTA: 2 buses, ALU + CMP + one 8-word RF (+ LSU, PC, IMM).
arch = build_architecture(ArchConfig(num_buses=2, rfs=(RFConfig(8),)))
print(arch.describe())
print()

# 2. Hand-written move code: sum the numbers 1..10.
source = """
    #0  -> rf0.w0[0]        // acc
    #10 -> rf0.w0[1]        // i
loop:
    rf0.r0[0] -> alu0.a
    rf0.r0[1] -> alu0.b:add
    alu0.y -> rf0.w0[0]     // acc += i
    rf0.r0[1] -> alu0.a
    #1 -> alu0.b:sub
    alu0.y -> rf0.w0[1]     // i -= 1
    rf0.r0[1] -> cmp0.a
    #0 -> cmp0.b:ne
    cmp0.y -> guard.g0
    (g0) @loop -> pc.target:jump
    nop
    halt
"""
program = assemble(source, arch, name="sum10")
sim = TTASimulator(arch, program)
result = sim.run()
print(f"sum 1..10 = {sim.rf_value('rf0', 0)} "
      f"({result.cycles} cycles, {result.moves_executed} moves, "
      f"{result.ipc:.2f} moves/cycle)")

# 3. Compile an IR workload onto the same machine and check it agrees.
gcd = build_gcd_ir(252, 105)
profile = IRInterpreter(gcd, width=16).run().block_counts
compiled = compile_ir(gcd, arch, profile=profile)
sim = TTASimulator(arch, compiled.program)
sim.run()
print(f"gcd(252, 105) = {sim.dmem_read(100)} "
      f"(compiled to {len(compiled.program)} instructions)")

# 4. The paper's test cost (eqs. 11-14) for this architecture.
breakdown = architecture_test_cost(arch)
print(f"\nanalytical test cost f_t = {breakdown.total} cycles")
for unit in breakdown.units:
    if unit.counted:
        print(f"  {unit.unit_name:<6} CD={unit.cd} "
              f"component={unit.component_cost:>5}  socket={unit.socket_cost:>5}")
