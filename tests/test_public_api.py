"""The documented public API must import and be complete."""

import repro


def test_all_symbols_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_version():
    assert repro.__version__


def test_quickstart_surface():
    """The names the README quickstart uses exist."""
    for name in (
        "StudySpec",
        "run_study",
        "register_objective",
        "register_strategy",
        "register_technology",
        "build_crypt_ir",
        "crypt_space",
        "attach_test_costs",
        "attach_energy",
        "energy_report",
        "select_architecture",
        "build_table1",
        "TTASimulator",
        "assemble",
    ):
        assert name in repro.__all__
