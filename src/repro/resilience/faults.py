"""Deterministic fault injection for the evaluation stack.

The recovery paths this package promises — skip/retry policies, pool
resurrection after a killed worker, cache quarantine — are only real if
CI exercises them.  This module plants reproducible faults inside
:meth:`~repro.explore.evaluate.EvaluationContext.evaluate`:

* ``raise``    — raise :class:`InjectedFault`;
* ``sleep``    — stall past a configured per-point timeout;
* ``kill``     — ``SIGKILL`` the evaluating process (a pool worker on
  the parallel path; the whole run on the serial path — the
  checkpoint/resume story's test vehicle).

A fault fires on a *target*: a configuration label (deterministic
across pool scheduling and process boundaries), the N-th evaluation
call of the current process (``#N``, 1-based), or every evaluation
(``*`` — how the service tests stretch each point by a fixed sleep so
kills and cancels land mid-study deterministically).  ``times`` bounds
how often a plan fires (-1 = every time), so a ``retry`` policy can be
shown to recover from a transient fault.

Installation is either programmatic (:func:`install` / :func:`clear`,
for in-process tests) or the ``REPRO_FAULT_INJECT`` environment
variable (``kind@target[:seconds][:times]``), which survives into
forked pool workers and fresh CLI processes — the CI smoke job's
mechanism.  With nothing installed the hook is one module-attribute
read per evaluation.

:func:`truncate_cache_entry` is the fourth injector: it corrupts an
on-disk :class:`~repro.campaign.cache.ResultCache` entry in place, the
input the cache's quarantine path is tested against.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "active",
    "clear",
    "install",
    "on_evaluate",
    "plan_from_env",
    "truncate_cache_entry",
]

ENV_VAR = "REPRO_FAULT_INJECT"

KINDS = ("raise", "sleep", "kill")


class InjectedFault(RuntimeError):
    """The exception the ``raise`` injector throws."""


@dataclass
class FaultPlan:
    """One planted fault: what fires, where, and how often.

    Exactly one of ``label`` (fire on this configuration; ``"*"``
    matches every configuration) and ``nth`` (fire on the N-th
    evaluation call of this process, 1-based) must be set.  ``times``
    caps total firings (-1 = unlimited); the counter is per-process, so
    a forked pool worker starts fresh.
    """

    kind: str
    label: str | None = None
    nth: int | None = None
    seconds: float = 1.0          # sleep duration (``sleep`` kind)
    times: int = -1
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(one of: {', '.join(KINDS)})"
            )
        if (self.label is None) == (self.nth is None):
            raise ValueError("exactly one of label/nth must be set")

    def matches(self, label: str, call: int) -> bool:
        if self.times >= 0 and self.fired >= self.times:
            return False
        if self.label is not None:
            return self.label == "*" or label == self.label
        return call == self.nth

    def fire(self) -> None:
        self.fired += 1
        if self.kind == "raise":
            raise InjectedFault(
                f"injected fault (firing {self.fired}"
                + (f" of {self.times}" if self.times >= 0 else "")
                + ")"
            )
        if self.kind == "sleep":
            time.sleep(self.seconds)
            return
        # kill: die the way a crashed worker dies — no cleanup, no
        # exception, the process is simply gone.
        os.kill(os.getpid(), signal.SIGKILL)


def plan_from_env(value: str) -> FaultPlan:
    """Parse one ``kind@target[...]`` spec.

    ``target`` is a configuration label, ``*`` for every evaluation, or
    ``#N`` for the N-th call.  ``raise``/``kill`` take an optional firing cap
    (``raise@LABEL:1`` — raise once for that config); ``sleep`` takes
    a duration then the cap (``sleep@#3:2.5`` — third call sleeps
    2.5 s, every time).  ``kill@LABEL`` always kills.
    """
    kind, sep, rest = value.partition("@")
    if not sep or not rest:
        raise ValueError(
            f"bad {ENV_VAR} spec {value!r} "
            "(want kind@target[:seconds][:times])"
        )
    parts = rest.split(":")
    target = parts[0]
    seconds, times = 1.0, -1
    if kind == "sleep":
        if len(parts) > 1 and parts[1]:
            seconds = float(parts[1])
        if len(parts) > 2:
            times = int(parts[2])
    elif len(parts) > 1 and parts[1]:
        times = int(parts[1])
    if target.startswith("#"):
        return FaultPlan(
            kind=kind, nth=int(target[1:]), seconds=seconds, times=times
        )
    return FaultPlan(kind=kind, label=target, seconds=seconds, times=times)


def _from_env() -> FaultPlan | None:
    value = os.environ.get(ENV_VAR)
    return plan_from_env(value) if value else None


#: The installed plan (module state so forked workers inherit it).
_ACTIVE: FaultPlan | None = _from_env()
_CALLS: int = 0


def install(plan: FaultPlan) -> FaultPlan:
    """Install a plan programmatically; returns it (fired counts live)."""
    global _ACTIVE, _CALLS
    _ACTIVE = plan
    _CALLS = 0
    return plan


def clear() -> None:
    """Remove any installed plan and reset the call counter."""
    global _ACTIVE, _CALLS
    _ACTIVE = None
    _CALLS = 0


def reload_env() -> FaultPlan | None:
    """Re-read ``REPRO_FAULT_INJECT`` (tests that mutate the env)."""
    global _ACTIVE, _CALLS
    _ACTIVE = _from_env()
    _CALLS = 0
    return _ACTIVE


def active() -> FaultPlan | None:
    return _ACTIVE


def on_evaluate(config) -> None:
    """The evaluation-stack hook: fire the active plan if it matches.

    Called once per :meth:`EvaluationContext.evaluate`; a no-op (one
    attribute read) when nothing is installed.
    """
    if _ACTIVE is None:
        return
    global _CALLS
    _CALLS += 1
    if _ACTIVE.matches(config.label(), _CALLS):
        _ACTIVE.fire()


def truncate_cache_entry(
    cache, workload: str, config, width: int, keep: int = 16
) -> str:
    """Corrupt one on-disk cache entry by truncating it mid-payload.

    Returns the entry's path.  The entry must exist; what a reader does
    with the torn file afterwards is exactly what the quarantine tests
    pin down.
    """
    from repro.campaign.cache import cache_key

    path = cache._path(cache_key(workload, config, width))
    data = path.read_bytes()
    if len(data) <= keep:
        raise ValueError(f"{path} too small to truncate meaningfully")
    path.write_bytes(data[:keep])
    return str(path)
