"""Result export: exploration tables and Table 1 as CSV / JSON.

Thin, dependency-free serialisers so downstream users can pull the
exploration and test-cost results into their own tooling (spreadsheets,
plotting, regression tracking) without touching internal objects.
"""

from __future__ import annotations

import csv
import io
import json

from repro.explore.evaluate import EvaluatedPoint
from repro.explore.space import ArchConfig
from repro.testcost.table import Table1Row


def exploration_rows(points: list[EvaluatedPoint]) -> list[dict]:
    """Plain-dict view of evaluated points (stable key order).

    The ``config`` column holds the full :class:`ArchConfig` as compact
    JSON (CSV-safe), so rows round-trip back into evaluated points via
    :func:`point_from_row` without loss.
    """
    rows = []
    for p in points:
        rows.append(
            {
                "architecture": p.label,
                "buses": p.config.num_buses,
                "alus": p.config.num_alus,
                "shifters": p.config.num_shifters,
                "registers": p.config.total_registers,
                "area": p.area,
                "cycles": p.cycles,
                "test_cost": p.test_cost,
                "energy": p.energy,
                "feasible": p.feasible,
                "config": json.dumps(
                    p.config.to_dict(), sort_keys=True,
                    separators=(",", ":"),
                ),
            }
        )
    return rows


def point_from_row(row: dict) -> EvaluatedPoint:
    """Rebuild one evaluated point from an exploration row.

    Accepts both typed values (JSON) and all-string values (CSV): the
    numeric columns are coerced, and empty strings mean None.
    """
    config = row.get("config")
    if not config:
        raise ValueError("row lacks a 'config' column; cannot round-trip")
    if isinstance(config, str):
        config = json.loads(config)
    cycles = row.get("cycles")
    cycles = None if cycles in (None, "") else int(cycles)
    test_cost = row.get("test_cost")
    test_cost = None if test_cost in (None, "") else int(test_cost)
    energy = row.get("energy")
    energy = None if energy in (None, "") else float(energy)
    return EvaluatedPoint(
        config=ArchConfig.from_dict(config),
        area=float(row["area"]),
        cycles=cycles,
        test_cost=test_cost,
        energy=energy,
    )


def exploration_from_csv(text: str) -> list[EvaluatedPoint]:
    """Inverse of :func:`exploration_to_csv`."""
    return [
        point_from_row(row) for row in csv.DictReader(io.StringIO(text))
    ]


def exploration_from_json(text: str) -> list[EvaluatedPoint]:
    """Inverse of :func:`exploration_to_json`."""
    return [point_from_row(row) for row in json.loads(text)]


def exploration_to_csv(points: list[EvaluatedPoint]) -> str:
    """CSV text for a point list (header + one row per point)."""
    rows = exploration_rows(points)
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0]))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def exploration_to_json(points: list[EvaluatedPoint]) -> str:
    return json.dumps(exploration_rows(points), indent=2)


def study_to_dict(result) -> dict:
    """Plain-dict view of a :class:`repro.study.StudyResult`.

    Bundles the (round-trippable) spec with per-run point tables, the
    objective-vector Pareto front and the selection, so one JSON file
    captures an entire study — inputs and outputs — for archival next to
    the code that produced it.  Point rows are the same shape
    :func:`exploration_rows` emits, so they feed back through
    :func:`point_from_row`.
    """
    runs = []
    for run in result.runs:
        runs.append(
            {
                "label": run.label,
                "objectives": list(run.objectives),
                "evaluations": run.evaluations,
                "iterations": run.iterations,
                "frontier_history": list(run.frontier_history),
                "stats": {
                    "total": run.stats.total,
                    "cache_hits": run.stats.cache_hits,
                    "evaluated": run.stats.evaluated,
                    "workers": run.stats.workers,
                    "elapsed": round(run.stats.elapsed, 4),
                    "post_pass_hits": run.stats.post_pass_hits,
                    "phases": run.stats.phases,
                    "counters": run.stats.counters,
                    "histograms": run.stats.histograms,
                },
                "points": exploration_rows(run.result.points),
                "pareto": [p.label for p in run.pareto],
                "selection": None if run.selection is None else {
                    "architecture": run.selection.point.label,
                    "norm": run.selection.norm,
                    "normalized": list(run.selection.normalized),
                },
            }
        )
    return {"spec": result.spec.to_dict(), "runs": runs}


def study_to_json(result) -> str:
    """JSON text for one study result (spec + runs + fronts + winner)."""
    return json.dumps(study_to_dict(result), indent=2)


def table1_rows(rows: list[Table1Row]) -> list[dict]:
    """Plain-dict view of a Table 1 result."""
    out = []
    for row in rows:
        out.append(
            {
                "component": row.component,
                "spec": row.spec_name,
                "kind": row.kind.value,
                "full_scan_cycles": row.full_scan,
                "our_approach_cycles": row.our_approach,
                "advantage": round(row.advantage, 3),
                "nl": row.nl,
                "ftfu": row.ftfu,
                "ftrf": row.ftrf,
                "fts": row.fts,
                "fault_coverage": round(row.fault_coverage, 2),
                "counted": row.counted,
            }
        )
    return out


def table1_to_csv(rows: list[Table1Row]) -> str:
    data = table1_rows(rows)
    if not data:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(data[0]))
    writer.writeheader()
    writer.writerows(data)
    return buffer.getvalue()


def table1_to_json(rows: list[Table1Row]) -> str:
    return json.dumps(table1_rows(rows), indent=2)
