"""Register files: behavioural multi-port memory and flip-flop netlist.

The paper's cost model assumes register files are implemented as
*multi-ported memories* tested with marching patterns [14, 15]; the
flip-flop implementation only exists as the strawman that full scan would
require ("RF1 and RF2 could not have been tested with full scan, unless
implemented as a set of flip-flops").  Both are provided:

* :class:`MultiPortMemory` — the behavioural model used by the TTA
  simulator and by the march-test engine in :mod:`repro.memtest`.
* :func:`build_ff_register_file` — a gate-level flip-flop implementation
  (combinational core with present-state pseudo-inputs / next-state
  pseudo-outputs) used only for the full-scan comparison in Table 1.
"""

from __future__ import annotations

from repro.netlist.builder import WordBuilder
from repro.netlist.netlist import Netlist
from repro.util.bitops import mask


class MultiPortMemory:
    """Behavioural ``num_words`` x ``width`` memory with port bookkeeping.

    Reads and writes are issued per cycle; the model enforces the port
    limits and applies a fixed write-before-read ordering inside a cycle
    (the TTA's RF semantics: a value written in cycle *k* is readable in
    cycle *k*; simultaneous write+read of the same word returns the new
    value, as in a write-through register file).
    """

    def __init__(
        self,
        num_words: int,
        width: int,
        read_ports: int = 1,
        write_ports: int = 1,
    ):
        if num_words < 1:
            raise ValueError("memory needs at least one word")
        if read_ports < 1 or write_ports < 1:
            raise ValueError("memory needs at least one port per direction")
        self.num_words = num_words
        self.width = width
        self.read_ports = read_ports
        self.write_ports = write_ports
        self._data = [0] * num_words
        self._reads_this_cycle = 0
        self._writes_this_cycle = 0

    def _check_addr(self, addr: int) -> None:
        if not 0 <= addr < self.num_words:
            raise IndexError(f"address {addr} outside [0, {self.num_words})")

    def new_cycle(self) -> None:
        """Reset the per-cycle port usage counters."""
        self._reads_this_cycle = 0
        self._writes_this_cycle = 0

    def read(self, addr: int) -> int:
        """Port-checked read (counts against ``read_ports``)."""
        self._check_addr(addr)
        self._reads_this_cycle += 1
        if self._reads_this_cycle > self.read_ports:
            raise RuntimeError(
                f"read-port overflow: {self._reads_this_cycle} reads in one "
                f"cycle, only {self.read_ports} ports"
            )
        return self._data[addr]

    def write(self, addr: int, value: int) -> None:
        """Port-checked write (counts against ``write_ports``)."""
        self._check_addr(addr)
        self._writes_this_cycle += 1
        if self._writes_this_cycle > self.write_ports:
            raise RuntimeError(
                f"write-port overflow: {self._writes_this_cycle} writes in "
                f"one cycle, only {self.write_ports} ports"
            )
        self._data[addr] = value & mask(self.width)

    def peek(self, addr: int) -> int:
        """Debug read that bypasses port accounting."""
        self._check_addr(addr)
        return self._data[addr]

    def poke(self, addr: int, value: int) -> None:
        """Debug write that bypasses port accounting."""
        self._check_addr(addr)
        self._data[addr] = value & mask(self.width)

    def dump(self) -> list[int]:
        return list(self._data)


def build_ff_register_file(
    num_words: int = 8,
    width: int = 16,
    read_ports: int = 1,
    write_ports: int = 1,
    name: str = "rfff",
) -> Netlist:
    """Flip-flop register-file combinational core (full-scan strawman).

    PIs: per write port ``w{p}addr``, ``w{p}data``, ``w{p}en``; per read
    port ``r{p}addr``; plus pseudo-inputs ``q{r}`` (present state of each
    register).  POs: per read port ``r{p}data``; plus pseudo-outputs
    ``d{r}`` (next state).  The scan chain in the comparison covers the
    ``num_words * width`` state bits.
    """
    if num_words < 2:
        raise ValueError("register count must be >= 2")
    abits = (num_words - 1).bit_length()
    wb = WordBuilder(f"{name}{num_words}x{width}")

    waddr = [wb.input_word(f"w{p}addr", abits) for p in range(write_ports)]
    wdata = [wb.input_word(f"w{p}data", width) for p in range(write_ports)]
    wen = [wb.input_bit(f"w{p}en") for p in range(write_ports)]
    raddr = [wb.input_word(f"r{p}addr", abits) for p in range(read_ports)]
    state = [wb.input_word(f"q{r}", width) for r in range(num_words)]

    # Write path: per register, later write ports take priority.  The
    # decoder naturally covers 2**abits selects; out-of-range addresses
    # simply strobe nothing (selects beyond num_words are dropped).
    next_state = [list(s) for s in state]
    for p in range(write_ports):
        sel = wb.decoder(waddr[p])
        for r in range(num_words):
            strobe = wb.and_(sel[r], wen[p])
            next_state[r] = wb.mux2_word(strobe, next_state[r], wdata[p])

    # Read path: mux tree over the *current* state per port.
    for p in range(read_ports):
        data = wb.mux_tree(list(raddr[p]), state)
        wb.output_word(f"r{p}data", data)

    for r in range(num_words):
        wb.output_word(f"d{r}", next_state[r])
    wb.netlist.check()
    return wb.netlist
