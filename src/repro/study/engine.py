"""The study engine: one entry point for every exploration the repo does.

``Study.run()`` executes a declarative :class:`~repro.study.spec.
StudySpec`: build each workload, profile it once, hand the space to the
spec's search strategy (evaluation goes through a cache-aware,
optionally parallel :class:`CachedEvaluator`), run the post-passes the
objective vector demands (the test-cost and energy axes), Pareto-filter
under the full objective vector and — when asked — pick the winner with
the weighted norm.  The result type, :class:`StudyResult`, is the one
shape every exploration in the repo produces.

Every other surface is a thin layer over this engine:
:func:`run_search` is one uncached strategy run on in-memory IR, and a
campaign is N studies sharing one :class:`~repro.campaign.cache.
ResultCache`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from time import perf_counter
from typing import Callable, Iterable, Iterator

from repro.apps.registry import build_workload
from repro.compiler.interp import IRInterpreter
from repro.compiler.ir import IRFunction
from repro.energy.attach import attach_energy
from repro.energy.model import technology_by_name
from repro.explore.evaluate import (
    EvaluatedPoint,
    EvaluationContext,
    evaluate_config_worker,
    evaluate_config_worker_metered,
    init_evaluation_worker,
)
from repro.explore.explorer import ExplorationResult
from repro.explore.selection import SelectionResult, select_architecture
from repro.explore.space import ArchConfig
from repro.resilience.checkpoint import (
    CancelToken,
    CheckpointManager,
    StudyInterrupted,
)
from repro.resilience.isolation import (
    SweepInterrupted,
    call_guarded,
    iter_pool_isolated,
)
from repro.resilience.policy import FAIL_FAST, FailedPoint, FaultPolicy
from repro.study.objectives import (
    Objective,
    cost_vector,
    pareto_front,
    resolve_objectives,
)
from repro.study.spec import StudySpec
from repro.study.strategies import SearchJob, SearchOutcome, run_strategy
from repro.telemetry.metrics import MetricsCollector, format_phases
from repro.telemetry.tracer import Tracer
from repro.testcost.cost import attach_test_costs

ProgressFn = Callable[[str], None]

_CODEC = None


def _entry_codec():
    """The cache's (encode_entry, decode_entry) pair, imported lazily.

    Checkpoints store completed points in the exact entry shape the
    result cache writes, so the two formats cannot drift — but
    ``repro.campaign`` imports this module, so the codec import must
    not run at import time.
    """
    global _CODEC
    if _CODEC is None:
        from repro.campaign.cache import decode_entry, encode_entry

        _CODEC = (encode_entry, decode_entry)
    return _CODEC


@lru_cache(maxsize=256)
def _entry_profile(entry, width: int) -> tuple[tuple[str, int], ...]:
    """Block-count profile of one registry entry, computed once.

    Registered workloads pin their reference inputs, so the
    :class:`IRInterpreter` run is a pure function of (entry, width) — a
    campaign of N (workload, space, width) jobs profiles each workload
    once per width instead of once per job.  Keyed on the frozen
    :class:`~repro.apps.registry.WorkloadEntry` itself, not the name:
    re-registering a name installs a new entry (new builder identity)
    and therefore a fresh cache line, never a stale profile.
    """
    counts = IRInterpreter(entry.build(), width=width).run().block_counts
    return tuple(sorted(counts.items()))


def workload_profile(workload_name: str, width: int = 16) -> dict[str, int]:
    """Cached per-(workload, width) profile as a fresh dict."""
    from repro.apps.registry import workload_entry

    return dict(_entry_profile(workload_entry(workload_name), width))


@dataclass(frozen=True)
class RunStats:
    """How one (workload, space, width) job was executed.

    ``post_pass_hits`` counts points whose post-pass axis (test cost or
    energy) was already present — restored from the result cache — so
    cached work on post-pass studies is reported, not just the base
    evaluations.  ``phases``, ``counters`` and ``histograms`` are the
    run's merged telemetry snapshot (``{phase: {"calls", "seconds"}}``
    / ``{counter: int}`` / ``{name: <histogram snapshot>}``, e.g. the
    per-point ``eval_seconds`` latency distribution), empty unless the
    study ran with metrics collection on.
    """

    total: int                 # points in the space
    cache_hits: int            # served from the result cache
    evaluated: int             # actually compiled this run
    workers: int               # pool size used (1 = serial path)
    elapsed: float             # wall-clock seconds for the whole job
    post_pass_hits: int = 0    # post-pass axes restored from the cache
    phases: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)


# ----------------------------------------------------------------------
# evaluation fan-out (shared by the serial loop and the process pool)
# ----------------------------------------------------------------------
def iter_evaluations(
    configs: list[ArchConfig],
    workload: IRFunction,
    profile: dict[str, int],
    width: int,
    workers: int,
    context: EvaluationContext | None = None,
    metrics: MetricsCollector | None = None,
    policy: FaultPolicy | None = None,
    token: CancelToken | None = None,
    on_retry: Callable | None = None,
) -> Iterator[EvaluatedPoint | FailedPoint]:
    """Yield evaluation outcomes in configuration order, streaming.

    Streaming matters for resumability: the caller persists each point
    as it arrives, so a killed run keeps everything that finished
    rather than losing the whole sweep.  The pool path submits through
    the fault-isolated supervisor (:func:`~repro.resilience.isolation.
    iter_pool_isolated`), whose ordered reassembly buffer yields in
    submission order no matter how completions interleave.

    Under a ``skip``/``retry`` :class:`FaultPolicy` a configuration
    whose evaluation dies yields a :class:`FailedPoint` in its slot
    instead of aborting the sweep; ``fail_fast`` (the default)
    propagates the exception exactly as before.  ``token`` cancellation
    raises :class:`StudyInterrupted` (serial) or
    :class:`~repro.resilience.isolation.SweepInterrupted` carrying the
    drained results (pool).

    Pass ``context`` to reuse a caller-held sweep context on the serial
    path — batch-per-wave strategies would otherwise rebuild the
    shared-work caches on every batch.

    With ``metrics``, the serial path evaluates through a context that
    carries the collector, and the pooled path switches to the metered
    worker — each configuration's phase/counter delta travels back with
    its point and is merged here, in submission order, so the merged
    counters do not depend on pool scheduling.
    """
    if workers <= 1 or len(configs) <= 1:
        if context is None:
            context = EvaluationContext(
                workload, profile, width, metrics=metrics
            )
        for config in configs:
            if token is not None:
                token.raise_if_cancelled()
            yield call_guarded(
                context.evaluate, config, policy, on_retry=on_retry
            )
        return
    worker_fn = (
        evaluate_config_worker if metrics is None
        else evaluate_config_worker_metered
    )
    for outcome in iter_pool_isolated(
        configs,
        worker_fn,
        init_evaluation_worker,
        (workload, profile, width),
        min(workers, len(configs)),
        policy=policy,
        token=token,
        on_retry=on_retry,
    ):
        if isinstance(outcome, tuple):      # metered: (point, snapshot)
            point, snapshot = outcome
            if metrics is not None:
                metrics.merge(snapshot)
            yield point
        else:
            yield outcome


def evaluate_configs(
    configs: list[ArchConfig],
    workload: IRFunction,
    profile: dict[str, int],
    width: int = 16,
    workers: int = 1,
) -> list[EvaluatedPoint]:
    """Evaluate a configuration list, fanning out when ``workers > 1``.

    Order-preserving in both modes, so serial and parallel sweeps
    produce identical point lists.
    """
    return list(iter_evaluations(configs, workload, profile, width, workers))


class CachedEvaluator:
    """The strategies' evaluation front-end: context + cache + pool.

    Owns one :class:`~repro.explore.evaluate.EvaluationContext` for the
    (workload, profile, width) at hand, consults the on-disk result
    cache before compiling anything, streams fresh points back into the
    cache as they arrive (the resume story), and fans batch requests out
    over a process pool when ``workers > 1``.  Counts hits and fresh
    evaluations for the run statistics.

    With telemetry attached (both default off): ``metrics`` collects
    phase timers (through the context and the pool's metered workers)
    plus the ``proposed``/``cache_hits``/``evaluated`` counters —
    ``proposed == cache_hits + evaluated`` always, every requested
    configuration is exactly one of the two — and ``tracer`` records
    one ``wave`` event per batch and one ``point`` event per
    configuration (the evaluation stream).
    """

    def __init__(
        self,
        workload_name: str,
        workload: IRFunction,
        profile: dict[str, int],
        width: int,
        cache=None,
        march: str | None = None,
        energy_model: str | None = None,
        workers: int = 1,
        progress: ProgressFn | None = None,
        label: str | None = None,
        metrics: MetricsCollector | None = None,
        tracer: Tracer | None = None,
        policy: FaultPolicy | None = None,
        token: CancelToken | None = None,
        manager: CheckpointManager | None = None,
        overlay: dict[str, dict] | None = None,
    ) -> None:
        self.workload_name = workload_name
        self.workload = workload
        self.profile = profile
        self.width = width
        self.cache = cache
        self.march = march
        self.energy_model = energy_model
        self.workers = workers
        self.progress = progress
        self.label = label or workload_name
        self.metrics = metrics
        self.tracer = tracer
        #: Fault handling: the policy governs unexpected evaluation
        #: exceptions (skip/retry record a FailedPoint instead of
        #: aborting); the token cancels cooperatively; the manager
        #: receives every completed point and failure (the checkpoint);
        #: the overlay is a resumed checkpoint's completed points,
        #: consulted before the result cache (counted as cache hits).
        self.policy = policy or FAIL_FAST
        self.token = token
        self.manager = manager
        self.overlay = overlay or {}
        self.failures: list[FailedPoint] = []
        self.cache_hits = 0
        self.evaluated = 0
        self.wave = 0
        self._context: EvaluationContext | None = None

    @property
    def context(self) -> EvaluationContext:
        if self._context is None:
            self._context = EvaluationContext(
                self.workload, self.profile, self.width,
                metrics=self.metrics,
            )
        return self._context

    def _trace_point(
        self, point: EvaluatedPoint, source: str, wave: int | None = None
    ) -> None:
        self.tracer.event(
            "point",
            run=self.label,
            wave=wave,
            config=point.label,
            source=source,
            area=point.area,
            cycles=point.cycles,
            feasible=point.feasible,
        )

    def _lookup(self, config: ArchConfig) -> EvaluatedPoint | None:
        if self.overlay:
            entry = self.overlay.get(config.label())
            if entry is not None:
                _, decode = _entry_codec()
                try:
                    point = decode(entry, self.march, self.energy_model)
                except (ValueError, KeyError, TypeError, AttributeError):
                    point = None
                if point is not None:
                    return point
        if self.cache is None:
            return None
        return self.cache.get(
            self.workload_name, config, self.width, self.march,
            energy_model=self.energy_model,
        )

    def _remember(self, point: EvaluatedPoint) -> None:
        """Record one completed point into the study checkpoint."""
        if self.manager is not None and not point.failed:
            encode, _ = _entry_codec()
            self.manager.record_point(
                self.label,
                point.label,
                encode(
                    self.workload_name, point, self.width, self.march,
                    self.energy_model,
                ),
            )

    def _store(self, point: EvaluatedPoint) -> None:
        if self.cache is not None and not point.failed:
            self.cache.put(
                self.workload_name, point, self.width, self.march,
                energy_model=self.energy_model,
            )
        self._remember(point)

    def _on_retry(self, config, attempt: int, exc: BaseException) -> None:
        """Between-attempt hook: count and trace the retry."""
        if self.metrics is not None:
            self.metrics.count("points_retried")
        if self.tracer is not None:
            self.tracer.event(
                "retry",
                run=self.label,
                config=config.label(),
                attempt=attempt,
                error=type(exc).__name__,
            )

    def _accept(
        self, outcome: EvaluatedPoint | FailedPoint, wave: int | None = None
    ) -> EvaluatedPoint:
        """Fold one fresh outcome into the run's accounting.

        A :class:`FailedPoint` is recorded (result failures, metrics,
        trace, checkpoint) and replaced by an infeasible placeholder so
        the strategy's point list keeps its shape — the front simply
        loses that one point.
        """
        if isinstance(outcome, FailedPoint):
            self.failures.append(outcome)
            if self.metrics is not None:
                self.metrics.count("points_failed")
            if self.tracer is not None:
                self.tracer.event(
                    "failure",
                    run=self.label,
                    wave=wave,
                    config=outcome.label,
                    error=outcome.error_type,
                    message=outcome.message,
                    digest=outcome.digest,
                    attempts=outcome.attempts,
                )
            if self.manager is not None:
                self.manager.record_failure(self.label, outcome)
            point = EvaluatedPoint(
                config=ArchConfig.from_dict(outcome.config),
                area=0.0,
                cycles=None,
                failed=True,
            )
        else:
            point = outcome
            if self.tracer is not None:
                self._trace_point(point, "fresh", wave)
            self._store(point)
        self.evaluated += 1
        if self.token is not None:
            self.token.tick()
        return point

    def evaluate(self, config: ArchConfig) -> EvaluatedPoint:
        """Cost one configuration, cache-first."""
        if self.token is not None:
            self.token.raise_if_cancelled()
        if self.metrics is not None:
            self.metrics.count("proposed")
        cached = self._lookup(config)
        if cached is not None:
            self.cache_hits += 1
            if self.metrics is not None:
                self.metrics.count("cache_hits")
            if self.tracer is not None:
                self._trace_point(cached, "cache")
            self._remember(cached)
            return cached
        if self.metrics is not None:
            self.metrics.count("evaluated")
        outcome = call_guarded(
            self.context.evaluate, config, self.policy,
            on_retry=self._on_retry,
        )
        return self._accept(outcome)

    def evaluate_many(
        self, configs: list[ArchConfig]
    ) -> list[EvaluatedPoint]:
        """Cost an ordered batch, cache-first, fanning out the misses."""
        if self.token is not None:
            self.token.raise_if_cancelled()
        wave = self.wave
        self.wave += 1
        points: list[EvaluatedPoint | None] = [None] * len(configs)
        missing: list[int] = []
        for i, config in enumerate(configs):
            cached = self._lookup(config)
            if cached is not None:
                points[i] = cached
            else:
                missing.append(i)
        self.cache_hits += len(configs) - len(missing)
        if self.metrics is not None:
            self.metrics.count("proposed", len(configs))
            self.metrics.count("cache_hits", len(configs) - len(missing))
            self.metrics.count("evaluated", len(missing))
        # A pool can't win on a batch that gives each worker at most
        # one configuration (the iterative strategy's 2-3-config
        # waves): spinning it up re-initialises every worker's
        # evaluation context just to tear it down again.  Such batches
        # run on the evaluator's own long-lived context.
        serial = self.workers <= 1 or len(missing) <= self.workers
        workers = 1 if serial else self.workers
        if self.progress is not None:
            self.progress(
                f"{self.label}: {len(configs) - len(missing)} cached, "
                f"evaluating {len(missing)} of {len(configs)} points "
                f"({workers} worker{'s' if workers != 1 else ''})"
            )
        if self.tracer is not None:
            self.tracer.event(
                "wave",
                run=self.label,
                wave=wave,
                requested=len(configs),
                cached=len(configs) - len(missing),
                fresh=len(missing),
                workers=workers,
            )
            for point in points:
                if point is not None:
                    self._trace_point(point, "cache", wave)
        for point in points:
            if point is not None:
                self._remember(point)
        if missing:
            fresh = iter_evaluations(
                [configs[i] for i in missing],
                self.workload,
                self.profile,
                self.width,
                workers,
                context=self.context if serial else None,
                metrics=None if serial else self.metrics,
                policy=self.policy,
                token=self.token,
                on_retry=self._on_retry,
            )
            done = 0
            try:
                for outcome in fresh:
                    points[missing[done]] = self._accept(outcome, wave)
                    done += 1
            except SweepInterrupted as exc:
                # The pool drained: record what finished but was not
                # yet yielded, then surface the interruption — the
                # study turns it into a partial result.
                for sub_index, outcome in sorted(exc.completed.items()):
                    if isinstance(outcome, tuple):   # metered worker
                        outcome, snapshot = outcome
                        if self.metrics is not None:
                            self.metrics.merge(snapshot)
                    points[missing[sub_index]] = self._accept(outcome, wave)
                raise StudyInterrupted() from None
        return points


# ----------------------------------------------------------------------
# one-shot search (the layer the legacy shims delegate to)
# ----------------------------------------------------------------------
def run_search(
    workload: IRFunction,
    space: Iterable[ArchConfig],
    width: int = 16,
    strategy: str = "exhaustive",
    strategy_params: dict | None = None,
    profile: dict[str, int] | None = None,
    initial_regs: dict[str, int] | None = None,
) -> SearchOutcome:
    """Run one search strategy on an in-memory workload, uncached.

    The minimal engine entry point: profiles the workload (unless a
    profile is supplied), wires a serial :class:`CachedEvaluator`
    without a result cache, and runs the named strategy.  For registered
    workloads prefer a full :class:`Study` (caching, post-passes,
    selection).
    """
    if profile is None:
        interp = IRInterpreter(workload, width=width)
        profile = interp.run(initial_regs).block_counts
    configs = list(space)
    evaluator = CachedEvaluator(
        workload.name, workload, profile, width
    )
    job = SearchJob(
        workload=workload,
        profile=profile,
        space=configs,
        width=width,
        evaluate=evaluator.evaluate,
        evaluate_many=evaluator.evaluate_many,
    )
    return run_strategy(strategy, job, strategy_params)


def run_exploration(
    workload: IRFunction,
    space: Iterable[ArchConfig],
    width: int = 16,
    strategy: str = "exhaustive",
    strategy_params: dict | None = None,
    profile: dict[str, int] | None = None,
) -> ExplorationResult:
    """One :func:`run_search` packaged as an :class:`ExplorationResult`.

    The convenience view for in-memory workloads when the caller wants
    the point-set container (Pareto views, ``summary()``) rather than
    the raw :class:`~repro.study.strategies.SearchOutcome` accounting.
    """
    if profile is None:
        profile = IRInterpreter(workload, width=width).run().block_counts
    outcome = run_search(
        workload, space, width=width, strategy=strategy,
        strategy_params=strategy_params, profile=profile,
    )
    return ExplorationResult(
        workload=workload.name, profile=profile, points=outcome.points
    )


# ----------------------------------------------------------------------
# studies
# ----------------------------------------------------------------------
@dataclass
class StudyRun:
    """One workload's exploration within a study."""

    workload: str
    space: str
    width: int
    objectives: tuple[str, ...]
    result: ExplorationResult
    selection: SelectionResult | None
    stats: RunStats
    evaluations: int
    iterations: int = 1
    frontier_history: list[int] = field(default_factory=list)
    #: Configurations whose evaluation died after all policy attempts
    #: (skip/retry modes); empty under fail_fast or on a clean run.
    failures: list[FailedPoint] = field(default_factory=list)
    #: True when this run was cut short (cancel token / ^C) and holds
    #: only the points that finished before the interruption.
    interrupted: bool = False
    #: RTL calibration reports for the base front, one per point
    #: (:class:`repro.rtl.calibrate.CalibrationReport`); filled only
    #: when the study ran with ``calibrate_front=True``.
    calibrations: list = field(default_factory=list)

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.space}/w{self.width}"

    @property
    def pareto(self) -> list[EvaluatedPoint]:
        """The non-dominated points under the study's objective vector.

        Points on which some objective is not measurable (the test-cost
        axis outside the base front) are not candidates — for the
        paper's (area, cycles, test_cost) vector this is exactly the
        Fig. 8 front.
        """
        return pareto_front(self.result.points, self.objectives)


@dataclass
class StudyResult:
    """Everything a study produced, one run per workload."""

    spec: StudySpec
    runs: list[StudyRun] = field(default_factory=list)
    #: True when the study was interrupted (cancel token / ^C): the
    #: result is partial but valid — every completed run plus the
    #: interrupted run's finished points.
    interrupted: bool = False

    @property
    def cache_hits(self) -> int:
        return sum(r.stats.cache_hits for r in self.runs)

    @property
    def evaluated(self) -> int:
        return sum(r.stats.evaluated for r in self.runs)

    @property
    def failures(self) -> list[FailedPoint]:
        """Every failed point across the study's runs."""
        return [f for r in self.runs for f in r.failures]

    def run(self, label: str) -> StudyRun:
        """Look one run up by ``workload/space/wWIDTH`` label."""
        for r in self.runs:
            if r.label == label:
                return r
        raise KeyError(f"no run {label!r} in study {self.spec.name!r}")

    # -- single-run conveniences (the common case) ---------------------
    @property
    def single(self) -> StudyRun:
        """The only run of a single-workload study."""
        if len(self.runs) != 1:
            raise ValueError(
                f"study {self.spec.name!r} has {len(self.runs)} runs; "
                "address them via .runs / .run(label)"
            )
        return self.runs[0]

    @property
    def points(self) -> list[EvaluatedPoint]:
        return self.single.result.points

    @property
    def pareto(self) -> list[EvaluatedPoint]:
        return self.single.pareto

    @property
    def selection(self) -> SelectionResult | None:
        return self.single.selection

    def summary(self) -> str:
        spec = self.spec
        lines = [
            f"study {spec.name!r}: strategy={spec.strategy}, "
            f"objectives={'+'.join(spec.objectives)}, "
            f"{len(self.runs)} run{'s' if len(self.runs) != 1 else ''}, "
            f"{self.evaluated} evaluated, {self.cache_hits} cache hits"
            + (f", {len(self.failures)} failed" if self.failures else "")
            + (" [INTERRUPTED]" if self.interrupted else "")
        ]
        for r in self.runs:
            res = r.result
            cached = str(r.stats.cache_hits)
            if r.stats.post_pass_hits:
                cached += f"+{r.stats.post_pass_hits}pp"
            parts = [
                f"  {r.label:<24} {len(res.points):>4} points",
                f"{len(res.feasible_points):>4} feasible",
                f"{len(r.pareto):>3} Pareto",
                f"[{cached} cached, {r.stats.evaluated} "
                f"evaluated, {r.stats.elapsed:.2f}s]",
            ]
            if r.failures:
                parts.append(f"{len(r.failures)} failed")
            if r.interrupted:
                parts.append("(interrupted)")
            if r.selection is not None:
                parts.append(f"-> {r.selection.point.label}")
            elif spec.select:
                parts.append("-> (no candidate points)")
            lines.append(" ".join(parts))
            if r.stats.phases:
                lines.append(
                    format_phases(
                        {"phases": r.stats.phases}, indent="    "
                    )
                )
        return "\n".join(lines)


class Study:
    """Executor for one :class:`StudySpec`.

    ``cache`` is any object with the :class:`~repro.campaign.cache.
    ResultCache` get/put surface (or None for no caching); ``workers``
    overrides the spec's parallelism hint; ``progress`` receives
    human-readable per-run status lines.

    Telemetry is strictly opt-in: ``tracer`` (a :class:`~repro.
    telemetry.tracer.Tracer`) records the study/run/search spans and
    the wave/point/strategy/cache event stream, and
    ``collect_metrics=True`` fills each run's :class:`RunStats` with
    phase timers and counters.  A tracer implies metrics collection
    (the per-run ``metrics`` event needs the numbers).  Both off — the
    default — leaves every hot path on its unmetered branch.
    """

    def __init__(
        self,
        spec: StudySpec,
        cache=None,
        workers: int | None = None,
        progress: ProgressFn | None = None,
        tracer: Tracer | None = None,
        collect_metrics: bool = False,
        policy: FaultPolicy | None = None,
        checkpoint: str | Path | None = None,
        checkpoint_every: int = 16,
        cancel: CancelToken | None = None,
        manager: CheckpointManager | None = None,
        calibrate_front: bool = False,
    ) -> None:
        spec.validate()
        self.spec = spec
        self.cache = cache
        self.workers = spec.workers if workers is None else workers
        if self.workers < 1:
            raise ValueError(
                f"workers must be >= 1 (got {self.workers}); "
                "use workers=1 for the serial path"
            )
        self.progress = progress
        self.tracer = tracer
        self.collect_metrics = collect_metrics or tracer is not None
        #: Opt-in RTL calibration post-pass: audit each run's base
        #: front against the emitted core (:mod:`repro.rtl.calibrate`).
        #: A kwarg rather than a spec field — calibration reads results,
        #: it does not change them, so it must not alter the spec hash.
        self.calibrate_front = calibrate_front
        #: Fault policy for unexpected evaluation exceptions; the
        #: default (fail_fast) is exactly the pre-resilience behaviour.
        self.policy = policy or FAIL_FAST
        self.cancel = cancel
        # The manager always exists: with no checkpoint path it stays
        # in memory, which is what lets an interrupted run assemble a
        # partial-but-valid result from the points that finished.
        # Passing one in (``manager=``) is how resume and the service
        # layer observe or pre-load recorded points.
        if manager is not None:
            self.manager = manager
        else:
            self.manager = CheckpointManager(
                spec.to_dict(), path=checkpoint, every=checkpoint_every
            )
        self._current: dict | None = None

    @classmethod
    def resume(
        cls,
        checkpoint: str | Path,
        cache=None,
        workers: int | None = None,
        progress: ProgressFn | None = None,
        tracer: Tracer | None = None,
        collect_metrics: bool = False,
        policy: FaultPolicy | None = None,
        checkpoint_every: int = 16,
        cancel: CancelToken | None = None,
        calibrate_front: bool = False,
    ) -> Study:
        """A study continuing a killed/interrupted run from its file.

        The checkpoint's spec is rebuilt and hash-verified; every point
        it recorded becomes an evaluator overlay (a free cache layer),
        and strategies that saved mid-search state (iterative,
        simulated annealing) restore it — including the RNG state — so
        the resumed walk is the uninterrupted walk, not a restart.
        """
        manager = CheckpointManager.load(checkpoint, every=checkpoint_every)
        spec = StudySpec.from_dict(manager.spec_dict)
        return cls(
            spec,
            cache=cache,
            workers=workers,
            progress=progress,
            tracer=tracer,
            collect_metrics=collect_metrics,
            policy=policy,
            cancel=cancel,
            manager=manager,
            calibrate_front=calibrate_front,
        )

    def run(self) -> StudyResult:
        """Execute the spec; on interruption return a partial result.

        ``KeyboardInterrupt`` or a tripped :class:`CancelToken` does
        not discard finished work: in-flight pool futures are drained,
        completed points are checkpointed, the in-progress run joins
        the result with its finished points, and the whole result is
        flagged ``interrupted=True``.  The checkpoint file (when one
        was requested) and the telemetry sinks are flushed either way.
        """
        if self.tracer is not None and self.tracer.study is None:
            self.tracer.study = self.spec.name
        result = StudyResult(spec=self.spec)
        spec = self.spec
        try:
            if self.tracer is None:
                for workload_name in spec.workloads:
                    result.runs.append(self._run_one(workload_name))
            else:
                with self.tracer.span(
                    "study", strategy=spec.strategy,
                    objectives=list(spec.objectives),
                    workloads=list(spec.workloads),
                ):
                    for workload_name in spec.workloads:
                        label = (
                            f"{workload_name}/{spec.space_label}"
                            f"/w{spec.width}"
                        )
                        with self.tracer.span("run", run=label):
                            result.runs.append(self._run_one(workload_name))
        except (KeyboardInterrupt, StudyInterrupted):
            result.interrupted = True
            self.manager.interrupted = True
            partial = self._partial_run()
            if partial is not None:
                result.runs.append(partial)
        else:
            # A clean completion clears the flag a resumed checkpoint
            # inherited from the interrupted run that wrote it.
            self.manager.interrupted = False
        finally:
            # Flush durable state even on the interrupt path: the
            # checkpoint must reflect every recorded point, and the
            # trace must stay valid JSONL (each tracer record is
            # flushed on write; spans close on exception).
            self.manager.write(force=True)
            self._current = None
        return result

    def _run_one(self, workload_name: str) -> StudyRun:
        spec = self.spec
        started = perf_counter()
        workload = build_workload(workload_name)
        configs = spec.resolve_space()
        profile = workload_profile(workload_name, spec.width)
        objectives = resolve_objectives(spec.objectives)
        needs_test_costs = any(o.requires_test_costs for o in objectives)
        needs_energy = any(o.requires_energy for o in objectives)
        # Only key cached test costs / energies on the parameters the
        # study will actually use — otherwise output would depend on
        # what earlier runs attached.
        march = spec.march if needs_test_costs else None
        tech = technology_by_name(spec.tech)
        energy_model = tech.fingerprint() if needs_energy else None
        label = f"{workload_name}/{spec.space_label}/w{spec.width}"
        metrics = MetricsCollector() if self.collect_metrics else None
        cache_stats = getattr(self.cache, "stats", None)
        cache_before = (
            cache_stats.as_dict() if cache_stats is not None else None
        )

        evaluator = CachedEvaluator(
            workload_name,
            workload,
            profile,
            spec.width,
            cache=self.cache,
            march=march,
            energy_model=energy_model,
            workers=self.workers,
            progress=self.progress,
            label=label,
            metrics=metrics,
            tracer=self.tracer,
            policy=self.policy,
            token=self.cancel,
            manager=self.manager,
            overlay=dict(self.manager.points(label)),
        )
        # Everything _partial_run needs to assemble an interrupted
        # run's result — the strategy's outcome is lost when the
        # interruption propagates, but the checkpointed points are not.
        self._current = {
            "label": label,
            "workload": workload_name,
            "started": started,
            "total": len(configs),
            "evaluator": evaluator,
            "metrics": metrics,
        }
        job = SearchJob(
            workload=workload,
            profile=profile,
            space=configs,
            width=spec.width,
            evaluate=evaluator.evaluate,
            evaluate_many=evaluator.evaluate_many,
            save_state=(
                lambda state: self.manager.set_strategy_state(label, state)
            ),
            resume_state=self.manager.strategy_state(label),
        )
        if self.tracer is None:
            outcome = run_strategy(spec.strategy, job, spec.params)
        else:
            with self.tracer.span(
                "search", run=label, strategy=spec.strategy
            ):
                outcome = run_strategy(spec.strategy, job, spec.params)
        result = ExplorationResult(
            workload=workload.name, profile=profile, points=outcome.points
        )
        if metrics is not None and outcome.moves_proposed:
            metrics.count("moves_proposed", outcome.moves_proposed)
            metrics.count("moves_accepted", outcome.moves_accepted)
            metrics.count("moves_rejected", outcome.moves_rejected)
        if self.tracer is not None and outcome.moves_proposed:
            self.tracer.event(
                "strategy",
                run=label,
                strategy=spec.strategy,
                moves_proposed=outcome.moves_proposed,
                moves_accepted=outcome.moves_accepted,
                moves_rejected=outcome.moves_rejected,
                iterations=outcome.iterations,
            )

        post_pass_hits = 0
        if needs_test_costs:
            post_pass_hits += self._attach_test_costs(
                workload_name, result, objectives, evaluator, metrics
            )
        if needs_energy:
            post_pass_hits += self._attach_energy(
                result, objectives, evaluator, tech, metrics
            )
        if metrics is not None and post_pass_hits:
            metrics.count("post_pass_hits", post_pass_hits)

        calibrations: list = []
        if self.calibrate_front:
            calibrations = self._calibrate_front(
                workload, result, objectives, evaluator, tech, label
            )

        selection: SelectionResult | None = None
        if spec.select:
            candidates = pareto_front(result.points, objectives)
            if candidates:
                weights = spec.weights or (1.0,) * len(objectives)
                selection = select_architecture(
                    candidates,
                    weights=weights,
                    key=lambda p: cost_vector(p, objectives),
                )

        if cache_stats is not None and cache_before is not None:
            cache_delta = cache_stats.delta(cache_before)
            if metrics is not None:
                # "result_cache_" so the delta's "hits" cannot collide
                # with the evaluator's own "cache_hits" counter.
                for key, value in cache_delta.items():
                    if value:
                        metrics.count(f"result_cache_{key}", value)
            if self.tracer is not None:
                self.tracer.event("cache", run=label, **cache_delta)

        snapshot = (
            metrics.snapshot() if metrics is not None
            else {"phases": {}, "counters": {}, "histograms": {}}
        )
        stats = RunStats(
            total=len(configs),
            cache_hits=evaluator.cache_hits,
            evaluated=evaluator.evaluated,
            workers=self.workers,
            elapsed=perf_counter() - started,
            post_pass_hits=post_pass_hits,
            phases=snapshot["phases"],
            counters=snapshot["counters"],
            histograms=snapshot.get("histograms", {}),
        )
        if self.tracer is not None:
            self.tracer.event(
                "metrics",
                run=label,
                phases=snapshot["phases"],
                counters=snapshot["counters"],
                histograms=snapshot.get("histograms", {}),
                total=stats.total,
                cache_hits=stats.cache_hits,
                evaluated=stats.evaluated,
                post_pass_hits=stats.post_pass_hits,
                workers=stats.workers,
            )
        self.manager.mark_done(label)
        self._current = None
        return StudyRun(
            workload=workload_name,
            space=spec.space_label,
            width=spec.width,
            objectives=spec.objectives,
            result=result,
            selection=selection,
            stats=stats,
            evaluations=outcome.evaluations,
            iterations=outcome.iterations,
            frontier_history=outcome.frontier_history,
            failures=list(evaluator.failures),
            calibrations=calibrations,
        )

    def _partial_run(self) -> StudyRun | None:
        """The in-progress run's finished points, as a valid StudyRun.

        Called from the interrupt handler: the strategy's outcome never
        materialised, so the point list is rebuilt from the checkpoint
        manager's records for this run (every completed point was
        recorded as it arrived).  No selection, no post-pass attachment
        — a partial run reports what finished, nothing more.
        """
        cur = self._current
        if cur is None:
            return None
        spec = self.spec
        evaluator: CachedEvaluator = cur["evaluator"]
        metrics = cur["metrics"]
        _, decode = _entry_codec()
        points: list[EvaluatedPoint] = []
        for entry in self.manager.points(cur["label"]).values():
            try:
                point = decode(entry, evaluator.march, evaluator.energy_model)
            except (ValueError, KeyError, TypeError, AttributeError):
                point = None
            if point is not None:
                points.append(point)
        result = ExplorationResult(
            workload=cur["workload"], profile=evaluator.profile,
            points=points,
        )
        snapshot = (
            metrics.snapshot() if metrics is not None
            else {"phases": {}, "counters": {}, "histograms": {}}
        )
        stats = RunStats(
            total=cur["total"],
            cache_hits=evaluator.cache_hits,
            evaluated=evaluator.evaluated,
            workers=self.workers,
            elapsed=perf_counter() - cur["started"],
            phases=snapshot["phases"],
            counters=snapshot["counters"],
            histograms=snapshot.get("histograms", {}),
        )
        if self.tracer is not None:
            # The in-progress wave's telemetry would otherwise be lost:
            # emit the final snapshot and the interruption marker so an
            # interrupted trace still summarises.
            self.tracer.event(
                "metrics",
                run=cur["label"],
                phases=snapshot["phases"],
                counters=snapshot["counters"],
                histograms=snapshot.get("histograms", {}),
                total=stats.total,
                cache_hits=stats.cache_hits,
                evaluated=stats.evaluated,
                post_pass_hits=0,
                workers=stats.workers,
            )
            self.tracer.event(
                "interrupted",
                run=cur["label"],
                completed=len(points),
                total=cur["total"],
            )
        return StudyRun(
            workload=cur["workload"],
            space=spec.space_label,
            width=spec.width,
            objectives=spec.objectives,
            result=result,
            selection=None,
            stats=stats,
            evaluations=evaluator.evaluated,
            failures=list(evaluator.failures),
            interrupted=True,
        )

    def _attach_test_costs(
        self,
        workload_name: str,
        result: ExplorationResult,
        objectives: tuple[Objective, ...],
        evaluator: CachedEvaluator,
        metrics: MetricsCollector | None = None,
    ) -> int:
        """The test-cost post-pass, on the base-objective front only.

        The paper evaluates the test axis *on the 2-D Pareto points*,
        preserving the already achieved area/throughput ratio; the
        generalisation attaches costs to the front under the objectives
        that need no post-pass.  Points restored from the cache already
        carry a march-matched cost; only the rest run the ATPG-backed
        math, and freshly attached costs stream back into the cache.
        Returns the number of front points whose cost was already
        attached (the post-pass cache hits).
        """
        front = self._post_pass_front(result, objectives)
        todo = [p for p in front if p.test_cost is None]
        hits = len(front) - len(todo)
        if not todo:
            return hits
        attach_test_costs(
            todo, self.spec.march, self.spec.width, metrics=metrics
        )
        for point in todo:
            evaluator._store(point)
        return hits

    def _attach_energy(
        self,
        result: ExplorationResult,
        objectives: tuple[Objective, ...],
        evaluator: CachedEvaluator,
        tech,
        metrics: MetricsCollector | None = None,
    ) -> int:
        """The switching-activity post-pass, on the base front only.

        Exactly like the test axis: energy is simulated on the front
        under the post-pass-free objectives (each point's compiled
        program runs once with activity tracing through the sweep's
        evaluation context), and fresh energies stream back into the
        result cache keyed by the technology fingerprint.  Returns the
        number of front points whose energy was already attached.
        """
        front = self._post_pass_front(result, objectives)
        todo = [p for p in front if p.energy is None]
        hits = len(front) - len(todo)
        if not todo:
            return hits
        attach_energy(
            todo,
            evaluator.workload,
            width=self.spec.width,
            tech=tech,
            context=evaluator.context,
            metrics=metrics,
        )
        for point in todo:
            evaluator._store(point)
        return hits

    def _calibrate_front(
        self,
        workload,
        result: ExplorationResult,
        objectives: tuple[Objective, ...],
        evaluator: CachedEvaluator,
        tech,
        label: str,
    ) -> list:
        """The RTL calibration post-pass, on the base front only.

        Each front point's core is elaborated and audited against the
        model (:func:`repro.rtl.calibrate.calibrate_point`); reports
        ride the run (``StudyRun.calibrations``) and, with a tracer
        attached, the trace ("calibration" events) so ``repro trace
        summarize`` can report model drift per run.
        """
        # Imported here: calibration is opt-in, and the rtl package
        # pulls the whole elaboration stack with it.
        from repro.rtl.calibrate import calibrate_point

        reports = []
        for point in self._post_pass_front(result, objectives):
            report = calibrate_point(
                point,
                workload,
                width=self.spec.width,
                tech=tech,
                context=evaluator.context,
            )
            reports.append(report)
            if self.tracer is not None:
                self.tracer.event(
                    "calibration", run=label, **report.to_dict()
                )
        return reports

    def _post_pass_front(
        self,
        result: ExplorationResult,
        objectives: tuple[Objective, ...],
    ) -> list[EvaluatedPoint]:
        """Points the post-passes annotate: the base-objective front."""
        base = [o for o in objectives if not o.needs_post_pass]
        if base:
            return pareto_front(result.points, base)
        return result.feasible_points


def run_study(
    spec: StudySpec,
    cache=None,
    workers: int | None = None,
    progress: ProgressFn | None = None,
    tracer: Tracer | None = None,
    collect_metrics: bool = False,
    policy: FaultPolicy | None = None,
    checkpoint: str | Path | None = None,
    checkpoint_every: int = 16,
    cancel: CancelToken | None = None,
    calibrate_front: bool = False,
) -> StudyResult:
    """Build and run a :class:`Study` in one call."""
    return Study(
        spec, cache=cache, workers=workers, progress=progress,
        tracer=tracer, collect_metrics=collect_metrics,
        policy=policy, checkpoint=checkpoint,
        checkpoint_every=checkpoint_every, cancel=cancel,
        calibrate_front=calibrate_front,
    ).run()
