"""Scan insertion: the shift/capture protocol as an executable model."""

import random

import pytest

from repro.atpg.faults import Fault
from repro.components import build_ff_register_file
from repro.scan import scan_test_cycles
from repro.scan.insertion import (
    ScanCell,
    ScannedDesign,
    measured_scan_cycles,
    scan_cells_by_prefix,
    scan_test_detects,
)
from repro.netlist import CellType, Netlist


def _toggle_core():
    """A 2-cell core: d0 = NOT q0, d1 = q0 XOR q1 (plus an observable)."""
    nl = Netlist("toggle")
    q0 = nl.add_input("q0")
    q1 = nl.add_input("q1")
    d0 = nl.add_gate(CellType.NOT, [q0], name="d0")
    d1 = nl.add_gate(CellType.XOR, [q0, q1], name="d1")
    obs = nl.add_gate(CellType.OR, [q0, q1], name="obs")
    nl.add_output(d0)
    nl.add_output(d1)
    nl.add_output(obs)
    cells = [ScanCell("ff0", q0, d0), ScanCell("ff1", q1, d1)]
    return nl, cells


def test_shift_moves_bits_through_chain():
    nl, cells = _toggle_core()
    design = ScannedDesign(nl, cells)
    out = design.shift([1, 0, 1])
    # two reset zeros drain first; the third shift pops the first bit in
    assert out == [0, 0, 1]
    # chain now holds the last two shifted bits: state[0] = newest
    assert design.state == [1, 0]
    assert design.cycles == 3


def test_shift_out_returns_captured_state():
    nl, cells = _toggle_core()
    design = ScannedDesign(nl, cells)
    design.shift([1, 1])            # state = [1, 1]
    design.capture({})              # d0 = !1 = 0, d1 = 1^1 = 0
    assert design.state == [0, 0]
    design2 = ScannedDesign(nl, cells)
    design2.shift([1, 0])           # state = [0, 1]
    design2.capture({})             # d0 = !0 = 1, d1 = 0^1 = 1
    assert design2.state == [1, 1]


def test_apply_pattern_overlap_semantics():
    nl, cells = _toggle_core()
    design = ScannedDesign(nl, cells)
    _po, out1 = design.apply_pattern([1, 1], {})
    assert out1 == [0, 0]                   # previous (reset) state
    _po, out2 = design.apply_pattern([0, 0], {})
    # shift-out now carries the captured response of pattern 1
    assert out2 == [0, 0]                   # capture of [1,1] -> [0,0]


def test_cycle_accounting_matches_formula():
    nl, cells = _toggle_core()
    design = ScannedDesign(nl, cells)
    patterns = [([1, 0], {}), ([0, 1], {}), ([1, 1], {})]
    design.run_test(patterns)
    assert design.cycles == scan_test_cycles(len(patterns), len(cells))
    assert measured_scan_cycles(2, 3) == design.cycles


def test_scan_detects_injected_fault():
    nl, cells = _toggle_core()
    # q0 stuck at 0 inside the core: the NOT output goes wrong for q0=1
    fault = Fault(nl.inputs[0], 0)
    patterns = [([1, 1], {}), ([0, 1], {})]
    assert scan_test_detects(nl, cells, fault, patterns)


def test_scan_misses_unexercised_fault():
    nl, cells = _toggle_core()
    fault = Fault(nl.inputs[0], 0)
    # cell0 holds the *last* shifted bit; keep it 0 so q0 stuck-at-0 is
    # never exercised and the devices stay indistinguishable
    patterns = [([0, 0], {}), ([1, 0], {})]
    assert not scan_test_detects(nl, cells, fault, patterns)


def test_vector_length_validated():
    nl, cells = _toggle_core()
    design = ScannedDesign(nl, cells)
    with pytest.raises(ValueError):
        design.apply_pattern([1], {})


def test_rf_ff_netlist_cells_by_prefix():
    rf = build_ff_register_file(4, 4)
    cells = scan_cells_by_prefix(rf)
    assert len(cells) == 4 * 4           # every storage bit on the chain
    design = ScannedDesign(rf, cells)
    # shift a recognisable pattern in and straight back out
    vector = [random.Random(5).getrandbits(1) for _ in range(len(cells))]
    design.shift(vector)
    out = design.shift([0] * len(cells))
    assert out == vector[::-1] == list(reversed(vector))


def test_rf_ff_scan_capture_performs_write():
    rf = build_ff_register_file(4, 4)
    cells = scan_cells_by_prefix(rf)
    design = ScannedDesign(rf, cells)
    # drive a functional write of 0xA to register 2 with zero state
    pi = {}
    for net in rf.inputs:
        name = rf.net_name(net)
        if name.startswith("w0addr["):
            pi[net] = (2 >> int(name[7:-1])) & 1
        elif name.startswith("w0data["):
            pi[net] = (0xA >> int(name[7:-1])) & 1
        elif name == "w0en":
            pi[net] = 1
    design.capture(pi)
    # cells are ordered by PPO declaration: d0..d3 words of 4 bits
    reg2 = design.state[8:12]
    assert reg2 == [(0xA >> b) & 1 for b in range(4)]


def test_bad_prefix_rejected():
    nl, _cells = _toggle_core()
    with pytest.raises(ValueError):
        scan_cells_by_prefix(nl, ppi_prefix="zz")
