"""The on-disk evaluated-point cache.

Each point of a sweep is one small JSON file keyed by a stable hash of
``(workload name, ArchConfig, width)`` — the full evaluation inputs, so
a key collision can only mean an identical evaluation.  Writes go
through a temp-file rename, which makes a campaign interruptible at any
point: whatever finished is durable, and the next run resumes from the
surviving entries instead of re-compiling them.

The cache stores *results* (area, cycles, test cost), never compiled
programs — entries are a few hundred bytes and safe to version or rsync
between machines.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.explore.evaluate import EvaluatedPoint
from repro.explore.space import ArchConfig

_SCHEMA = 1


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`ResultCache` instance.

    ``hits``/``misses`` count :meth:`ResultCache.get` outcomes
    (unreadable or schema-mismatched entries are misses, exactly as
    they behave).  ``puts`` counts completed writes, ``merge_reads``
    the writes that took the merge-on-write path (a post-pass
    attachment rewriting an existing entry), ``merged_axes`` the
    post-pass axes actually preserved from the old entry — each one a
    write that, unmerged, would have dropped another study's work.
    ``bytes_written`` sums the serialised payloads.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    merge_reads: int = 0
    merged_axes: int = 0
    bytes_written: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction over the stats' lifetime (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "merge_reads": self.merge_reads,
            "merged_axes": self.merged_axes,
            "bytes_written": self.bytes_written,
        }

    def delta(self, since: dict) -> dict:
        """Counter changes since an earlier :meth:`as_dict` snapshot."""
        now = self.as_dict()
        return {k: now[k] - since.get(k, 0) for k in now}


def default_cache_dir() -> Path:
    """``$REPRO_CAMPAIGN_CACHE`` or ``~/.cache/repro-tta/campaign``."""
    env = os.environ.get("REPRO_CAMPAIGN_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-tta" / "campaign"


def cache_key(workload: str, config: ArchConfig, width: int) -> str:
    """Stable content hash of one evaluation's inputs."""
    payload = json.dumps(
        {
            "schema": _SCHEMA,
            "workload": workload,
            "width": width,
            "config": config.to_dict(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Directory of evaluated points, one JSON file per cache key."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Always-on lifetime counters (reading them costs nothing on
        #: the hot path; a handful of integer adds per get/put).
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(
        self,
        workload: str,
        config: ArchConfig,
        width: int,
        march: str | None = None,
        energy_model: str | None = None,
    ) -> EvaluatedPoint | None:
        """Return the cached point, or None on a miss.

        Unreadable or schema-mismatched entries count as misses — a
        killed writer or an old cache degrades to re-evaluation, never
        to a crash or a wrong result.  A stored test cost is only
        restored when it was computed for the same ``march`` algorithm,
        and a stored energy only under the same ``energy_model``
        (technology fingerprint); the (area, cycles) evaluation depends
        on neither.
        """
        path = self._path(cache_key(workload, config, width))
        try:
            data = json.loads(path.read_text())
            if data.get("schema") != _SCHEMA:
                self.stats.misses += 1
                return None
            cycles = data["cycles"]
            test_cost = data.get("test_cost")
            if test_cost is not None and data.get("march") != march:
                test_cost = None
            energy = data.get("energy")
            if energy is not None and data.get("energy_model") != energy_model:
                energy = None
            point = EvaluatedPoint(
                config=ArchConfig.from_dict(data["config"]),
                area=float(data["area"]),
                cycles=None if cycles is None else int(cycles),
                test_cost=None if test_cost is None else int(test_cost),
                energy=None if energy is None else float(energy),
            )
            self.stats.hits += 1
            return point
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            self.stats.misses += 1
            return None

    def put(
        self,
        workload: str,
        point: EvaluatedPoint,
        width: int,
        march: str | None = None,
        energy_model: str | None = None,
    ) -> None:
        """Persist one evaluated point (atomic: temp file + rename).

        Post-pass axes the caller did *not* compute are merged from the
        existing entry rather than erased: a study that only needs the
        energy axis restores points with ``test_cost=None`` (its march
        key differs) and must not wipe another study's persisted ATPG
        result when it writes its energies back — and vice versa.
        """
        key = cache_key(workload, point.config, width)
        path = self._path(key)
        data = {
            "schema": _SCHEMA,
            "workload": workload,
            "width": width,
            "config": point.config.to_dict(),
            "area": point.area,
            "cycles": point.cycles,
            "test_cost": point.test_cost,
            "march": march if point.test_cost is not None else None,
            "energy": point.energy,
            "energy_model": energy_model if point.energy is not None else None,
        }
        # Merge only when the caller computed exactly one post-pass axis
        # (a test-cost or energy attachment rewriting an existing entry);
        # a plain (area, cycles) store is a cache miss — the entry it
        # would merge from was just found absent — so the common fresh-
        # evaluation path pays no extra read.  The read-then-replace is
        # not atomic across processes: two concurrent attachers can drop
        # each other's freshly written axis, which degrades to a
        # re-attachment on the next run, never to a wrong value.
        if (point.test_cost is None) != (point.energy is None):
            self.stats.merge_reads += 1
            try:
                old = json.loads(path.read_text())
                if old.get("schema") == _SCHEMA:
                    if point.test_cost is None and old.get(
                        "test_cost"
                    ) is not None:
                        data["test_cost"] = old["test_cost"]
                        data["march"] = old.get("march")
                        self.stats.merged_axes += 1
                    if point.energy is None and old.get(
                        "energy"
                    ) is not None:
                        data["energy"] = old["energy"]
                        data["energy_model"] = old.get("energy_model")
                        self.stats.merged_axes += 1
            except (OSError, ValueError, AttributeError):
                pass
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        payload = json.dumps(data, sort_keys=True)
        tmp.write_text(payload)
        os.replace(tmp, path)
        self.stats.puts += 1
        self.stats.bytes_written += len(payload)

    def bytes_on_disk(self) -> int:
        """Total size of every entry file, in bytes (walks the dir)."""
        return sum(
            path.stat().st_size for path in self.directory.glob("*.json")
        )

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            path.unlink()
            removed += 1
        return removed
