"""PODEM test generation for single stuck-at faults.

Classic PODEM (Goel 1981): decisions are made only on primary inputs,
guided by *objectives* (activate the fault, then advance the D-frontier)
that are *backtraced* through X-valued nets to a PI.  Implication is a
full three-valued simulation of the good and the faulty machine.

Outcomes: ``DETECTED`` (with a test pattern), ``UNTESTABLE`` (search space
exhausted — a redundancy proof) or ``ABORTED`` (backtrack limit hit).
Aborted faults are counted as undetected, which is what keeps component
fault coverage realistically below 100% (cf. Table 1's 99.48-99.78%).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.atpg.faults import Fault
from repro.netlist.cells import CellType
from repro.netlist.netlist import Netlist

#: Three-valued logic constants.
ZERO, ONE, X = 0, 1, 2


def eval3(cell_type: CellType, ins: list[int]) -> int:
    """Evaluate one cell in {0, 1, X} logic."""
    if cell_type is CellType.CONST0:
        return ZERO
    if cell_type is CellType.CONST1:
        return ONE
    if cell_type is CellType.BUF:
        return ins[0]
    if cell_type is CellType.NOT:
        v = ins[0]
        return X if v == X else 1 - v
    if cell_type in (CellType.AND, CellType.NAND):
        invert = cell_type is CellType.NAND
        if any(v == ZERO for v in ins):
            out = ZERO
        elif any(v == X for v in ins):
            return X
        else:
            out = ONE
        return (1 - out) if invert else out
    if cell_type in (CellType.OR, CellType.NOR):
        invert = cell_type is CellType.NOR
        if any(v == ONE for v in ins):
            out = ONE
        elif any(v == X for v in ins):
            return X
        else:
            out = ZERO
        return (1 - out) if invert else out
    if cell_type in (CellType.XOR, CellType.XNOR):
        if any(v == X for v in ins):
            return X
        out = 0
        for v in ins:
            out ^= v
        return out ^ (1 if cell_type is CellType.XNOR else 0)
    raise ValueError(f"unknown cell type {cell_type}")


#: Non-controlling input value per gate family (None = no controlling value).
_NONCONTROLLING: dict[CellType, int | None] = {
    CellType.AND: ONE,
    CellType.NAND: ONE,
    CellType.OR: ZERO,
    CellType.NOR: ZERO,
    CellType.XOR: None,    # no controlling value: backtrace value is free
    CellType.XNOR: None,
    CellType.BUF: None,
    CellType.NOT: None,
}

#: Does the gate invert (for backtrace value propagation)?
_INVERTS: set[CellType] = {CellType.NOT, CellType.NAND, CellType.NOR, CellType.XNOR}


class PodemOutcome(enum.Enum):
    DETECTED = "detected"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


@dataclass
class PodemResult:
    outcome: PodemOutcome
    pattern: int | None      # packed by PI order, unassigned PIs = 0
    backtracks: int


class Podem:
    """PODEM engine bound to one netlist."""

    def __init__(self, netlist: Netlist, backtrack_limit: int = 64):
        self.netlist = netlist
        self.backtrack_limit = backtrack_limit
        self._order = netlist.topological_order()
        self._pi_index = {pi: i for i, pi in enumerate(netlist.inputs)}
        self._po_set = set(netlist.outputs)
        # Observability: min levels to a PO (orders the D-frontier).
        self._depth = self._po_distance()
        # Controllability: levels from the PIs (guides backtrace choices).
        self._level = self._pi_distance()

    def _po_distance(self) -> dict[int, int]:
        depth = {po: 0 for po in self._po_set}
        for gid in reversed(self._order):
            gate = self.netlist.gates[gid]
            d_out = depth.get(gate.output)
            if d_out is None:
                continue
            for src in gate.inputs:
                prev = depth.get(src)
                if prev is None or d_out + 1 < prev:
                    depth[src] = d_out + 1
        return depth

    def _pi_distance(self) -> list[int]:
        level = [0] * self.netlist.num_nets
        for gid in self._order:
            gate = self.netlist.gates[gid]
            level[gate.output] = 1 + max(
                (level[src] for src in gate.inputs), default=0
            )
        return level

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def _simulate(
        self, assignment: dict[int, int], fault: Fault
    ) -> tuple[list[int], list[int]]:
        """Three-valued good/faulty simulation under a partial assignment."""
        nl = self.netlist
        good = [X] * nl.num_nets
        faulty = [X] * nl.num_nets
        for pi in nl.inputs:
            v = assignment.get(pi, X)
            good[pi] = v
            faulty[pi] = v
        if not fault.is_branch and nl.nets[fault.net].driver is None:
            faulty[fault.net] = fault.stuck_at
        for gid in self._order:
            gate = nl.gates[gid]
            good[gate.output] = eval3(gate.cell_type, [good[n] for n in gate.inputs])
            f_ins = [faulty[n] for n in gate.inputs]
            if fault.is_branch and gid == fault.gate:
                f_ins[fault.pin] = fault.stuck_at
            faulty[gate.output] = eval3(gate.cell_type, f_ins)
            if not fault.is_branch and gate.output == fault.net:
                faulty[gate.output] = fault.stuck_at
        return good, faulty

    def _detected(self, good: list[int], faulty: list[int]) -> bool:
        return any(
            good[po] != X and faulty[po] != X and good[po] != faulty[po]
            for po in self._po_set
        )

    # ------------------------------------------------------------------
    # objective / backtrace
    # ------------------------------------------------------------------
    def _objective(
        self, good: list[int], faulty: list[int], fault: Fault
    ) -> tuple[int, int] | None:
        """Next (net, value) goal, or None when the search must back up."""
        site_good = good[fault.net]
        if site_good == X:
            return fault.net, 1 - fault.stuck_at
        if site_good == fault.stuck_at:
            return None  # activation conflict: current assignment kills it

        # Fault active: advance the D-frontier.
        frontier = self._d_frontier(good, faulty, fault)
        if not frontier:
            return None
        if not self._x_path_exists(frontier, good, faulty):
            return None
        gate = self.netlist.gates[frontier[0]]
        noncontrolling = _NONCONTROLLING[gate.cell_type]
        for src in gate.inputs:
            if good[src] == X:
                value = noncontrolling if noncontrolling is not None else ZERO
                return src, value
        return None

    def _d_frontier(
        self, good: list[int], faulty: list[int], fault: Fault
    ) -> list[int]:
        """Gates with a D/D' input and an X output, nearest-to-PO first."""
        frontier = []
        for gid in self._order:
            gate = self.netlist.gates[gid]
            out = gate.output
            if good[out] != X and faulty[out] != X:
                continue
            for pin, src in enumerate(gate.inputs):
                g, f = good[src], faulty[src]
                if fault.is_branch and gid == fault.gate and pin == fault.pin:
                    f = fault.stuck_at
                if g != X and f != X and g != f:
                    frontier.append(gid)
                    break
        frontier.sort(
            key=lambda gid: self._depth.get(self.netlist.gates[gid].output, 1 << 30)
        )
        return frontier

    def _x_path_exists(
        self, frontier: list[int], good: list[int], faulty: list[int]
    ) -> bool:
        """Forward path of X nets from any frontier gate to a PO?"""
        stack = [self.netlist.gates[gid].output for gid in frontier]
        seen: set[int] = set()
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if good[net] != X and faulty[net] != X:
                continue
            if net in self._po_set:
                return True
            for succ in self.netlist.nets[net].fanout:
                stack.append(self.netlist.gates[succ].output)
        return False

    def _backtrace(
        self, net: int, value: int, good: list[int]
    ) -> tuple[int, int] | None:
        """Walk an objective back through X nets to an unassigned PI."""
        nl = self.netlist
        for _hop in range(nl.num_nets + 1):
            driver = nl.nets[net].driver
            if driver is None:
                if net in self._pi_index and good[net] == X:
                    return net, value
                return None
            gate = nl.gates[driver]
            if gate.cell_type in (CellType.CONST0, CellType.CONST1):
                return None
            if gate.cell_type in _INVERTS:
                value = 1 - value
            x_inputs = [src for src in gate.inputs if good[src] == X]
            if not x_inputs:
                return None
            noncontrolling = _NONCONTROLLING[gate.cell_type]
            if noncontrolling is not None and value == 1 - noncontrolling:
                # Want the controlled output value: one input suffices ->
                # pick the easiest-to-control (shallowest) X input.
                net = min(x_inputs, key=lambda n: self._level[n])
                value = 1 - noncontrolling
            else:
                # All inputs must reach the non-controlling value: work on
                # the hardest (deepest) one first so conflicts surface early.
                net = max(x_inputs, key=lambda n: self._level[n])
                if noncontrolling is not None:
                    value = noncontrolling
        return None

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def generate(self, fault: Fault) -> PodemResult:
        """Try to generate a test for ``fault``."""
        assignment: dict[int, int] = {}
        stack: list[list] = []   # [pi, value, flipped]
        backtracks = 0

        while True:
            good, faulty = self._simulate(assignment, fault)
            if self._detected(good, faulty):
                return PodemResult(
                    PodemOutcome.DETECTED, self._pack(assignment), backtracks
                )

            step: tuple[int, int] | None = None
            objective = self._objective(good, faulty, fault)
            if objective is not None:
                step = self._backtrace(objective[0], objective[1], good)

            if step is not None:
                pi, value = step
                assignment[pi] = value
                stack.append([pi, value, False])
                continue

            # Dead end: flip the most recent unflipped decision.
            backtracks += 1
            if backtracks > self.backtrack_limit:
                return PodemResult(PodemOutcome.ABORTED, None, backtracks)
            while stack and stack[-1][2]:
                pi, _value, _flipped = stack.pop()
                del assignment[pi]
            if not stack:
                return PodemResult(PodemOutcome.UNTESTABLE, None, backtracks)
            stack[-1][2] = True
            stack[-1][1] ^= 1
            assignment[stack[-1][0]] = stack[-1][1]

    def _pack(self, assignment: dict[int, int]) -> int:
        pattern = 0
        for pi, value in assignment.items():
            if value == ONE:
                pattern |= 1 << self._pi_index[pi]
        return pattern
