"""ATPG driver: random phase + PODEM + compaction, with a disk cache.

:func:`run_atpg` is the paper's "back-annotation with an ATPG tool": it
turns a gate-level netlist into a pattern count ``n_p`` and a fault
coverage figure.  Results are cached on disk keyed by a structural hash,
because the exploration flow queries the same component library over and
over (exactly why the paper pre-characterises its components).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.atpg.faults import Fault, collapse_faults
from repro.atpg.faultsim import WORD, FaultSimulator
from repro.atpg.podem import Podem, PodemOutcome
from repro.netlist.netlist import Netlist


@dataclass
class ATPGResult:
    """Outcome of one ATPG run on one netlist."""

    netlist_name: str
    patterns: list[int]          # each packed by PI order
    num_faults: int              # collapsed fault classes
    detected: int
    redundant: int               # proven untestable
    aborted: int                 # backtrack limit hit
    undetected_faults: list[str] = field(default_factory=list)

    @property
    def num_patterns(self) -> int:
        """``n_p`` in the paper's cost formulas."""
        return len(self.patterns)

    @property
    def fault_coverage(self) -> float:
        """Detected / testable faults (redundant excluded), in percent."""
        testable = self.num_faults - self.redundant
        if testable <= 0:
            return 100.0
        return 100.0 * self.detected / testable

    @property
    def raw_coverage(self) -> float:
        """Detected / all collapsed faults, in percent."""
        if self.num_faults == 0:
            return 100.0
        return 100.0 * self.detected / self.num_faults

    def to_json(self) -> dict:
        return {
            "netlist_name": self.netlist_name,
            "patterns": self.patterns,
            "num_faults": self.num_faults,
            "detected": self.detected,
            "redundant": self.redundant,
            "aborted": self.aborted,
            "undetected_faults": self.undetected_faults,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ATPGResult":
        return cls(**data)


# ----------------------------------------------------------------------
# disk cache
# ----------------------------------------------------------------------
def _cache_dir() -> Path:
    env = os.environ.get("REPRO_ATPG_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-tta" / "atpg"


def netlist_signature(netlist: Netlist) -> str:
    """Structural hash covering gates, connectivity and port order."""
    h = hashlib.sha256()
    h.update(netlist.name.encode())
    h.update(repr(netlist.inputs).encode())
    h.update(repr(netlist.outputs).encode())
    for gate in netlist.gates:
        h.update(f"{gate.gid}:{gate.cell_type.value}:{gate.inputs}:{gate.output};".encode())
    return h.hexdigest()


def clear_atpg_cache() -> int:
    """Delete all cached ATPG results; returns the number removed."""
    directory = _cache_dir()
    if not directory.exists():
        return 0
    count = 0
    for path in directory.glob("*.json"):
        path.unlink()
        count += 1
    return count


# ----------------------------------------------------------------------
# main driver
# ----------------------------------------------------------------------
def run_atpg(
    netlist: Netlist,
    seed: int = 0,
    random_words: int = 8,
    backtrack_limit: int = 64,
    compact: bool = True,
    use_cache: bool = True,
) -> ATPGResult:
    """Generate a compacted stuck-at test set for ``netlist``.

    ``random_words`` words of 64 random patterns are fault-simulated with
    dropping first; PODEM then targets the survivors.  With ``compact``
    the pattern list is reduced by reverse-order fault simulation.
    """
    cache_key = None
    if use_cache:
        params = f"{seed}:{random_words}:{backtrack_limit}:{compact}:v1"
        cache_key = f"{netlist_signature(netlist)}-{hashlib.sha256(params.encode()).hexdigest()[:12]}"
        cached = _cache_load(cache_key)
        if cached is not None:
            return cached

    faults, _class_map = collapse_faults(netlist)
    sim = FaultSimulator(netlist)
    rng = random.Random(seed)
    num_pis = len(netlist.inputs)

    active: list[Fault] = list(faults)
    kept_patterns: list[int] = []
    detected = 0

    # Phase 1: random patterns, keeping only first-detecting ones.
    # Every third/fourth word is weight-biased (25% / 75% ones): carry
    # chains, shifter fill paths and wide control gates are notoriously
    # resistant to uniform random patterns.
    for _w in range(random_words):
        if not active:
            break
        if _w % 4 == 2:
            word = [
                rng.getrandbits(num_pis) & rng.getrandbits(num_pis)
                for _ in range(WORD)
            ]
        elif _w % 4 == 3:
            word = [
                rng.getrandbits(num_pis) | rng.getrandbits(num_pis)
                for _ in range(WORD)
            ]
        else:
            word = [rng.getrandbits(num_pis) for _ in range(WORD)]
        results = sim.simulate_word(word, active)
        useful: set[int] = set()
        survivors: list[Fault] = []
        for fault in active:
            det_mask = results[fault]
            if det_mask:
                detected += 1
                useful.add((det_mask & -det_mask).bit_length() - 1)
            else:
                survivors.append(fault)
        kept_patterns.extend(word[k] for k in sorted(useful))
        active = survivors

    # Phase 2a: structural pruning — a fault with no path to any primary
    # output is untestable by construction (dead logic); proving this via
    # PODEM search would burn the whole backtrack budget instead.
    podem = Podem(netlist, backtrack_limit=backtrack_limit)
    redundant = 0
    aborted = 0
    undetected_names: list[str] = []
    po_set = set(netlist.outputs)
    reachable: list[Fault] = []
    for fault in active:
        if fault.is_branch:
            cone_nets = {netlist.gates[g].output for g in sim._cone(fault)}
        else:
            cone_nets = {fault.net} | {
                netlist.gates[g].output for g in sim._cone(fault)
            }
        if cone_nets & po_set:
            reachable.append(fault)
        else:
            redundant += 1
    active = reachable

    # Phase 2b: PODEM on the random-resistant faults.
    remaining = list(active)
    while remaining:
        fault = remaining.pop(0)
        result = podem.generate(fault)
        if result.outcome is PodemOutcome.DETECTED:
            assert result.pattern is not None
            # Fill unassigned PIs randomly to catch collateral faults.
            pattern = result.pattern | (rng.getrandbits(num_pis) & ~result.pattern)
            verify = sim.simulate_word([pattern], [fault])[fault]
            if not verify:
                pattern = result.pattern   # random fill masked it; use pure
            kept_patterns.append(pattern)
            detected += 1
            if remaining:
                drop = sim.simulate_word([pattern], remaining)
                still = [f for f in remaining if not drop[f]]
                detected += len(remaining) - len(still)
                remaining = still
        elif result.outcome is PodemOutcome.UNTESTABLE:
            redundant += 1
        else:
            aborted += 1
            undetected_names.append(fault.describe(netlist))

    # Phase 3: reverse-order compaction.
    if compact and kept_patterns:
        kept_patterns = _compact(sim, faults, kept_patterns)

    result = ATPGResult(
        netlist_name=netlist.name,
        patterns=kept_patterns,
        num_faults=len(faults),
        detected=detected,
        redundant=redundant,
        aborted=aborted,
        undetected_faults=undetected_names,
    )
    if use_cache and cache_key is not None:
        _cache_store(cache_key, result)
    return result


def _compact(
    sim: FaultSimulator, faults: list[Fault], patterns: list[int]
) -> list[int]:
    """Reverse-order fault simulation: keep patterns that add coverage."""
    remaining = list(faults)
    kept: list[int] = []
    for pattern in reversed(patterns):
        if not remaining:
            break
        results = sim.simulate_word([pattern], remaining)
        survivors = [f for f in remaining if not results[f]]
        if len(survivors) < len(remaining):
            kept.append(pattern)
            remaining = survivors
    kept.reverse()
    return kept


def _cache_load(key: str) -> ATPGResult | None:
    path = _cache_dir() / f"{key}.json"
    if not path.exists():
        return None
    try:
        with path.open() as fh:
            return ATPGResult.from_json(json.load(fh))
    except (json.JSONDecodeError, TypeError, KeyError):
        return None


def _cache_store(key: str, result: ATPGResult) -> None:
    directory = _cache_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{key}.json"
    with path.open("w") as fh:
        json.dump(result.to_json(), fh)
