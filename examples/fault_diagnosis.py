#!/usr/bin/env python3
"""Diagnose a failing component from its functional-test responses.

Closes the DfT loop the paper's flow enables: the same pre-computed
pattern set that tests a component through the sockets also *localises*
a failure.  We inject a random stuck-at fault into an 8-bit ALU, collect
which patterns fail, and let the fault dictionary rank candidates.

Run:  python examples/fault_diagnosis.py [seed]
"""

import random
import sys

from repro import run_atpg
from repro.atpg import FaultDictionary
from repro.atpg.faults import collapse_faults
from repro.atpg.faultsim import FaultSimulator
from repro.components import build_alu

seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7
rng = random.Random(seed)

netlist = build_alu(8)
print(f"device under test: {netlist.name} ({netlist.num_gates} gates)")

atpg = run_atpg(netlist)
print(f"test set: {atpg.num_patterns} patterns, "
      f"{atpg.fault_coverage:.2f}% stuck-at coverage")

dictionary = FaultDictionary(netlist, atpg.patterns)
print(f"fault dictionary: {dictionary.num_faults} collapsed faults")

# Manufacture a "bad device": pick a detectable fault at random.
sim = FaultSimulator(netlist)
faults, _ = collapse_faults(netlist)
detectable = [f for f in faults if dictionary.expected_failures(f)]
truth = rng.choice(detectable)
print(f"\ninjected defect: {truth.describe(netlist)}  (hidden from the "
      "diagnosis)")

# The tester observes which patterns fail on the bad device.
failing = dictionary.expected_failures(truth)
print(f"observed: {len(failing)} of {atpg.num_patterns} patterns fail")

candidates = dictionary.diagnose(failing, max_candidates=5)
print("\nranked candidates:")
for i, candidate in enumerate(candidates, start=1):
    marker = ""
    if dictionary.signature_of(candidate.fault) == dictionary.signature_of(truth):
        marker = "   <- matches the injected defect"
    print(f"  {i}. {candidate.describe(netlist)}{marker}")

top = candidates[0]
assert dictionary.signature_of(top.fault) == dictionary.signature_of(truth)
print("\ntop candidate explains the observation exactly.")
