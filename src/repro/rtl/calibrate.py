"""Audit the study layer's numbers against the emitted core.

Two audits per (workload, config, width):

* **Cycles** — the static ``cycles`` objective (profile-weighted
  schedule length) against *simulated* cycles from the energy pass's
  activity trace.  Both are already computed by the study stack, so the
  comparison is free; a nonzero delta means the scheduler's timing
  model and the simulator disagree.
* **Area** — per-component structural gate/cell counts of the emitted
  core (:func:`repro.rtl.core.elaborate_core` + the existing netlist
  statistics) against the datasheet-derived areas the ``area``
  objective reports.  Components are grouped into categories with
  documented rtl/model ratio bands (:data:`TOLERANCE_BANDS`); the
  ``decode`` and ``fetch`` categories have **no model counterpart**
  (move decoding and program memory are not priced by
  ``Architecture.area()`` — the FFT-TTA paper's point about
  instruction streams) and are reported but never fail the verdict.

The RF band is intentionally wide: the RTL instantiates the flip-flop
strawman netlist while the model prices a multi-port memory macro —
the paper's own RF1/RF2 full-scan caveat.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import IRFunction
from repro.components.library import (
    FF_AREA,
    MEMCELL_AREA,
    component_datasheet,
)
from repro.components.spec import ComponentKind
from repro.energy.attach import _default_context
from repro.energy.model import TechnologyParameters, technology_by_name
from repro.energy.report import energy_report
from repro.explore.evaluate import EvaluatedPoint, EvaluationContext
from repro.explore.space import ArchConfig, build_architecture_cached
from repro.netlist.stats import netlist_stats
from repro.rtl.core import CoreDesign, _core_module_name, elaborate_core
from repro.tta.arch import BUS_AREA_PER_BIT, CONNECTION_AREA, Architecture

#: Documented rtl/model area ratio bands per component category.
#:
#: The model and the RTL count different structures on purpose — the
#: model prices *placed* components (datasheet core + pipeline
#: registers), the RTL is the elaborated gate structure — so parity is
#: a band, not equality.  Bands were measured over every config in
#: ``small_space`` and ``dsp_space`` at widths 8/16/32 (observed:
#: unit 0.49–1.02, rf 4.1–7.7, interconnect 2.3–6.7) and padded ~30%
#: each side:
#:
#: * ``unit`` — FU/LSU/PC/IMM: the same core netlist on both sides;
#:   drift comes from pipeline-register placement (the RTL registers
#:   only what the latency contract needs — latency-1 triggers bypass
#:   their register — while the model charges every port).
#: * ``rf`` — flip-flop strawman vs multi-port memory macro; the gate
#:   structure is several times the macro's cell-array estimate (the
#:   paper's RF1/RF2 full-scan caveat, quantified).
#: * ``interconnect`` — the RTL instantiates one socket per (port, bus)
#:   connection plus per-bus source muxes, while the model charges one
#:   socket per port plus per-bit bus runs; the ratio therefore grows
#:   with the bus count.
TOLERANCE_BANDS: dict[str, tuple[float, float]] = {
    "unit": (0.35, 1.35),
    "rf": (3.0, 10.0),
    "interconnect": (1.6, 9.0),
}


@dataclass(frozen=True)
class ComponentDelta:
    """One category's model-vs-RTL area comparison."""

    name: str
    category: str
    model_area: float
    rtl_area: float
    modelled: bool
    ratio: float | None
    within_tolerance: bool | None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "category": self.category,
            "model_area": round(self.model_area, 3),
            "rtl_area": round(self.rtl_area, 3),
            "modelled": self.modelled,
            "ratio": None if self.ratio is None else round(self.ratio, 4),
            "within_tolerance": self.within_tolerance,
        }


@dataclass
class CalibrationReport:
    """Cycles + per-component area verdicts for one (workload, config)."""

    workload: str
    config: str
    width: int
    tech: str
    static_cycles: int
    simulated_cycles: int
    energy: float
    deltas: list[ComponentDelta] = field(default_factory=list)

    @property
    def cycles_delta(self) -> int:
        return self.simulated_cycles - self.static_cycles

    @property
    def model_area(self) -> float:
        return round(sum(d.model_area for d in self.deltas if d.modelled), 3)

    @property
    def rtl_area(self) -> float:
        return round(sum(d.rtl_area for d in self.deltas if d.modelled), 3)

    @property
    def unmodelled_area(self) -> float:
        return round(
            sum(d.rtl_area for d in self.deltas if not d.modelled), 3
        )

    @property
    def area_ratio(self) -> float:
        return self.rtl_area / self.model_area if self.model_area else 0.0

    @property
    def ok(self) -> bool:
        """Within tolerance: cycles agree and every modelled band holds."""
        return self.cycles_delta == 0 and all(
            d.within_tolerance for d in self.deltas if d.modelled
        )

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "config": self.config,
            "width": self.width,
            "tech": self.tech,
            "static_cycles": self.static_cycles,
            "simulated_cycles": self.simulated_cycles,
            "cycles_delta": self.cycles_delta,
            "energy": round(self.energy, 3),
            "model_area": self.model_area,
            "rtl_area": self.rtl_area,
            "unmodelled_area": self.unmodelled_area,
            "area_ratio": round(self.area_ratio, 4),
            "ok": self.ok,
            "deltas": [d.to_dict() for d in self.deltas],
        }


def _delta(
    name: str, category: str, model: float, rtl: float, modelled: bool
) -> ComponentDelta:
    if not modelled or model <= 0.0:
        return ComponentDelta(name, category, model, rtl, False, None, None)
    ratio = rtl / model
    lo, hi = TOLERANCE_BANDS[category]
    return ComponentDelta(
        name, category, model, rtl, True, ratio, lo <= ratio <= hi
    )


def area_deltas(
    arch: Architecture, design: CoreDesign
) -> list[ComponentDelta]:
    """Per-category comparison of the design against the area model.

    The modelled categories partition ``arch.area()`` exactly: per-unit
    entries carry datasheet core + pipeline-register area, and the
    interconnect entry carries socket + bus + switch area.
    """
    mod_area = {
        name: netlist_stats(nl).area
        for name, nl in design.submodules.items()
    }
    deltas = []
    for unit in arch.units.values():
        sheet = component_datasheet(unit.spec)
        model = sheet.core_area + sheet.register_area
        mname = _core_module_name(unit.spec)
        rtl = mod_area[mname] + FF_AREA * design.flop_bits.get(unit.name, 0)
        category = (
            "rf" if unit.spec.kind is ComponentKind.RF else "unit"
        )
        deltas.append(_delta(unit.name, category, model, rtl, True))

    socket_model = sum(
        component_datasheet(u.spec).socket_area for u in arch.units.values()
    )
    bus_area = arch.num_buses * arch.width * BUS_AREA_PER_BIT
    switch_area = arch.num_connections * CONNECTION_AREA
    rtl = FF_AREA * design.flop_bits.get("interconnect", 0)
    for name, count in design.instances.items():
        if name == "socket6x3" or "_busmux" in name:
            rtl += mod_area[name] * count
    deltas.append(_delta(
        "interconnect", "interconnect",
        socket_model + bus_area + switch_area, rtl, True,
    ))

    dec = f"{design.top_name}_movedec"
    rtl = (
        mod_area.get(dec, 0.0) * design.instances.get(dec, 0)
        + FF_AREA * design.flop_bits.get("decode", 0)
    )
    deltas.append(_delta("decode", "decode", 0.0, rtl, False))

    rtl = (
        design.imem_bits * MEMCELL_AREA
        + FF_AREA * design.flop_bits.get("fetch", 0)
    )
    deltas.append(_delta("fetch", "fetch", 0.0, rtl, False))
    return deltas


def calibrate_point(
    point: EvaluatedPoint,
    workload: IRFunction,
    width: int = 16,
    tech: TechnologyParameters | None = None,
    context: EvaluationContext | None = None,
    max_cycles: int = 5_000_000,
) -> CalibrationReport:
    """Calibrate one evaluated point (study post-pass entry)."""
    if not point.feasible:
        raise ValueError(f"{point.label}: infeasible; nothing to calibrate")
    if tech is None:
        tech = technology_by_name("default")
    if context is None:
        context = _default_context(workload, width)
    compiled = point.compile_result
    if compiled is None:
        compiled = context.evaluate(
            point.config, keep_compile_result=True
        ).compile_result
    if compiled is None:
        raise ValueError(f"{point.label}: workload does not compile")
    arch = build_architecture_cached(point.config, width)
    breakdown = energy_report(
        arch, compiled.program, tech=tech, max_cycles=max_cycles
    )
    design = elaborate_core(arch, program=compiled.program)
    return CalibrationReport(
        workload=workload.name,
        config=point.config.label(),
        width=width,
        tech=tech.name,
        static_cycles=int(point.cycles),
        simulated_cycles=int(breakdown.cycles),
        energy=breakdown.total,
        deltas=area_deltas(arch, design),
    )


def calibrate(
    workload: IRFunction,
    config: ArchConfig,
    width: int = 16,
    tech: TechnologyParameters | None = None,
    context: EvaluationContext | None = None,
    max_cycles: int = 5_000_000,
) -> CalibrationReport:
    """Standalone calibration of one (workload, config, width)."""
    if context is None:
        context = _default_context(workload, width)
    point = context.evaluate(config, keep_compile_result=True)
    if not point.feasible:
        raise ValueError(
            f"{config.label()}: workload {workload.name!r} does not map"
        )
    return calibrate_point(
        point, workload, width=width, tech=tech, context=context,
        max_cycles=max_cycles,
    )


def format_calibration_report(report: CalibrationReport) -> str:
    """Human-readable calibration table."""
    verdict = "OK" if report.ok else "DRIFT"
    lines = [
        f"calibration {report.workload} @ {report.config} "
        f"(width={report.width}, tech={report.tech}): {verdict}",
        f"  cycles: static={report.static_cycles} "
        f"simulated={report.simulated_cycles} "
        f"delta={report.cycles_delta:+d}",
        f"  energy: {report.energy:.1f}",
        f"  area (modelled): model={report.model_area:.0f} "
        f"rtl={report.rtl_area:.0f} ratio={report.area_ratio:.2f}",
        f"  area (unmodelled rtl): {report.unmodelled_area:.0f} "
        f"(decode + fetch)",
    ]
    for d in report.deltas:
        if d.modelled:
            band = TOLERANCE_BANDS[d.category]
            flag = "ok" if d.within_tolerance else "OUT OF BAND"
            lines.append(
                f"    {d.name:<14} model={d.model_area:>9.1f} "
                f"rtl={d.rtl_area:>9.1f} ratio={d.ratio:.2f} "
                f"[{band[0]:.2f}, {band[1]:.2f}] {flag}"
            )
        else:
            lines.append(
                f"    {d.name:<14} model=        - "
                f"rtl={d.rtl_area:>9.1f} (unmodelled)"
            )
    return "\n".join(lines)
