"""Campaign engine: orchestrated multi-workload design-space sweeps.

Turns the one-shot :func:`repro.explore.explore` call into batched
campaigns — the production layer the MOVE-style toolchains put on top of
their evaluators:

* :class:`CampaignSpec` — declarative (workloads x spaces x widths,
  test-cost / selection switches), JSON round-trip;
* :class:`ResultCache` — on-disk point cache making campaigns
  resumable and re-runs near-free;
* :func:`run_campaign` — the executor, with a process-pool fan-out for
  ``workers > 1`` and a deterministic serial path for ``workers=1``.

Driven from Python or the ``python -m repro`` CLI.
"""

from repro.campaign.cache import (
    CacheStats,
    ResultCache,
    cache_key,
    default_cache_dir,
)
from repro.campaign.runner import (
    CampaignResult,
    RunStats,
    WorkloadRun,
    evaluate_configs,
    run_campaign,
)
from repro.campaign.spec import CampaignSpec

__all__ = [
    "CacheStats",
    "CampaignResult",
    "CampaignSpec",
    "ResultCache",
    "RunStats",
    "WorkloadRun",
    "cache_key",
    "default_cache_dir",
    "evaluate_configs",
    "run_campaign",
]
