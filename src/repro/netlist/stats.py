"""Area and delay annotation of netlists.

These numbers stand in for the paper's Synopsys back-annotation: gate count,
area (NAND2-equivalents) and critical-path delay are derived from the actual
structure, so relative comparisons between candidate components are faithful
even though absolute units are generic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.cells import cell_area, cell_delay
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class NetlistStats:
    """Structural cost summary of one netlist."""

    name: str
    num_gates: int
    num_nets: int
    num_inputs: int
    num_outputs: int
    area: float            # NAND2-equivalent units
    critical_path: float   # normalised delay units
    logic_depth: int       # levels on the deepest path


def netlist_stats(netlist: Netlist) -> NetlistStats:
    """Compute :class:`NetlistStats` for a netlist."""
    area = 0.0
    arrival = [0.0] * netlist.num_nets
    depth = [0] * netlist.num_nets
    for gid in netlist.topological_order():
        gate = netlist.gates[gid]
        fan_in = len(gate.inputs)
        area += cell_area(gate.cell_type, fan_in)
        t_in = max((arrival[n] for n in gate.inputs), default=0.0)
        d_in = max((depth[n] for n in gate.inputs), default=0)
        arrival[gate.output] = t_in + cell_delay(gate.cell_type, fan_in)
        depth[gate.output] = d_in + 1
    critical = max((arrival[po] for po in netlist.outputs), default=0.0)
    logic_depth = max((depth[po] for po in netlist.outputs), default=0)
    return NetlistStats(
        name=netlist.name,
        num_gates=netlist.num_gates,
        num_nets=netlist.num_nets,
        num_inputs=len(netlist.inputs),
        num_outputs=len(netlist.outputs),
        area=round(area, 3),
        critical_path=round(critical, 3),
        logic_depth=logic_depth,
    )
