"""Interconnect test cost and the interconnect-first test plan."""

from repro.explore import ArchConfig, RFConfig, build_architecture
from repro.testcost import architecture_test_cost, schedule_tests
from repro.testcost.interconnect import (
    INTERCONNECT_SESSION,
    interconnect_sessions,
    interconnect_test_cost,
)


def _arch(buses=2):
    return build_architecture(
        ArchConfig(num_buses=buses, rfs=(RFConfig(8), RFConfig(12)))
    )


def test_cost_structure():
    arch = _arch(2)
    cost = interconnect_test_cost(arch)
    assert cost.num_buses == 2
    assert cost.bus_patterns == 2 * 16 + 2
    assert cost.bus_cycles == 2 * cost.bus_patterns * 2
    assert cost.num_connections == arch.num_connections
    assert cost.total == cost.bus_cycles + cost.addressing_cycles


def test_cost_grows_with_buses():
    assert interconnect_test_cost(_arch(3)).total > interconnect_test_cost(
        _arch(1)
    ).total


def test_sessions_have_interconnect_first():
    arch = _arch(2)
    breakdown = architecture_test_cost(arch)
    sessions = interconnect_sessions(arch, breakdown)
    names = [s.name for s in sessions]
    assert names[0] == INTERCONNECT_SESSION
    socket_sessions = [s for s in sessions if s.name.endswith(".sockets")]
    assert socket_sessions
    for s in socket_sessions:
        assert s.after == (INTERCONNECT_SESSION,)


def test_schedule_honours_interconnect_precedence():
    arch = _arch(2)
    breakdown = architecture_test_cost(arch)
    sessions = interconnect_sessions(arch, breakdown)
    schedule = schedule_tests(sessions, num_resources=3)
    ic_end = schedule.window_of(INTERCONNECT_SESSION)[1]
    for s in sessions:
        if s.name != INTERCONNECT_SESSION:
            assert schedule.window_of(s.name)[0] >= ic_end or not s.name.endswith(
                ".sockets"
            )
    # every functional test runs after its socket test, which runs after
    # the interconnect test: total order spot-check on one unit
    alu_socket_start = schedule.window_of("alu0.sockets")[0]
    alu_start = schedule.window_of("alu0")[0]
    assert alu_socket_start >= ic_end
    assert alu_start >= schedule.window_of("alu0.sockets")[1]


def test_single_resource_total_is_sum():
    arch = _arch(2)
    breakdown = architecture_test_cost(arch)
    sessions = interconnect_sessions(arch, breakdown)
    schedule = schedule_tests(sessions, num_resources=1)
    assert schedule.makespan == sum(s.cycles for s in sessions)
    assert schedule.makespan == (
        interconnect_test_cost(arch).total + breakdown.total
    )
