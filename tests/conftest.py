"""Shared fixtures: small architectures, deterministic RNG, cached IR."""

from __future__ import annotations

import random

import pytest

from repro.components.library import (
    alu_spec,
    cmp_spec,
    imm_spec,
    lsu_spec,
    mul_spec,
    pc_spec,
    rf_spec,
)
from repro.tta.arch import Architecture, UnitInstance


def make_arch(
    num_buses: int = 2,
    width: int = 16,
    rf_setups: tuple[tuple[int, int, int], ...] = ((8, 1, 1),),
    num_alus: int = 1,
    with_mul: bool = False,
    name: str | None = None,
) -> Architecture:
    """Small-architecture factory used across the suite.

    ``rf_setups`` entries are (num_regs, read_ports, write_ports).
    """
    units = []
    for i in range(num_alus):
        units.append(UnitInstance(f"alu{i}", alu_spec(width)))
    units.append(UnitInstance("cmp0", cmp_spec(width)))
    if with_mul:
        units.append(UnitInstance("mul0", mul_spec(width)))
    for i, (regs, rp, wp) in enumerate(rf_setups):
        units.append(
            UnitInstance(f"rf{i}", rf_spec(regs, width, read_ports=rp, write_ports=wp))
        )
    units.append(UnitInstance("lsu0", lsu_spec(width)))
    units.append(UnitInstance("pc", pc_spec(width)))
    units.append(UnitInstance("imm0", imm_spec(width)))
    return Architecture(
        name=name or f"test-b{num_buses}",
        width=width,
        num_buses=num_buses,
        units=units,
    )


@pytest.fixture
def arch2() -> Architecture:
    """Default two-bus test architecture."""
    return make_arch(2)


@pytest.fixture
def arch3() -> Architecture:
    """Three-bus architecture with two RFs (Fig. 9 flavour)."""
    return make_arch(3, rf_setups=((8, 1, 1), (12, 1, 1)))


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
