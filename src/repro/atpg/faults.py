"""Single stuck-at fault model with structural equivalence collapsing.

Fault sites follow the classic convention: one pair of faults per *stem*
(every driven or primary-input net) and one pair per *branch* (a gate
input pin whose source net fans out to more than one load; single-load
pins are identical to their stem).

Equivalence collapsing applies the standard gate-local rules

* BUF:  in s-a-v  ==  out s-a-v          * NOT:  in s-a-v  ==  out s-a-(1-v)
* AND:  in s-a-0  ==  out s-a-0          * NAND: in s-a-0  ==  out s-a-1
* OR:   in s-a-1  ==  out s-a-1          * NOR:  in s-a-1  ==  out s-a-0

via union-find, keeping one representative per class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.cells import CellType
from repro.netlist.netlist import Netlist


@dataclass(frozen=True)
class Fault:
    """One single stuck-at fault.

    ``gate``/``pin`` are set for branch (gate-input) faults and ``None``
    for stem faults; ``net`` is always the electrical net of the site.
    """

    net: int
    stuck_at: int
    gate: int | None = None
    pin: int | None = None

    @property
    def is_branch(self) -> bool:
        return self.gate is not None

    def describe(self, netlist: Netlist) -> str:
        base = f"{netlist.net_name(self.net)} s-a-{self.stuck_at}"
        if self.is_branch:
            return f"{base} @ gate g{self.gate}.pin{self.pin}"
        return base


def enumerate_faults(netlist: Netlist) -> list[Fault]:
    """All stem and branch stuck-at faults of a netlist (uncollapsed)."""
    faults: list[Fault] = []
    for net in netlist.nets:
        is_stem = net.driver is not None or net.nid in netlist.inputs
        is_used = net.fanout or net.nid in netlist.outputs
        if is_stem and is_used:
            faults.append(Fault(net.nid, 0))
            faults.append(Fault(net.nid, 1))
    for gate in netlist.gates:
        for pin, src in enumerate(gate.inputs):
            if len(netlist.nets[src].fanout) > 1:
                faults.append(Fault(src, 0, gate=gate.gid, pin=pin))
                faults.append(Fault(src, 1, gate=gate.gid, pin=pin))
    return faults


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[Fault, Fault] = {}

    def find(self, item: Fault) -> Fault:
        parent = self._parent.setdefault(item, item)
        if parent is item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: Fault, b: Fault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


#: (equivalent input value, output value) per collapsible cell type.
_EQUIV_RULES: dict[CellType, tuple[int, int]] = {
    CellType.AND: (0, 0),
    CellType.NAND: (0, 1),
    CellType.OR: (1, 1),
    CellType.NOR: (1, 0),
}


def collapse_faults(
    netlist: Netlist, faults: list[Fault] | None = None
) -> tuple[list[Fault], dict[Fault, Fault]]:
    """Equivalence-collapse a fault list.

    Returns ``(representatives, class_map)`` where ``class_map`` sends
    every original fault to its class representative.
    """
    if faults is None:
        faults = enumerate_faults(netlist)
    fault_set = set(faults)
    uf = _UnionFind()

    def pin_fault(gate_id: int, pin: int, src: int, value: int) -> Fault:
        branch = Fault(src, value, gate=gate_id, pin=pin)
        if branch in fault_set:
            return branch
        return Fault(src, value)

    for gate in netlist.gates:
        out = gate.output
        out0, out1 = Fault(out, 0), Fault(out, 1)
        if out0 not in fault_set:
            continue
        if gate.cell_type is CellType.BUF:
            uf.union(out0, pin_fault(gate.gid, 0, gate.inputs[0], 0))
            uf.union(out1, pin_fault(gate.gid, 0, gate.inputs[0], 1))
        elif gate.cell_type is CellType.NOT:
            uf.union(out1, pin_fault(gate.gid, 0, gate.inputs[0], 0))
            uf.union(out0, pin_fault(gate.gid, 0, gate.inputs[0], 1))
        elif gate.cell_type in _EQUIV_RULES:
            in_val, out_val = _EQUIV_RULES[gate.cell_type]
            out_fault = out1 if out_val else out0
            for pin, src in enumerate(gate.inputs):
                candidate = pin_fault(gate.gid, pin, src, in_val)
                if candidate in fault_set:
                    uf.union(out_fault, candidate)

    class_map = {f: uf.find(f) for f in faults}
    seen: set[Fault] = set()
    representatives: list[Fault] = []
    for f in faults:
        rep = class_map[f]
        if rep not in seen:
            seen.add(rep)
            representatives.append(rep)
    return representatives, class_map
