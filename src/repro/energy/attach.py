"""The energy post-pass: annotate evaluated points with real energy.

Mirrors :func:`repro.testcost.cost.attach_test_costs` — the study engine
runs it on the base-objective Pareto front when the objective vector
contains ``energy`` or ``edp``.  For each feasible point the workload is
compiled onto the point's architecture (through the sweep's shared
:class:`~repro.explore.evaluate.EvaluationContext`, so register
allocations are reused) and simulated once with activity tracing; the
resulting breakdown total becomes ``point.energy``.

A per-process memo keyed on (workload, config, width, technology)
serves repeated attachments — the same key the campaign
:class:`~repro.campaign.cache.ResultCache` persists across runs.
"""

from __future__ import annotations

import hashlib

from repro.compiler.interp import IRInterpreter
from repro.compiler.ir import IRFunction
from repro.energy.model import TechnologyParameters, technology_by_name
from repro.energy.report import EnergyBreakdown, energy_report
from repro.explore.evaluate import EvaluatedPoint, EvaluationContext
from repro.explore.space import build_architecture_cached

#: (workload fp, profile fp, config, width, tech fp) -> breakdown total.
_ENERGY_CACHE: dict[tuple, float] = {}


def _default_context(
    workload: IRFunction, width: int
) -> "EvaluationContext":
    """A context with the workload's real profile.

    The profile steers register allocation (hot vregs win registers),
    so compiling with an empty profile would yield a *different
    program* — and a different energy — than the study engine's path.
    Standalone callers must get the same numbers a study attaches.
    """
    profile = IRInterpreter(workload, width=width).run().block_counts
    return EvaluationContext(workload, profile, width)


def _workload_fingerprint(workload: IRFunction) -> str:
    """Content hash of an IR function's observable behaviour.

    The memo must not key on ``workload.name`` alone — two IR builds
    can share a name with different inputs baked in (``build_gcd_ir``
    with different operands) and would otherwise serve each other's
    energies.  Blocks keep insertion order, and every op/terminator has
    a stable textual form.
    """
    digest = hashlib.sha256()
    digest.update(f"{workload.name}/{workload.entry}".encode())
    for block in workload.block_order():
        digest.update(f"\n#{block.name}".encode())
        for op in block.ops:
            digest.update(f"\n{op}".encode())
        digest.update(f"\n->{block.terminator}".encode())
    for addr in sorted(workload.data):
        digest.update(f"\n@{addr}={workload.data[addr]}".encode())
    return digest.hexdigest()


def energy_breakdown_of(
    point: EvaluatedPoint,
    workload: IRFunction,
    width: int = 16,
    tech: TechnologyParameters | None = None,
    context: EvaluationContext | None = None,
    max_cycles: int = 5_000_000,
    metrics=None,
) -> EnergyBreakdown:
    """Full component-level breakdown for one feasible point."""
    if not point.feasible:
        raise ValueError(f"{point.label} is infeasible; no energy to report")
    if tech is None:
        tech = technology_by_name("default")
    if context is None:
        context = _default_context(workload, width)
    arch = build_architecture_cached(point.config, width)
    compiled = point.compile_result
    if compiled is None:
        compiled = context.evaluate(
            point.config, keep_compile_result=True
        ).compile_result
    if compiled is None:
        raise ValueError(f"{point.label}: workload does not compile")
    return energy_report(
        arch, compiled.program, tech=tech, max_cycles=max_cycles,
        metrics=metrics,
    )


def attach_energy(
    points: list[EvaluatedPoint],
    workload: IRFunction,
    width: int = 16,
    tech: TechnologyParameters | None = None,
    context: EvaluationContext | None = None,
    max_cycles: int = 5_000_000,
    metrics=None,
) -> list[EvaluatedPoint]:
    """Annotate feasible points with switching-activity energy.

    Infeasible points are skipped (their ``energy`` stays None), and
    points that already carry an energy — restored from a result cache
    with a matching technology tag — are not re-simulated.

    ``metrics`` (a :class:`repro.telemetry.MetricsCollector`) counts
    memo hits vs fresh simulations (``energy_memo_hits`` /
    ``energy_simulated``) and feeds the ``simulate``/``energy_model``
    phase timers; ``None`` skips all bookkeeping.
    """
    if tech is None:
        tech = technology_by_name("default")
    fingerprint = tech.fingerprint()
    workload_id = _workload_fingerprint(workload)
    shared = context or _default_context(workload, width)
    # The profile shapes register allocation and therefore the compiled
    # program, so it is part of the memo identity (a caller-supplied
    # context may carry any profile).
    profile_id = tuple(sorted(shared.profile.items()))
    for point in points:
        if not point.feasible or point.energy is not None:
            continue
        key = (workload_id, profile_id, point.config, width, fingerprint)
        cached = _ENERGY_CACHE.get(key)
        if cached is None:
            if metrics is not None:
                metrics.count("energy_simulated")
            breakdown = energy_breakdown_of(
                point,
                workload,
                width=width,
                tech=tech,
                context=shared,
                max_cycles=max_cycles,
                metrics=metrics,
            )
            cached = round(breakdown.total, 3)
            _ENERGY_CACHE[key] = cached
        elif metrics is not None:
            metrics.count("energy_memo_hits")
        point.energy = cached
    return points
