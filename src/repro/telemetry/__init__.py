"""``repro.telemetry`` — opt-in tracing and metrics for the study stack.

Three small, zero-dependency pieces:

* :class:`Tracer` — structured span/event records (monotonic
  timestamps, study/run/wave/config ids) onto a JSONL sink, under the
  documented, versioned schema of :mod:`repro.telemetry.schema`;
* :class:`MetricsCollector` — disjoint phase timers (compile,
  schedule, regalloc, timing-validate, simulate, netlist-stats,
  test-cost, energy) and integer counters, with picklable snapshots so
  process-pool workers report their share for merging on wave
  completion;
* :func:`summarize_trace` / :func:`format_trace_summary` — offline
  analysis of a recorded run (the ``python -m repro trace summarize``
  subcommand).

Telemetry is strictly opt-in and result-equivalent: every instrumented
call site defaults to ``tracer=None`` / ``metrics=None`` and produces
identical fronts and cache contents either way.
"""

from repro.telemetry.metrics import (
    PHASES,
    MetricsCollector,
    format_phases,
    merge_snapshots,
)
from repro.telemetry.schema import (
    SCHEMA_VERSION,
    read_trace,
    validate_record,
)
from repro.telemetry.summarize import (
    format_trace_summary,
    load_trace,
    summarize_trace,
)
from repro.telemetry.tracer import Tracer

__all__ = [
    "MetricsCollector",
    "PHASES",
    "SCHEMA_VERSION",
    "Tracer",
    "format_phases",
    "format_trace_summary",
    "load_trace",
    "merge_snapshots",
    "read_trace",
    "summarize_trace",
    "validate_record",
]
