"""Program-counter unit netlist.

The PC is an FU in a TTA: writing its trigger port performs a jump
(conditionally, under a guard).  The combinational core is the next-PC
logic: increment or jump-target select; the PC register itself is a
pseudo-input/pseudo-output pair, like every pipeline register.

Like the LD/ST unit, the PC appears exactly once in every architecture and
is excluded from the cost *ranking* but present in Table 1's scan columns.

PIs: ``pc_q[width]`` (present PC), ``target[width]`` (T), ``jump``
(trigger strobe), ``guard`` (predicate).  POs: ``pc_d[width]`` (next PC).
"""

from __future__ import annotations

from repro.netlist.builder import WordBuilder
from repro.netlist.netlist import Netlist


def build_pc(width: int = 16, name: str = "pc") -> Netlist:
    """Build the next-PC logic netlist."""
    if width < 2:
        raise ValueError(f"PC width must be >= 2, got {width}")
    wb = WordBuilder(f"{name}{width}")
    pc_q = wb.input_word("pc_q", width)
    target = wb.input_word("target", width)
    jump = wb.input_bit("jump")
    guard = wb.input_bit("guard")

    inc, _carry = wb.incrementer(pc_q)
    take = wb.and_(jump, guard)
    pc_d = wb.mux2_word(take, inc, target)
    wb.output_word("pc_d", pc_d)
    wb.netlist.check()
    return wb.netlist
