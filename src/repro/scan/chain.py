"""Scan-chain bookkeeping.

A :class:`ScanChain` is an ordered list of (component, flip-flop count)
segments.  The paper adopts the single-chain configuration: "all scan
chains are connected to one single scan chain, so that the total test cost
of the architecture equals the sum of the test cycles of the components".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ScanChain:
    """One scan chain built from named segments."""

    name: str = "chain"
    segments: list[tuple[str, int]] = field(default_factory=list)

    def add_segment(self, component: str, ff_bits: int) -> None:
        if ff_bits < 0:
            raise ValueError("segment length cannot be negative")
        self.segments.append((component, ff_bits))

    @property
    def length(self) -> int:
        """``n_l``: total scan cells on the chain."""
        return sum(bits for _name, bits in self.segments)

    def offset_of(self, component: str) -> int:
        """Shift position of a component's first cell (for diagnosis)."""
        offset = 0
        for name, bits in self.segments:
            if name == component:
                return offset
            offset += bits
        raise KeyError(f"component {component!r} not on chain {self.name!r}")


def stitch_chains(chains: list[ScanChain], name: str = "top") -> ScanChain:
    """Concatenate chains into the paper's single-chain configuration."""
    top = ScanChain(name)
    for chain in chains:
        for component, bits in chain.segments:
            top.add_segment(f"{chain.name}.{component}", bits)
    return top
