"""Cross-study in-flight dedupe over the shared result cache.

Two tenants submitting overlapping studies is the service's common
case — the same ``(workload, config, width)`` point appears in both.
The :class:`~repro.campaign.cache.ResultCache` already collapses
*sequential* overlap (the second study hits what the first wrote), but
concurrent studies race: both miss, both evaluate, one write wins.
Correct — the entries are identical — but the evaluation ran twice.

:class:`InflightIndex` closes the race with single-flight claims: the
first study to miss a key *claims* it and evaluates; any other study
missing the same key *waits* on the claim, then re-reads the cache and
gets a hit.  :class:`DedupeCache` is the per-job wrapper that wires
the index into the engine — it has the exact ``get``/``put`` surface
of ``ResultCache``, so a :class:`~repro.study.engine.Study` uses it
without knowing the service exists.

Waits are bounded and cancellable: a waiter polls its job's
:class:`~repro.resilience.checkpoint.CancelToken` while waiting and
gives up after ``wait_timeout`` seconds (falling back to evaluating
the point itself — duplicated work, never a deadlock).  A job that
dies mid-claim releases everything it owned
(:meth:`InflightIndex.release_owner`), waking its waiters immediately.
"""

from __future__ import annotations

import threading

from repro.campaign.cache import cache_key

__all__ = ["DedupeCache", "InflightIndex"]


class InflightIndex:
    """Single-flight claims on cache keys, shared across jobs.

    Thread-safe: jobs run in worker threads and hit the index
    concurrently.  Counters (``claims``, ``coalesced``,
    ``wait_timeouts``) feed the ``stats`` op and the service-smoke
    assertions — ``coalesced`` is exactly the number of evaluations the
    index saved.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._claims: dict[str, tuple[str, threading.Event]] = {}
        self.claims = 0
        self.coalesced = 0
        self.wait_timeouts = 0

    def claim(self, key: str, owner: str) -> threading.Event | None:
        """Claim ``key`` for ``owner``; None when the claim is ours.

        A non-None return is the *other* owner's completion event —
        wait on it, then re-read the cache.  An owner re-claiming its
        own key (a retry policy re-evaluating a failed point) keeps the
        claim and proceeds.
        """
        with self._lock:
            held = self._claims.get(key)
            if held is None:
                self._claims[key] = (owner, threading.Event())
                self.claims += 1
                return None
            if held[0] == owner:
                return None
            return held[1]

    def resolve(self, key: str) -> None:
        """Release one key (its result is in the cache); wake waiters."""
        with self._lock:
            held = self._claims.pop(key, None)
        if held is not None:
            held[1].set()

    def release_owner(self, owner: str) -> int:
        """Release every claim ``owner`` still holds (job teardown).

        Claims normally resolve put-by-put; this sweeps what a failed,
        cancelled or killed job left behind so its waiters stop waiting
        for a result that will never arrive.  Returns the number
        released.
        """
        with self._lock:
            stale = [
                key for key, (held_owner, _) in self._claims.items()
                if held_owner == owner
            ]
            events = [self._claims.pop(key)[1] for key in stale]
        for event in events:
            event.set()
        return len(events)

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "claims": self.claims,
                "coalesced": self.coalesced,
                "wait_timeouts": self.wait_timeouts,
                "in_flight": len(self._claims),
            }


class DedupeCache:
    """One job's view of the shared cache, with single-flight misses.

    Same ``get``/``put`` signatures as :class:`~repro.campaign.cache.
    ResultCache` (and a ``stats`` passthrough), so the study engine
    treats it as the cache it was given.  ``owner`` is the job id;
    ``token`` its cancel token, polled while waiting on another job's
    claim.
    """

    #: How long a waiter trusts another job to finish one point before
    #: evaluating it itself.  Generous — a point is seconds, not
    #: minutes — because the timeout is a deadlock backstop, not a
    #: performance knob; claim teardown is what normally wakes waiters.
    WAIT_TIMEOUT = 120.0

    _POLL = 0.05

    def __init__(
        self,
        inner,
        index: InflightIndex,
        owner: str,
        token=None,
        wait_timeout: float | None = None,
    ) -> None:
        self.inner = inner
        self.index = index
        self.owner = owner
        self.token = token
        self.wait_timeout = (
            self.WAIT_TIMEOUT if wait_timeout is None else wait_timeout
        )

    @property
    def stats(self):
        return getattr(self.inner, "stats", None)

    def get(
        self,
        workload: str,
        config,
        width: int,
        march: str | None = None,
        energy_model: str | None = None,
    ):
        point = self.inner.get(workload, config, width, march, energy_model)
        if point is not None:
            return point
        key = cache_key(workload, config, width)
        done = self.index.claim(key, self.owner)
        if done is None:
            # Our claim: report the miss so our job evaluates the point
            # (the eventual put resolves the claim).
            return None
        waited = 0.0
        while waited < self.wait_timeout:
            if done.wait(self._POLL):
                fresh = self.inner.get(
                    workload, config, width, march, energy_model
                )
                if fresh is not None:
                    self.index.coalesced += 1
                return fresh
            waited += self._POLL
            if self.token is not None and self.token.cancelled:
                return None
        self.index.wait_timeouts += 1
        return None

    def put(
        self,
        workload: str,
        point,
        width: int,
        march: str | None = None,
        energy_model: str | None = None,
    ) -> None:
        self.inner.put(workload, point, width, march, energy_model)
        self.index.resolve(cache_key(workload, point.config, width))

    def release(self) -> int:
        """Drop every claim this job still holds (call at job end)."""
        return self.index.release_owner(self.owner)
