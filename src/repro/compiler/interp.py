"""IR reference interpreter and block-frequency profiler.

Two jobs:

* **golden execution** — IR-authored workloads (the Crypt kernel) are
  validated against their pure-Python references before any TTA is
  involved, so compiler bugs and workload bugs cannot hide each other;
* **profiling** — per-block execution counts feed the explorer's cycle
  estimate (``cycles = sum(block_schedule_length * block_count)``),
  exactly the role profiling plays inside the MOVE framework.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.components.reference import (
    alu_reference,
    cmp_reference,
    lsu_extend_reference,
    mul_reference,
)
from repro.compiler.ir import (
    ALU_OPCODES,
    CMP_OPCODES,
    LOAD_OPCODES,
    Branch,
    Halt,
    IRError,
    IRFunction,
    Jump,
)
from repro.util.bitops import mask

_LOAD_MODE = {
    "ld": "word",
    "ld_ls": "low_signed",
    "ld_lu": "low_unsigned",
    "ld_h": "high",
}


@dataclass
class InterpResult:
    """Final machine state plus the profile."""

    regs: dict[str, int]
    memory: dict[int, int]
    block_counts: dict[str, int]
    ops_executed: int
    halted: bool

    def count(self, block: str) -> int:
        return self.block_counts.get(block, 0)


@dataclass
class IRInterpreter:
    """Executes an :class:`IRFunction` at a given word width."""

    fn: IRFunction
    width: int = 16
    max_ops: int = 10_000_000
    regs: dict[str, int] = field(default_factory=dict)
    memory: dict[int, int] = field(default_factory=dict)

    def _value(self, operand: str | int | None) -> int:
        if operand is None:
            raise IRError("missing operand")
        if isinstance(operand, int):
            return operand & mask(self.width)
        try:
            return self.regs[operand]
        except KeyError:
            raise IRError(f"read of undefined vreg {operand!r}") from None

    def run(self, initial_regs: dict[str, int] | None = None) -> InterpResult:
        self.fn.validate()
        m = mask(self.width)
        self.regs = {k: v & m for k, v in (initial_regs or {}).items()}
        self.memory = dict(self.fn.data)
        counts: dict[str, int] = {}
        executed = 0
        halted = False

        block = self.fn.blocks[self.fn.entry]
        while True:
            counts[block.name] = counts.get(block.name, 0) + 1
            for op in block.ops:
                executed += 1
                if executed > self.max_ops:
                    raise IRError(f"op budget exceeded in {self.fn.name}")
                self._execute(op)
            term = block.terminator
            if isinstance(term, Halt):
                halted = True
                break
            if isinstance(term, Jump):
                block = self.fn.blocks[term.target]
                continue
            assert isinstance(term, Branch)
            taken = bool(self._value(term.cond)) ^ term.invert
            block = self.fn.blocks[term.if_true if taken else term.if_false]

        return InterpResult(
            regs=dict(self.regs),
            memory=dict(self.memory),
            block_counts=counts,
            ops_executed=executed,
            halted=halted,
        )

    def _execute(self, op) -> None:
        m = mask(self.width)
        if op.opcode == "li":
            self.regs[op.dst] = int(op.a) & m
            return
        if op.opcode == "mov":
            self.regs[op.dst] = self._value(op.a)
            return
        if op.opcode in ALU_OPCODES:
            self.regs[op.dst] = alu_reference(
                op.opcode, self._value(op.a), self._value(op.b), self.width
            )
            return
        if op.opcode == "mul":
            self.regs[op.dst] = mul_reference(
                self._value(op.a), self._value(op.b), self.width
            )
            return
        if op.opcode in CMP_OPCODES:
            self.regs[op.dst] = cmp_reference(
                op.opcode, self._value(op.a), self._value(op.b), self.width
            )
            return
        if op.opcode in LOAD_OPCODES:
            addr = self._value(op.a)
            raw = self.memory.get(addr, 0)
            self.regs[op.dst] = lsu_extend_reference(
                _LOAD_MODE[op.opcode], raw, self.width
            )
            return
        if op.opcode == "st":
            self.memory[self._value(op.a)] = self._value(op.b)
            return
        raise IRError(f"interpreter cannot execute {op.opcode!r}")
