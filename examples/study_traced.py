#!/usr/bin/env python3
"""One study, fully observed: trace, phase timers, cache accounting.

Telemetry is strictly opt-in — passing a ``Tracer`` and
``collect_metrics=True`` changes no results (the tests pin front and
cache equality on vs off), it only records what happened:

* a JSONL trace with study/run/search spans plus one ``point`` event
  per evaluated configuration (the evaluation stream),
* disjoint phase timers (build, netlist_stats, regalloc, schedule,
  validate, test_cost, ...) whose seconds sum to at most the run's
  elapsed wall clock,
* counters obeying ``proposed == cache_hits + evaluated``.

The same instrumentation runs from the shell as:

    python -m repro study --workloads gcd --space small \
        --objectives area,cycles,test_cost \
        --trace study.jsonl --metrics-out metrics.json
    python -m repro trace summarize study.jsonl

Run:  python examples/study_traced.py
"""

import tempfile
from pathlib import Path

from repro import (
    ResultCache,
    StudySpec,
    Tracer,
    load_trace,
    run_study,
    summarize_trace,
)
from repro.telemetry import format_phases, format_trace_summary

workdir = Path(tempfile.mkdtemp(prefix="repro-traced-"))
trace_path = workdir / "study.jsonl"

spec = StudySpec(
    name="traced-demo",
    workloads=("gcd",),
    space="small",
    objectives=("area", "cycles", "test_cost"),
    select=True,
)

# ---------------------------------------------------------------- run
with Tracer(trace_path) as tracer:
    result = run_study(
        spec,
        cache=ResultCache(workdir / "cache"),
        tracer=tracer,
        collect_metrics=True,
    )

print(result.summary())
print()

# ------------------------------------------------- what was measured
stats = result.single.stats
print("phase breakdown (seconds sum <= elapsed "
      f"{stats.elapsed:.3f}s of the serial run):")
print(format_phases({"phases": stats.phases}, indent="  "))
counters = stats.counters
assert counters["proposed"] == counters["cache_hits"] + counters["evaluated"]
print(f"counters: proposed={counters['proposed']} = "
      f"cache_hits={counters['cache_hits']} + "
      f"evaluated={counters['evaluated']}")
print()

# ------------------------------------------- offline trace analysis
records = load_trace(trace_path)          # schema-validates every line
kinds = {}
for record in records:
    kinds[record["name"]] = kinds.get(record["name"], 0) + 1
print(f"trace: {len(records)} records in {trace_path.name} — "
      + ", ".join(f"{n} {k}" for k, n in sorted(kinds.items())))
points = [r for r in records if r["name"] == "point"]
print(f"point stream: {len(points)} evaluations, e.g. "
      f"{points[0]['config']} -> {points[0]['data']}")
print()
print(format_trace_summary(summarize_trace(records)))
