"""repro — Design and Test Space Exploration of Transport-Triggered Architectures.

A from-scratch reproduction of Zivkovic, Tangelder & Kerkhoff (DATE 2000):
a MOVE-style TTA co-design flow (architecture template, compiler,
cycle-accurate simulator), a gate-level component library with its own
ATPG, and the paper's analytical test-cost model that turns design space
exploration from (area, time) into (area, time, test).

Quickstart — the paper's whole flow is one declarative study::

    from repro import StudySpec, run_study

    result = run_study(StudySpec(
        name="paper",
        workloads=("crypt",),
        space="crypt",
        objectives=("area", "cycles", "test_cost"),
        select=True,
    ))
    print(result.selection.point.label)

Objectives and search strategies are registries (``register_objective``,
``register_strategy``) — the ``energy``/``edp`` axes ride on a
switching-activity model fed by simulator transport traces
(:mod:`repro.energy`), and technology parameter sets are a registry
too (``register_technology``).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

__version__ = "1.0.0"

# Architecture + simulation
from repro.tta import (
    Architecture,
    Guard,
    Instruction,
    Literal,
    Move,
    PortRef,
    Program,
    SimResult,
    TTASimulator,
    UnitInstance,
    assemble,
    validate_program,
)

# Components
from repro.components import (
    ComponentKind,
    ComponentSpec,
    component_datasheet,
    default_catalog,
)

# Compiler
from repro.compiler import (
    CompileResult,
    IRBuilder,
    IRFunction,
    IRInterpreter,
    compile_ir,
    optimize_ir,
)

# ATPG / memory test / scan
from repro.atpg import ATPGResult, FaultDictionary, run_atpg
from repro.memtest import MARCH_ALGORITHMS, MARCH_CM, run_march
from repro.scan import full_scan_cycles
from repro.tta.encoding import MoveEncoder

# Workloads
from repro.apps import (
    build_checksum_ir,
    build_crypt_ir,
    build_dotprod_ir,
    build_fir_ir,
    build_gcd_ir,
    crypt_output_from_memory,
    unix_crypt,
)

# Exploration + test cost + energy + selection
from repro.explore import (
    ArchConfig,
    EvaluatedPoint,
    EvaluationContext,
    ExplorationResult,
    RFConfig,
    build_architecture,
    crypt_space,
    pareto_filter,
    pareto_filter_naive,
    select_architecture,
    small_space,
)
from repro.energy import (
    EnergyBreakdown,
    TechnologyParameters,
    attach_energy,
    energy_report,
    format_energy_report,
    register_technology,
    technology_names,
)
from repro.testcost import (
    architecture_test_cost,
    attach_test_costs,
    build_table1,
    format_table1,
    schedule_tests,
    sessions_from_breakdown,
    transport_latency,
)

# Campaign engine (also behind the `python -m repro` CLI)
from repro.apps.registry import build_workload, workload_names
from repro.campaign import (
    CampaignResult,
    CampaignSpec,
    ResultCache,
    run_campaign,
)
from repro.explore.space import dsp_space, space_by_name, space_names

# Study engine — the declarative entry point over everything above
from repro.study import (
    Objective,
    Study,
    StudyResult,
    StudySpec,
    objective_names,
    pareto_front,
    register_objective,
    register_strategy,
    run_study,
    strategy_names,
)

# VLIW extension
from repro.vliw import fig7_template, test_order, vliw_test_cost

# Result export
from repro.reporting import (
    exploration_to_csv,
    exploration_to_json,
    study_to_json,
    table1_to_csv,
    table1_to_json,
)
from repro.telemetry import (
    MetricsCollector,
    Tracer,
    load_trace,
    summarize_trace,
)

__all__ = [
    "ATPGResult",
    "ArchConfig",
    "Architecture",
    "CampaignResult",
    "CampaignSpec",
    "CompileResult",
    "ComponentKind",
    "ComponentSpec",
    "EnergyBreakdown",
    "EvaluatedPoint",
    "EvaluationContext",
    "ExplorationResult",
    "Guard",
    "IRBuilder",
    "IRFunction",
    "IRInterpreter",
    "Instruction",
    "Literal",
    "MARCH_ALGORITHMS",
    "MARCH_CM",
    "MetricsCollector",
    "Move",
    "Objective",
    "PortRef",
    "Program",
    "RFConfig",
    "ResultCache",
    "SimResult",
    "TechnologyParameters",
    "Study",
    "StudyResult",
    "StudySpec",
    "TTASimulator",
    "Tracer",
    "UnitInstance",
    "architecture_test_cost",
    "assemble",
    "attach_energy",
    "attach_test_costs",
    "build_architecture",
    "build_checksum_ir",
    "build_crypt_ir",
    "build_dotprod_ir",
    "build_fir_ir",
    "build_gcd_ir",
    "build_table1",
    "build_workload",
    "compile_ir",
    "component_datasheet",
    "crypt_output_from_memory",
    "crypt_space",
    "default_catalog",
    "dsp_space",
    "energy_report",
    "exploration_to_csv",
    "exploration_to_json",
    "FaultDictionary",
    "fig7_template",
    "format_table1",
    "table1_to_csv",
    "table1_to_json",
    "format_energy_report",
    "full_scan_cycles",
    "load_trace",
    "MoveEncoder",
    "objective_names",
    "optimize_ir",
    "pareto_filter",
    "pareto_filter_naive",
    "pareto_front",
    "register_objective",
    "register_strategy",
    "register_technology",
    "run_atpg",
    "run_campaign",
    "run_march",
    "run_study",
    "schedule_tests",
    "select_architecture",
    "sessions_from_breakdown",
    "small_space",
    "space_by_name",
    "space_names",
    "strategy_names",
    "study_to_json",
    "summarize_trace",
    "technology_names",
    "test_order",
    "transport_latency",
    "unix_crypt",
    "validate_program",
    "vliw_test_cost",
    "workload_names",
]
