"""Bus-oriented VLIW ASIP extension (paper Sec. 3.2, Fig. 7).

"Our approach can be extended to any type of regular bus-oriented VLIW
ASIP architectures ... a few modifications are required if the
components are connected to the bus through other components: the order
of testing the components becomes relevant and a different set-up of the
control signals has to take place."

This package models the Fig. 7 template — register file, execution
units, data cache on shared buses — where some components are only
*indirectly* accessible, derives the required test order, and prices the
test with the same eq. 11-style transport costs plus a path-length
multiplier for indirect access.
"""

from repro.vliw.arch import VLIWComponent, VLIWTemplate, fig7_template
from repro.vliw.testaccess import (
    AccessPath,
    TestOrderError,
    test_access_paths,
    test_order,
    vliw_test_cost,
)

__all__ = [
    "AccessPath",
    "TestOrderError",
    "VLIWComponent",
    "VLIWTemplate",
    "fig7_template",
    "test_access_paths",
    "test_order",
    "vliw_test_cost",
]
