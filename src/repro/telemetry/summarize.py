"""Offline trace analysis: turn a recorded JSONL run into tables.

``python -m repro trace summarize FILE.jsonl`` renders what this module
computes: per-run (and whole-trace) phase time tables from the
``metrics`` events, a cache report from the ``cache`` events and point
stream, span/wave accounting, and — for traces written by the study
server — a **job join**: schema-v2 records stamped with ``job``/
``tenant`` ids group server-side lifecycle events (``job_state``,
``queue``, ``metric_snapshot``) with the study-layer runs the job
executed, so one trace answers "what did tenant a's job actually do".
All of it without touching the study stack, so traces can be analysed
on machines that never ran a study.

The summary dict is JSON-safe by construction (``--format json``
round-trips it).
"""

from __future__ import annotations

from pathlib import Path

from repro.telemetry.histogram import Histogram
from repro.telemetry.metrics import format_phases, merge_snapshots
from repro.telemetry.schema import read_trace


def load_trace(path: str | Path) -> list[dict]:
    """Read and schema-validate one trace file."""
    with Path(path).open() as handle:
        return read_trace(handle)


def summarize_trace(records: list[dict]) -> dict:
    """Aggregate one validated record list.

    Returns a plain, JSON-safe dict: ``study`` (name or None),
    ``records``, ``spans`` (name -> {count, seconds}), ``runs`` — one
    entry per run label with its merged metrics snapshot, wave/point
    accounting, cache delta and (for service traces) the owning
    job/tenant — plus ``jobs`` (the service-side join: lifecycle
    transitions, queue actions, run labels and registry snapshots per
    job id), ``metric_snapshots`` (count + the last registry dump) and
    ``metrics``, the all-run merge.
    """
    study = None
    spans: dict[str, dict] = {}
    runs: dict[str, dict] = {}
    jobs: dict[str, dict] = {}
    snapshot_count = 0
    last_snapshot = None

    def run_entry(label: str) -> dict:
        entry = runs.get(label)
        if entry is None:
            entry = runs[label] = {
                "label": label,
                "job": None,
                "tenant": None,
                "waves": 0,
                "points": 0,
                "cached_points": 0,
                "metrics": None,
                "cache": None,
                "seconds": None,
                "failures": [],
                "retries": 0,
                "interrupted": None,
                "calibrations": [],
            }
        return entry

    def job_entry(job_id: str) -> dict:
        entry = jobs.get(job_id)
        if entry is None:
            entry = jobs[job_id] = {
                "job": job_id,
                "tenant": None,
                "states": [],
                "queue": {},
                "runs": [],
                "snapshots": 0,
            }
        return entry

    for record in records:
        study = record.get("study", study)
        name = record["name"]
        label = record.get("run")
        job_id = record.get("job")
        tenant = record.get("tenant")
        data = record.get("data", {})
        if job_id is None and name in ("job_state", "queue"):
            # v1 service traces: the job id rode the ``run`` field and
            # the tenant rode ``data`` — still joinable.
            job_id = label
            tenant = tenant or data.get("tenant")

        if job_id is not None:
            job = job_entry(job_id)
            if tenant is not None:
                job["tenant"] = tenant
            if name == "job_state" and data.get("state"):
                job["states"].append(data["state"])
            elif name == "queue" and data.get("action"):
                action = data["action"]
                job["queue"][action] = job["queue"].get(action, 0) + 1

        if record["kind"] == "metric_snapshot":
            snapshot_count += 1
            last_snapshot = data
            if job_id is not None:
                job_entry(job_id)["snapshots"] += 1
            continue

        # service lifecycle events carry the job id in ``run``; keep
        # them out of the study-run table (they are not run labels).
        if name in ("job_state", "queue"):
            continue

        if record["kind"] == "span":
            span = spans.setdefault(name, {"count": 0, "seconds": 0.0})
            span["count"] += 1
            span["seconds"] = round(span["seconds"] + record["dur"], 6)
            if name == "run" and label is not None:
                entry = run_entry(label)
                entry["seconds"] = round(record["dur"], 6)
                if job_id is not None:
                    entry["job"] = job_id
                if tenant is not None:
                    entry["tenant"] = tenant
        elif record["kind"] == "event" and label is not None:
            entry = run_entry(label)
            if job_id is not None:
                entry["job"] = job_id
            if tenant is not None:
                entry["tenant"] = tenant
            if name == "wave":
                entry["waves"] += 1
            elif name == "point":
                entry["points"] += 1
                if data.get("source") == "cache":
                    entry["cached_points"] += 1
            elif name == "metrics":
                entry["metrics"] = data
            elif name == "cache":
                entry["cache"] = data
            elif name == "failure":
                entry["failures"].append({
                    "config": record.get("config"),
                    "error": data.get("error"),
                    "digest": data.get("digest"),
                    "attempts": data.get("attempts"),
                })
            elif name == "retry":
                entry["retries"] += 1
            elif name == "interrupted":
                entry["interrupted"] = {
                    "completed": data.get("completed"),
                    "total": data.get("total"),
                }
            elif name == "calibration":
                entry["calibrations"].append({
                    "config": data.get("config"),
                    "workload": data.get("workload"),
                    "cycles_delta": data.get("cycles_delta"),
                    "area_ratio": data.get("area_ratio"),
                    "ok": data.get("ok"),
                })

    for run in runs.values():
        if run["job"] is not None and run["job"] in jobs:
            jobs[run["job"]]["runs"].append(run["label"])

    merged = merge_snapshots(
        [r["metrics"] for r in runs.values() if r["metrics"]]
    )
    return {
        "study": study,
        "records": len(records),
        "spans": spans,
        "runs": list(runs.values()),
        "jobs": list(jobs.values()),
        "metric_snapshots": {
            "count": snapshot_count,
            "last": last_snapshot,
        },
        "metrics": merged,
    }


def _cache_lines(cache: dict, indent: str) -> list[str]:
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    looked = hits + misses
    lines = [
        f"{indent}result cache: {hits} hits / {looked} lookups"
        + (f" ({hits / looked:.1%})" if looked else "")
        + f", {cache.get('puts', 0)} writes"
    ]
    detail = []
    if cache.get("merged_axes"):
        detail.append(f"{cache['merged_axes']} merged post-pass axes")
    if cache.get("bytes_written") is not None:
        detail.append(f"{cache['bytes_written']} bytes written")
    if cache.get("bytes_on_disk") is not None:
        detail.append(f"{cache['bytes_on_disk']} bytes on disk")
    if detail:
        lines.append(f"{indent}              {', '.join(detail)}")
    return lines


def _histogram_lines(histograms: dict, indent: str) -> list[str]:
    lines = []
    for name in sorted(histograms):
        snap = histograms[name]
        if not snap.get("count"):
            continue
        quantiles = Histogram.from_snapshot(snap).quantiles()
        joined = " ".join(
            f"{q}={v * 1000:.2f}ms" if v is not None else f"{q}=-"
            for q, v in quantiles.items()
        )
        lines.append(
            f"{indent}{name}: n={snap['count']} {joined}"
        )
    return lines


def format_trace_summary(summary: dict) -> str:
    """Human-readable report of one :func:`summarize_trace` result."""
    study = summary["study"] or "(unnamed)"
    lines = [
        f"trace of study {study!r}: {summary['records']} records, "
        f"{len(summary['runs'])} run{'s' if len(summary['runs']) != 1 else ''}"
    ]
    for job in summary.get("jobs", []):
        states = " -> ".join(job["states"]) or "(no transitions)"
        queue = ", ".join(
            f"{action} x{count}"
            for action, count in sorted(job["queue"].items())
        )
        header = f"job {job['job']}"
        if job["tenant"]:
            header += f" (tenant {job['tenant']})"
        header += f": {states}"
        lines.append(header)
        detail = []
        if queue:
            detail.append(f"queue: {queue}")
        if job["runs"]:
            detail.append(f"runs: {', '.join(sorted(job['runs']))}")
        if job["snapshots"]:
            detail.append(f"{job['snapshots']} registry snapshot(s)")
        if detail:
            lines.append("  " + " · ".join(detail))
    for run in summary["runs"]:
        header = f"run {run['label']}"
        if run.get("job"):
            header += f" [job {run['job']}]"
        if run["seconds"] is not None:
            header += f" ({run['seconds']:.2f}s)"
        header += (
            f": {run['points']} points over {run['waves']} waves, "
            f"{run['cached_points']} from cache"
        )
        lines.append(header)
        if run["interrupted"]:
            done = run["interrupted"].get("completed")
            total = run["interrupted"].get("total")
            lines.append(
                f"  interrupted after {done}/{total} points"
                if done is not None and total is not None
                else "  interrupted"
            )
        if run["failures"] or run["retries"]:
            quarantined = (run["cache"] or {}).get("quarantined", 0)
            lines.append(
                f"  robustness: {len(run['failures'])} failed, "
                f"{run['retries']} retried, {quarantined} quarantined"
            )
            for failure in run["failures"]:
                lines.append(
                    f"    failed {failure['config']}: {failure['error']} "
                    f"(trace {failure['digest']}, "
                    f"{failure['attempts']} attempt"
                    f"{'s' if failure['attempts'] != 1 else ''})"
                )
        if run["metrics"]:
            lines.append(format_phases(run["metrics"], indent="  "))
            counters = run["metrics"].get("counters", {})
            if counters:
                joined = ", ".join(
                    f"{k}={counters[k]}" for k in sorted(counters)
                )
                lines.append(f"  counters: {joined}")
            lines.extend(
                _histogram_lines(
                    run["metrics"].get("histograms", {}), "  "
                )
            )
        if run.get("calibrations"):
            reports = run["calibrations"]
            drifted = [r for r in reports if not r.get("ok")]
            lines.append(
                f"  calibration: {len(reports)} front point"
                f"{'s' if len(reports) != 1 else ''} audited, "
                f"{len(drifted)} drifted"
            )
            for report in drifted:
                delta = report.get("cycles_delta")
                ratio = report.get("area_ratio")
                lines.append(
                    f"    drift {report.get('config')}: "
                    f"cycles delta {delta:+d}, area ratio {ratio:.2f}"
                    if delta is not None and ratio is not None
                    else f"    drift {report.get('config')}"
                )
        if run["cache"]:
            lines.extend(_cache_lines(run["cache"], "  "))
    snapshots = summary.get("metric_snapshots", {})
    if snapshots.get("count"):
        lines.append(
            f"{snapshots['count']} registry snapshot(s) recorded"
        )
    if len(summary["runs"]) > 1 and summary["metrics"]["phases"]:
        lines.append("all runs:")
        lines.append(format_phases(summary["metrics"], indent="  "))
    return "\n".join(lines)
