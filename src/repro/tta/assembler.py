"""A small textual assembly format for move programs.

Grammar (one instruction per line, one move per bus slot)::

    ; comment                     full-line or trailing comments
    loop:                         label (attaches to the next instruction)
        rf0.r0[3] -> alu0.a ; #5 -> alu0.b:add
        alu0.y -> rf0.w0[4] ; nop
        (g0) @loop -> pc.target:jump
        halt
    .data 100 42 0x11 3           words at addresses 100, 101, 102

Move syntax: ``[guard] source -> destination[:opcode]`` where

* guard: ``(g2)`` or ``(!g2)``;
* source: ``unit.port``, ``unit.port[reg]``, ``#literal`` or ``@label``;
* destination: ``unit.port``, ``unit.port[reg]``, with ``:opcode`` when
  the port is a trigger.

Slots are separated by ``;``; missing slots are NOPs.  ``halt`` may stand
alone or be the last slot of a line.
"""

from __future__ import annotations

import re

from repro.tta.arch import Architecture
from repro.tta.isa import Guard, Instruction, Literal, Move, PortRef, Program


class AssemblerError(Exception):
    """Syntax or semantic error in move assembly."""


_MOVE_RE = re.compile(
    r"^(?:\((?P<inv>!?)g(?P<greg>\d+)\)\s*)?"
    r"(?P<src>\S+)\s*->\s*(?P<dst>\S+)$"
)
_PORT_RE = re.compile(
    r"^(?P<unit>[A-Za-z_]\w*)\.(?P<port>[A-Za-z_]\w*)"
    r"(?:\[(?P<reg>\d+)\])?(?::(?P<op>[A-Za-z_]\w*))?$"
)


def assemble(text: str, arch: Architecture, name: str = "program") -> Program:
    """Assemble ``text`` into a :class:`Program` for ``arch``."""
    program = Program(name=name)
    pending_labels: list[str] = []
    fixups: list[tuple[Move, int, int, str]] = []   # move, instr idx, slot, label

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";;")[0] if ";;" in raw else raw
        line = _strip_comment(line).strip()
        if not line:
            continue
        if line.startswith(".data"):
            _parse_data(line, program, line_no)
            continue
        if line.endswith(":") and " " not in line:
            pending_labels.append(line[:-1])
            continue

        halt = False
        slot_texts = [s.strip() for s in line.split(";")]
        if slot_texts and slot_texts[-1] == "halt":
            halt = True
            slot_texts.pop()
        if line == "halt":
            halt = True
            slot_texts = []

        slots: list[Move | None] = []
        for slot_index, slot_text in enumerate(slot_texts):
            if not slot_text or slot_text == "nop":
                slots.append(None)
                continue
            move, label_ref = _parse_move(slot_text, line_no)
            slots.append(move)
            if label_ref is not None:
                fixups.append((move, len(program.instructions), slot_index, label_ref))
        while len(slots) < arch.num_buses:
            slots.append(None)
        if len(slots) > arch.num_buses:
            raise AssemblerError(
                f"line {line_no}: {len(slots)} slots but only "
                f"{arch.num_buses} buses"
            )

        label = pending_labels.pop(0) if pending_labels else None
        instruction = Instruction(slots=slots, halt=halt, label=label)
        program.append(instruction)
        for extra in pending_labels:
            program.labels[extra] = len(program.instructions) - 1
        pending_labels.clear()

    if pending_labels:
        # Trailing labels point one past the end (used as an exit target).
        for label in pending_labels:
            program.labels[label] = len(program.instructions)

    for move, instr_index, slot, label in fixups:
        if label not in program.labels:
            raise AssemblerError(f"undefined label {label!r}")
        resolved = Move(
            src=Literal(program.labels[label]),
            dst=move.dst,
            opcode=move.opcode,
            src_reg=move.src_reg,
            dst_reg=move.dst_reg,
            guard=move.guard,
        )
        program.instructions[instr_index].slots[slot] = resolved
    return program


def _strip_comment(line: str) -> str:
    in_comment = line.find(";")
    # ';' is also the slot separator -- a comment must start the token,
    # so only strip when preceded by whitespace and followed by space/char
    # that cannot start a move.  Simpler, unambiguous rule: comments use
    # '//' or lines starting with ';'.
    if line.lstrip().startswith(";"):
        return ""
    if "//" in line:
        line = line.split("//")[0]
    return line


def _parse_data(line: str, program: Program, line_no: int) -> None:
    parts = line.split()
    if len(parts) < 3:
        raise AssemblerError(f"line {line_no}: .data needs an address and values")
    try:
        addr = int(parts[1], 0)
        values = [int(p, 0) for p in parts[2:]]
    except ValueError as exc:
        raise AssemblerError(f"line {line_no}: bad .data literal: {exc}") from None
    for offset, value in enumerate(values):
        program.data[addr + offset] = value


def _parse_move(text: str, line_no: int) -> tuple[Move, str | None]:
    match = _MOVE_RE.match(text)
    if match is None:
        raise AssemblerError(f"line {line_no}: cannot parse move {text!r}")
    guard = None
    if match.group("greg") is not None:
        guard = Guard(int(match.group("greg")), invert=match.group("inv") == "!")

    src_text = match.group("src")
    dst_text = match.group("dst")
    label_ref: str | None = None

    src: PortRef | Literal
    src_reg = None
    if src_text.startswith("#"):
        try:
            src = Literal(int(src_text[1:], 0))
        except ValueError:
            raise AssemblerError(
                f"line {line_no}: bad immediate {src_text!r}"
            ) from None
    elif src_text.startswith("@"):
        src = Literal(0)   # fixed up later
        label_ref = src_text[1:]
    else:
        port = _PORT_RE.match(src_text)
        if port is None or port.group("op") is not None:
            raise AssemblerError(f"line {line_no}: bad source {src_text!r}")
        src = PortRef(port.group("unit"), port.group("port"))
        if port.group("reg") is not None:
            src_reg = int(port.group("reg"))

    port = _PORT_RE.match(dst_text)
    if port is None:
        raise AssemblerError(f"line {line_no}: bad destination {dst_text!r}")
    dst = PortRef(port.group("unit"), port.group("port"))
    dst_reg = int(port.group("reg")) if port.group("reg") is not None else None
    opcode = port.group("op")

    move = Move(
        src=src,
        dst=dst,
        opcode=opcode,
        src_reg=src_reg,
        dst_reg=dst_reg,
        guard=guard,
    )
    return move, label_ref
