"""Socket control/decode netlist (paper Figs. 4 and 5).

A socket watches the move bus: it compares the destination (or source) ID
field against its own hardwired ID, qualifies the match with the move's
valid and guard bits, and sequences the component's pipeline through a
small stage-control FSM (Fig. 3).  The paper tests sockets with full scan
(eq. 13: ``f_ts = n_p * n_l``); the ``n_p`` used there is back-annotated
by running ATPG on this netlist.

The socket ID is modelled as a primary input so the ATPG exercises the
comparator exhaustively; in silicon it is tied off per instance.

PIs: ``dst[id_bits]``, ``my_id[id_bits]``, ``valid``, ``guard``,
``fsm_q[fsm_bits]`` (present state).  POs: ``load`` (register strobe),
``ready`` (transport acknowledge), ``fsm_d[fsm_bits]`` (next state).
"""

from __future__ import annotations

from repro.netlist.builder import WordBuilder
from repro.netlist.netlist import Netlist

#: Move destination/source ID field width (64 socket addresses).
SOCKET_ID_BITS = 6

#: Stage-control FSM state bits (a 3-deep one-hot transport pipeline).
SOCKET_FSM_BITS = 3


def build_socket(
    id_bits: int = SOCKET_ID_BITS,
    fsm_bits: int = SOCKET_FSM_BITS,
    name: str = "socket",
) -> Netlist:
    """Build the socket control + decode netlist."""
    if id_bits < 1 or fsm_bits < 1:
        raise ValueError("socket needs at least one ID bit and one FSM bit")
    wb = WordBuilder(f"{name}{id_bits}x{fsm_bits}")
    dst = wb.input_word("dst", id_bits)
    my_id = wb.input_word("my_id", id_bits)
    valid = wb.input_bit("valid")
    guard = wb.input_bit("guard")
    fsm_q = wb.input_word("fsm_q", fsm_bits)

    match = wb.equal(dst, my_id)
    fire = wb.and_(match, valid, guard)

    # One-hot transport pipeline: firing loads stage 0, stages then drain
    # toward the component (Fig. 3's stage-control blocks).
    not_fire = wb.not_(fire)
    fsm_d = [fire]
    for i in range(1, fsm_bits):
        fsm_d.append(wb.and_(fsm_q[i - 1], not_fire))

    busy = wb.or_reduce(list(fsm_q))
    wb.output_bit("load", wb.buf(fire))
    wb.output_bit("ready", wb.not_(busy))
    wb.output_word("fsm_d", fsm_d)
    wb.netlist.check()
    return wb.netlist
