"""The paper's at-speed claim: functional patterns double as delay tests.

Sec. 3.2: "the functional test of the components may also be used for
delay fault tests".  This bench streams the comparator's stuck-at
pattern sequence back-to-back (exactly how the transport test applies
it) and measures transition-fault coverage — substantial for free, and
improvable by reordering initialisation patterns already in the set.
"""

from benchmarks.conftest import save_artifact
from repro.atpg import run_atpg
from repro.atpg.delay import DelayAnalyzer, delay_test_cycles
from repro.components import build_comparator
from repro.explore import ArchConfig, RFConfig, build_architecture
from repro.testcost import transport_latency


def test_delay_coverage(benchmark):
    netlist = build_comparator(16)
    atpg = run_atpg(netlist)   # cached from the back-annotation runs

    def analyse():
        analyzer = DelayAnalyzer(netlist)
        base = analyzer.coverage_of_sequence(atpg.patterns)
        augmented_seq = analyzer.augment_sequence(atpg.patterns, max_extra=96)
        augmented = analyzer.coverage_of_sequence(augmented_seq)
        return analyzer, base, augmented_seq, augmented

    analyzer, base, augmented_seq, augmented = benchmark.pedantic(
        analyse, rounds=1, iterations=1
    )

    assert 25.0 < base.coverage < 100.0
    assert augmented.coverage > base.coverage
    assert set(augmented_seq) == set(atpg.patterns), "no new ATPG needed"

    arch = build_architecture(ArchConfig(num_buses=3, rfs=(RFConfig(8),)))
    cd = transport_latency(arch, "cmp0")
    pairs = augmented.sequence_length - 1
    cycles = delay_test_cycles(pairs, cd)

    save_artifact(
        "delay_coverage",
        "\n".join(
            [
                "At-speed (transition) coverage from the functional test",
                f"component: cmp16, stuck-at patterns: {len(atpg.patterns)}",
                f"transition faults: {base.num_faults}",
                f"free coverage (consecutive pairs): {base.coverage:.1f}%",
                f"after reordering/duplicating set members: "
                f"{augmented.coverage:.1f}% "
                f"({augmented.sequence_length} patterns)",
                f"application cost at CD={cd}: {cycles} cycles "
                f"({pairs} launch/capture pairs)",
            ]
        ),
    )
