"""The Crypt TTA kernel: crypt(3)'s 25 x 16 rounds as compilable IR.

This is the paper's workload in compilable form.  The generator mirrors
:func:`repro.apps.crypt3.crypt_rounds_words` statement for statement —
same chunk extraction, same salt perturbation, same SP-table lookups —
so the TTA-simulated result is bit-exact against the Python reference
(asserted by the integration tests).

Memory map (16-bit words):

====================  =====================================================
``OUT_ADDR``..+3       final state L1, L0, R1, R0
``SP_BASE``            8 x 64 SP entries, 2 words each (lo, hi)
``KEY_BASE``           16 rounds x 8 subkey chunks
====================  =====================================================

Only the round computation runs on the TTA; key scheduling (done once per
password) and output formatting (FP + base64) stay on the host, exactly
as the hot/cold split of a real crypt implementation.
"""

from __future__ import annotations

from repro.apps.crypt3 import (
    CRYPT_ITERATIONS,
    crypt_from_words,
    salt_to_mask,
    sp_tables,
)
from repro.apps.des import key_schedule, subkey_chunks
from repro.apps.crypt3 import password_to_key
from repro.compiler.ir import IRBuilder, IRFunction

OUT_ADDR = 16
SP_BASE = 1024
KEY_BASE = 3072


def build_crypt_ir(
    password: str,
    salt: str,
    iterations: int = CRYPT_ITERATIONS,
) -> IRFunction:
    """Generate the crypt kernel IR for one password/salt pair."""
    mask = salt_to_mask(salt)
    s0 = mask & 63
    s1 = (mask >> 6) & 63

    b = IRBuilder(f"crypt_{salt[:2]}")

    # Data segment: SP tables and the password's subkey chunks.
    sp = sp_tables()
    for j in range(8):
        for v in range(64):
            entry = sp[j][v]
            addr = SP_BASE + j * 128 + v * 2
            b.data_word(addr, entry & 0xFFFF)
            b.data_word(addr + 1, entry >> 16)
    kchunks = subkey_chunks(key_schedule(password_to_key(password)))
    for rnd in range(16):
        for j in range(8):
            b.data_word(KEY_BASE + rnd * 8 + j, kchunks[rnd][j])

    # entry: zero state, iteration counter.
    b.block("entry")
    for name in ("%L1", "%L0", "%R1", "%R0"):
        b.li(0, name)
    b.li(iterations, "%iter")
    b.jump("outer")

    # outer: per-DES setup.
    b.block("outer")
    b.li(0, "%rnd")
    b.li(KEY_BASE, "%kp")
    b.jump("round")

    # round: one Feistel round, fully unrolled over the 8 chunks.
    b.block("round")
    c = _emit_chunk_extraction(b)

    # Salt perturbation on chunk pairs (c3,c7) and (c2,c6).
    if s0:
        t = b.and_(b.xor(c[3], c[7]), s0)
        c[3] = b.xor(c[3], t)
        c[7] = b.xor(c[7], t)
    if s1:
        u = b.and_(b.xor(c[2], c[6]), s1)
        c[2] = b.xor(c[2], u)
        c[6] = b.xor(c[6], u)

    f0 = b.li(0)
    f1 = b.li(0)
    for j in range(8):
        key = b.load(b.add("%kp", j))
        index = b.xor(c[j], key)
        addr = b.add(b.shl(index, 1), SP_BASE + j * 128)
        f0 = b.xor(f0, b.load(addr))
        f1 = b.xor(f1, b.load(b.add(addr, 1)))

    nr0 = b.xor("%L0", f0)
    nr1 = b.xor("%L1", f1)
    b.mov("%R0", "%L0")
    b.mov("%R1", "%L1")
    b.mov(nr0, "%R0")
    b.mov(nr1, "%R1")

    b.add("%rnd", 1, "%rnd")
    b.add("%kp", 8, "%kp")
    more_rounds = b.ltu("%rnd", 16)
    b.branch(more_rounds, "round", "desdone")

    # desdone: swap halves (preoutput feeds the next iteration).
    b.block("desdone")
    b.mov("%L0", "%t0")
    b.mov("%R0", "%L0")
    b.mov("%t0", "%R0")
    b.mov("%L1", "%t1")
    b.mov("%R1", "%L1")
    b.mov("%t1", "%R1")
    b.sub("%iter", 1, "%iter")
    more_iters = b.ne("%iter", 0)
    b.branch(more_iters, "outer", "finish")

    # finish: expose the state to the host.
    b.block("finish")
    b.store(OUT_ADDR + 0, "%L1")
    b.store(OUT_ADDR + 1, "%L0")
    b.store(OUT_ADDR + 2, "%R1")
    b.store(OUT_ADDR + 3, "%R0")
    b.halt()
    return b.finish()


def _emit_chunk_extraction(b: IRBuilder) -> list[str]:
    """The eight E-chunks of R — mirrors ``_chunks_from_words`` exactly."""
    r1, r0 = "%R1", "%R0"
    c0 = b.or_(b.shl(b.and_(r0, 1), 5), b.shr(r1, 11))
    c1 = b.and_(b.shr(r1, 7), 63)
    c2 = b.and_(b.shr(r1, 3), 63)
    c3 = b.and_(b.or_(b.shl(r1, 1), b.shr(r0, 15)), 63)
    c4 = b.and_(b.or_(b.shl(b.and_(r1, 1), 5), b.shr(r0, 11)), 63)
    c5 = b.and_(b.shr(r0, 7), 63)
    c6 = b.and_(b.shr(r0, 3), 63)
    c7 = b.and_(b.or_(b.shl(b.and_(r0, 31), 1), b.shr(r1, 15)), 63)
    return [c0, c1, c2, c3, c4, c5, c6, c7]


def crypt_output_from_memory(memory, salt: str, out_addr: int = OUT_ADDR) -> str:
    """Assemble the 13-char hash from a simulated data memory.

    ``memory`` is anything with dict-like ``get`` (the simulator's dmem)
    or the IR interpreter's memory dict.
    """
    get = memory.get if hasattr(memory, "get") else memory.__getitem__
    l1 = get(out_addr + 0, 0)
    l0 = get(out_addr + 1, 0)
    r1 = get(out_addr + 2, 0)
    r0 = get(out_addr + 3, 0)
    return crypt_from_words(l1, l0, r1, r0, salt)
