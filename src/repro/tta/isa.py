"""Move ISA: the single operation of a TTA.

A :class:`Move` transports one word from a source (unit output port,
immediate literal) to a destination (unit input port, guard register,
program counter).  Moves may be *guarded* by a boolean guard register and
carry an opcode when the destination is a trigger port.

An :class:`Instruction` is one bus-slot vector — at most one move per bus
per cycle; long immediates consume a second slot (the MOVE framework
steals the bits of an adjacent slot for the extended immediate field).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Pseudo-unit holding the boolean guard registers.
GUARD_UNIT = "guard"

#: Short immediates ride inside the move's source field.
SHORT_IMM_BITS = 8


@dataclass(frozen=True, slots=True)
class PortRef:
    """A unit port, e.g. ``alu0.a`` or ``rf0.r0``."""

    unit: str
    port: str

    def __str__(self) -> str:
        return f"{self.unit}.{self.port}"


@dataclass(frozen=True, slots=True)
class Literal:
    """An immediate move source."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True, slots=True)
class Guard:
    """Move predicate: guard register ``index``, optionally inverted."""

    index: int
    invert: bool = False

    def __str__(self) -> str:
        return f"(!g{self.index})" if self.invert else f"(g{self.index})"


@dataclass(frozen=True, slots=True)
class Move:
    """One data transport.

    ``opcode`` — operation launched when ``dst`` is a trigger port (or
    the LSU/PC command).  ``src_reg``/``dst_reg`` — register index when
    the source/destination port belongs to a register file.
    """

    src: PortRef | Literal
    dst: PortRef
    opcode: str | None = None
    src_reg: int | None = None
    dst_reg: int | None = None
    guard: Guard | None = None

    def is_immediate(self) -> bool:
        return isinstance(self.src, Literal)

    def needs_long_immediate(self) -> bool:
        """True when the literal does not fit the short source field."""
        if not isinstance(self.src, Literal):
            return False
        limit = 1 << (SHORT_IMM_BITS - 1)
        return not -limit <= self.src.value < limit

    def __str__(self) -> str:
        parts = []
        if self.guard is not None:
            parts.append(str(self.guard))
        src = str(self.src)
        if self.src_reg is not None:
            src += f"[{self.src_reg}]"
        dst = str(self.dst)
        if self.dst_reg is not None:
            dst += f"[{self.dst_reg}]"
        if self.opcode is not None:
            dst += f":{self.opcode}"
        parts.append(f"{src} -> {dst}")
        return " ".join(parts)


@dataclass(slots=True)
class Instruction:
    """One cycle's bus-slot vector: ``slots[b]`` is the move on bus b."""

    slots: list[Move | None]
    halt: bool = False
    label: str | None = None

    @property
    def moves(self) -> list[Move]:
        return [m for m in self.slots if m is not None]

    def bus_of(self, move: Move) -> int:
        for bus, slot in enumerate(self.slots):
            if slot is move:
                return bus
        raise ValueError("move not in instruction")

    def slots_used(self) -> int:
        """Bus slots consumed, counting long-immediate extension slots."""
        used = len(self.moves)
        used += sum(1 for m in self.moves if m.needs_long_immediate())
        return used

    def __str__(self) -> str:
        body = " ; ".join(str(m) if m else "nop" for m in self.slots)
        tag = f"{self.label}: " if self.label else ""
        return f"{tag}{body}{'  [halt]' if self.halt else ''}"


@dataclass
class Program:
    """A scheduled move program plus initial data-memory image."""

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data: dict[int, int] = field(default_factory=dict)   # dmem address -> word
    name: str = "program"

    def append(self, instruction: Instruction) -> int:
        if instruction.label:
            if instruction.label in self.labels:
                raise ValueError(f"duplicate label {instruction.label!r}")
            self.labels[instruction.label] = len(self.instructions)
        self.instructions.append(instruction)
        return len(self.instructions) - 1

    def __len__(self) -> int:
        return len(self.instructions)

    def listing(self) -> str:
        lines = [f"; program {self.name}"]
        for index, instruction in enumerate(self.instructions):
            lines.append(f"{index:5d}: {instruction}")
        return "\n".join(lines)
