"""Architecture template validation and cost model."""

import pytest

from repro.components.library import (
    alu_spec,
    imm_spec,
    lsu_spec,
    pc_spec,
    rf_spec,
)
from repro.components.spec import ComponentKind
from repro.tta import Architecture, ArchitectureError, UnitInstance

from tests.conftest import make_arch


def test_basic_composition(arch2):
    assert arch2.num_buses == 2
    assert len(arch2.fus) == 2          # alu0 + cmp0
    assert len(arch2.rfs) == 1
    assert arch2.lsu is not None
    assert arch2.pc_unit.spec.kind is ComponentKind.PC
    assert arch2.imm_unit is not None


def test_requires_pc():
    with pytest.raises(ArchitectureError, match="program counter"):
        Architecture("x", 16, 1, [UnitInstance("alu0", alu_spec(16))])


def test_duplicate_names_rejected():
    with pytest.raises(ArchitectureError, match="duplicate"):
        Architecture(
            "x", 16, 1,
            [UnitInstance("a", alu_spec(16)), UnitInstance("a", alu_spec(16)),
             UnitInstance("pc", pc_spec(16))],
        )


def test_width_mismatch_rejected():
    with pytest.raises(ArchitectureError, match="width"):
        Architecture(
            "x", 16, 1,
            [UnitInstance("alu0", alu_spec(8)), UnitInstance("pc", pc_spec(16))],
        )


def test_at_most_one_lsu():
    with pytest.raises(ArchitectureError, match="at most one"):
        Architecture(
            "x", 16, 1,
            [UnitInstance("l0", lsu_spec(16)), UnitInstance("l1", lsu_spec(16)),
             UnitInstance("pc", pc_spec(16))],
        )


def test_default_full_connectivity(arch2):
    assert arch2.port_buses("alu0", "a") == frozenset({0, 1})
    assert arch2.test_bus("alu0", "a") == 0


def test_sparse_connectivity():
    arch = Architecture(
        "x", 16, 2,
        [UnitInstance("alu0", alu_spec(16)), UnitInstance("pc", pc_spec(16))],
        connectivity={("alu0", "a"): frozenset({1})},
    )
    assert arch.port_buses("alu0", "a") == frozenset({1})
    assert arch.port_buses("alu0", "b") == frozenset({0, 1})


def test_empty_connectivity_rejected():
    with pytest.raises(ArchitectureError, match="no bus"):
        Architecture(
            "x", 16, 2,
            [UnitInstance("alu0", alu_spec(16)), UnitInstance("pc", pc_spec(16))],
            connectivity={("alu0", "a"): frozenset()},
        )


def test_connectivity_to_missing_bus_rejected():
    with pytest.raises(ArchitectureError, match="missing bus"):
        Architecture(
            "x", 16, 2,
            [UnitInstance("alu0", alu_spec(16)), UnitInstance("pc", pc_spec(16))],
            connectivity={("alu0", "a"): frozenset({5})},
        )


def test_ops_supported(arch2):
    ops = arch2.ops_supported()
    assert "add" in ops and "eq" in ops
    assert arch2.fu_for_op("xor")[0].name == "alu0"
    assert arch2.fu_for_op("mul") == []


def test_unknown_unit_rejected(arch2):
    with pytest.raises(ArchitectureError):
        arch2.unit("ghost")
    with pytest.raises(ArchitectureError):
        arch2.port_buses("ghost", "a")


def test_area_grows_with_resources():
    small = make_arch(1)
    bigger_bus = make_arch(3)
    more_alus = make_arch(1, num_alus=2)
    more_regs = make_arch(1, rf_setups=((8, 1, 1), (12, 1, 1)))
    assert bigger_bus.area() > small.area()
    assert more_alus.area() > small.area()
    assert more_regs.area() > small.area()


def test_num_sockets_counts_ports(arch2):
    expected = sum(len(u.spec.ports) for u in arch2.units.values())
    assert arch2.num_sockets == expected


def test_describe_mentions_units(arch2):
    text = arch2.describe()
    assert "alu0" in text and "rf0" in text and "buses=2" in text


def test_rf_spec_port_counts():
    spec = rf_spec(8, 16, read_ports=2, write_ports=1)
    assert spec.n_in == 1 and spec.n_out == 2
    assert spec.n_conn == 3
    assert spec.num_regs == 8


def test_scan_chain_length_matches_paper_order():
    # the paper reports n_l = 58 for its 16-bit ALU; ours is 57
    assert abs(alu_spec(16).scan_chain_length - 58) <= 2
