"""Iterative (neighbourhood-search) exploration.

The MOVE environment performs "iterative generation of different
architectures" rather than brute-force sweeps.  This explorer starts
from seed templates, evaluates their neighbourhoods (one architectural
parameter changed at a time), and expands only candidates that are
non-dominated so far — typically reaching the same Pareto frontier as
the exhaustive sweep while evaluating a fraction of the space.

The search loops themselves live in :mod:`repro.study.strategies` (the
``iterative`` and ``simulated_annealing`` strategies); this module keeps
the neighbourhood model they walk — :func:`neighbours`, the RF ladder
and the default seed templates.  (The legacy ``iterative_explore()``
entry point was a deprecation shim over the study engine and has been
removed; use ``StudySpec(strategy="iterative")`` or
:func:`repro.study.run_search`.)
"""

from __future__ import annotations

from repro.explore.space import ArchConfig, RFConfig

#: RF arrangements the neighbourhood can step through, small to large.
_RF_LADDER: tuple[tuple[RFConfig, ...], ...] = (
    (RFConfig(4),),
    (RFConfig(8),),
    (RFConfig(12),),
    (RFConfig(8), RFConfig(12)),
    (RFConfig(8, read_ports=2), RFConfig(12)),
    (RFConfig(12, read_ports=2), RFConfig(12, read_ports=2)),
    (RFConfig(16, read_ports=2, write_ports=2),),
)


def default_seeds() -> list[ArchConfig]:
    """The seed templates the iterative search starts from by default:
    one minimal single-bus machine and one mid-range template."""
    return [
        ArchConfig(num_buses=1, rfs=(RFConfig(8),)),
        ArchConfig(num_buses=3, num_alus=2, rfs=_RF_LADDER[3]),
    ]


def neighbours(config: ArchConfig) -> list[ArchConfig]:
    """Single-parameter mutations of one template."""
    out: list[ArchConfig] = []

    def replace(**kwargs) -> None:
        merged = dict(
            num_buses=config.num_buses,
            num_alus=config.num_alus,
            num_cmps=config.num_cmps,
            num_shifters=config.num_shifters,
            num_muls=config.num_muls,
            rfs=config.rfs,
        )
        merged.update(kwargs)
        out.append(ArchConfig(**merged))

    if config.num_buses < 4:
        replace(num_buses=config.num_buses + 1)
    if config.num_buses > 1:
        replace(num_buses=config.num_buses - 1)
    if config.num_alus < 3:
        replace(num_alus=config.num_alus + 1)
    if config.num_alus > 1:
        replace(num_alus=config.num_alus - 1)
    replace(num_shifters=1 - config.num_shifters)

    try:
        position = _RF_LADDER.index(config.rfs)
    except ValueError:
        position = None
    if position is not None:
        if position + 1 < len(_RF_LADDER):
            replace(rfs=_RF_LADDER[position + 1])
        if position > 0:
            replace(rfs=_RF_LADDER[position - 1])
    return out
