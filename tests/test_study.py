"""The study layer: registries, spec round-trip, strategies, equivalence."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_gcd_ir
from repro.apps.kernels import build_fir_ir
from repro.apps.registry import build_workload
from repro.campaign import ResultCache
from repro.compiler.interp import IRInterpreter
from repro.explore import (
    ArchConfig,
    EvaluatedPoint,
    EvaluationContext,
    RFConfig,
    dsp_space,
    select_architecture,
    small_space,
)
from repro.explore.explorer import ExplorationResult
from repro.study import (
    StudySpec,
    cost_vector,
    objective_by_name,
    objective_names,
    pareto_front,
    register_objective,
    register_strategy,
    resolve_objectives,
    run_search,
    run_study,
    strategy_by_name,
    strategy_names,
)
from repro.study import objectives as objectives_module
from repro.study import strategies as strategies_module
from repro.testcost import attach_test_costs


def _reference_sweep(workload, space, width=16):
    """An independent oracle: the raw evaluation pipeline, point by
    point through one :class:`EvaluationContext`, no strategy layer."""
    profile = IRInterpreter(workload, width=width).run().block_counts
    context = EvaluationContext(workload, profile, width)
    return ExplorationResult(
        workload=workload.name,
        profile=profile,
        points=context.evaluate_space(list(space)),
    )


def _fingerprint(points):
    return [(p.label, p.area, p.cycles, p.test_cost) for p in points]


# ----------------------------------------------------------------------
# objective registry
# ----------------------------------------------------------------------
def test_objective_registry_seeded():
    assert {"area", "cycles", "test_cost"} <= set(objective_names())
    assert objective_by_name("test_cost").requires_test_costs
    assert not objective_by_name("area").requires_test_costs
    with pytest.raises(KeyError, match="unknown objective"):
        objective_by_name("nope")
    with pytest.raises(ValueError, match="at least one objective"):
        resolve_objectives(())


def test_objective_availability_gates_pareto():
    feasible = EvaluatedPoint(
        config=ArchConfig(num_buses=1), area=10.0, cycles=100
    )
    infeasible = EvaluatedPoint(
        config=ArchConfig(num_buses=2), area=20.0, cycles=None
    )
    assert objective_by_name("area").available(feasible)
    assert not objective_by_name("area").available(infeasible)
    # test_cost is unavailable until the post-pass attached a cost
    assert not objective_by_name("test_cost").available(feasible)
    assert pareto_front(
        [feasible, infeasible], ("area", "cycles", "test_cost")
    ) == []
    feasible.test_cost = 5
    assert pareto_front(
        [feasible, infeasible], ("area", "cycles", "test_cost")
    ) == [feasible]


def test_pareto_front_is_staged_for_post_pass_objectives():
    """A stray test cost on an off-front point must not enter the 3-D
    front: the test axis is only measured on the base-objective front
    (so cached costs from other studies cannot change the result)."""
    on_front = EvaluatedPoint(
        config=ArchConfig(num_buses=1), area=10.0, cycles=100, test_cost=50
    )
    also_on_front = EvaluatedPoint(
        config=ArchConfig(num_buses=2), area=20.0, cycles=10, test_cost=40
    )
    # dominated in (area, cycles) but with an excellent test cost
    off_front = EvaluatedPoint(
        config=ArchConfig(num_buses=3), area=30.0, cycles=200, test_cost=1
    )
    front = pareto_front(
        [on_front, also_on_front, off_front],
        ("area", "cycles", "test_cost"),
    )
    assert off_front not in front
    assert front == [on_front, also_on_front]


def test_study_front_independent_of_cache_history(tmp_path):
    """An exhaustive study's front/selection must not depend on which
    points an earlier (random) study left test costs on in the cache."""
    cache = ResultCache(tmp_path)
    objectives = ("area", "cycles", "test_cost")
    run_study(
        StudySpec(
            name="warmup", workloads=("gcd",), space="small",
            objectives=objectives, strategy="random",
            strategy_params={"budget": 8, "seed": 5},
        ),
        cache=cache,
    )
    cached = run_study(
        StudySpec(
            name="full", workloads=("gcd",), space="small",
            objectives=objectives, select=True,
        ),
        cache=cache,
    )
    clean = run_study(
        StudySpec(
            name="full", workloads=("gcd",), space="small",
            objectives=objectives, select=True,
        )
    )
    assert [p.label for p in cached.pareto] == [
        p.label for p in clean.pareto
    ]
    assert cached.selection.point.label == clean.selection.point.label


def test_register_custom_objective():
    name = "_test_energy_proxy"
    try:
        register_objective(
            name,
            lambda p: p.area * p.cycles,
            "area-cycles product (unit-test axis)",
        )
        assert name in objective_names()
        point = EvaluatedPoint(
            config=ArchConfig(num_buses=1), area=2.0, cycles=3
        )
        vec = cost_vector(point, resolve_objectives(("area", name)))
        assert vec == (2.0, 6.0)
    finally:
        del objectives_module._OBJECTIVES[name]


def test_cost_vector_matches_legacy_tuples():
    point = EvaluatedPoint(
        config=ArchConfig(num_buses=1), area=7.5, cycles=40, test_cost=9
    )
    two = resolve_objectives(("area", "cycles"))
    three = resolve_objectives(("area", "cycles", "test_cost"))
    assert cost_vector(point, two) == point.cost2d()
    assert cost_vector(point, three) == point.cost3d()


# ----------------------------------------------------------------------
# strategy registry
# ----------------------------------------------------------------------
def test_strategy_registry_seeded():
    assert {
        "exhaustive", "iterative", "random", "simulated_annealing"
    } <= set(strategy_names())
    assert "budget" in strategy_by_name("random").params
    assert "seed" in strategy_by_name("simulated_annealing").params
    with pytest.raises(KeyError, match="unknown strategy"):
        strategy_by_name("nope")


def test_simulated_annealing_deterministic_and_bounded():
    workload = build_gcd_ir(252, 105)
    kwargs = dict(
        strategy="simulated_annealing",
        strategy_params={"max_evaluations": 10, "seed": 3},
    )
    first = run_search(workload, small_space(), **kwargs)
    second = run_search(workload, small_space(), **kwargs)
    assert _fingerprint(first.points) == _fingerprint(second.points)
    assert first.evaluations <= 10
    assert first.iterations >= first.evaluations
    # bounded by the declared space
    space_labels = {c.label() for c in small_space()}
    assert {p.label for p in first.points} <= space_labels
    # every evaluated point agrees with the full sweep
    full = {p.label: (p.area, p.cycles) for p in _full_sweep()}
    for p in first.points:
        assert full[p.label] == (p.area, p.cycles)
    # parameter validation
    with pytest.raises(ValueError, match="cooling"):
        run_search(
            workload, small_space(),
            strategy="simulated_annealing",
            strategy_params={"cooling": 1.5},
        )


def test_simulated_annealing_study_end_to_end():
    result = run_study(
        StudySpec(
            name="sa", workloads=("gcd",), space="small",
            strategy="simulated_annealing",
            strategy_params={"max_evaluations": 8, "seed": 0},
        )
    )
    assert result.single.evaluations <= 8
    assert result.pareto


def test_strategy_rejects_unknown_params():
    workload = build_gcd_ir(24, 18)
    with pytest.raises(ValueError, match="accepts"):
        run_search(
            workload, small_space()[:1],
            strategy="exhaustive", strategy_params={"bogus": 1},
        )
    # spec validation catches the same mistake before anything runs
    with pytest.raises(ValueError, match="accepts"):
        StudySpec(
            name="x", workloads=("gcd",),
            strategy="random", strategy_params={"bogus": 1},
        ).validate()


def test_register_custom_strategy():
    name = "_test_first_only"
    try:
        register_strategy(
            name,
            lambda job: strategies_module.SearchOutcome(
                points=job.evaluate_many(job.space[:1]), evaluations=1
            ),
            "evaluate only the first configuration",
        )
        outcome = run_search(
            build_gcd_ir(24, 18), small_space(), strategy=name
        )
        assert len(outcome.points) == 1
    finally:
        del strategies_module._STRATEGIES[name]


# ----------------------------------------------------------------------
# spec round-trip
# ----------------------------------------------------------------------
def test_study_spec_round_trip():
    spec = StudySpec(
        name="s",
        workloads=("gcd", "crypt"),
        space="small",
        width=16,
        objectives=("area", "cycles", "test_cost"),
        strategy="random",
        strategy_params={"budget": 6, "seed": 3},
        select=True,
        weights=(2.0, 1.0, 1.0),
        tech="low_power",
    )
    assert StudySpec.from_json(spec.to_json()) == spec
    assert spec.params == {"budget": 6, "seed": 3}
    assert spec.space_label == "small"
    assert StudySpec.from_json(spec.to_json()).tech == "low_power"


def test_study_spec_inline_space_round_trip():
    configs = (
        ArchConfig(num_buses=1),
        ArchConfig(num_buses=2, num_alus=2, rfs=(RFConfig(8), RFConfig(12))),
    )
    spec = StudySpec(name="inline", workloads="gcd", space=configs)
    assert spec.workloads == ("gcd",)          # str convenience form
    assert spec.space_label == "inline"
    assert spec.resolve_space() == list(configs)
    round_tripped = StudySpec.from_json(spec.to_json())
    assert round_tripped == spec
    assert round_tripped.resolve_space() == list(configs)
    # the JSON holds the literal configs, not a name
    assert isinstance(json.loads(spec.to_json())["space"], list)


def test_study_spec_seeds_param_round_trips():
    """Config-valued strategy params (iterative seeds) survive JSON."""
    from repro.explore import default_seeds

    spec = StudySpec(
        name="seeded", workloads=("gcd",), space="small",
        strategy="iterative",
        strategy_params={"seeds": default_seeds(), "max_evaluations": 10},
    )
    round_tripped = StudySpec.from_json(spec.to_json())
    assert round_tripped == spec
    # and the strategy coerces the dict form back into configs
    result = run_study(round_tripped)
    assert result.single.evaluations <= 10
    assert result.points
    with pytest.raises(ValueError, match="not JSON-serialisable"):
        StudySpec(
            name="bad", workloads=("gcd",),
            strategy_params={"fn": lambda: None},
        )


def test_study_spec_validation():
    with pytest.raises(ValueError, match="workload"):
        StudySpec(name="x", workloads=())
    with pytest.raises(ValueError, match="name"):
        StudySpec(name="", workloads=("gcd",))
    with pytest.raises(ValueError, match="width"):
        StudySpec(name="x", workloads=("gcd",), width=0)
    with pytest.raises(ValueError, match="objective"):
        StudySpec(name="x", workloads=("gcd",), objectives=())
    with pytest.raises(ValueError, match="inline space"):
        StudySpec(name="x", workloads=("gcd",), space=())
    for bad in (
        dict(workloads=("nope",)),
        dict(workloads=("gcd",), space="nope"),
        dict(workloads=("gcd",), objectives=("nope",)),
        dict(workloads=("gcd",), strategy="nope"),
        dict(workloads=("gcd",), tech="nope"),
    ):
        with pytest.raises(KeyError, match="unknown"):
            StudySpec(name="x", **bad).validate()


# ----------------------------------------------------------------------
# the acceptance equivalence: Study == the raw pipeline, point for point
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "workload_name,space_name,builder,space_builder",
    [
        ("gcd", "small", lambda: build_gcd_ir(252, 105), small_space),
        (
            "fir",
            "dsp",
            lambda: build_fir_ir(
                [10, 64, 23, 99, 5, 31, 77, 42, 18, 63, 11, 90],
                [3, 7, 1, 5],
            ),
            dsp_space,
        ),
    ],
)
def test_study_matches_reference_flow(
    workload_name, space_name, builder, space_builder
):
    """Study(exhaustive) == raw sweep + attach_test_costs + select."""
    legacy = _reference_sweep(builder(), space_builder())
    attach_test_costs(legacy.pareto2d)
    legacy_best = select_architecture(legacy.pareto3d)

    result = run_study(
        StudySpec(
            name="equiv",
            workloads=(workload_name,),
            space=space_name,
            objectives=("area", "cycles", "test_cost"),
            select=True,
        )
    )
    run = result.single
    # same points, in space order
    assert _fingerprint(run.result.points) == _fingerprint(legacy.points)
    # same 2-D and full-objective Pareto fronts
    assert [p.label for p in run.result.pareto2d] == [
        p.label for p in legacy.pareto2d
    ]
    assert [p.label for p in run.pareto] == [
        p.label for p in legacy.pareto3d
    ]
    # same selected architecture, same norm
    assert run.selection is not None
    assert run.selection.point.label == legacy_best.point.label
    assert run.selection.norm == pytest.approx(legacy_best.norm)


def test_study_two_objectives_matches_reference_2d():
    legacy = _reference_sweep(build_gcd_ir(252, 105), small_space())
    result = run_study(
        StudySpec(name="2d", workloads=("gcd",), space="small")
    )
    assert _fingerprint(result.points) == _fingerprint(legacy.points)
    assert [p.label for p in result.pareto] == [
        p.label for p in legacy.pareto2d
    ]


# ----------------------------------------------------------------------
# strategies: exhaustive property, random determinism, iterative parity
# ----------------------------------------------------------------------
_FULL_SWEEP: dict = {}


def _full_sweep():
    """The reference gcd/small sweep, computed once per session."""
    if not _FULL_SWEEP:
        legacy = _reference_sweep(build_gcd_ir(252, 105), small_space())
        _FULL_SWEEP["points"] = legacy.points
    return _FULL_SWEEP["points"]


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.integers(min_value=0, max_value=11),
        min_size=1, max_size=12, unique=True,
    )
)
def test_exhaustive_strategy_reproduces_reference_sweep(indices):
    """Property: on any sub-space of small_space, the exhaustive
    strategy returns exactly the reference pipeline's points, in
    order."""
    space = small_space()
    subset = [space[i] for i in indices]
    outcome = run_search(
        build_gcd_ir(252, 105), subset, strategy="exhaustive"
    )
    expected = [_full_sweep()[i] for i in indices]
    assert [(p.label, p.area, p.cycles) for p in outcome.points] == [
        (p.label, p.area, p.cycles) for p in expected
    ]
    assert outcome.evaluations == len(subset)


def test_random_strategy_deterministic_and_subset():
    workload = build_gcd_ir(252, 105)
    kwargs = dict(strategy="random", strategy_params={"budget": 5, "seed": 7})
    first = run_search(workload, small_space(), **kwargs)
    second = run_search(workload, small_space(), **kwargs)
    assert _fingerprint(first.points) == _fingerprint(second.points)
    assert len(first.points) == 5
    # every sampled point exists, identically, in the full sweep
    full = {(p.label): (p.area, p.cycles) for p in _full_sweep()}
    for p in first.points:
        assert full[p.label] == (p.area, p.cycles)
    # a different seed gives a different (but still valid) sample
    other = run_search(
        workload, small_space(),
        strategy="random", strategy_params={"budget": 5, "seed": 8},
    )
    assert {p.label for p in other.points} != {
        p.label for p in first.points
    } or _fingerprint(other.points) == _fingerprint(first.points)


def test_random_strategy_budget_clamps_and_validates():
    workload = build_gcd_ir(24, 18)
    outcome = run_search(
        workload, small_space(),
        strategy="random", strategy_params={"budget": 999},
    )
    assert len(outcome.points) == len(small_space())
    with pytest.raises(ValueError, match="budget"):
        run_search(
            workload, small_space(),
            strategy="random", strategy_params={"budget": 0},
        )


def test_iterative_strategy_points_exist_in_reference_sweep():
    """Every point the unbounded neighbourhood search evaluates agrees
    with the reference pipeline's evaluation of the same config."""
    fn = build_gcd_ir(252, 105)
    outcome = run_search(
        fn, [], strategy="iterative",
        strategy_params={"max_evaluations": 40},
    )
    assert outcome.evaluations <= 40
    assert outcome.frontier_history
    context = EvaluationContext(
        fn, IRInterpreter(fn, width=16).run().block_counts, 16
    )
    for point in outcome.points[:5]:
        direct = context.evaluate(point.config)
        assert (point.area, point.cycles) == (direct.area, direct.cycles)


def test_iterative_study_is_bounded_by_its_space():
    """With a declared space the walk never leaves it (the legacy
    shim's empty space keeps the unbounded neighbourhood search)."""
    result = run_study(
        StudySpec(
            name="bounded", workloads=("gcd",), space="small",
            strategy="iterative", strategy_params={"max_evaluations": 80},
        )
    )
    run = result.single
    space_labels = {c.label() for c in small_space()}
    assert {p.label for p in run.result.points} <= space_labels
    assert run.evaluations <= len(small_space()) <= run.stats.total


def test_workload_profile_cache_not_stale_after_reregistration():
    """Re-registering a workload name must invalidate its cached
    profile (the cache keys on the registry entry, not the name)."""
    from repro.apps.registry import _REGISTRY, register_workload
    from repro.study import workload_profile

    name = "_test_profile_cache"
    try:
        register_workload(name, lambda: build_gcd_ir(48, 18))
        first = workload_profile(name, 16)
        register_workload(name, lambda: build_gcd_ir(1071, 462))
        second = workload_profile(name, 16)
        assert first != second
        from repro.compiler.interp import IRInterpreter as Interp

        fresh = Interp(build_gcd_ir(1071, 462), width=16).run().block_counts
        assert second == fresh
        # repeated lookups are served from cache (same value, fresh dict)
        again = workload_profile(name, 16)
        assert again == second and again is not second
    finally:
        del _REGISTRY[name]


def test_evaluator_reuses_one_context_across_batches():
    from repro.compiler.interp import IRInterpreter
    from repro.study import CachedEvaluator

    workload = build_workload("gcd")
    profile = IRInterpreter(workload, width=16).run().block_counts
    evaluator = CachedEvaluator("gcd", workload, profile, 16)
    evaluator.evaluate_many(small_space()[:2])
    context = evaluator._context
    assert context is not None
    evaluator.evaluate_many(small_space()[2:4])
    assert evaluator._context is context


def test_study_spec_hashable_and_weights_checked():
    from repro.explore import default_seeds

    spec = StudySpec(
        name="h", workloads=("gcd",), strategy="iterative",
        strategy_params={"seeds": default_seeds()},
    )
    assert hash(spec) == hash(StudySpec.from_json(spec.to_json()))
    with pytest.raises(ValueError, match="weights"):
        StudySpec(
            name="w", workloads=("gcd",),
            objectives=("area", "cycles", "test_cost"),
            weights=(1.0, 2.0),
        )


def test_study_iterative_and_random_run_end_to_end():
    iterative = run_study(
        StudySpec(
            name="it", workloads=("gcd",), space="small",
            strategy="iterative", strategy_params={"max_evaluations": 20},
        )
    )
    assert iterative.single.evaluations <= 20
    assert iterative.single.iterations >= 1
    assert iterative.pareto

    sampled = run_study(
        StudySpec(
            name="rnd", workloads=("gcd",), space="small",
            strategy="random", strategy_params={"budget": 4, "seed": 0},
        )
    )
    assert len(sampled.points) == 4


# ----------------------------------------------------------------------
# cache sharing: a study resumes another study's (and campaign's) work
# ----------------------------------------------------------------------
def test_studies_share_result_cache(tmp_path):
    cache = ResultCache(tmp_path)
    spec = StudySpec(name="c", workloads=("gcd",), space="small")
    first = run_study(spec, cache=cache)
    assert first.single.stats.evaluated == 12
    assert first.single.stats.cache_hits == 0
    second = run_study(spec, cache=cache)
    assert second.single.stats.evaluated == 0
    assert second.single.stats.cache_hits == 12
    assert _fingerprint(second.points) == _fingerprint(first.points)
    # a random study over the same space is served from the same cache
    sampled = run_study(
        StudySpec(
            name="r", workloads=("gcd",), space="small",
            strategy="random", strategy_params={"budget": 6, "seed": 1},
        ),
        cache=cache,
    )
    assert sampled.single.stats.evaluated == 0
    assert sampled.single.stats.cache_hits == 6


def test_multi_workload_study_and_report(tmp_path):
    from repro.reporting import study_to_dict, study_to_json

    result = run_study(
        StudySpec(
            name="multi", workloads=("gcd", "checksum"), space="small",
            select=True,
        )
    )
    assert len(result.runs) == 2
    assert result.run("gcd/small/w16").workload == "gcd"
    with pytest.raises(KeyError):
        result.run("nope")
    with pytest.raises(ValueError, match="2 runs"):
        result.single
    assert "study 'multi'" in result.summary()

    data = study_to_dict(result)
    assert data["spec"]["workloads"] == ["gcd", "checksum"]
    assert len(data["runs"]) == 2
    assert data["runs"][0]["selection"] is not None
    # the JSON is a valid document and carries the point tables
    parsed = json.loads(study_to_json(result))
    assert len(parsed["runs"][0]["points"]) == 12


def test_study_progress_lines():
    lines = []
    run_study(
        StudySpec(name="p", workloads=("gcd",), space="small"),
        progress=lines.append,
    )
    assert any("gcd/small/w16" in line for line in lines)


# ----------------------------------------------------------------------
# the legacy shims are gone (satellite): the names no longer resolve
# ----------------------------------------------------------------------
def test_legacy_shims_removed():
    import repro
    import repro.explore
    import repro.explore.evaluate as evaluate_module
    import repro.explore.explorer as explorer_module
    import repro.explore.iterative as iterative_module

    # "explore" survives only as the subpackage, never as a callable
    assert "explore" not in repro.__all__
    assert "iterative_explore" not in repro.__all__
    assert not hasattr(repro, "iterative_explore")
    for module, name in (
        (repro.explore, "iterative_explore"),
        (repro.explore, "evaluate_space"),
        (repro.explore, "IterativeResult"),
        (explorer_module, "explore"),
        (iterative_module, "iterative_explore"),
        (evaluate_module, "evaluate_space"),
        (evaluate_module, "evaluate_config"),
    ):
        assert not hasattr(module, name), f"{module.__name__}.{name}"
    assert not callable(getattr(repro.explore, "explore", None))


# ----------------------------------------------------------------------
# pareto2d memo invalidation (satellite)
# ----------------------------------------------------------------------
def _result_with(*costs):
    points = [
        EvaluatedPoint(
            config=ArchConfig(num_buses=1 + i % 4), area=a, cycles=c
        )
        for i, (a, c) in enumerate(costs)
    ]
    return ExplorationResult(workload="t", profile={}, points=points)


def test_pareto2d_invalidates_on_in_place_mutation():
    result = _result_with((10, 100), (20, 50), (30, 40))
    assert len(result.pareto2d) == 3
    # mutate one point in place: same list length, new costs
    result.points[2].cycles = 10_000
    assert [p.area for p in result.pareto2d] == [10, 20]


def test_pareto2d_invalidates_on_same_length_replacement():
    result = _result_with((10, 100), (20, 50))
    assert len(result.pareto2d) == 2
    result.points[1] = EvaluatedPoint(
        config=ArchConfig(num_buses=4), area=5.0, cycles=5
    )
    front = result.pareto2d
    assert [p.area for p in front] == [5.0]


def test_pareto2d_still_memoized_when_unchanged():
    result = _result_with((10, 100), (20, 50))
    first = result.pareto2d
    assert result.pareto2d is first


# ----------------------------------------------------------------------
# selection over arbitrary objective vectors
# ----------------------------------------------------------------------
def test_select_architecture_with_key():
    points = [
        EvaluatedPoint(config=ArchConfig(num_buses=1), area=10, cycles=100),
        EvaluatedPoint(config=ArchConfig(num_buses=2), area=50, cycles=50),
        EvaluatedPoint(config=ArchConfig(num_buses=3), area=100, cycles=10),
    ]
    objectives = resolve_objectives(("area", "cycles"))
    best = select_architecture(
        points,
        weights=(1.0, 1.0),
        key=lambda p: cost_vector(p, objectives),
    )
    legacy = select_architecture(
        points, weights=(1.0, 1.0), use_test_cost=False
    )
    assert best.point is legacy.point
    assert best.norm == pytest.approx(legacy.norm)
    # weights steer custom vectors too
    area_heavy = select_architecture(
        points, weights=(10.0, 1.0),
        key=lambda p: cost_vector(p, objectives),
    )
    assert area_heavy.point is points[0]


# ----------------------------------------------------------------------
# code_size objective + RTL calibration post-pass
# ----------------------------------------------------------------------
def test_code_size_monotone_in_width():
    """Instruction-memory bits grow with datapath width on a fixed
    config: wider immediates can only widen the move slots."""
    from repro.explore import EvaluationContext
    from repro.study.engine import workload_profile

    config = small_space()[5]
    sizes = []
    for width in (8, 16, 32):
        workload = build_workload("gcd")
        profile = workload_profile("gcd", width)
        point = EvaluationContext(workload, profile, width).evaluate(config)
        assert point.feasible and point.code_size is not None
        # the objective is exactly the encoder's footprint
        encoder_bits = point.code_size
        assert encoder_bits > 0 and encoder_bits % 1 == 0
        sizes.append(encoder_bits)
    assert sizes[0] < sizes[1] < sizes[2]


def test_code_size_objective_gated_and_selectable():
    obj = objective_by_name("code_size")
    result = run_study(StudySpec(
        name="code-size", workloads=("gcd",), space="small",
        objectives=("area", "cycles", "code_size"),
    ))
    front = result.single.pareto
    assert front
    for point in front:
        assert obj.available(point)
        assert obj.measure(point) == float(point.code_size)
    # infeasible points never expose a footprint
    for point in result.single.result.points:
        if not point.feasible:
            assert point.code_size is None
            assert not obj.available(point)


def test_study_calibrate_front_audits_base_front():
    """calibrate_front=True runs the RTL audit over the base-objective
    front and records one passing report per front point."""
    result = run_study(
        StudySpec(
            name="calibrated", workloads=("gcd",), space="small",
            objectives=("area", "cycles"),
        ),
        calibrate_front=True,
    )
    run = result.single
    assert run.calibrations
    assert len(run.calibrations) == len(run.pareto)
    labels = {p.label for p in run.pareto}
    for report in run.calibrations:
        assert report.ok
        assert report.cycles_delta == 0
        assert report.config in labels
