"""March algorithms vs the injectable memory fault model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memtest import (
    MARCH_ALGORITHMS,
    MARCH_CM,
    MARCH_X,
    MARCH_Y,
    MATS_PLUS,
    CouplingFault,
    FaultyMemory,
    MarchElement,
    StuckAtCellFault,
    TransitionFault,
    march_pattern_count,
    run_march,
)

ALL_MARCHES = list(MARCH_ALGORITHMS.values())


# ----------------------------------------------------------------------
# memory model
# ----------------------------------------------------------------------
def test_clean_memory_read_write():
    mem = FaultyMemory(8, 16)
    mem.write(3, 0xBEEF)
    assert mem.read(3) == 0xBEEF
    assert mem.read(0) == 0


def test_address_bounds():
    mem = FaultyMemory(4, 8)
    with pytest.raises(IndexError):
        mem.read(4)
    with pytest.raises(IndexError):
        mem.write(-1, 0)


def test_fault_site_validated():
    with pytest.raises(ValueError):
        FaultyMemory(4, 8, [StuckAtCellFault(9, 0)])


def test_stuck_cell_behaviour():
    mem = FaultyMemory(4, 8, [StuckAtCellFault(1, 3, value=1)])
    assert mem.read(1) == 0b1000
    mem.write(1, 0)
    assert mem.read(1) == 0b1000


def test_transition_fault_behaviour():
    mem = FaultyMemory(4, 8, [TransitionFault(2, 0, rising=True)])
    mem.write(2, 1)
    assert mem.read(2) == 0         # up-transition blocked
    mem2 = FaultyMemory(4, 8, [TransitionFault(2, 0, rising=False)])
    mem2.write(2, 1)
    assert mem2.read(2) == 1        # up works
    mem2.write(2, 0)
    assert mem2.read(2) == 1        # down blocked


def test_coupling_idempotent():
    fault = CouplingFault(0, 0, victim_word=2, victim_bit=0, rising=True,
                          forced_value=1)
    mem = FaultyMemory(4, 8, [fault])
    mem.write(2, 0)
    mem.write(0, 1)     # aggressor rises -> victim forced to 1
    assert mem.read(2) & 1 == 1


def test_coupling_inversion():
    fault = CouplingFault(0, 0, victim_word=2, victim_bit=0, rising=True,
                          inversion=True)
    mem = FaultyMemory(4, 8, [fault])
    mem.write(2, 1)
    mem.write(0, 1)
    assert mem.read(2) & 1 == 0     # inverted


# ----------------------------------------------------------------------
# march algorithms
# ----------------------------------------------------------------------
def test_march_lengths_classic():
    assert MATS_PLUS.length(8) == 5 * 8
    assert MARCH_X.length(8) == 6 * 8
    assert MARCH_Y.length(8) == 8 * 8
    assert MARCH_CM.length(8) == 10 * 8


@pytest.mark.parametrize("march", ALL_MARCHES, ids=lambda m: m.name)
def test_clean_memory_passes(march):
    assert run_march(march, FaultyMemory(8, 16)).passed


@pytest.mark.parametrize("march", ALL_MARCHES, ids=lambda m: m.name)
@pytest.mark.parametrize("value", [0, 1])
def test_all_marches_detect_saf(march, value):
    for word in (0, 3, 7):
        for bit_index in (0, 7, 15):
            mem = FaultyMemory(8, 16, [StuckAtCellFault(word, bit_index, value)])
            assert not run_march(march, mem).passed, (
                f"{march.name} missed SAF({word},{bit_index})={value}"
            )


@pytest.mark.parametrize("march", [MARCH_X, MARCH_Y, MARCH_CM], ids=lambda m: m.name)
@pytest.mark.parametrize("rising", [True, False])
def test_transition_faults_detected(march, rising):
    for word in (0, 4, 7):
        mem = FaultyMemory(8, 16, [TransitionFault(word, 2, rising=rising)])
        assert not run_march(march, mem).passed


@pytest.mark.parametrize("rising", [True, False])
@pytest.mark.parametrize("inversion", [True, False])
def test_march_cm_detects_coupling(rising, inversion):
    """March C- covers CFin and CFid in both aggressor/victim orders."""
    for aggressor, victim in ((1, 5), (5, 1)):
        fault = CouplingFault(
            aggressor, 0, victim_word=victim, victim_bit=0,
            rising=rising, inversion=inversion, forced_value=1,
        )
        mem = FaultyMemory(8, 16, [fault])
        assert not run_march(MARCH_CM, mem).passed, (
            f"March C- missed CF {aggressor}->{victim} "
            f"rising={rising} inv={inversion}"
        )


def test_mats_plus_misses_some_coupling():
    """Sanity: the cheapest march is genuinely weaker than March C-."""
    missed = 0
    for aggressor, victim in ((1, 5), (5, 1)):
        for rising in (True, False):
            fault = CouplingFault(
                aggressor, 0, victim_word=victim, victim_bit=0,
                rising=rising, inversion=False, forced_value=0,
            )
            mem = FaultyMemory(8, 16, [fault])
            if run_march(MATS_PLUS, mem).passed:
                missed += 1
    assert missed > 0


def test_march_element_validation():
    with pytest.raises(ValueError):
        MarchElement("sideways", (("r", 0),))
    with pytest.raises(ValueError):
        MarchElement("up", (("x", 0),))
    with pytest.raises(ValueError):
        MarchElement("up", (("r", 2),))


def test_march_element_addresses():
    up = MarchElement("up", (("r", 0),))
    down = MarchElement("down", (("r", 0),))
    assert list(up.addresses(4)) == [0, 1, 2, 3]
    assert list(down.addresses(4)) == [3, 2, 1, 0]


def test_background_patterns():
    mem = FaultyMemory(8, 16, [StuckAtCellFault(3, 5, value=1)])
    result = run_march(MARCH_CM, mem, background=0xAAAA)
    # bit 5 of 0xAAAA is 1: 'w0' writes 1 there, stuck-at-1 hides until w1
    assert not result.passed


# ----------------------------------------------------------------------
# pattern counting (n_p for eq. 12)
# ----------------------------------------------------------------------
def test_pattern_count_base():
    assert march_pattern_count(MARCH_CM, 8) == 80
    assert march_pattern_count(MARCH_CM, 12) == 120


def test_pattern_count_backgrounds_multiply():
    assert march_pattern_count(MARCH_CM, 8, backgrounds=2) == 160


def test_pattern_count_port_overhead():
    base = march_pattern_count(MARCH_CM, 8)
    two_read = march_pattern_count(MARCH_CM, 8, read_ports=2)
    assert two_read == base + 2 * 8
    assert march_pattern_count(MARCH_CM, 8, read_ports=2, write_ports=2) == (
        base + 4 * 8
    )


def test_pattern_count_validation():
    with pytest.raises(ValueError):
        march_pattern_count(MARCH_CM, 8, backgrounds=0)


@given(st.integers(min_value=2, max_value=64))
def test_pattern_count_monotone_in_size(n):
    assert march_pattern_count(MARCH_CM, n + 1) > march_pattern_count(MARCH_CM, n)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=0, max_value=11),
    st.sampled_from(ALL_MARCHES),
)
def test_march_operation_count_matches_length(words, seed, march):
    mem = FaultyMemory(words, 8)
    result = run_march(march, mem)
    assert result.passed
    assert result.operations == march.length(words)
