"""Legacy setup shim.

The execution environment has setuptools but no `wheel` package, so PEP 660
editable installs (which shell out to bdist_wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on modern toolchains) work either way.
"""

from setuptools import setup

setup()
