"""The Fig. 7 VLIW extension: access paths, test order, costs."""

import pytest

from repro.components.library import alu_spec, rf_spec
from repro.vliw import (
    TestOrderError,
    VLIWComponent,
    VLIWTemplate,
    fig7_template,
    vliw_test_cost,
)
from repro.vliw import test_access_paths as access_paths_of
from repro.vliw import test_order as order_of


def test_fig7_shape():
    template = fig7_template(num_units=3)
    assert set(template.components) == {"eu0", "eu1", "eu2", "rf", "dcache"}
    assert template.directly_accessible("eu0")
    assert not template.directly_accessible("rf")


def test_fig7_access_paths():
    template = fig7_template(num_units=2)
    paths = access_paths_of(template)
    assert paths["eu0"].input_hops == 0 and paths["eu0"].output_hops == 0
    assert paths["rf"].input_hops == 0
    assert paths["rf"].output_hops == 1
    assert paths["rf"].through == ("eu0",)


def test_test_order_dependencies_first():
    template = fig7_template(num_units=3)
    order = order_of(template)
    assert set(order) == set(template.components)
    assert order.index("eu0") < order.index("rf")


def test_costs_positive_and_indirection_penalised():
    template = fig7_template(num_units=2)
    costs = vliw_test_cost(template)
    assert all(c > 0 for c in costs.values())

    # a directly-connected RF of the same spec would be cheaper
    direct = VLIWTemplate("direct", 16, 2)
    direct.add(VLIWComponent("eu0", alu_spec(16)))
    direct.add(VLIWComponent("rf", rf_spec(16, 16, read_ports=2, write_ports=1)))
    direct_costs = vliw_test_cost(direct)
    assert direct_costs["rf"] < costs["rf"]


def test_duplicate_component_rejected():
    template = VLIWTemplate("t", 16, 1)
    template.add(VLIWComponent("a", alu_spec(16)))
    with pytest.raises(ValueError, match="duplicate"):
        template.add(VLIWComponent("a", alu_spec(16)))


def test_undefined_source_rejected():
    template = VLIWTemplate("t", 16, 1)
    with pytest.raises(ValueError, match="not yet defined"):
        template.add(
            VLIWComponent("x", alu_spec(16), inputs_from=("ghost",))
        )


def test_access_cycle_detected():
    template = VLIWTemplate("t", 16, 1)
    template.add(VLIWComponent("a", alu_spec(16)))
    # b reaches the bus only through c, c only through b: a cycle.
    template.add(VLIWComponent("b", alu_spec(16), outputs_to=("a",)))
    template.components["a"] = VLIWComponent(
        "a", alu_spec(16), outputs_to=("b",)
    )
    with pytest.raises(TestOrderError):
        access_paths_of(template)
