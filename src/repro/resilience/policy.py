"""Fault policies and structured failure records.

A :class:`FaultPolicy` says what the evaluation stack does when costing
one configuration raises an *unexpected* exception (expected
infeasibility — :class:`~repro.compiler.regalloc.AllocationError`,
:class:`~repro.compiler.scheduler.ScheduleError` — never reaches the
policy; it is an ordinary infeasible point):

* ``fail_fast`` — propagate, aborting the sweep (the historical
  behaviour, and the default);
* ``skip``      — record the point as a :class:`FailedPoint` and keep
  sweeping;
* ``retry``     — re-evaluate up to ``max_retries`` extra times with
  exponential backoff, then record a :class:`FailedPoint`.

``timeout`` bounds one point's wall clock on the process-pool path
(a worker stuck past the deadline is treated as a failure under the
same mode); the serial path cannot preempt a running evaluation, so
timeouts are a pool-only guarantee.

Both classes are plain data, JSON-round-trippable, and free of heavy
imports so the evaluation hot path can reference them without cost.
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass, field

#: The modes :class:`FaultPolicy` accepts.
MODES = ("fail_fast", "skip", "retry")


@dataclass(frozen=True)
class FaultPolicy:
    """How one study treats a configuration whose evaluation dies."""

    mode: str = "fail_fast"
    max_retries: int = 2          # extra attempts in ``retry`` mode
    backoff: float = 0.05         # first retry delay, seconds
    backoff_factor: float = 2.0   # delay multiplier per further retry
    timeout: float | None = None  # per-point wall clock, pool path only

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault-policy mode {self.mode!r} "
                f"(one of: {', '.join(MODES)})"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0, backoff_factor >= 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    @property
    def attempts(self) -> int:
        """Total evaluation attempts one point may consume."""
        return 1 + (self.max_retries if self.mode == "retry" else 0)

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (the first retry is 1)."""
        return self.backoff * self.backoff_factor ** (attempt - 1)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "max_retries": self.max_retries,
            "backoff": self.backoff,
            "backoff_factor": self.backoff_factor,
            "timeout": self.timeout,
        }

    @classmethod
    def from_dict(cls, data: dict) -> FaultPolicy:
        return cls(
            mode=str(data.get("mode", "fail_fast")),
            max_retries=int(data.get("max_retries", 2)),
            backoff=float(data.get("backoff", 0.05)),
            backoff_factor=float(data.get("backoff_factor", 2.0)),
            timeout=(
                None if data.get("timeout") is None
                else float(data["timeout"])
            ),
        )


#: The default policy: exactly the pre-resilience behaviour.
FAIL_FAST = FaultPolicy()


def traceback_digest(exc: BaseException) -> str:
    """Short stable hash of an exception's formatted traceback.

    Failure records travel through JSON checkpoints and trace events;
    a 12-hex digest groups identical failure sites without shipping
    multi-kilobyte tracebacks around.
    """
    text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return hashlib.sha256(text.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class FailedPoint:
    """One configuration whose evaluation died (after all attempts).

    ``config`` is the :meth:`~repro.explore.space.ArchConfig.to_dict`
    form, so records round-trip through JSON checkpoints; ``label`` is
    the human-readable config label used everywhere else.
    """

    config: dict = field(hash=False)
    label: str = ""
    error_type: str = ""
    message: str = ""
    digest: str = ""              # traceback digest (12 hex chars)
    attempts: int = 1

    @classmethod
    def from_exception(
        cls, config, exc: BaseException, attempts: int = 1
    ) -> FailedPoint:
        """Build a record from the config object and the final error."""
        return cls(
            config=config.to_dict(),
            label=config.label(),
            error_type=type(exc).__name__,
            message=str(exc),
            digest=traceback_digest(exc),
            attempts=attempts,
        )

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "label": self.label,
            "error_type": self.error_type,
            "message": self.message,
            "digest": self.digest,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> FailedPoint:
        return cls(
            config=dict(data.get("config", {})),
            label=str(data.get("label", "")),
            error_type=str(data.get("error_type", "")),
            message=str(data.get("message", "")),
            digest=str(data.get("digest", "")),
            attempts=int(data.get("attempts", 1)),
        )

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.error_type}: {self.message} "
            f"(attempt {self.attempts}, trace {self.digest})"
        )
