"""Architecture selection by weighted vector norms (Sec. 4, Fig. 9).

"The selection of the most appropriate architecture can be done using any
of the standard weighted norm techniques within the vector space R^3 ...
The standard Euclid norm with equal constraint weights has been used."

Axes are min-max normalised over the candidate set before weighting so
that cycles (~1e5) cannot drown area (~1e3); the paper's equal-weight
choice then genuinely balances the three constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.explore.evaluate import EvaluatedPoint


@dataclass(frozen=True)
class SelectionResult:
    """The chosen architecture plus its norm value."""

    point: EvaluatedPoint
    norm: float
    normalized: tuple[float, ...]


def normalize_points(
    points: list[EvaluatedPoint], use_test_cost: bool = True
) -> list[tuple[EvaluatedPoint, tuple[float, ...]]]:
    """Min-max normalise each axis over the candidate set."""
    if not points:
        raise ValueError("no candidate points")
    vectors = []
    for p in points:
        if not p.feasible:
            raise ValueError(f"infeasible point {p.label} in selection")
        if use_test_cost:
            if p.test_cost is None:
                raise ValueError(f"point {p.label} lacks a test cost")
            vectors.append((p.area, float(p.cycles), float(p.test_cost)))
        else:
            vectors.append((p.area, float(p.cycles)))
    dims = len(vectors[0])
    lows = [min(v[d] for v in vectors) for d in range(dims)]
    highs = [max(v[d] for v in vectors) for d in range(dims)]
    out = []
    for p, v in zip(points, vectors):
        normalized = tuple(
            0.0 if highs[d] == lows[d] else (v[d] - lows[d]) / (highs[d] - lows[d])
            for d in range(dims)
        )
        out.append((p, normalized))
    return out


def select_architecture(
    points: list[EvaluatedPoint],
    weights: tuple[float, ...] = (1.0, 1.0, 1.0),
    order: float = 2.0,
    use_test_cost: bool = True,
) -> SelectionResult:
    """Pick the candidate with the smallest weighted p-norm.

    ``order=2`` with equal weights is the paper's choice; other orders
    (1 = Manhattan, inf supported via ``float('inf')``) are available for
    the ablation benches.
    """
    normalized = normalize_points(points, use_test_cost)
    dims = len(normalized[0][1])
    if len(weights) < dims:
        raise ValueError(f"need {dims} weights, got {len(weights)}")

    best: SelectionResult | None = None
    for point, vector in normalized:
        weighted = [w * x for w, x in zip(weights, vector)]
        if order == float("inf"):
            norm = max(weighted)
        else:
            norm = sum(x**order for x in weighted) ** (1.0 / order)
        if best is None or norm < best.norm or (
            norm == best.norm and point.area < best.point.area
        ):
            best = SelectionResult(point=point, norm=norm, normalized=vector)
    assert best is not None
    return best
