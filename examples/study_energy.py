#!/usr/bin/env python3
"""Energy-aware exploration with the real switching-activity model.

Earlier revisions shipped a crude ``energy_proxy`` objective (cycles x
bus count).  This walkthrough uses the real thing: the ``energy``
objective simulates each base-front design point with activity tracing
— Hamming-distance toggle counts per bus, port, register file and
instruction fetch — and prices the events with weights derived from the
gate-level component netlists (:mod:`repro.energy`).

The script explores GCD under (cycles, area, energy), prints the 3-D
front with the energy column, dissects the winner's energy by component
(buses vs FUs vs RFs vs fetch vs leakage), and then re-ranks the same
space by energy-delay product — a single-objective study whose front is
exactly one machine.  A second pass under the registered ``low_power``
technology shows how weight sets swap without touching the spec's
structure.

Run:  python examples/study_energy.py
"""

from repro import StudySpec, run_study
from repro.apps.registry import build_workload
from repro.energy import energy_breakdown_of, format_energy_report

common = dict(workloads=("gcd",), space="small")

study = run_study(StudySpec(
    name="energy-3d",
    objectives=("cycles", "area", "energy"),
    select=True,
    **common,
))
print(study.summary())
print("\n(cycles, area, energy) front:")
for p in sorted(study.pareto, key=lambda p: p.area):
    print(f"  {p.label:<28} cycles={p.cycles:>6} area={p.area:>8.0f} "
          f"energy={p.energy:>10.1f}")

winner = study.selection.point
print(f"\nwinner: {winner.label} — where does its energy go?\n")
breakdown = energy_breakdown_of(winner, build_workload("gcd"))
print(format_energy_report(breakdown))

edp = run_study(StudySpec(
    name="energy-edp", objectives=("edp",), select=True, **common,
))
best = edp.selection.point
print(f"\nminimum energy-delay product: {best.label} "
      f"(energy={best.energy:.1f}, cycles={best.cycles}, "
      f"edp={best.energy * best.cycles:.3e})")

low_power = run_study(StudySpec(
    name="energy-low-power",
    objectives=("cycles", "area", "energy"),
    tech="low_power",
    **common,
))
pairs = {p.label: p.energy for p in low_power.pareto}
print("\nsame front under the 'low_power' technology registry entry:")
for p in sorted(study.pareto, key=lambda p: p.area):
    if p.label in pairs:
        print(f"  {p.label:<28} default={p.energy:>10.1f} "
              f"low_power={pairs[p.label]:>10.1f}")
