"""Multi-chain test scheduling (the paper's noted extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import ArchConfig, RFConfig, build_architecture
from repro.testcost import architecture_test_cost
from repro.testcost.multichain import (
    TestSession,
    schedule_tests,
    sessions_from_breakdown,
)


def _sessions(*lengths):
    return [TestSession(f"s{i}", c) for i, c in enumerate(lengths)]


def test_single_resource_is_paper_sum():
    sessions = _sessions(877, 884, 882, 1144)
    schedule = schedule_tests(sessions, num_resources=1)
    assert schedule.makespan == 877 + 884 + 882 + 1144


def test_enough_resources_is_max():
    sessions = _sessions(100, 300, 200)
    schedule = schedule_tests(sessions, num_resources=3)
    assert schedule.makespan == 300


def test_lpt_two_resources():
    sessions = _sessions(8, 7, 6, 5, 4)
    schedule = schedule_tests(sessions, num_resources=2)
    # LPT places 8|7, 6->r1, 5->r0, 4 ties to r0: makespan 17 (optimal
    # is 15; LPT's 4/3 bound guarantees <= 20).
    assert schedule.makespan == 17


def test_no_overlap_on_a_resource():
    sessions = _sessions(5, 5, 5, 5, 5)
    schedule = schedule_tests(sessions, num_resources=2)
    windows: dict[int, list[tuple[int, int]]] = {}
    for name in schedule.assignment:
        resource = schedule.resource_of(name)
        windows.setdefault(resource, []).append(schedule.window_of(name))
    for spans in windows.values():
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2


def test_precedence_respected():
    sessions = [
        TestSession("sockets", 100),
        TestSession("fu", 50, after=("sockets",)),
    ]
    schedule = schedule_tests(sessions, num_resources=4)
    s_end = schedule.window_of("sockets")[1]
    f_start = schedule.window_of("fu")[0]
    assert f_start >= s_end
    assert schedule.makespan == 150


def test_precedence_cycle_detected():
    sessions = [
        TestSession("a", 1, after=("b",)),
        TestSession("b", 1, after=("a",)),
    ]
    with pytest.raises(ValueError, match="circular"):
        schedule_tests(sessions, num_resources=1)


def test_unknown_predecessor_rejected():
    with pytest.raises(ValueError, match="unknown predecessor"):
        schedule_tests([TestSession("a", 1, after=("ghost",))])


def test_zero_resources_rejected():
    with pytest.raises(ValueError):
        schedule_tests(_sessions(1), num_resources=0)


@settings(max_examples=40)
@given(
    st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=12),
    st.integers(min_value=1, max_value=4),
)
def test_makespan_bounds(lengths, k):
    sessions = _sessions(*lengths)
    schedule = schedule_tests(sessions, num_resources=k)
    total, longest = sum(lengths), max(lengths)
    assert max(longest, -(-total // k)) <= schedule.makespan <= total
    # more resources never hurt
    more = schedule_tests(sessions, num_resources=k + 1)
    assert more.makespan <= schedule.makespan


def test_sessions_from_breakdown_and_paper_sum():
    arch = build_architecture(
        ArchConfig(num_buses=2, rfs=(RFConfig(8), RFConfig(12)))
    )
    breakdown = architecture_test_cost(arch)
    sessions = sessions_from_breakdown(breakdown)
    # socket session + functional session per counted unit
    counted = [u for u in breakdown.units if u.counted]
    assert len(sessions) == 2 * len(counted)
    single = schedule_tests(sessions, num_resources=1)
    assert single.makespan == breakdown.total   # the paper's summation
    dual = schedule_tests(sessions, num_resources=2)
    assert dual.makespan < single.makespan
