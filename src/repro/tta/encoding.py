"""Binary move encoding: instruction formats and program memory size.

A TTA instruction is one move slot per bus; each slot carries a guard
field, a source field (socket address + register index, or a short
immediate) and a destination field (socket address + register index +
opcode).  Long immediates borrow the extension field.  This module
derives the field widths from a concrete architecture, packs programs
into binary words, and decodes them back — which pins the format down
and gives the explorer an instruction-memory size figure.

The encoding follows the MOVE framework's layout in spirit: socket
addresses are small dense ids, short immediates ride in the source
field, and the instruction width is ``num_buses * slot_width`` plus one
long-immediate extension field.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.components.spec import ComponentKind
from repro.tta.arch import Architecture
from repro.tta.isa import (
    GUARD_UNIT,
    Guard,
    Instruction,
    Literal,
    Move,
    PortRef,
    Program,
    SHORT_IMM_BITS,
)


class EncodingError(Exception):
    """Move not representable in this architecture's format."""


def _bits_for(count: int) -> int:
    """Bits to address ``count`` distinct values (>= 1)."""
    return max(1, (max(count, 1) - 1).bit_length() or 1)


@dataclass(frozen=True)
class InstructionFormat:
    """Field widths derived from one architecture."""

    num_buses: int
    guard_bits: int        # 1 valid + 1 polarity + index
    src_addr_bits: int     # 1 imm flag + max(socket id, short imm)
    src_index_bits: int    # RF register index on the source side
    dst_addr_bits: int
    dst_index_bits: int
    opcode_bits: int
    imm_ext_bits: int      # shared long-immediate extension field

    @property
    def slot_bits(self) -> int:
        return (
            self.guard_bits
            + self.src_addr_bits
            + self.src_index_bits
            + self.dst_addr_bits
            + self.dst_index_bits
            + self.opcode_bits
        )

    @property
    def instruction_bits(self) -> int:
        """Total instruction word width (the 'very long' in VLIW)."""
        return self.num_buses * self.slot_bits + self.imm_ext_bits


class MoveEncoder:
    """Binary encoder/decoder bound to one architecture."""

    def __init__(self, arch: Architecture):
        self.arch = arch
        self._sources: list[tuple[str, str]] = []
        self._destinations: list[tuple[str, str]] = []
        for unit in arch.units.values():
            for port in unit.spec.ports:
                key = (unit.name, port.name)
                if port.is_input:
                    self._destinations.append(key)
                else:
                    self._sources.append(key)
        for g in range(arch.num_guard_regs):
            self._sources.append((GUARD_UNIT, f"g{g}"))
            self._destinations.append((GUARD_UNIT, f"g{g}"))
        self._src_id = {key: i for i, key in enumerate(self._sources)}
        # Destination ids are 1-based so an all-zero slot means "empty".
        self._dst_id = {key: i + 1 for i, key in enumerate(self._destinations)}

        opcodes: set[str] = set()
        max_regs = 1
        for unit in arch.units.values():
            opcodes.update(unit.spec.ops)
            if unit.spec.kind is ComponentKind.RF:
                max_regs = max(max_regs, unit.spec.num_regs)
        opcodes.update(("ld", "ld_ls", "ld_lu", "ld_h", "st", "jump"))
        self._opcodes = sorted(opcodes)
        self._opcode_id = {op: i + 1 for i, op in enumerate(self._opcodes)}

        self.format = InstructionFormat(
            num_buses=arch.num_buses,
            guard_bits=2 + _bits_for(arch.num_guard_regs),
            src_addr_bits=1
            + max(_bits_for(len(self._sources)), SHORT_IMM_BITS),
            src_index_bits=_bits_for(max_regs),
            dst_addr_bits=_bits_for(len(self._destinations) + 1),
            dst_index_bits=_bits_for(max_regs),
            opcode_bits=_bits_for(len(self._opcodes) + 1),
            imm_ext_bits=arch.width,
        )

    # -- read-only views for downstream consumers (RTL elaboration) ----
    @property
    def sources(self) -> tuple[tuple[str, str], ...]:
        """All (unit, port) source keys in source-id order."""
        return tuple(self._sources)

    @property
    def destinations(self) -> tuple[tuple[str, str], ...]:
        """All (unit, port) destination keys, id ``i + 1`` for entry i."""
        return tuple(self._destinations)

    @property
    def opcodes(self) -> tuple[str, ...]:
        """All opcode mnemonics, id ``i + 1`` for entry i."""
        return tuple(self._opcodes)

    def source_id(self, unit: str, port: str) -> int:
        """0-based socket address of an output port (or guard reg)."""
        return self._src_id[(unit, port)]

    def destination_id(self, unit: str, port: str) -> int:
        """1-based socket address of an input port (0 = empty slot)."""
        return self._dst_id[(unit, port)]

    def opcode_id(self, op: str) -> int:
        """1-based encoded opcode id (0 = no opcode)."""
        return self._opcode_id[op]

    # ------------------------------------------------------------------
    def encode_move(self, move: Move) -> tuple[int, int | None]:
        """Pack one move into its slot value; returns (slot, long_imm)."""
        fmt = self.format
        value = 0

        # guard field
        if move.guard is not None:
            g = 1 | (move.guard.invert << 1) | (move.guard.index << 2)
        else:
            g = 0
        value |= g

        # source field
        shift = fmt.guard_bits
        long_imm: int | None = None
        if isinstance(move.src, Literal):
            imm = move.src.value
            if move.needs_long_immediate():
                long_imm = imm & ((1 << fmt.imm_ext_bits) - 1)
                # data travels in the extension field; the all-ones source
                # index below marks this slot as the extension's consumer
                src_field = 1
            else:
                payload = imm & ((1 << SHORT_IMM_BITS) - 1)
                src_field = 1 | (payload << 1)
        else:
            key = (move.src.unit, move.src.port)
            if key not in self._src_id:
                raise EncodingError(f"unknown source {move.src}")
            src_field = self._src_id[key] << 1
        value |= (src_field & ((1 << fmt.src_addr_bits) - 1)) << shift

        # source register index / long-imm marker
        shift += fmt.src_addr_bits
        src_index = move.src_reg or 0
        if long_imm is not None:
            src_index = (1 << fmt.src_index_bits) - 1
        value |= src_index << shift

        # destination
        shift += fmt.src_index_bits
        key = (move.dst.unit, move.dst.port)
        if key not in self._dst_id:
            raise EncodingError(f"unknown destination {move.dst}")
        value |= self._dst_id[key] << shift

        shift += fmt.dst_addr_bits
        value |= (move.dst_reg or 0) << shift

        shift += fmt.dst_index_bits
        if move.opcode is not None:
            if move.opcode not in self._opcode_id:
                raise EncodingError(f"unknown opcode {move.opcode!r}")
            value |= self._opcode_id[move.opcode] << shift
        return value, long_imm

    def decode_move(self, slot: int, long_imm: int) -> Move | None:
        """Inverse of :meth:`encode_move` (None for an empty slot)."""
        fmt = self.format
        if slot == 0:
            return None
        g = slot & ((1 << fmt.guard_bits) - 1)
        guard = None
        if g & 1:
            guard = Guard(index=g >> 2, invert=bool((g >> 1) & 1))

        shift = fmt.guard_bits
        src_field = (slot >> shift) & ((1 << fmt.src_addr_bits) - 1)
        shift += fmt.src_addr_bits
        src_index = (slot >> shift) & ((1 << fmt.src_index_bits) - 1)
        shift += fmt.src_index_bits
        dst_id = (slot >> shift) & ((1 << fmt.dst_addr_bits) - 1)
        shift += fmt.dst_addr_bits
        dst_index = (slot >> shift) & ((1 << fmt.dst_index_bits) - 1)
        shift += fmt.dst_index_bits
        opcode_id = (slot >> shift) & ((1 << fmt.opcode_bits) - 1)

        src: PortRef | Literal
        src_reg = None
        if src_field & 1:
            if src_index == (1 << fmt.src_index_bits) - 1:
                # long immediate: sign-extend from the extension field
                raw = long_imm
                if raw >> (fmt.imm_ext_bits - 1):
                    raw -= 1 << fmt.imm_ext_bits
                src = Literal(raw)
            else:
                raw = (src_field >> 1) & ((1 << SHORT_IMM_BITS) - 1)
                if raw >> (SHORT_IMM_BITS - 1):
                    raw -= 1 << SHORT_IMM_BITS
                src = Literal(raw)
        else:
            unit, port = self._sources[src_field >> 1]
            src = PortRef(unit, port)
            if self.arch.units.get(unit) is not None:
                if self.arch.unit(unit).spec.kind is ComponentKind.RF:
                    src_reg = src_index

        unit, port = self._destinations[dst_id - 1]
        dst = PortRef(unit, port)
        dst_reg = None
        if unit in self.arch.units:
            if self.arch.unit(unit).spec.kind is ComponentKind.RF:
                dst_reg = dst_index
        opcode = None
        if opcode_id:
            opcode = self._opcodes[opcode_id - 1]
        return Move(
            src=src, dst=dst, opcode=opcode,
            src_reg=src_reg, dst_reg=dst_reg, guard=guard,
        )

    # ------------------------------------------------------------------
    def encode_instruction(self, instruction: Instruction) -> int:
        fmt = self.format
        word = 0
        long_imm_value = 0
        for bus, move in enumerate(instruction.slots):
            if move is None:
                continue
            slot, long_imm = self.encode_move(move)
            if long_imm is not None:
                long_imm_value = long_imm
            word |= slot << (bus * fmt.slot_bits)
        word |= long_imm_value << (fmt.num_buses * fmt.slot_bits)
        return word

    def decode_instruction(self, word: int) -> Instruction:
        fmt = self.format
        long_imm = word >> (fmt.num_buses * fmt.slot_bits)
        slots = []
        for bus in range(fmt.num_buses):
            slot = (word >> (bus * fmt.slot_bits)) & ((1 << fmt.slot_bits) - 1)
            slots.append(self.decode_move(slot, long_imm))
        return Instruction(slots=slots)

    def encode_program(self, program: Program) -> list[int]:
        return [self.encode_instruction(i) for i in program.instructions]

    def program_memory_bits(self, program: Program) -> int:
        """Instruction-memory footprint of a scheduled program."""
        return len(program.instructions) * self.format.instruction_bits
