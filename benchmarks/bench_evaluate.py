"""End-to-end evaluation-pipeline benchmark (tracked in git).

Times the reference (pre-caching) evaluation pipeline against the
``EvaluationContext`` fast path on the small and medium sweeps, checks
both produce identical Pareto sets, and writes ``BENCH_evaluate.json``
at the repository root.

Not a pytest module on purpose: run it directly —

    PYTHONPATH=src python benchmarks/bench_evaluate.py

or through the CLI, ``python -m repro bench``.  CI runs the small suite
as a smoke test and uploads the JSON artifact.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.bench import DEFAULT_OUTPUT, main

    argv = sys.argv[1:]
    if not any(a.startswith(("-o", "--output")) for a in argv):
        argv += ["--output", str(REPO_ROOT / DEFAULT_OUTPUT)]
    raise SystemExit(main(argv))
