"""Interconnect (bus + socket) test — the paper's mandatory first step.

Sec. 3.2: "The test of the sockets also tests all interconnections
inside the datapath.  Note that the order of test is important for these
architectures, i.e. it is necessary to perform the interconnect test of
the sockets and busses before carrying out the functional test of the
components" — the Core-Based-Test analogy: interconnect first, then IP.

The model here prices that first step:

* per bus: a walking-one plus a walking-zero sweep across the data lines
  (detects line-to-line shorts and opens) plus all-0/all-1 background
  patterns — each pattern is one transport + one read-back cycle;
* per socket connection: one positive address probe (the socket must
  respond to its ID) and one negative probe (it must stay quiet for a
  neighbour's ID).

:func:`interconnect_sessions` packages the result for the multi-chain
scheduler with the precedence edges that make every socket/functional
session wait for the interconnect session.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.testcost.multichain import TestSession
from repro.tta.arch import Architecture


@dataclass(frozen=True)
class InterconnectCost:
    """Cycle breakdown of the interconnect test."""

    num_buses: int
    bus_patterns: int          # per-bus walking patterns
    bus_cycles: int
    num_connections: int
    addressing_cycles: int

    @property
    def total(self) -> int:
        return self.bus_cycles + self.addressing_cycles


def interconnect_test_cost(arch: Architecture) -> InterconnectCost:
    """Price the bus + socket-addressing test of one architecture."""
    width = arch.width
    # walking-1 + walking-0 + solid backgrounds, 2 cycles per pattern
    patterns_per_bus = 2 * width + 2
    bus_cycles = arch.num_buses * patterns_per_bus * 2
    # one positive + one negative ID probe per connection, 2 cycles each
    addressing_cycles = arch.num_connections * 2 * 2
    return InterconnectCost(
        num_buses=arch.num_buses,
        bus_patterns=patterns_per_bus,
        bus_cycles=bus_cycles,
        num_connections=arch.num_connections,
        addressing_cycles=addressing_cycles,
    )


#: Session name used for the interconnect step.
INTERCONNECT_SESSION = "interconnect"


def interconnect_sessions(arch: Architecture, breakdown) -> list[TestSession]:
    """Full test plan: interconnect first, then sockets, then components.

    ``breakdown`` is a :class:`~repro.testcost.cost.TestCostBreakdown`;
    the returned sessions feed :func:`~repro.testcost.multichain.schedule_tests`.
    """
    cost = interconnect_test_cost(arch)
    sessions = [TestSession(INTERCONNECT_SESSION, cost.total)]
    for unit in breakdown.units:
        if not unit.counted:
            continue
        socket_name = f"{unit.unit_name}.sockets"
        sessions.append(
            TestSession(
                socket_name, unit.socket_cost, after=(INTERCONNECT_SESSION,)
            )
        )
        sessions.append(
            TestSession(
                unit.unit_name, unit.component_cost, after=(socket_name,)
            )
        )
    return sessions
