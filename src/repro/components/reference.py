"""Behavioural reference models for the datapath components.

These are the golden models: the gate-level generators are differentially
tested against them, and the TTA simulator executes them directly (the
gate level exists for area/test back-annotation, not for speed).
"""

from __future__ import annotations

from repro.util.bitops import mask, sign_extend, to_signed, to_unsigned

#: ALU operation mnemonics in opcode order (3-bit opcode).
ALU_OPS: tuple[str, ...] = ("add", "sub", "and", "or", "xor", "shl", "shr", "sra")

#: Comparator mnemonics in opcode order (3-bit opcode; 6/7 alias eq/ne).
CMP_OPS: tuple[str, ...] = ("eq", "ne", "ltu", "geu", "lts", "ges")

#: Load/store extension modes (2-bit opcode inside the LSU).
LSU_OPS: tuple[str, ...] = ("word", "low_signed", "low_unsigned", "high")

#: Multiplier mnemonic (single-op FU).
MUL_OPS: tuple[str, ...] = ("mul",)

#: Stand-alone shifter mnemonics (subset of the ALU's shift group).
SHIFTER_OPS: tuple[str, ...] = ("shl", "shr", "sra")


def shift_amount(b: int, width: int) -> int:
    """Shift count the hardware sees: low log2(width) bits of ``b``."""
    if width & (width - 1) == 0:
        return b & (width - 1)
    return b % width


def alu_reference(op: str, a: int, b: int, width: int) -> int:
    """Golden ALU: returns the ``width``-bit result of ``op`` on a, b."""
    m = mask(width)
    a &= m
    b &= m
    if op == "add":
        return (a + b) & m
    if op == "sub":
        return (a - b) & m
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    amount = shift_amount(b, width)
    if op == "shl":
        return (a << amount) & m
    if op == "shr":
        return a >> amount
    if op == "sra":
        return to_unsigned(to_signed(a, width) >> amount, width)
    raise ValueError(f"unknown ALU op: {op}")


def cmp_reference(op: str, a: int, b: int, width: int) -> int:
    """Golden comparator: returns 0 or 1."""
    m = mask(width)
    a &= m
    b &= m
    if op == "eq":
        return int(a == b)
    if op == "ne":
        return int(a != b)
    if op == "ltu":
        return int(a < b)
    if op == "geu":
        return int(a >= b)
    sa, sb = to_signed(a, width), to_signed(b, width)
    if op == "lts":
        return int(sa < sb)
    if op == "ges":
        return int(sa >= sb)
    raise ValueError(f"unknown CMP op: {op}")


def lsu_extend_reference(mode: str, data: int, width: int) -> int:
    """Golden LSU read-path extension unit (byte/halfword handling)."""
    m = mask(width)
    data &= m
    half = width // 2
    if mode == "word":
        return data
    if mode == "low_signed":
        return sign_extend(data & mask(half), half, width)
    if mode == "low_unsigned":
        return data & mask(half)
    if mode == "high":
        return data >> half
    raise ValueError(f"unknown LSU mode: {mode}")


def mul_reference(a: int, b: int, width: int) -> int:
    """Golden multiplier: low ``width`` bits of the product."""
    m = mask(width)
    return ((a & m) * (b & m)) & m


def shifter_reference(op: str, a: int, b: int, width: int) -> int:
    """Golden stand-alone shifter (same semantics as the ALU shift group)."""
    if op not in SHIFTER_OPS:
        raise ValueError(f"unknown shifter op: {op}")
    return alu_reference(op, a, b, width)
