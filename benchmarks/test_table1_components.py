"""Table 1 — full scan vs the functional-transport approach.

Regenerates the paper's table for the Fig. 9 component set (ALU, CMP,
RF1 = 8x16, RF2 = 12x16, LD/ST, PC).  Shape criteria:

* our approach needs *significantly* fewer cycles than full scan for
  every ranked component (the paper shows 2-8x);
* the RF rows dominate the full-scan column (flip-flop implementation
  with every storage bit on the chain);
* scan-chain lengths land in the paper's range (ALU/CMP ~58);
* fault coverage of the datapath components stays high (paper:
  99.48-99.78%; ours: >= 97%).
"""

from benchmarks.conftest import save_artifact
from repro.explore import ArchConfig, RFConfig, build_architecture
from repro.testcost import build_table1, format_table1


def _fig9_architecture():
    config = ArchConfig(
        num_buses=2,
        num_alus=1,
        num_cmps=1,
        rfs=(RFConfig(8), RFConfig(12)),
    )
    return build_architecture(config)


def test_table1(benchmark):
    arch = _fig9_architecture()
    rows, breakdown = benchmark.pedantic(
        lambda: build_table1(arch), rounds=1, iterations=1
    )

    by_name = {r.component: r for r in rows}
    assert {"ALU0", "CMP0", "RF0", "RF1", "LSU0", "PC"} <= set(by_name)

    for name in ("ALU0", "CMP0", "RF0", "RF1"):
        row = by_name[name]
        assert row.counted
        assert row.our_approach < row.full_scan, f"{name}: ours must win"
        assert row.advantage > 2.0, f"{name}: expected >2x advantage"
        assert row.fault_coverage >= 97.0

    # the paper's ALU/CMP chains are 58 cells; ours are structural too
    assert abs(by_name["ALU0"].nl - 58) <= 3
    assert abs(by_name["CMP0"].nl - 58) <= 3

    # RF full scan explodes because every storage bit joins the chain
    assert by_name["RF1"].full_scan > by_name["ALU0"].full_scan

    # LD/ST and PC are excluded from the ranking (parenthesised rows)
    assert not by_name["LSU0"].counted
    assert not by_name["PC"].counted

    # eq. 14: the architecture cost is the sum of the counted units
    assert breakdown.total == sum(
        r.our_approach for r in rows if r.counted
    )

    table = format_table1(rows)
    paper = (
        "paper Table 1      full scan   our approach   nl  ftfu ftrf  fts\n"
        "  ALU                   7208            877   58    65    -  812\n"
        "  CMP                   4556            884   58    72    -  812\n"
        "  RF1                   1912            882   58     -   70  812\n"
        "  RF2                   2083           1144   75     -   94 1050\n"
        "  LD/ST                  964          (964)   58     -    -    -\n"
        "  PC                    1112         (1112)   58     -    -    -"
    )
    save_artifact(
        "table1_components",
        f"Table 1 reproduction (architecture: {arch.name})\n\n{table}\n\n{paper}",
    )
