"""Iterative explorer: finds the frontier with far fewer evaluations."""

from repro.apps import build_gcd_ir
from repro.apps.crypt_kernel import build_crypt_ir
from repro.explore import crypt_space, pareto_filter
from repro.explore.iterative import neighbours
from repro.explore.space import ArchConfig, RFConfig
from repro.study.engine import run_search


def _iterative(workload, max_evaluations):
    """The neighbourhood search, unbounded (empty space), via the
    study engine's ``iterative`` strategy."""
    return run_search(
        workload, [], strategy="iterative",
        strategy_params={"max_evaluations": max_evaluations},
    )


def _front(points):
    feasible = [p for p in points if p.feasible]
    return pareto_filter(feasible, key=lambda p: p.cost2d())


def test_neighbours_single_mutations():
    config = ArchConfig(num_buses=2, num_alus=2, rfs=(RFConfig(8),))
    near = neighbours(config)
    labels = {c.label() for c in near}
    assert len(labels) == len(near), "no duplicate neighbours"
    assert config.label() not in labels
    # one parameter changes at a time
    for candidate in near:
        diffs = sum(
            [
                candidate.num_buses != config.num_buses,
                candidate.num_alus != config.num_alus,
                candidate.num_shifters != config.num_shifters,
                candidate.rfs != config.rfs,
            ]
        )
        assert diffs == 1


def test_neighbours_respect_bounds():
    low = ArchConfig(num_buses=1, num_alus=1, rfs=(RFConfig(4),))
    for candidate in neighbours(low):
        assert candidate.num_buses >= 1
        assert candidate.num_alus >= 1


def test_iterative_matches_exhaustive_on_gcd():
    fn = build_gcd_ir(252, 105)
    exhaustive = run_search(fn, crypt_space())
    target = {(p.area, p.cycles) for p in _front(exhaustive.points)}

    iterative = _iterative(fn, max_evaluations=80)
    found = {(p.area, p.cycles) for p in _front(iterative.points)}
    # the search needs far fewer evaluations than the sweep...
    assert iterative.evaluations <= 80 < len(crypt_space())
    # ...and recovers most of the true frontier
    recovered = len(found & target) / len(target)
    assert recovered >= 0.6, f"only {recovered:.0%} of the frontier found"


def test_iterative_on_crypt_is_budgeted():
    fn = build_crypt_ir("x", "ab")
    iterative = _iterative(fn, max_evaluations=30)
    assert iterative.evaluations <= 30
    assert _front(iterative.points)
    # the frontier never shrinks during the search
    history = iterative.frontier_history
    assert history == sorted(history) or len(set(history)) > 1
