"""Scan test-application cycle counts.

Standard single-chain scan costs: each pattern shifts in through ``n_l``
cells (overlapped with the previous pattern's shift-out) plus one capture
cycle, with one final shift-out tail:

``cycles = n_p * (n_l + 1) + n_l``

This is the "full scan" column of Table 1; note how the paper's numbers
carry exactly this structure (e.g. ALU: 7208 cycles on a 58-cell chain).
"""

from __future__ import annotations


def scan_test_cycles(num_patterns: int, chain_length: int) -> int:
    """Cycles to apply ``num_patterns`` through one scan chain."""
    if num_patterns < 0 or chain_length < 0:
        raise ValueError("pattern count and chain length must be >= 0")
    if num_patterns == 0:
        return 0
    return num_patterns * (chain_length + 1) + chain_length


def full_scan_cycles(num_patterns: int, chain_length: int) -> int:
    """Alias used by the Table 1 generator (same formula)."""
    return scan_test_cycles(num_patterns, chain_length)
