"""The analytical test cost functions (eqs. 11-14).

All costs are in *test application cycles*; "the cost is related to the
testing time".  See DESIGN.md for the documented reconstruction of the
partially-garbled eq. 12.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.components.spec import ComponentKind
from repro.explore.evaluate import EvaluatedPoint, architecture_of
from repro.testcost.backannotate import Backannotation, component_backannotation
from repro.testcost.transport import transport_latency
from repro.tta.arch import Architecture


def fu_test_cost(num_patterns: int, cd: int, n_conn: int, n_buses: int) -> int:
    """Eq. 11: ``f_tfu = n_p * CD_fu * max(1, n_conn / n_b)``."""
    if num_patterns < 0 or cd < 1 or n_conn < 1 or n_buses < 1:
        raise ValueError("invalid FU cost parameters")
    ratio = max(1.0, n_conn / n_buses)
    return int(round(num_patterns * cd * ratio))


def rf_test_cost(
    num_patterns: int, cd: int, n_in: int, n_out: int, n_buses: int
) -> int:
    """Eq. 12 (reconstructed, see DESIGN.md):

    * ``min(n_in, n_out) <= n_b`` — parallel port application helps:
      ``ceil(n_p / min(n_in, n_out)) * CD``;
    * both port counts exceed the buses — marching patterns serialise
      into different timing slots:
      ``ceil(n_p / n_b) * CD * ceil(max(n_in, n_out) / n_b)``.
    """
    if num_patterns < 0 or cd < 1 or n_in < 1 or n_out < 1 or n_buses < 1:
        raise ValueError("invalid RF cost parameters")
    if min(n_in, n_out) <= n_buses:
        return math.ceil(num_patterns / min(n_in, n_out)) * cd
    return (
        math.ceil(num_patterns / n_buses)
        * cd
        * math.ceil(max(n_in, n_out) / n_buses)
    )


def socket_test_cost(num_patterns: int, chain_length: int) -> int:
    """Eq. 13: ``f_ts = n_p * n_l`` (scan-based socket test)."""
    if num_patterns < 0 or chain_length < 0:
        raise ValueError("invalid socket cost parameters")
    return num_patterns * chain_length


@dataclass
class UnitTestCost:
    """Per-unit cost summary (one Table 1 row's analytical part)."""

    unit_name: str
    spec_name: str
    kind: ComponentKind
    cd: int
    component_cost: int        # f_tfu or f_trf (0 for LSU/PC/IMM)
    socket_cost: int           # f_ts
    backannotation: Backannotation
    counted: bool              # excluded units contribute equally (Sec. 4)

    @property
    def total(self) -> int:
        return self.component_cost + self.socket_cost


@dataclass
class TestCostBreakdown:
    """Eq. 14 evaluated on one architecture."""

    arch_name: str
    units: list[UnitTestCost] = field(default_factory=list)

    @property
    def total(self) -> int:
        """``f_t``: sum over counted FUs, RFs and their sockets."""
        return sum(u.total for u in self.units if u.counted)

    @property
    def total_all_units(self) -> int:
        return sum(u.total for u in self.units)

    def unit(self, name: str) -> UnitTestCost:
        for u in self.units:
            if u.unit_name == name:
                return u
        raise KeyError(f"no unit {name!r} in breakdown")


#: (spec, march, num_buses, port->bus binding) -> (cd, component cost,
#: back-annotation).  Everything eqs. 11-13 read about one unit is in
#: that fingerprint, so two units agreeing on it — across architectures,
#: sweeps and workloads — share one evaluation, and ``attach_test_costs``
#: stops re-running the ATPG-backed math for every Pareto point that
#: merely re-mixes already-seen components.
_UNIT_COST_CACHE: dict[tuple, tuple[int, int, "Backannotation"]] = {}


def _unit_cost(
    arch: Architecture, unit_name: str, march_name: str
) -> tuple[int, int, Backannotation]:
    """(CD, component cost, back-annotation) for one unit, memoized."""
    spec = arch.unit(unit_name).spec
    binding = tuple(
        (port.name, tuple(sorted(arch.port_buses(unit_name, port.name))))
        for port in spec.ports
    )
    key = (spec, march_name, arch.num_buses, binding)
    cached = _UNIT_COST_CACHE.get(key)
    if cached is not None:
        return cached
    back = component_backannotation(spec, march_name)
    cd = transport_latency(arch, unit_name)
    if spec.kind is ComponentKind.FU:
        component = fu_test_cost(
            back.num_patterns, cd, spec.n_conn, arch.num_buses
        )
    elif spec.kind is ComponentKind.RF:
        component = rf_test_cost(
            back.num_patterns, cd, spec.n_in, spec.n_out, arch.num_buses
        )
    else:
        component = 0
    result = (cd, component, back)
    _UNIT_COST_CACHE[key] = result
    return result


def architecture_test_cost(
    arch: Architecture,
    march_name: str = "March C-",
) -> TestCostBreakdown:
    """Evaluate eqs. (11)-(14) on a concrete architecture.

    LD/ST, PC and immediate units are reported but not *counted* — "they
    always appear once for arbitrary architecture ... hence they
    contribute equally" (Sec. 4).
    """
    breakdown = TestCostBreakdown(arch_name=arch.name)
    for unit in arch.units.values():
        spec = unit.spec
        cd, component, back = _unit_cost(arch, unit.name, march_name)
        counted = spec.kind in (ComponentKind.FU, ComponentKind.RF)
        breakdown.units.append(
            UnitTestCost(
                unit_name=unit.name,
                spec_name=spec.name,
                kind=spec.kind,
                cd=cd,
                component_cost=component,
                socket_cost=back.socket_cost if counted else 0,
                backannotation=back,
                counted=counted,
            )
        )
    return breakdown


def attach_test_costs(
    points: list[EvaluatedPoint],
    march_name: str = "March C-",
    width: int = 16,
    metrics=None,
) -> list[EvaluatedPoint]:
    """Annotate evaluated points with ``f_t`` (feasible points only).

    Architectures come from the shared builder cache (the same instance
    ``evaluate_config`` costed), and per-unit costs are served from the
    component-fingerprint cache, so attaching costs to a Pareto set does
    not re-instantiate templates or re-run the ATPG engine for component
    types it has already seen.

    ``metrics`` (a :class:`repro.telemetry.MetricsCollector`) times the
    analytical model as the ``test_cost`` phase and counts annotated
    points (``test_cost_attached``); ``None`` skips all bookkeeping.
    """
    for point in points:
        if not point.feasible:
            continue
        if metrics is None:
            arch = architecture_of(point, width)
            point.test_cost = architecture_test_cost(arch, march_name).total
            continue
        with metrics.phase("test_cost"):
            arch = architecture_of(point, width)
            point.test_cost = architecture_test_cost(arch, march_name).total
        metrics.count("test_cost_attached")
    return points
