"""Offline trace analysis: turn a recorded JSONL run into tables.

``python -m repro trace summarize FILE.jsonl`` renders what this module
computes: per-run (and whole-trace) phase time tables from the
``metrics`` events, a cache report from the ``cache`` events and point
stream, and span/wave accounting — all without touching the study
stack, so traces can be analysed on machines that never ran a study.
"""

from __future__ import annotations

from pathlib import Path

from repro.telemetry.metrics import format_phases, merge_snapshots
from repro.telemetry.schema import read_trace


def load_trace(path: str | Path) -> list[dict]:
    """Read and schema-validate one trace file."""
    with Path(path).open() as handle:
        return read_trace(handle)


def summarize_trace(records: list[dict]) -> dict:
    """Aggregate one validated record list.

    Returns a plain dict: ``study`` (name or None), ``records``,
    ``spans`` (name -> {count, seconds}), ``runs`` — one entry per run
    label with its merged metrics snapshot, wave/point accounting and
    cache delta — plus ``metrics``, the all-run merge.
    """
    study = None
    spans: dict[str, dict] = {}
    runs: dict[str, dict] = {}

    def run_entry(label: str) -> dict:
        entry = runs.get(label)
        if entry is None:
            entry = runs[label] = {
                "label": label,
                "waves": 0,
                "points": 0,
                "cached_points": 0,
                "metrics": None,
                "cache": None,
                "seconds": None,
                "failures": [],
                "retries": 0,
                "interrupted": None,
            }
        return entry

    for record in records:
        study = record.get("study", study)
        name = record["name"]
        label = record.get("run")
        if record["kind"] == "span":
            span = spans.setdefault(name, {"count": 0, "seconds": 0.0})
            span["count"] += 1
            span["seconds"] = round(span["seconds"] + record["dur"], 6)
            if name == "run" and label is not None:
                run_entry(label)["seconds"] = round(record["dur"], 6)
        elif record["kind"] == "event" and label is not None:
            entry = run_entry(label)
            data = record.get("data", {})
            if name == "wave":
                entry["waves"] += 1
            elif name == "point":
                entry["points"] += 1
                if data.get("source") == "cache":
                    entry["cached_points"] += 1
            elif name == "metrics":
                entry["metrics"] = data
            elif name == "cache":
                entry["cache"] = data
            elif name == "failure":
                entry["failures"].append({
                    "config": record.get("config"),
                    "error": data.get("error"),
                    "digest": data.get("digest"),
                    "attempts": data.get("attempts"),
                })
            elif name == "retry":
                entry["retries"] += 1
            elif name == "interrupted":
                entry["interrupted"] = {
                    "completed": data.get("completed"),
                    "total": data.get("total"),
                }

    merged = merge_snapshots(
        [r["metrics"] for r in runs.values() if r["metrics"]]
    )
    return {
        "study": study,
        "records": len(records),
        "spans": spans,
        "runs": list(runs.values()),
        "metrics": merged,
    }


def _cache_lines(cache: dict, indent: str) -> list[str]:
    hits = cache.get("hits", 0)
    misses = cache.get("misses", 0)
    looked = hits + misses
    lines = [
        f"{indent}result cache: {hits} hits / {looked} lookups"
        + (f" ({hits / looked:.1%})" if looked else "")
        + f", {cache.get('puts', 0)} writes"
    ]
    detail = []
    if cache.get("merged_axes"):
        detail.append(f"{cache['merged_axes']} merged post-pass axes")
    if cache.get("bytes_written") is not None:
        detail.append(f"{cache['bytes_written']} bytes written")
    if cache.get("bytes_on_disk") is not None:
        detail.append(f"{cache['bytes_on_disk']} bytes on disk")
    if detail:
        lines.append(f"{indent}              {', '.join(detail)}")
    return lines


def format_trace_summary(summary: dict) -> str:
    """Human-readable report of one :func:`summarize_trace` result."""
    study = summary["study"] or "(unnamed)"
    lines = [
        f"trace of study {study!r}: {summary['records']} records, "
        f"{len(summary['runs'])} run{'s' if len(summary['runs']) != 1 else ''}"
    ]
    for run in summary["runs"]:
        header = f"run {run['label']}"
        if run["seconds"] is not None:
            header += f" ({run['seconds']:.2f}s)"
        header += (
            f": {run['points']} points over {run['waves']} waves, "
            f"{run['cached_points']} from cache"
        )
        lines.append(header)
        if run["interrupted"]:
            done = run["interrupted"].get("completed")
            total = run["interrupted"].get("total")
            lines.append(
                f"  interrupted after {done}/{total} points"
                if done is not None and total is not None
                else "  interrupted"
            )
        if run["failures"] or run["retries"]:
            quarantined = (run["cache"] or {}).get("quarantined", 0)
            lines.append(
                f"  robustness: {len(run['failures'])} failed, "
                f"{run['retries']} retried, {quarantined} quarantined"
            )
            for failure in run["failures"]:
                lines.append(
                    f"    failed {failure['config']}: {failure['error']} "
                    f"(trace {failure['digest']}, "
                    f"{failure['attempts']} attempt"
                    f"{'s' if failure['attempts'] != 1 else ''})"
                )
        if run["metrics"]:
            lines.append(format_phases(run["metrics"], indent="  "))
            counters = run["metrics"].get("counters", {})
            if counters:
                joined = ", ".join(
                    f"{k}={counters[k]}" for k in sorted(counters)
                )
                lines.append(f"  counters: {joined}")
        if run["cache"]:
            lines.extend(_cache_lines(run["cache"], "  "))
    if len(summary["runs"]) > 1 and summary["metrics"]["phases"]:
        lines.append("all runs:")
        lines.append(format_phases(summary["metrics"], indent="  "))
    return "\n".join(lines)
