"""Combinational gate-level netlist with bit-parallel evaluation.

The netlist is a DAG of primitive cells over named nets.  Sequential elements
(pipeline registers, socket flip-flops, scan cells) are modelled *outside*
the combinational core — exactly the view an ATPG tool has of a full-scan
design — so this class stays purely combinational and acyclic.

Values are bit-parallel pattern vectors (see :mod:`repro.netlist.cells`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netlist.cells import FAN_IN, CellType, evaluate_cell


class NetlistError(Exception):
    """Structural error in a netlist (cycle, bad fan-in, missing driver...)."""


@dataclass
class Net:
    """A single-bit signal."""

    nid: int
    name: str
    driver: int | None = None          # gate id, or None for PI/const-less nets
    fanout: list[int] = field(default_factory=list)   # gate ids reading this net


@dataclass
class Gate:
    """One primitive cell instance."""

    gid: int
    cell_type: CellType
    inputs: list[int]                  # net ids
    output: int                        # net id


class Netlist:
    """A named combinational netlist.

    Typical use::

        nl = Netlist("adder")
        a = nl.add_input("a")
        b = nl.add_input("b")
        s = nl.add_gate(CellType.XOR, [a, b], name="s")
        nl.add_output(s)
        values = nl.evaluate({a: 0b01, b: 0b11}, num_patterns=2)
    """

    def __init__(self, name: str):
        self.name = name
        self.nets: list[Net] = []
        self.gates: list[Gate] = []
        self.inputs: list[int] = []    # PI net ids, in declaration order
        self.outputs: list[int] = []   # PO net ids, in declaration order
        self._order: list[int] | None = None   # cached topological gate order
        self._levels: list[int] | None = None  # per-gate level, same cache life

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_net(self, name: str | None = None) -> int:
        """Create a floating net and return its id."""
        nid = len(self.nets)
        self.nets.append(Net(nid, name or f"n{nid}"))
        self._invalidate()
        return nid

    def add_input(self, name: str | None = None) -> int:
        """Create a primary-input net."""
        nid = self.new_net(name or f"in{len(self.inputs)}")
        self.inputs.append(nid)
        return nid

    def add_output(self, net: int) -> int:
        """Mark an existing net as a primary output."""
        self._check_net(net)
        self.outputs.append(net)
        return net

    def add_gate(
        self,
        cell_type: CellType,
        inputs: list[int],
        output: int | None = None,
        name: str | None = None,
    ) -> int:
        """Instantiate a cell; returns the output net id."""
        lo, hi = FAN_IN[cell_type]
        if not lo <= len(inputs) <= hi:
            raise NetlistError(
                f"{cell_type.value} fan-in {len(inputs)} outside [{lo}, {hi}]"
            )
        for net in inputs:
            self._check_net(net)
        if output is None:
            output = self.new_net(name)
        else:
            self._check_net(output)
        out_net = self.nets[output]
        if out_net.driver is not None:
            raise NetlistError(f"net {out_net.name} already driven")
        if output in self.inputs:
            raise NetlistError(f"cannot drive primary input {out_net.name}")

        gid = len(self.gates)
        self.gates.append(Gate(gid, cell_type, list(inputs), output))
        out_net.driver = gid
        for net in inputs:
            self.nets[net].fanout.append(gid)
        self._invalidate()
        return output

    def _check_net(self, net: int) -> None:
        if not 0 <= net < len(self.nets):
            raise NetlistError(f"unknown net id {net}")

    def _invalidate(self) -> None:
        self._order = None
        self._levels = None

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        return len(self.gates)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def net_name(self, net: int) -> str:
        return self.nets[net].name

    def topological_order(self) -> list[int]:
        """Gate ids in evaluation order; raises on combinational cycles."""
        if self._order is not None:
            return self._order
        indegree = [0] * len(self.gates)
        for gate in self.gates:
            for net in gate.inputs:
                if self.nets[net].driver is not None:
                    indegree[gate.gid] += 1
        ready = [g.gid for g in self.gates if indegree[g.gid] == 0]
        order: list[int] = []
        levels = [0] * len(self.gates)
        head = 0
        while head < len(ready):
            gid = ready[head]
            head += 1
            order.append(gid)
            out = self.gates[gid].output
            for succ in self.nets[out].fanout:
                levels[succ] = max(levels[succ], levels[gid] + 1)
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.gates):
            raise NetlistError(f"combinational cycle in netlist '{self.name}'")
        self._order = order
        self._levels = levels
        return order

    def gate_levels(self) -> list[int]:
        """Per-gate logic level (distance from PIs), cached with the order."""
        self.topological_order()
        assert self._levels is not None
        return self._levels

    def check(self) -> None:
        """Validate structural invariants; raises :class:`NetlistError`."""
        self.topological_order()
        for net in self.nets:
            if net.driver is None and net.nid not in self.inputs and net.fanout:
                raise NetlistError(f"net {net.name} read but undriven")
        for po in self.outputs:
            n = self.nets[po]
            if n.driver is None and po not in self.inputs:
                raise NetlistError(f"output {n.name} undriven")

    def fanout_cone(self, net: int) -> set[int]:
        """All gate ids transitively reachable from ``net``."""
        seen: set[int] = set()
        stack = list(self.nets[net].fanout)
        while stack:
            gid = stack.pop()
            if gid in seen:
                continue
            seen.add(gid)
            stack.extend(self.nets[self.gates[gid].output].fanout)
        return seen

    def fanin_cone(self, net: int) -> set[int]:
        """All gate ids in the transitive fan-in of ``net``."""
        seen: set[int] = set()
        stack = []
        if self.nets[net].driver is not None:
            stack.append(self.nets[net].driver)
        while stack:
            gid = stack.pop()
            if gid in seen:
                continue
            seen.add(gid)
            for inp in self.gates[gid].inputs:
                drv = self.nets[inp].driver
                if drv is not None:
                    stack.append(drv)
        return seen

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------
    def evaluate(self, pi_values: dict[int, int], num_patterns: int = 1) -> list[int]:
        """Bit-parallel logic simulation.

        ``pi_values`` maps PI net id -> pattern vector (bit k = pattern k).
        Returns a list of pattern vectors indexed by net id; undriven,
        unassigned nets evaluate to 0.
        """
        all_ones = (1 << num_patterns) - 1
        values = [0] * len(self.nets)
        for pi in self.inputs:
            values[pi] = pi_values.get(pi, 0) & all_ones
        for gid in self.topological_order():
            gate = self.gates[gid]
            ins = [values[n] for n in gate.inputs]
            values[gate.output] = evaluate_cell(gate.cell_type, ins, all_ones)
        return values

    def evaluate_outputs(
        self, pi_values: dict[int, int], num_patterns: int = 1
    ) -> list[int]:
        """Like :meth:`evaluate` but returns only PO vectors, in PO order."""
        values = self.evaluate(pi_values, num_patterns)
        return [values[po] for po in self.outputs]

    def evaluate_words(
        self, input_words: dict[str, int], widths: dict[str, int] | None = None
    ) -> dict[str, int]:
        """Single-pattern, word-level convenience evaluation.

        Interprets PI names of the form ``word[i]`` as bit ``i`` of ``word``
        and likewise reassembles outputs.  Scalar nets use their plain name.
        """
        pi_values: dict[int, int] = {}
        for pi in self.inputs:
            name = self.nets[pi].name
            base, index = _split_indexed(name)
            if base in input_words:
                pi_values[pi] = (input_words[base] >> index) & 1
        values = self.evaluate(pi_values, num_patterns=1)
        out: dict[str, int] = {}
        for po in self.outputs:
            name = self.nets[po].name
            base, index = _split_indexed(name)
            out.setdefault(base, 0)
            if values[po] & 1:
                out[base] |= 1 << index
        return out


def _split_indexed(name: str) -> tuple[str, int]:
    """Split ``"word[3]"`` into ``("word", 3)``; plain names get index 0."""
    if name.endswith("]") and "[" in name:
        base, _, idx = name[:-1].rpartition("[")
        try:
            return base, int(idx)
        except ValueError:
            return name, 0
    return name, 0
