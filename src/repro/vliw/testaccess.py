"""Test access analysis for the VLIW template.

Sec. 3.2: "Since most of the components are directly accessible from the
bus, their test can be done by means of the functional application of
structural test patterns.  A few modifications are required if the
components are connected to the bus through the other components ... the
order of testing the components becomes relevant."

The rules implemented here:

* a component may be tested only after every component on its access
  paths has been tested (trustworthy transparent paths);
* each indirection hop adds one transport cycle per pattern on that side
  (the pattern must flow through the intermediate component's datapath);
* the resulting per-component cost reuses eq. 11 with the lengthened
  transport latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.components.spec import ComponentKind
from repro.memtest.march import MARCH_CM, march_pattern_count
from repro.testcost.backannotate import component_backannotation
from repro.testcost.cost import fu_test_cost, rf_test_cost
from repro.vliw.arch import VLIWTemplate


class TestOrderError(Exception):
    """The access topology has no valid test order (a cycle)."""

    __test__ = False   # keep pytest from collecting this exception class


@dataclass(frozen=True)
class AccessPath:
    """How one component is reached during test."""

    component: str
    input_hops: int            # components between the bus and its inputs
    output_hops: int           # components between its outputs and the bus
    through: tuple[str, ...]   # the intermediates, in order


def _hops(template: VLIWTemplate, name: str, direction: str) -> tuple[int, list[str]]:
    """Count indirection hops walking toward the bus."""
    hops = 0
    through: list[str] = []
    current = name
    visited = {name}
    while True:
        component = template.component(current)
        sources = (
            component.inputs_from if direction == "in" else component.outputs_to
        )
        if "bus" in sources:
            return hops, through
        next_name = sources[0]
        if next_name in visited:
            raise TestOrderError(f"access cycle through {next_name!r}")
        visited.add(next_name)
        through.append(next_name)
        hops += 1
        current = next_name


def test_access_paths(template: VLIWTemplate) -> dict[str, AccessPath]:
    """Access path (hop counts + intermediates) per component."""
    paths: dict[str, AccessPath] = {}
    for name in template.components:
        in_hops, in_through = _hops(template, name, "in")
        out_hops, out_through = _hops(template, name, "out")
        paths[name] = AccessPath(
            component=name,
            input_hops=in_hops,
            output_hops=out_hops,
            through=tuple(in_through + out_through),
        )
    return paths


def test_order(template: VLIWTemplate) -> list[str]:
    """A valid test schedule: dependencies (intermediates) first."""
    paths = test_access_paths(template)
    ordered: list[str] = []
    remaining = dict(paths)
    while remaining:
        ready = [
            name
            for name, path in remaining.items()
            if all(dep in ordered for dep in path.through)
        ]
        if not ready:
            raise TestOrderError("circular test dependencies")
        for name in sorted(ready, key=lambda n: len(remaining[n].through)):
            ordered.append(name)
            del remaining[name]
    return ordered


def vliw_test_cost(template: VLIWTemplate) -> dict[str, int]:
    """Per-component functional test cost on the VLIW template.

    Directly accessible components price exactly like the TTA (eq. 11
    with CD = 3); each indirection hop adds one cycle of transport per
    pattern on the affected side.
    """
    paths = test_access_paths(template)
    costs: dict[str, int] = {}
    for name, component in template.components.items():
        spec = component.spec
        back = component_backannotation(spec)
        path = paths[name]
        cd = 3 + path.input_hops + path.output_hops
        if spec.kind is ComponentKind.RF:
            np_rf = march_pattern_count(
                MARCH_CM, spec.num_regs,
                read_ports=spec.n_out, write_ports=spec.n_in,
            )
            costs[name] = rf_test_cost(
                np_rf, cd, spec.n_in, spec.n_out, template.num_buses
            )
        else:
            costs[name] = fu_test_cost(
                back.num_patterns, cd, spec.n_conn, template.num_buses
            )
    return costs
