#!/usr/bin/env python3
"""Plugging a custom objective and a budgeted strategy into a study.

The paper fixes the cost vector to (area, cycles, test cost); the study
layer makes the axes pluggable.  This script registers a crude dynamic
energy proxy — profile-weighted cycles times the bus count, counting
how many transport slots toggle over a run — and explores the Crypt
kernel under (area, cycles, energy_proxy):

* once exhaustively, for the reference front;
* once with the budgeted ``random`` strategy, to see how close a
  30-point uniform sample gets on a 168-point space.

Everything stays declarative: the objective is referenced by name, so
the same spec round-trips through JSON and the CLI
(``python -m repro list --objectives`` shows the registered axes).

Run:  python examples/study_energy_proxy.py
"""

from repro import StudySpec, register_objective, run_study

register_objective(
    "energy_proxy",
    lambda p: float(p.cycles) * p.config.num_buses,
    "cycles x bus count: transport-slot toggles over a run",
)

common = dict(
    workloads=("crypt",),
    space="crypt",
    objectives=("area", "cycles", "energy_proxy"),
    select=True,
)

exhaustive = run_study(
    StudySpec(name="energy-exhaustive", strategy="exhaustive", **common)
)
print(exhaustive.summary())
reference_front = {p.label for p in exhaustive.pareto}

sampled = run_study(
    StudySpec(
        name="energy-random",
        strategy="random",
        strategy_params={"budget": 30, "seed": 42},
        **common,
    )
)
print()
print(sampled.summary())

found = {p.label for p in sampled.pareto}
recovered = len(found & reference_front)
print(
    f"\nrandom sample recovered {recovered}/{len(reference_front)} "
    f"of the exhaustive (area, cycles, energy) front "
    f"with {sampled.single.evaluations}/{exhaustive.single.evaluations} "
    "evaluations"
)
print(f"exhaustive winner: {exhaustive.selection.point.label}")
if sampled.selection is not None:
    print(f"sampled winner:    {sampled.selection.point.label}")
