"""Bit-manipulation helpers shared by the netlist, ATPG and TTA layers.

All routines treat integers as fixed-width unsigned words unless stated
otherwise.  Width arguments are in bits and must be positive.
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, index: int) -> int:
    """Return bit ``index`` (0 = LSB) of ``value`` as 0 or 1."""
    return (value >> index) & 1


def bits_of(value: int, width: int) -> list[int]:
    """Explode ``value`` into a list of ``width`` bits, LSB first."""
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: list[int]) -> int:
    """Inverse of :func:`bits_of`: assemble an int from LSB-first bits."""
    value = 0
    for i, b in enumerate(bits):
        if b:
            value |= 1 << i
    return value


def popcount(value: int) -> int:
    """Number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount of negative value is undefined")
    return value.bit_count()


def parity(value: int) -> int:
    """Even/odd parity (XOR of all bits) of a non-negative integer."""
    return popcount(value) & 1


def rotl(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` left by ``amount`` within ``width`` bits."""
    amount %= width
    m = mask(width)
    value &= m
    return ((value << amount) | (value >> (width - amount))) & m


def rotr(value: int, amount: int, width: int) -> int:
    """Rotate ``value`` right by ``amount`` within ``width`` bits."""
    return rotl(value, width - (amount % width), width)


def to_signed(value: int, width: int) -> int:
    """Interpret the low ``width`` bits of ``value`` as two's complement."""
    value &= mask(width)
    if value >> (width - 1):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    """Wrap a (possibly negative) integer into ``width`` unsigned bits."""
    return value & mask(width)


def sign_extend(value: int, from_width: int, to_width: int) -> int:
    """Sign-extend the low ``from_width`` bits of ``value`` to ``to_width``."""
    if to_width < from_width:
        raise ValueError("cannot sign-extend to a narrower width")
    return to_unsigned(to_signed(value, from_width), to_width)
