"""CSV/JSON exporters round-trip the exploration and Table 1 data."""

import csv
import io
import json

from repro.apps import build_gcd_ir
from repro.compiler.interp import IRInterpreter
from repro.explore import EvaluatedPoint, EvaluationContext, small_space
from repro.explore import ArchConfig, RFConfig, build_architecture
from repro.reporting import (
    exploration_from_csv,
    exploration_from_json,
    exploration_to_csv,
    exploration_to_json,
    point_from_row,
    table1_to_csv,
    table1_to_json,
)
from repro.testcost import attach_test_costs, build_table1


def _points():
    workload = build_gcd_ir(24, 18)
    profile = IRInterpreter(workload, width=16).run().block_counts
    context = EvaluationContext(workload, profile, 16)
    points = context.evaluate_space(small_space()[:4])
    feasible = [p for p in points if p.feasible]
    attach_test_costs(feasible)
    return feasible


def test_exploration_csv_parses_back():
    points = _points()
    text = exploration_to_csv(points)
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == len(points)
    assert rows[0]["architecture"] == points[0].label
    assert int(rows[0]["cycles"]) == points[0].cycles


def test_exploration_json_structure():
    points = _points()
    data = json.loads(exploration_to_json(points))
    assert len(data) == len(points)
    for entry in data:
        assert set(entry) >= {"architecture", "area", "cycles", "test_cost"}
        assert entry["feasible"] is True


def test_empty_exports():
    assert exploration_to_csv([]) == ""
    assert json.loads(exploration_to_json([])) == []


def _assert_points_equal(rebuilt, originals):
    assert len(rebuilt) == len(originals)
    for got, want in zip(rebuilt, originals):
        assert got.config == want.config
        assert got.area == want.area
        assert got.cycles == want.cycles
        assert got.test_cost == want.test_cost
        assert got.energy == want.energy


def test_energy_column_round_trips():
    point = EvaluatedPoint(
        config=ArchConfig(num_buses=2), area=10.0, cycles=50,
        energy=1234.567,
    )
    for rebuilt in (
        exploration_from_csv(exploration_to_csv([point])),
        exploration_from_json(exploration_to_json([point])),
    ):
        assert rebuilt[0].energy == 1234.567
    bare = exploration_from_csv(exploration_to_csv([
        EvaluatedPoint(config=ArchConfig(num_buses=1), area=1.0, cycles=5)
    ]))
    assert bare[0].energy is None


def test_csv_round_trips_through_from_dict():
    points = _points()
    rebuilt = exploration_from_csv(exploration_to_csv(points))
    _assert_points_equal(rebuilt, points)
    # and the rebuilt points serialise identically
    assert exploration_to_csv(rebuilt) == exploration_to_csv(points)


def test_json_round_trips_through_from_dict():
    points = _points()
    rebuilt = exploration_from_json(exploration_to_json(points))
    _assert_points_equal(rebuilt, points)
    assert exploration_to_json(rebuilt) == exploration_to_json(points)


def test_round_trip_keeps_infeasible_points():
    infeasible = EvaluatedPoint(
        config=ArchConfig(num_buses=1), area=7.5, cycles=None
    )
    rebuilt = exploration_from_csv(exploration_to_csv([infeasible]))
    assert rebuilt[0].cycles is None and not rebuilt[0].feasible
    assert rebuilt[0].config == infeasible.config


def test_point_from_row_requires_config():
    import pytest

    with pytest.raises(ValueError, match="config"):
        point_from_row({"architecture": "b1", "area": 1.0})


def test_table1_exports():
    arch = build_architecture(ArchConfig(num_buses=2, rfs=(RFConfig(8),)))
    rows, _ = build_table1(arch)
    text = table1_to_csv(rows)
    parsed = list(csv.DictReader(io.StringIO(text)))
    assert len(parsed) == len(rows)
    data = json.loads(table1_to_json(rows))
    counted = [d for d in data if d["counted"]]
    for entry in counted:
        assert entry["our_approach_cycles"] < entry["full_scan_cycles"]
        assert entry["advantage"] > 1.0
