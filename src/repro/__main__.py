"""The ``python -m repro`` command line.

Four subcommands drive the paper's flow at campaign scale:

* ``explore``  — one workload on one named space (a one-job campaign),
* ``campaign`` — a full spec (JSON file or flags): workloads x spaces x
  widths, parallel workers, on-disk result cache, per-run exports,
* ``report``   — re-emit / Pareto-filter previously exported results,
* ``list``     — show the registered workloads and spaces,
* ``bench``    — run the tracked evaluation-pipeline benchmark suite.

``explore`` and ``campaign`` accept ``--profile`` to dump a cProfile
top-25 (cumulative) of the run to stderr.

All tabular output goes through :mod:`repro.reporting`, so files written
here feed straight back into ``report`` (and any spreadsheet).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.apps.registry import workload_entry, workload_names
from repro.campaign import CampaignResult, CampaignSpec, ResultCache, run_campaign
from repro.explore.pareto import pareto_filter
from repro.explore.space import space_by_name, space_names
from repro.reporting import (
    exploration_from_csv,
    exploration_from_json,
    exploration_rows,
    exploration_to_csv,
    exploration_to_json,
)


def _emit(text: str, output: str | None) -> None:
    if output:
        Path(output).write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote {output}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def _progress(line: str) -> None:
    print(line, file=sys.stderr)


def _run_campaign_maybe_profiled(args: argparse.Namespace, spec):
    """Run a campaign, optionally under cProfile (top-25 to stderr)."""
    kwargs = dict(
        workers=args.workers,
        cache=_make_cache(args),
        progress=None if args.quiet else _progress,
    )
    if not getattr(args, "profile", False):
        return run_campaign(spec, **kwargs)
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        campaign = run_campaign(spec, **kwargs)
    finally:
        profiler.disable()
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats(
            "cumulative"
        ).print_stats(25)
        print(stream.getvalue(), file=sys.stderr)
    return campaign


def _make_cache(args: argparse.Namespace) -> ResultCache | None:
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _points_text(points, fmt: str) -> str:
    if fmt == "csv":
        return exploration_to_csv(points)
    return exploration_to_json(points)


def _selection_lines(campaign: CampaignResult) -> list[str]:
    lines = []
    for run in campaign.runs:
        if run.selection is not None:
            sel = run.selection
            lines.append(
                f"selected [{run.label}]: {sel.point.label} "
                f"(norm={sel.norm:.4f})"
            )
    return lines


# ----------------------------------------------------------------------
# explore
# ----------------------------------------------------------------------
def cmd_explore(args: argparse.Namespace) -> int:
    spec = CampaignSpec(
        name=f"explore-{args.workload}",
        workloads=(args.workload,),
        spaces=(args.space,),
        widths=(args.width,),
        attach_test_costs=args.test_costs,
        select=args.select,
        march=args.march,
    )
    campaign = _run_campaign_maybe_profiled(args, spec)
    run = campaign.runs[0]
    points = run.result.pareto2d if args.pareto else run.result.points
    if args.format == "summary":
        text = run.result.summary()
        text += (
            f"\n  cache: {run.stats.cache_hits} hits, "
            f"{run.stats.evaluated} evaluated in {run.stats.elapsed:.2f}s"
        )
        for line in _selection_lines(campaign):
            text += "\n" + line
    else:
        text = _points_text(points, args.format)
    _emit(text, args.output)
    return 0


# ----------------------------------------------------------------------
# campaign
# ----------------------------------------------------------------------
def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    if args.spec:
        return CampaignSpec.from_json(Path(args.spec).read_text())
    if not args.workloads:
        raise SystemExit("campaign: need --spec FILE or --workloads LIST")
    return CampaignSpec(
        name=args.name,
        workloads=tuple(args.workloads.split(",")),
        spaces=tuple(args.spaces.split(",")),
        widths=tuple(int(w) for w in args.widths.split(",")),
        attach_test_costs=args.test_costs,
        select=args.select,
        march=args.march,
    )


def cmd_campaign(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    campaign = _run_campaign_maybe_profiled(args, spec)
    if args.out_dir:
        out = Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "spec.json").write_text(spec.to_json() + "\n")
        for run in campaign.runs:
            stem = run.label.replace("/", "__")
            text = _points_text(run.result.points, args.format)
            suffix = "csv" if args.format == "csv" else "json"
            (out / f"{stem}.{suffix}").write_text(text)
        print(f"wrote {len(campaign.runs)} result files to {out}",
              file=sys.stderr)
    print(campaign.summary())
    for line in _selection_lines(campaign):
        print(line)
    return 0


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
def cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.input)
    text = path.read_text()
    if path.suffix == ".csv":
        points = exploration_from_csv(text)
    else:
        points = exploration_from_json(text)
    if args.pareto:
        feasible = [p for p in points if p.feasible]
        points = pareto_filter(feasible, key=lambda p: p.cost2d())
    if args.format == "summary":
        rows = exploration_rows(points)
        widths = {k: max(len(k), *(len(str(r[k])) for r in rows))
                  for k in rows[0]} if rows else {}
        cols = [k for k in widths if k != "config"]
        lines = ["  ".join(k.ljust(widths[k]) for k in cols)]
        for r in rows:
            lines.append(
                "  ".join(str(r[k]).ljust(widths[k]) for k in cols)
            )
        out = "\n".join(lines)
    else:
        out = _points_text(points, args.format)
    _emit(out, args.output)
    return 0


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------
def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import format_report, run_benchmarks, write_report

    suites = (
        ("small", "medium") if args.suite == "full" else (args.suite,)
    )
    report = run_benchmarks(suites=suites)
    print(format_report(report))
    if not args.no_write:
        out = write_report(report, args.output)
        print(f"wrote {out}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# list
# ----------------------------------------------------------------------
def cmd_list(_args: argparse.Namespace) -> int:
    print("workloads:")
    for name in workload_names():
        entry = workload_entry(name)
        mul = "  [needs MUL]" if entry.needs_mul else ""
        print(f"  {name:<10} {entry.description}{mul}")
    print("spaces:")
    for name in space_names():
        print(f"  {name:<10} {len(space_by_name(name))} configurations")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def _add_cache_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: "
                        "$REPRO_CAMPAIGN_CACHE or ~/.cache/repro-tta/campaign)")
    p.add_argument("--no-cache", action="store_true",
                   help="re-evaluate every point, touch no cache")


def _add_run_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size; 1 = serial (default)")
    p.add_argument("--test-costs", action="store_true",
                   help="attach analytical test costs to the Pareto set")
    p.add_argument("--select", action="store_true",
                   help="pick an architecture with the weighted norm")
    p.add_argument("--march", default="March C-",
                   help="march algorithm for RF test costs")
    p.add_argument("--profile", action="store_true",
                   help="dump cProfile top-25 (cumulative) to stderr")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="suppress progress lines on stderr")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Design and test space exploration of TTAs "
                    "(DATE 2000) — campaign driver.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("explore", help="one workload on one space")
    p.add_argument("--workload", required=True,
                   help=f"one of: {', '.join(workload_names())}")
    p.add_argument("--space", default="small",
                   help=f"one of: {', '.join(space_names())}")
    p.add_argument("--width", type=int, default=16)
    p.add_argument("--pareto", action="store_true",
                   help="export only the 2-D Pareto points")
    p.add_argument("--format", choices=("summary", "csv", "json"),
                   default="summary")
    p.add_argument("-o", "--output", default=None,
                   help="write to file instead of stdout")
    _add_run_args(p)
    _add_cache_args(p)
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("campaign", help="run a multi-workload campaign")
    p.add_argument("--spec", default=None,
                   help="campaign spec JSON file (overrides the flags)")
    p.add_argument("--name", default="campaign")
    p.add_argument("--workloads", default=None,
                   help="comma-separated workload names")
    p.add_argument("--spaces", default="small",
                   help="comma-separated space names")
    p.add_argument("--widths", default="16",
                   help="comma-separated datapath widths")
    p.add_argument("--out-dir", default=None,
                   help="write spec.json + per-run result files here")
    p.add_argument("--format", choices=("csv", "json"), default="csv",
                   help="format of the per-run result files")
    _add_run_args(p)
    _add_cache_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("report",
                       help="re-emit exported results (CSV or JSON)")
    p.add_argument("input", help="a result file written by explore/campaign")
    p.add_argument("--pareto", action="store_true",
                   help="keep only the 2-D Pareto points")
    p.add_argument("--format", choices=("summary", "csv", "json"),
                   default="summary")
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("bench",
                       help="run the evaluation-pipeline benchmark suite")
    p.add_argument("--suite", choices=("small", "medium", "full"),
                   default="full",
                   help="which sweep sizes to time (default: full)")
    p.add_argument("-o", "--output", default="BENCH_evaluate.json",
                   help="benchmark report file (default: ./BENCH_evaluate.json)")
    p.add_argument("--no-write", action="store_true",
                   help="print the report without touching the file")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("list", help="show known workloads and spaces")
    p.set_defaults(func=cmd_list)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError, OSError) as exc:
        # str(KeyError) is the repr of its message; unwrap for clean output
        message = (
            exc.args[0]
            if isinstance(exc, KeyError) and exc.args
            else exc
        )
        print(f"error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
