"""Word-level netlist construction helpers.

:class:`WordBuilder` wraps a :class:`~repro.netlist.netlist.Netlist` and
offers word-oriented primitives (adders, muxes, shifters, reductions) from
which the datapath component generators in :mod:`repro.components` are built.

A *word* is simply a list of net ids, LSB first.
"""

from __future__ import annotations

from repro.netlist.cells import CellType
from repro.netlist.netlist import Netlist, NetlistError

Word = list[int]


class WordBuilder:
    """Structural construction DSL over a netlist."""

    def __init__(self, name: str):
        self.netlist = Netlist(name)

    # ------------------------------------------------------------------
    # ports and constants
    # ------------------------------------------------------------------
    def input_word(self, name: str, width: int) -> Word:
        """Declare a ``width``-bit primary-input word."""
        return [self.netlist.add_input(f"{name}[{i}]") for i in range(width)]

    def input_bit(self, name: str) -> int:
        return self.netlist.add_input(name)

    def output_word(self, name: str, word: Word) -> Word:
        """Expose a word as primary outputs named ``name[i]``."""
        for i, net in enumerate(word):
            self.netlist.nets[net].name = f"{name}[{i}]"
            self.netlist.add_output(net)
        return word

    def output_bit(self, name: str, net: int) -> int:
        self.netlist.nets[net].name = name
        self.netlist.add_output(net)
        return net

    def const_bit(self, value: int) -> int:
        cell = CellType.CONST1 if value & 1 else CellType.CONST0
        return self.netlist.add_gate(cell, [])

    def const_word(self, value: int, width: int) -> Word:
        return [self.const_bit((value >> i) & 1) for i in range(width)]

    # ------------------------------------------------------------------
    # bit-level gates
    # ------------------------------------------------------------------
    def not_(self, a: int) -> int:
        return self.netlist.add_gate(CellType.NOT, [a])

    def buf(self, a: int) -> int:
        return self.netlist.add_gate(CellType.BUF, [a])

    def and_(self, *nets: int) -> int:
        return self._nary(CellType.AND, list(nets))

    def or_(self, *nets: int) -> int:
        return self._nary(CellType.OR, list(nets))

    def nand_(self, *nets: int) -> int:
        return self.netlist.add_gate(CellType.NAND, list(nets))

    def nor_(self, *nets: int) -> int:
        return self.netlist.add_gate(CellType.NOR, list(nets))

    def xor_(self, a: int, b: int) -> int:
        return self.netlist.add_gate(CellType.XOR, [a, b])

    def xnor_(self, a: int, b: int) -> int:
        return self.netlist.add_gate(CellType.XNOR, [a, b])

    def _nary(self, cell: CellType, nets: list[int]) -> int:
        """Build a tree for fan-in beyond the cell's limit (max 4)."""
        if len(nets) == 1:
            return nets[0]
        if len(nets) <= 4:
            return self.netlist.add_gate(cell, nets)
        mid = len(nets) // 2
        left = self._nary(cell, nets[:mid])
        right = self._nary(cell, nets[mid:])
        if cell in (CellType.NAND, CellType.NOR):
            raise NetlistError("n-ary trees only for AND/OR")
        return self.netlist.add_gate(cell, [left, right])

    def mux2(self, sel: int, a: int, b: int) -> int:
        """2:1 mux — returns ``a`` when ``sel`` is 0, ``b`` when 1."""
        nsel = self.not_(sel)
        return self.or_(self.and_(a, nsel), self.and_(b, sel))

    # ------------------------------------------------------------------
    # word-level logic
    # ------------------------------------------------------------------
    def not_word(self, a: Word) -> Word:
        return [self.not_(x) for x in a]

    def and_word(self, a: Word, b: Word) -> Word:
        return [self.and_(x, y) for x, y in zip(a, b, strict=True)]

    def or_word(self, a: Word, b: Word) -> Word:
        return [self.or_(x, y) for x, y in zip(a, b, strict=True)]

    def xor_word(self, a: Word, b: Word) -> Word:
        return [self.xor_(x, y) for x, y in zip(a, b, strict=True)]

    def mux2_word(self, sel: int, a: Word, b: Word) -> Word:
        return [self.mux2(sel, x, y) for x, y in zip(a, b, strict=True)]

    def mux_tree(self, sels: list[int], words: list[Word]) -> Word:
        """Select ``words[i]`` by the binary value of ``sels`` (LSB first).

        Non-power-of-two source counts are padded by cycling through the
        words again (``words[i % len]``): out-of-range select codes alias
        onto early entries, which keeps every mux select path testable
        (padding with a repeated word would create untestable faults).
        """
        if not words:
            raise NetlistError("mux tree needs at least one word")
        size = 1 << len(sels)
        padded = [words[i % len(words)] for i in range(size)]
        level = padded[:size]
        for sel in sels:
            level = [
                self.mux2_word(sel, level[2 * i], level[2 * i + 1])
                for i in range(len(level) // 2)
            ]
        return level[0]

    def and_reduce(self, word: Word) -> int:
        return self._nary(CellType.AND, list(word))

    def or_reduce(self, word: Word) -> int:
        return self._nary(CellType.OR, list(word))

    def xor_reduce(self, word: Word) -> int:
        acc = word[0]
        for net in word[1:]:
            acc = self.xor_(acc, net)
        return acc

    def is_zero(self, word: Word) -> int:
        return self.not_(self.or_reduce(word))

    def equal(self, a: Word, b: Word) -> int:
        diff = [self.xnor_(x, y) for x, y in zip(a, b, strict=True)]
        return self.and_reduce(diff)

    def decoder(self, sels: list[int]) -> Word:
        """One-hot decode: output ``i`` is high iff value(sels) == i."""
        inv = [self.not_(s) for s in sels]
        outs: Word = []
        for i in range(1 << len(sels)):
            terms = [sels[b] if (i >> b) & 1 else inv[b] for b in range(len(sels))]
            outs.append(self.and_reduce(terms))
        return outs

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def half_adder(self, a: int, b: int) -> tuple[int, int]:
        return self.xor_(a, b), self.and_(a, b)

    def full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        axb = self.xor_(a, b)
        s = self.xor_(axb, cin)
        cout = self.or_(self.and_(a, b), self.and_(axb, cin))
        return s, cout

    def ripple_adder(self, a: Word, b: Word, cin: int | None = None) -> tuple[Word, int]:
        """Ripple-carry add; returns (sum word, carry out)."""
        carry = cin if cin is not None else self.const_bit(0)
        out: Word = []
        for x, y in zip(a, b, strict=True):
            s, carry = self.full_adder(x, y, carry)
            out.append(s)
        return out, carry

    def subtractor(self, a: Word, b: Word) -> tuple[Word, int]:
        """a - b via two's complement; carry-out high means no borrow."""
        nb = self.not_word(b)
        return self.ripple_adder(a, nb, self.const_bit(1))

    def incrementer(self, a: Word) -> tuple[Word, int]:
        carry = self.const_bit(1)
        out: Word = []
        for x in a:
            s, carry = self.half_adder(x, carry)
            out.append(s)
        return out, carry

    def less_than_unsigned(self, a: Word, b: Word) -> int:
        """1 iff a < b, unsigned (borrow of a - b), dead-logic free."""
        carry = self.const_bit(1)
        for x, y in zip(a, b, strict=True):
            ny = self.not_(y)
            generate = self.and_(x, ny)
            propagate = self.xor_(x, ny)
            carry = self.or_(generate, self.and_(propagate, carry))
        return self.not_(carry)

    def less_than_signed(self, a: Word, b: Word) -> int:
        """1 iff a < b, two's complement, dead-logic free.

        Same signs: the sign of a - b decides (computed from the carry
        into the MSB); different signs: the negative operand is smaller.
        """
        carry = self.const_bit(1)
        for x, y in zip(a[:-1], b[:-1], strict=True):
            ny = self.not_(y)
            generate = self.and_(x, ny)
            propagate = self.xor_(x, ny)
            carry = self.or_(generate, self.and_(propagate, carry))
        nb_msb = self.not_(b[-1])
        diff_msb = self.xor_(self.xor_(a[-1], nb_msb), carry)
        sign_a, sign_b = a[-1], b[-1]
        same_sign = self.xnor_(sign_a, sign_b)
        return self.mux2(same_sign, sign_a, diff_msb)

    # ------------------------------------------------------------------
    # shifting
    # ------------------------------------------------------------------
    def shift_const(self, a: Word, amount: int, fill: int) -> Word:
        """Logical shift left by ``amount`` (negative = right), const fill."""
        width = len(a)
        out: Word = []
        for i in range(width):
            src = i - amount
            out.append(a[src] if 0 <= src < width else fill)
        return out

    def barrel_shifter(
        self, a: Word, amount: list[int], right: int, arithmetic: int
    ) -> Word:
        """Log-stage barrel shifter.

        ``amount`` — shift-count bits (LSB first); ``right`` — direction
        select net; ``arithmetic`` — net that selects sign-fill on right
        shifts.  Left shifts always zero-fill.
        """
        zero = self.const_bit(0)
        sign = self.and_(a[-1], arithmetic)
        fill = self.mux2(right, zero, sign)
        word = list(a)
        for stage, sel in enumerate(amount):
            dist = 1 << stage
            left_shifted = self.shift_const(word, dist, zero)
            right_shifted = self.shift_const(word, -dist, fill)
            shifted = self.mux2_word(right, left_shifted, right_shifted)
            word = self.mux2_word(sel, word, shifted)
        return word
