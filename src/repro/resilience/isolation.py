"""Fault-isolated evaluation fan-out: serial guard and pool supervisor.

The engine's :func:`~repro.study.engine.iter_evaluations` routes both
of its paths through here so one bad configuration can no longer abort
a sweep:

* :func:`call_guarded` wraps one serial evaluation in the
  :class:`~repro.resilience.policy.FaultPolicy` attempt loop;
* :func:`iter_pool_isolated` replaces ``pool.map`` with
  ``submit``/``wait`` plus an **ordered reassembly buffer**: results
  are yielded strictly in submission order no matter how the pool
  interleaves completions, so streaming consumers (cache writes,
  telemetry merges, trace events) keep the deterministic order the
  chunked map gave them — while the supervisor retries failures,
  enforces per-point wall-clock deadlines, and resurrects the pool
  when a worker dies (``BrokenProcessPool``).

After a pool death the supervisor drops to one-in-flight submission:
a crash cannot name its culprit, so the remaining configurations run
solo — the killer is then attributed precisely (and retried/skipped
per policy) and no innocent neighbour burns its attempt budget.

Cancellation (a :class:`~repro.resilience.checkpoint.CancelToken`-
shaped object, or ``KeyboardInterrupt`` landing in the supervisor
loop) *drains*: running futures are awaited, queued ones cancelled,
and :class:`SweepInterrupted` carries every drained-but-unyielded
result home so a checkpoint keeps the whole wave's finished work.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterator

from repro.resilience.policy import FAIL_FAST, FailedPoint, FaultPolicy

__all__ = [
    "SweepInterrupted",
    "WorkerCrash",
    "call_guarded",
    "iter_pool_isolated",
]


class SweepInterrupted(Exception):
    """A sweep stopped early (cancel token or keyboard interrupt).

    ``completed`` maps *submission index -> finished outcome* for every
    result that was drained but not yet yielded — the caller records
    them so an interrupted run loses nothing that finished.
    """

    def __init__(self, completed: dict[int, object] | None = None) -> None:
        super().__init__("sweep interrupted")
        self.completed = completed or {}


class WorkerCrash(RuntimeError):
    """A pool worker died under the ``fail_fast`` policy."""


def _cancelled(token) -> bool:
    return token is not None and token.cancelled


def call_guarded(
    fn: Callable[[object], object],
    config,
    policy: FaultPolicy | None,
    on_retry: Callable[[object, int, BaseException], None] | None = None,
) -> object:
    """One serial evaluation under the policy's attempt loop.

    Returns the evaluation result, or a :class:`FailedPoint` once the
    attempt budget is spent (``skip``/``retry``).  ``fail_fast``
    propagates the original exception untouched.  Only ``Exception``
    is policy business — ``KeyboardInterrupt`` and friends always
    propagate.
    """
    policy = policy or FAIL_FAST
    if policy.mode == "fail_fast":
        return fn(config)
    last: Exception | None = None
    for attempt in range(1, policy.attempts + 1):
        try:
            return fn(config)
        except Exception as exc:
            last = exc
            if attempt < policy.attempts:
                if on_retry is not None:
                    on_retry(config, attempt, exc)
                time.sleep(policy.delay(attempt))
    return FailedPoint.from_exception(config, last, policy.attempts)


def iter_pool_isolated(
    configs: list,
    fn: Callable,
    initializer: Callable,
    initargs: tuple,
    workers: int,
    policy: FaultPolicy | None = None,
    token=None,
    on_retry: Callable[[object, int, BaseException], None] | None = None,
) -> Iterator[object]:
    """Yield ``fn(config)`` results in submission order, fault-isolated.

    Results stream as soon as they are *next in order*; later
    completions park in the reassembly buffer.  Failures follow
    ``policy`` (resubmission for ``retry``, a :class:`FailedPoint`
    yielded in the failed config's slot for ``skip``); a worker death
    rebuilds the pool and switches to solo submission.  Raises
    :class:`SweepInterrupted` on cancellation after draining in-flight
    work.
    """
    policy = policy or FAIL_FAST
    total = len(configs)
    results: dict[int, object] = {}
    attempts = [0] * total
    failed_exc: list[Exception | None] = [None] * total
    queue: list[int] = list(range(total))       # not yet submitted
    pending: dict = {}                          # future -> index
    deadlines: dict = {}                        # future -> monotonic deadline
    next_out = 0
    orphans: set = set()                        # timed-out, still running
    # With a timeout, one in-flight task per worker keeps deadlines
    # honest (a queued task's clock must not run); without one, an
    # extra task per worker pipelines submissions.  After a crash the
    # window drops to 1 to isolate the culprit.
    capacity = min(workers, total)
    window = capacity if policy.timeout is not None else capacity * 2
    pool = ProcessPoolExecutor(
        max_workers=capacity,
        initializer=initializer,
        initargs=initargs,
    )

    def submit_next() -> None:
        # An orphaned (timed-out but unpreemptable) task still occupies
        # a worker; submitting into that slot would start a queued
        # task's deadline clock early.
        while queue and len(pending) + len(orphans) < window:
            index = queue.pop(0)
            attempts[index] += 1
            future = pool.submit(fn, configs[index])
            pending[future] = index
            if policy.timeout is not None:
                deadlines[future] = time.monotonic() + policy.timeout

    def settle(index: int, exc: Exception) -> None:
        """One attempt died; resubmit or record per policy."""
        if policy.mode == "retry" and attempts[index] < policy.attempts:
            if on_retry is not None:
                on_retry(configs[index], attempts[index], exc)
            queue.append(index)
            return
        if policy.mode == "skip" or policy.mode == "retry":
            results[index] = FailedPoint.from_exception(
                configs[index], exc, attempts[index]
            )
            return
        failed_exc[index] = exc

    def drain() -> dict[int, object]:
        """Await running futures, cancel queued ones, keep results."""
        for future in list(pending):
            index = pending.pop(future)
            if future.cancel():
                continue
            try:
                results[index] = future.result()
            except Exception:
                pass            # a failure while draining: simply lost
        return results

    def rebuild_pool() -> None:
        nonlocal pool, window
        pool.shutdown(wait=False, cancel_futures=True)
        for future in list(pending):
            index = pending.pop(future)
            deadlines.pop(future, None)
            if index not in results:
                queue.append(index)
        queue.sort()
        orphans.clear()         # the old pool's processes are gone
        window = 1
        pool = ProcessPoolExecutor(
            max_workers=1, initializer=initializer, initargs=initargs
        )

    try:
        while next_out < total:
            while next_out in results:
                outcome = results.pop(next_out)
                next_out += 1
                yield outcome
            if next_out < total and failed_exc[next_out] is not None:
                raise failed_exc[next_out]
            if next_out >= total:
                break
            if _cancelled(token):
                raise SweepInterrupted(drain())
            if orphans:
                orphans.difference_update(
                    {f for f in orphans if f.done()}
                )
            submit_next()
            if not pending:
                continue
            tick = 0.05 if (deadlines or token is not None) else None
            done, _ = wait(
                list(pending), timeout=tick, return_when=FIRST_COMPLETED
            )
            broke = False
            for future in done:
                index = pending.pop(future)
                deadlines.pop(future, None)
                try:
                    results[index] = future.result()
                except BrokenProcessPool:
                    broke = True
                    if window == 1:
                        # Solo submission: this task *is* the killer.
                        settle(
                            index,
                            WorkerCrash(
                                "worker process died evaluating this "
                                "configuration"
                            ),
                        )
                    else:
                        # Whose task killed the pool is unknowable in a
                        # full-width window; give the attempt back and
                        # let the solo pool find the culprit.
                        attempts[index] -= 1
                        if index not in results:
                            queue.append(index)
                except Exception as exc:
                    settle(index, exc)
            if broke:
                if policy.mode == "fail_fast":
                    raise WorkerCrash(
                        "a pool worker died mid-evaluation "
                        "(fault policy fail_fast aborts the sweep; "
                        "use skip/retry to isolate the configuration)"
                    )
                rebuild_pool()
                continue
            if deadlines:
                now = time.monotonic()
                for future in [
                    f for f, limit in deadlines.items() if limit <= now
                ]:
                    index = pending.pop(future)
                    del deadlines[future]
                    # Cannot preempt a running task; orphan the future
                    # (its late result is discarded, its worker slot
                    # counted until it frees up) and judge the point
                    # per policy.
                    if not future.cancel():
                        orphans.add(future)
                    settle(
                        index,
                        TimeoutError(
                            f"evaluation exceeded {policy.timeout}s "
                            "wall-clock budget"
                        ),
                    )
    except KeyboardInterrupt:
        raise SweepInterrupted(drain()) from None
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
