#!/usr/bin/env python3
"""A two-workload campaign through the campaign engine.

Sweeps the Crypt kernel and a DSP kernel (FIR) over two configuration
grids in one declarative spec, with the on-disk result cache making the
second invocation near-free — run this script twice and watch the
"evaluated" counts drop to zero.

The same campaign runs from the shell as:

    python -m repro campaign --workloads crypt,fir --spaces small,dsp \
        --select --workers 4

Run:  python examples/campaign_sweep.py
"""

from repro import CampaignSpec, ResultCache, run_campaign

spec = CampaignSpec(
    name="crypt-plus-dsp",
    workloads=("crypt", "fir"),
    spaces=("small", "dsp"),   # fir needs the MUL-equipped dsp grid
    widths=(16,),
    select=True,
)
print(f"campaign spec (JSON round-trip safe):\n{spec.to_json()}\n")

cache = ResultCache()          # ~/.cache/repro-tta/campaign
campaign = run_campaign(spec, workers=2, cache=cache, progress=print)

print()
print(campaign.summary())

print("\nper-run winners (equal-weight norm on the 2-D Pareto set):")
for run in campaign.runs:
    if run.selection is not None:
        print(f"  {run.label:<16} -> {run.selection.point.label} "
              f"(norm={run.selection.norm:.4f})")
    else:
        print(f"  {run.label:<16} -> no feasible points "
              f"(fir cannot compile without a MUL)")

print("\nrun it again: every point now comes from the cache.")
