"""Transport-triggered architecture core.

The TTA template of Fig. 1: functional units and register files hang off
an interconnection network of move buses through input/output sockets;
the only operation is the *move*, and writing a unit's trigger register
starts its operation (hybrid pipelining, Fig. 3).

* :mod:`repro.tta.arch` — the architecture template (units, buses,
  port->bus connectivity);
* :mod:`repro.tta.isa` — moves, guards, instructions, programs;
* :mod:`repro.tta.timing` — the transport timing relations (eqs. 2-8)
  as a program validator;
* :mod:`repro.tta.simulator` — a cycle-accurate interpreter;
* :mod:`repro.tta.assembler` — a small textual move-assembly format.
"""

from repro.tta.activity import ActivityTrace, hamming
from repro.tta.arch import Architecture, ArchitectureError, UnitInstance
from repro.tta.isa import (
    GUARD_UNIT,
    Guard,
    Instruction,
    Literal,
    Move,
    PortRef,
    Program,
)
from repro.tta.timing import TimingViolation, validate_program
from repro.tta.simulator import SimResult, TTASimulator
from repro.tta.assembler import assemble, AssemblerError
from repro.tta.encoding import InstructionFormat, MoveEncoder

__all__ = [
    "ActivityTrace",
    "Architecture",
    "ArchitectureError",
    "AssemblerError",
    "hamming",
    "GUARD_UNIT",
    "Guard",
    "Instruction",
    "InstructionFormat",
    "Literal",
    "Move",
    "MoveEncoder",
    "PortRef",
    "Program",
    "SimResult",
    "TTASimulator",
    "TimingViolation",
    "UnitInstance",
    "assemble",
    "validate_program",
]
