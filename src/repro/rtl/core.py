"""Elaborate a complete TTA core from an :class:`Architecture`.

The emitted design is hierarchical Verilog: every datapath component
keeps its existing structural gate-level module (the same netlists the
area/test/energy models are back-annotated from), the interconnect adds
one :func:`~repro.components.socket.build_socket` instance per (port,
bus) connection, and two generated structural modules carry the move
transport — a per-bus move decoder that mirrors
:class:`~repro.tta.encoding.InstructionFormat` field for field, and a
per-bus source multiplexer over the port table.  One generated
behavioural top module owns *all* sequential state (PC, guard registers,
operand/opcode/result pipeline registers, RF storage, socket FSMs,
instruction fetch) and instantiates the structural pieces with per-bit
named connections.

The instruction memory word is ``instruction_bits + 1`` wide: the binary
move encoding does not carry :attr:`Instruction.halt`, so the top bit is
a halt sideband (model ``program_memory_bits`` excludes it — the
calibration harness reports fetch as an unmodelled category).

Latency contract: latency-1 FUs take trigger data combinationally from
the bus and latch the result at the end of the trigger cycle (readable
one cycle later, as the scheduler assumes); latency-2 units (multiplier,
LSU) register the trigger operand and run a one-deep valid pipeline.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.components.library import component_datasheet
from repro.components.socket import (
    SOCKET_FSM_BITS,
    SOCKET_ID_BITS,
    build_socket,
)
from repro.components.spec import ComponentKind, ComponentSpec
from repro.netlist.builder import WordBuilder
from repro.netlist.netlist import Netlist
from repro.netlist.verilog import to_structural_verilog, word_ports
from repro.tta.arch import Architecture
from repro.tta.encoding import InstructionFormat, MoveEncoder
from repro.tta.isa import GUARD_UNIT, SHORT_IMM_BITS, Program


class RTLError(Exception):
    """Architecture not elaborable to a single core."""


# ----------------------------------------------------------------------
# generated structural modules
# ----------------------------------------------------------------------
def build_move_decoder(
    fmt: InstructionFormat, num_guard_regs: int, name: str = "movedec"
) -> Netlist:
    """Per-bus move-slot decoder, field-exact to the binary encoding.

    PIs: ``slot[slot_bits]``, ``guards[G]`` (guard register file state),
    ``imm_ext[width]`` (the shared long-immediate extension field).
    POs: ``valid`` (slot non-empty), ``guard_ok`` (predicate evaluates
    true), ``fire`` (valid & guard_ok), ``is_imm``, ``src_id``,
    ``src_index``, ``dst_id``, ``dst_index``, ``opcode`` and the
    resolved ``imm_value`` (short immediate sign-extended, or the long
    extension word when ``src_index`` is all-ones).
    """
    wb = WordBuilder(name)
    slot = wb.input_word("slot", fmt.slot_bits)
    guards = wb.input_word("guards", num_guard_regs)
    imm_ext = wb.input_word("imm_ext", fmt.imm_ext_bits)

    pos = 0
    gfield = slot[pos:pos + fmt.guard_bits]
    pos += fmt.guard_bits
    sfield = slot[pos:pos + fmt.src_addr_bits]
    pos += fmt.src_addr_bits
    sidx = slot[pos:pos + fmt.src_index_bits]
    pos += fmt.src_index_bits
    dfield = slot[pos:pos + fmt.dst_addr_bits]
    pos += fmt.dst_addr_bits
    didx = slot[pos:pos + fmt.dst_index_bits]
    pos += fmt.dst_index_bits
    opf = slot[pos:pos + fmt.opcode_bits]

    valid = wb.or_reduce(dfield)
    has_guard, invert = gfield[0], gfield[1]
    gsel = wb.mux_tree(gfield[2:], [[g] for g in guards])[0]
    guard_ok = wb.mux2(has_guard, wb.const_bit(1), wb.xor_(gsel, invert))
    fire = wb.and_(valid, guard_ok)

    is_imm = sfield[0]
    src_id = sfield[1:]
    is_long = wb.and_(is_imm, wb.and_reduce(sidx))
    short = src_id[:SHORT_IMM_BITS]
    width = fmt.imm_ext_bits
    if width <= SHORT_IMM_BITS:
        short_ext = short[:width]
    else:
        short_ext = short + [short[-1]] * (width - SHORT_IMM_BITS)
    imm_value = wb.mux2_word(is_long, short_ext, imm_ext)

    wb.output_bit("valid", wb.buf(valid))
    wb.output_bit("guard_ok", wb.buf(guard_ok))
    wb.output_bit("fire", wb.buf(fire))
    wb.output_bit("is_imm", wb.buf(is_imm))
    wb.output_word("src_id", [wb.buf(x) for x in src_id])
    wb.output_word("src_index", [wb.buf(x) for x in sidx])
    wb.output_word("dst_id", [wb.buf(x) for x in dfield])
    wb.output_word("dst_index", [wb.buf(x) for x in didx])
    wb.output_word("opcode", [wb.buf(x) for x in opf])
    wb.output_word("imm_value", imm_value)
    wb.netlist.check()
    return wb.netlist


def build_bus_mux(
    width: int,
    id_bits: int,
    source_ids: tuple[int, ...],
    name: str = "busmux",
) -> Netlist:
    """One bus's source multiplexer: select ``src{k}`` whose encoded
    source id matches ``src_id``, or ``imm_value`` for immediates."""
    wb = WordBuilder(name)
    src_id = wb.input_word("src_id", id_bits)
    is_imm = wb.input_bit("is_imm")
    imm_value = wb.input_word("imm_value", width)
    selected: list[int] | None = None
    for k, sid in enumerate(source_ids):
        src = wb.input_word(f"src{k}", width)
        hit = wb.equal(src_id, wb.const_word(sid, id_bits))
        masked = [wb.and_(hit, x) for x in src]
        selected = masked if selected is None else wb.or_word(selected, masked)
    if selected is None:
        selected = wb.const_word(0, width)
    wb.output_word("value", wb.mux2_word(is_imm, selected, imm_value))
    wb.netlist.check()
    return wb.netlist


# ----------------------------------------------------------------------
# design container
# ----------------------------------------------------------------------
@dataclass
class CoreDesign:
    """A fully elaborated core: Verilog text plus audit metadata."""

    top_name: str
    width: int
    #: module name -> Verilog text, emission order (top module last).
    modules: dict[str, str]
    #: module name -> structural netlist (everything except the top).
    submodules: dict[str, Netlist]
    #: module name -> number of instances in the top module.
    instances: dict[str, int]
    #: register-bit account of the top module, keyed by unit name plus
    #: the synthetic categories ``interconnect``/``decode``/``fetch``.
    flop_bits: dict[str, int]
    instruction_bits: int
    num_instructions: int
    #: embedded program image bits (instructions x (word + halt bit)).
    imem_bits: int

    @property
    def verilog(self) -> str:
        return "\n".join(self.modules.values())


# ----------------------------------------------------------------------
# elaboration
# ----------------------------------------------------------------------
_LAT1_TRIGGER_COMB = 1  # latency at which trigger data bypasses its register


def _ident(name: str) -> str:
    out = re.sub(r"\W", "_", name)
    return out if out and not out[0].isdigit() else f"_{out}"


def _const_bits(value: int, width: int) -> list[str]:
    return [f"1'b{(value >> i) & 1}" for i in range(width)]


def _vec_bits(name: str, width: int, take: int) -> list[str]:
    """Per-bit exprs of vector ``name``, zero-padded/truncated to ``take``."""
    return [f"{name}[{i}]" if i < width else "1'b0" for i in range(take)]


def _priority(pairs: list[tuple[str, str]], default: str) -> str:
    """``c0 ? v0 : c1 ? v1 : ... : default``."""
    expr = default
    for cond, value in reversed(pairs):
        expr = f"{cond} ? {value} : {expr}"
    return expr


def _instance(
    netlist: Netlist, module: str, inst: str, conn: dict[str, object]
) -> str:
    """Render one instantiation with per-bit escaped named connections."""
    parts = []
    for port in word_ports(netlist):
        bound = conn[port.name]
        if port.scalar:
            parts.append(f".{port.name} ({bound})")
        else:
            exprs = list(bound)  # type: ignore[arg-type]
            if len(exprs) != port.width:
                raise RTLError(
                    f"{module}.{port.name}: {len(exprs)} connections "
                    f"for a {port.width}-bit port"
                )
            for i, expr in enumerate(exprs):
                parts.append(f".\\{port.name}[{i}] ({expr})")
    body = ",\n    ".join(parts)
    return f"  {module} {inst} (\n    {body}\n  );"


class _TopBuilder:
    """Accumulates the behavioural top module's text and register map."""

    def __init__(self) -> None:
        self.decls: list[str] = []
        self.body: list[str] = []
        self.resets: list[str] = []
        self.updates: list[str] = []
        self.flops: dict[str, int] = {}

    def reg(self, category: str, name: str, width: int, reset: bool = False) -> str:
        self.decls.append(f"  reg [{width - 1}:0] {name};")
        self.flops[category] = self.flops.get(category, 0) + width
        if reset:
            self.resets.append(f"      {name} <= {width}'d0;")
        return name

    def wire(self, name: str, width: int, expr: str | None = None) -> str:
        head = f"  wire [{width - 1}:0] {name};"
        if expr is not None:
            head = f"  wire [{width - 1}:0] {name} = {expr};"
        self.decls.append(head)
        return name

    def bit(self, name: str, expr: str | None = None) -> str:
        if expr is None:
            self.decls.append(f"  wire {name};")
        else:
            self.decls.append(f"  wire {name} = {expr};")
        return name


def _core_module_name(spec: ComponentSpec) -> str:
    """Emitted module name for a component spec (RF names carry ports)."""
    if spec.kind is ComponentKind.RF:
        return _ident(spec.name)
    netlist = component_datasheet(spec).netlist()
    assert netlist is not None
    return _ident(netlist.name)


def _core_netlist(spec: ComponentSpec) -> Netlist:
    ds = component_datasheet(spec)
    netlist = ds.ff_netlist() if spec.kind is ComponentKind.RF else ds.netlist()
    if netlist is None:
        raise RTLError(f"component {spec.name} has no structural netlist")
    return netlist


def elaborate_core(
    arch: Architecture,
    program: Program | None = None,
    top_name: str = "tta_core",
) -> CoreDesign:
    """Elaborate ``arch`` (optionally with an embedded program image)."""
    top = _ident(top_name)
    encoder = MoveEncoder(arch)
    fmt = encoder.format
    width = arch.width
    nbus = arch.num_buses

    if len(encoder.destinations) + 1 > (1 << SOCKET_ID_BITS):
        raise RTLError(
            f"{len(encoder.destinations)} destinations exceed the "
            f"{SOCKET_ID_BITS}-bit socket address space"
        )
    if len(encoder.sources) > (1 << SOCKET_ID_BITS):
        raise RTLError(
            f"{len(encoder.sources)} sources exceed the "
            f"{SOCKET_ID_BITS}-bit socket address space"
        )

    src_id_bits = fmt.src_addr_bits - 1

    modules: dict[str, str] = {}
    submodules: dict[str, Netlist] = {}
    instances: dict[str, int] = {}

    def define(name: str, netlist: Netlist) -> str:
        if name not in modules:
            modules[name] = to_structural_verilog(netlist, module_name=name)
            submodules[name] = netlist
        return name

    def count(name: str) -> None:
        instances[name] = instances.get(name, 0) + 1

    socket_mod = define("socket6x3", build_socket())
    socket_nl = submodules[socket_mod]
    dec_mod = define(
        f"{top}_movedec", build_move_decoder(fmt, arch.num_guard_regs)
    )
    dec_nl = submodules[dec_mod]

    tb = _TopBuilder()

    # -- fetch ---------------------------------------------------------
    iw = fmt.instruction_bits + 1  # +1: halt sideband
    pcw = arch.pc_unit.spec.width
    tb.reg("fetch", "halted_q", 1, reset=True)
    pc_q = tb.reg(arch.pc_unit.name, "pc_q", pcw, reset=True)
    tb.wire("instr", iw)

    words: list[int] = []
    if program is not None:
        encoded = encoder.encode_program(program)
        words = [
            w | (int(instr.halt) << fmt.instruction_bits)
            for w, instr in zip(encoded, program.instructions, strict=True)
        ]
        lines = [f"  function [{iw - 1}:0] imem_word;"]
        lines.append(f"    input [{pcw - 1}:0] a;")
        lines.append("    begin")
        lines.append("      case (a)")
        for addr, word in enumerate(words):
            lines.append(f"        {pcw}'d{addr}: imem_word = {iw}'h{word:x};")
        halt_word = 1 << fmt.instruction_bits
        lines.append(
            f"        default: imem_word = {iw}'h{halt_word:x};"
        )
        lines.append("      endcase")
        lines.append("    end")
        lines.append("  endfunction")
        tb.body.append("\n".join(lines))
        tb.body.append("  assign instr = imem_word(pc_q);")
    else:
        imem_aw = min(pcw, 12)
        tb.decls.append(
            f"  reg [{iw - 1}:0] imem [0:{(1 << imem_aw) - 1}];"
        )
        tb.body.append(
            f"  assign instr = imem[pc_q[{imem_aw - 1}:0]];"
        )
    tb.updates.append(f"      halted_q <= instr[{iw - 1}];")

    # -- guard register file -------------------------------------------
    ngr = arch.num_guard_regs
    tb.reg("decode", "guard_q", ngr, reset=True)

    # -- per-bus decode ------------------------------------------------
    for b in range(nbus):
        tb.bit(f"dec{b}_valid")
        tb.bit(f"dec{b}_guard_ok")
        tb.bit(f"dec{b}_fire")
        tb.bit(f"dec{b}_is_imm")
        tb.wire(f"dec{b}_src_id", src_id_bits)
        tb.wire(f"dec{b}_src_index", fmt.src_index_bits)
        tb.wire(f"dec{b}_dst_id", fmt.dst_addr_bits)
        tb.wire(f"dec{b}_dst_index", fmt.dst_index_bits)
        tb.wire(f"dec{b}_opcode", fmt.opcode_bits)
        tb.wire(f"dec{b}_imm", width)
        tb.bit(f"bus{b}_src_valid", f"dec{b}_valid & ~dec{b}_is_imm")
        base = b * fmt.slot_bits
        ext = nbus * fmt.slot_bits
        tb.body.append(_instance(dec_nl, dec_mod, f"dec{b}", {
            "slot": [f"instr[{base + i}]" for i in range(fmt.slot_bits)],
            "guards": [f"guard_q[{g}]" for g in range(ngr)],
            "imm_ext": [f"instr[{ext + i}]" for i in range(fmt.imm_ext_bits)],
            "valid": f"dec{b}_valid",
            "guard_ok": f"dec{b}_guard_ok",
            "fire": f"dec{b}_fire",
            "is_imm": f"dec{b}_is_imm",
            "src_id": [f"dec{b}_src_id[{i}]" for i in range(src_id_bits)],
            "src_index": [
                f"dec{b}_src_index[{i}]" for i in range(fmt.src_index_bits)
            ],
            "dst_id": [
                f"dec{b}_dst_id[{i}]" for i in range(fmt.dst_addr_bits)
            ],
            "dst_index": [
                f"dec{b}_dst_index[{i}]" for i in range(fmt.dst_index_bits)
            ],
            "opcode": [
                f"dec{b}_opcode[{i}]" for i in range(fmt.opcode_bits)
            ],
            "imm_value": [f"dec{b}_imm[{i}]" for i in range(width)],
        }))
        count(dec_mod)

    # -- sockets -------------------------------------------------------
    def socket(
        kind: str, unit: str, port: str, bus: int,
        dst_bits: list[str], my_id: int, valid: str, guard: str,
    ) -> str:
        """Instantiate one socket; returns its load-strobe wire name."""
        tag = f"{kind}_{unit}_{port}_b{bus}"
        load = tb.bit(f"ld_{tag}")
        tb.bit(f"rdy_{tag}")
        tb.wire(f"fd_{tag}", SOCKET_FSM_BITS)
        tb.reg("interconnect", f"fq_{tag}", SOCKET_FSM_BITS, reset=True)
        tb.updates.append(f"      fq_{tag} <= fd_{tag};")
        tb.body.append(_instance(socket_nl, socket_mod, f"sk_{tag}", {
            "dst": dst_bits,
            "my_id": _const_bits(my_id, SOCKET_ID_BITS),
            "valid": valid,
            "guard": guard,
            "fsm_q": [f"fq_{tag}[{i}]" for i in range(SOCKET_FSM_BITS)],
            "load": load,
            "ready": f"rdy_{tag}",
            "fsm_d": [f"fd_{tag}[{i}]" for i in range(SOCKET_FSM_BITS)],
        }))
        count(socket_mod)
        return load

    # input-side sockets: one per (input port, connected bus).
    in_loads: dict[tuple[str, str], list[tuple[int, str]]] = {}
    out_sel: dict[tuple[str, str], list[tuple[int, str]]] = {}
    for unit in arch.units.values():
        for port in unit.spec.ports:
            key = (unit.name, port.name)
            buses = sorted(arch.connectivity[key])
            if port.is_input:
                did = encoder.destination_id(*key)
                in_loads[key] = [
                    (b, socket(
                        "i", unit.name, port.name, b,
                        _vec_bits(
                            f"dec{b}_dst_id", fmt.dst_addr_bits,
                            SOCKET_ID_BITS,
                        ),
                        did, f"dec{b}_valid", f"dec{b}_guard_ok",
                    ))
                    for b in buses
                ]
            else:
                sid = encoder.source_id(*key)
                out_sel[key] = [
                    (b, socket(
                        "o", unit.name, port.name, b,
                        _vec_bits(
                            f"dec{b}_src_id", src_id_bits, SOCKET_ID_BITS
                        ),
                        sid, f"bus{b}_src_valid", f"dec{b}_guard_ok",
                    ))
                    for b in buses
                ]

    # -- per-unit datapath ---------------------------------------------
    source_exprs: dict[tuple[str, str], tuple[str, int]] = {}

    def port_load(key: tuple[str, str]) -> str:
        name = f"{key[0]}_{key[1]}_ld"
        tb.bit(name, " | ".join(ld for _, ld in in_loads[key]))
        return name

    def port_data(key: tuple[str, str]) -> str:
        name = f"{key[0]}_{key[1]}_w"
        tb.wire(name, width, _priority(
            [(ld, f"bus{b}_value") for b, ld in in_loads[key]],
            f"{width}'d0",
        ))
        return name

    def trig_opcode(key: tuple[str, str]) -> str:
        name = f"{key[0]}_gop"
        tb.wire(name, fmt.opcode_bits, _priority(
            [(ld, f"dec{b}_opcode") for b, ld in in_loads[key]],
            f"{fmt.opcode_bits}'d0",
        ))
        return name

    def locop_function(unit: str, mapping: dict[int, int], out_bits: int) -> str:
        name = f"{unit}_locop"
        lines = [f"  function [{out_bits - 1}:0] {name};"]
        lines.append(f"    input [{fmt.opcode_bits - 1}:0] g;")
        lines.append("    begin")
        lines.append("      case (g)")
        for gid, local in sorted(mapping.items()):
            lines.append(
                f"        {fmt.opcode_bits}'d{gid}: "
                f"{name} = {out_bits}'d{local};"
            )
        lines.append(f"        default: {name} = {out_bits}'d0;")
        lines.append("      endcase")
        lines.append("    end")
        lines.append("  endfunction")
        tb.body.append("\n".join(lines))
        return name

    for b in range(nbus):
        tb.wire(f"bus{b}_value", width)

    for unit in arch.units.values():
        name, spec = unit.name, unit.spec
        kind = spec.kind
        if kind is ComponentKind.IMM:
            netlist = _core_netlist(spec)
            mod = define(_core_module_name(spec), netlist)
            value = tb.wire(f"{name}_value_w", width)
            ext = nbus * fmt.slot_bits
            tb.body.append(_instance(netlist, mod, f"{name}_core", {
                "imm": [f"instr[{ext + i}]" for i in range(width)],
                "short": "1'b0",
                "value": [f"{value}[{i}]" for i in range(width)],
            }))
            count(mod)
            source_exprs[(name, "value")] = (value, width)
            continue

        if kind is ComponentKind.PC:
            netlist = _core_netlist(spec)
            mod = define(_core_module_name(spec), netlist)
            key = (name, "target")
            trig = port_load(key)
            target = port_data(key)
            pc_d = tb.wire(f"{name}_pc_d", pcw)
            tb.body.append(_instance(netlist, mod, f"{name}_core", {
                "pc_q": [f"{pc_q}[{i}]" for i in range(pcw)],
                "target": _vec_bits(target, width, pcw),
                "jump": trig,
                "guard": "1'b1",
                "pc_d": [f"{pc_d}[{i}]" for i in range(pcw)],
            }))
            count(mod)
            tb.updates.append(f"      pc_q <= {pc_d};")
            continue

        if kind is ComponentKind.RF:
            netlist = _core_netlist(spec)
            mod = define(_core_module_name(spec), netlist)
            nregs = spec.num_regs
            abits = (nregs - 1).bit_length()
            conn: dict[str, object] = {}
            for port in spec.ports:
                key = (name, port.name)
                if port.is_input:  # write port w{p}
                    p = port.name[1:]
                    en = port_load(key)
                    data = port_data(key)
                    addr = tb.wire(f"{name}_w{p}addr_w", abits, _priority(
                        [
                            (ld, f"dec{b}_dst_index[{abits - 1}:0]")
                            for b, ld in in_loads[key]
                        ],
                        f"{abits}'d0",
                    ))
                    conn[f"w{p}addr"] = [f"{addr}[{i}]" for i in range(abits)]
                    conn[f"w{p}data"] = [f"{data}[{i}]" for i in range(width)]
                    conn[f"w{p}en"] = en
                else:  # read port r{p}
                    p = port.name[1:]
                    addr = tb.wire(f"{name}_r{p}addr_w", abits, _priority(
                        [
                            (ld, f"dec{b}_src_index[{abits - 1}:0]")
                            for b, ld in out_sel[key]
                        ],
                        f"{abits}'d0",
                    ))
                    data = tb.wire(f"{name}_r{p}data", width)
                    conn[f"r{p}addr"] = [f"{addr}[{i}]" for i in range(abits)]
                    conn[f"r{p}data"] = [f"{data}[{i}]" for i in range(width)]
                    source_exprs[key] = (data, width)
            for r in range(nregs):
                q = tb.reg(name, f"{name}_q{r}", width)
                d = tb.wire(f"{name}_d{r}", width)
                conn[f"q{r}"] = [f"{q}[{i}]" for i in range(width)]
                conn[f"d{r}"] = [f"{d}[{i}]" for i in range(width)]
                tb.updates.append(f"      {q} <= {d};")
            tb.body.append(_instance(netlist, mod, f"{name}_core", conn))
            count(mod)
            continue

        # FU / LSU
        netlist = _core_netlist(spec)
        mod = define(_core_module_name(spec), netlist)
        nl_ports = {p.name: p for p in word_ports(netlist)}
        trigger = spec.trigger_port
        conn = {}

        if kind is ComponentKind.LSU:
            wkey, akey = (name, "wdata"), (name, "addr")
            wl, wd = port_load(wkey), port_data(wkey)
            trig, ad = port_load(akey), port_data(akey)
            gop = trig_opcode(akey)
            mapping = {}
            local_ops = {"ld": 0, "ld_ls": 1, "ld_lu": 2, "ld_h": 3, "st": 4}
            for op, local in local_ops.items():
                if op in encoder.opcodes:
                    mapping[encoder.opcode_id(op)] = local
            locop = locop_function(name, mapping, 3)
            wq = tb.reg(name, f"{name}_wdata_q", width)
            aq = tb.reg(name, f"{name}_addr_q", width)
            opq = tb.reg(name, f"{name}_op_q", 3)
            v1 = tb.reg(name, f"{name}_v1", 1, reset=True)
            tb.updates.append(f"      if ({wl}) {wq} <= {wd};")
            tb.updates.append(
                f"      if ({trig}) begin {aq} <= {ad}; "
                f"{opq} <= {locop}({gop}); end"
            )
            tb.updates.append(f"      {v1}[0] <= {trig};")
            addr_mem = tb.wire(f"{name}_addr_mem", width)
            wdata_mem = tb.wire(f"{name}_wdata_mem", width)
            rdata_w = tb.wire(f"{name}_rdata_w", width)
            daw = min(width, 16)
            tb.decls.append(
                f"  reg [{width - 1}:0] dmem [0:{(1 << daw) - 1}];"
            )
            rdata_mem = tb.wire(
                f"{name}_rdata_mem", width,
                f"dmem[{addr_mem}[{daw - 1}:0]]",
            )
            tb.body.append(_instance(netlist, mod, f"{name}_core", {
                "addr": [f"{aq}[{i}]" for i in range(width)],
                "wdata": [f"{wq}[{i}]" for i in range(width)],
                "rdata_mem": [f"{rdata_mem}[{i}]" for i in range(width)],
                "mode": [f"{opq}[{i}]" for i in range(2)],
                "addr_mem": [f"{addr_mem}[{i}]" for i in range(width)],
                "wdata_mem": [f"{wdata_mem}[{i}]" for i in range(width)],
                "rdata": [f"{rdata_w}[{i}]" for i in range(width)],
            }))
            count(mod)
            rq = tb.reg(name, f"{name}_rdata_q", width)
            tb.updates.append(
                f"      if ({v1}[0] & {opq}[2]) "
                f"dmem[{addr_mem}[{daw - 1}:0]] <= {wdata_mem};"
            )
            tb.updates.append(
                f"      if ({v1}[0] & ~{opq}[2]) {rq} <= {rdata_w};"
            )
            source_exprs[(name, "rdata")] = (rq, width)
            continue

        # plain FU: a (operand), b (trigger), y (result), optional op.
        lat = spec.latency
        for port in spec.ports:
            key = (name, port.name)
            if not port.is_input:
                continue
            load = port_load(key)
            data = port_data(key)
            if port.name == trigger.name and lat == _LAT1_TRIGGER_COMB:
                conn[port.name] = [f"{data}[{i}]" for i in range(width)]
            else:
                q = tb.reg(name, f"{name}_{port.name}_q", width)
                tb.updates.append(f"      if ({load}) {q} <= {data};")
                conn[port.name] = [f"{q}[{i}]" for i in range(width)]
        trig = f"{name}_{trigger.name}_ld"

        if "op" in nl_ports:
            opw = nl_ports["op"].width
            mapping = {
                encoder.opcode_id(op): local
                for local, op in enumerate(spec.ops)
            }
            locop = locop_function(name, mapping, opw)
            gop = trig_opcode((name, trigger.name))
            if lat == 1:
                op_expr = tb.wire(
                    f"{name}_op_w", opw, f"{locop}({gop})"
                )
            else:
                op_expr = tb.reg(name, f"{name}_op_q", opw)
                tb.updates.append(
                    f"      if ({trig}) {op_expr} <= {locop}({gop});"
                )
            conn["op"] = [f"{op_expr}[{i}]" for i in range(opw)]

        out_port = next(p for p in spec.ports if not p.is_input)
        yp = nl_ports[out_port.name]
        yw = tb.wire(f"{name}_y_w", yp.width)
        conn[out_port.name] = (
            yw if yp.scalar else [f"{yw}[{i}]" for i in range(yp.width)]
        )
        if yp.scalar:
            # redeclare as 1-bit vector for uniform indexing
            tb.decls.remove(f"  wire [{yp.width - 1}:0] {yw};")
            tb.decls.append(f"  wire {yw};")
        tb.body.append(_instance(netlist, mod, f"{name}_core", conn))
        count(mod)
        yq = tb.reg(name, f"{name}_y_q", yp.width)
        if lat == 1:
            tb.updates.append(f"      if ({trig}) {yq} <= {yw};")
        else:
            v1 = tb.reg(name, f"{name}_v1", 1, reset=True)
            tb.updates.append(f"      {v1}[0] <= {trig};")
            tb.updates.append(f"      if ({v1}[0]) {yq} <= {yw};")
        source_exprs[(name, out_port.name)] = (yq, yp.width)

    if program is not None and program.data and arch.lsu is not None:
        mask = (1 << width) - 1
        image = ["  initial begin"]
        for addr in sorted(program.data):
            image.append(
                f"    dmem[{addr}] = {width}'h{program.data[addr] & mask:x};"
            )
        image.append("  end")
        tb.body.append("\n".join(image))

    # -- guard-register writes (behavioural; no sockets in the model) --
    for g in range(ngr):
        did = encoder.destination_id(GUARD_UNIT, f"g{g}")
        hits = []
        for b in range(nbus):
            hit = tb.bit(
                f"gh{g}_b{b}",
                f"dec{b}_fire & (dec{b}_dst_id == "
                f"{fmt.dst_addr_bits}'d{did})",
            )
            hits.append((b, hit))
        tb.bit(f"gw{g}", " | ".join(h for _, h in hits))
        tb.bit(f"gv{g}", _priority(
            [(h, f"bus{b}_value[0]") for b, h in hits], "1'b0"
        ))
        tb.updates.append(
            f"      if (gw{g}) guard_q[{g}] <= gv{g};"
        )

    # -- bus source muxes ----------------------------------------------
    guard_sources = [
        (encoder.source_id(GUARD_UNIT, f"g{g}"),
         [f"guard_q[{g}]"] + ["1'b0"] * (width - 1))
        for g in range(ngr)
    ]
    mux_mods: dict[tuple[int, ...], str] = {}
    for b in range(nbus):
        cands: list[tuple[int, list[str]]] = []
        for key, (expr, ew) in source_exprs.items():
            if b in arch.connectivity[key]:
                cands.append(
                    (encoder.source_id(*key), _vec_bits(expr, ew, width))
                )
        cands.extend(guard_sources)
        sids = tuple(sid for sid, _ in cands)
        mod = mux_mods.get(sids)
        if mod is None:
            mod = f"{top}_busmux{len(mux_mods)}"
            define(mod, build_bus_mux(width, src_id_bits, sids, name=mod))
            mux_mods[sids] = mod
        netlist = submodules[mod]
        conn = {
            "src_id": [f"dec{b}_src_id[{i}]" for i in range(src_id_bits)],
            "is_imm": f"dec{b}_is_imm",
            "imm_value": [f"dec{b}_imm[{i}]" for i in range(width)],
            "value": [f"bus{b}_value[{i}]" for i in range(width)],
        }
        for k, (_, bits) in enumerate(cands):
            conn[f"src{k}"] = bits
        tb.body.append(_instance(netlist, mod, f"bmux{b}", conn))
        count(mod)

    # -- assemble the top module ---------------------------------------
    lines = [
        f"// generated by repro.rtl: {arch.name} "
        f"(width={width}, buses={nbus})",
        f"// instruction word: {fmt.instruction_bits} bits "
        f"+ 1 halt sideband",
        f"module {top} (",
        "  input  wire clk,",
        "  input  wire rst,",
        "  output wire halted",
        ");",
    ]
    lines.extend(tb.decls)
    lines.append("  assign halted = halted_q[0];")
    lines.extend(tb.body)
    lines.append("  always @(posedge clk) begin")
    lines.append("    if (rst) begin")
    lines.extend(tb.resets)
    lines.append("    end else if (!halted_q[0]) begin")
    lines.extend(tb.updates)
    lines.append("    end")
    lines.append("  end")
    lines.append("endmodule")
    modules[top] = "\n".join(lines) + "\n"

    return CoreDesign(
        top_name=top,
        width=width,
        modules=modules,
        submodules=submodules,
        instances=instances,
        flop_bits=tb.flops,
        instruction_bits=fmt.instruction_bits,
        num_instructions=len(words),
        imem_bits=len(words) * iw,
    )
