"""The energy subsystem: activity tracing, model, objectives, cache.

Covers the PR's acceptance invariants: toggle counts on a pinned
program equal hand-computed Hamming distances; tracing is exactly
zero-overhead-path equivalent (same ``SimResult``) on vs off; energy is
monotone in datapath width for a fixed workload; the component-level
breakdown sums to the reported total; and the ``energy``/``edp``
objectives run end-to-end through the study engine — cache path and
pool path included.
"""

import pytest

from repro.apps import build_gcd_ir
from repro.apps.registry import build_workload
from repro.campaign import ResultCache
from repro.compiler.interp import IRInterpreter
from repro.compiler.scheduler import compile_ir
from repro.energy import (
    EnergyModel,
    TechnologyParameters,
    attach_energy,
    energy_breakdown_of,
    energy_report,
    format_energy_report,
    register_technology,
    technology_by_name,
    technology_names,
)
from repro.energy.model import _TECHNOLOGIES
from repro.energy.report import breakdown_from_trace
from repro.explore import ArchConfig, RFConfig, build_architecture
from repro.explore.space import dsp_space, small_space
from repro.study import StudySpec, objective_by_name, run_study
from repro.tta.activity import ActivityTrace, hamming
from repro.tta.arch import Architecture, UnitInstance
from repro.tta.isa import Instruction, Literal, Move, PortRef, Program
from repro.tta.simulator import TTASimulator
from repro.components.library import alu_spec, imm_spec, pc_spec, rf_spec


# ----------------------------------------------------------------------
# pinned program: toggle counts equal hand-computed Hamming distances
# ----------------------------------------------------------------------
def _tiny_arch(width=16, num_buses=1):
    units = [
        UnitInstance("alu0", alu_spec(width)),
        UnitInstance("rf0", rf_spec(4, width)),
        UnitInstance("pc", pc_spec(width)),
        UnitInstance("imm0", imm_spec(width)),
    ]
    return Architecture(
        name="tiny", width=width, num_buses=num_buses, units=units
    )


def test_pinned_program_hamming_counts():
    """lit 0x0F -> alu.a ; lit 0x33 -> alu.b:add ; alu.y -> rf0[1]."""
    arch = _tiny_arch()
    program = Program(name="pinned")
    program.append(Instruction(
        slots=[Move(src=Literal(0x0F), dst=PortRef("alu0", "a"))]
    ))
    program.append(Instruction(
        slots=[Move(src=Literal(0x33), dst=PortRef("alu0", "b"),
                    opcode="add")]
    ))
    program.append(Instruction(slots=[None]))       # result lands
    program.append(Instruction(
        slots=[Move(src=PortRef("alu0", "y"), dst=PortRef("rf0", "w0"),
                    dst_reg=1)],
        halt=True,
    ))
    sim = TTASimulator(arch, program, activity=True)
    result = sim.run()
    assert result.halted
    act = sim.activity

    # Bus value sequence: 0 -> 0x0F -> 0x33 -> 0x42 (the add result).
    expected_bus = (
        hamming(0, 0x0F) + hamming(0x0F, 0x33) + hamming(0x33, 0x42)
    )
    assert act.bus_toggles == {0: expected_bus}
    assert act.bus_transports == {0: 3}

    # Port registers start at 0.
    assert act.port_toggles[("alu0", "a")] == hamming(0, 0x0F)
    assert act.port_toggles[("alu0", "b")] == hamming(0, 0x33)
    assert act.port_toggles[("alu0", "y")] == hamming(0, 0x42)

    # One RF write of 0x42 into a zeroed cell, no reads.
    assert act.rf_writes == {"rf0": 1}
    assert act.rf_write_toggles == {"rf0": hamming(0, 0x42)}
    assert act.rf_reads == {}

    # One trigger; four fetched words with pairwise Hamming distances.
    assert act.fu_activations == {"alu0": 1}
    assert act.fetch_words == 4
    from repro.tta.encoding import MoveEncoder

    words = MoveEncoder(arch).encode_program(program)
    expected_fetch = hamming(0, words[0]) + sum(
        hamming(a, b) for a, b in zip(words, words[1:])
    )
    assert act.fetch_toggles == expected_fetch

    # Socket transports: alu inputs, alu output, rf write port.
    assert act.socket_transports == {
        ("alu0", "a"): 1, ("alu0", "b"): 1,
        ("alu0", "y"): 1, ("rf0", "w0"): 1,
    }
    assert act.cycles == result.cycles


def test_guarded_move_drives_nothing():
    """A squashed move must toggle no bus, port or socket."""
    from repro.tta.isa import Guard

    arch = _tiny_arch()
    program = Program(name="squash")
    program.append(Instruction(
        slots=[Move(src=Literal(0x7F), dst=PortRef("alu0", "a"),
                    guard=Guard(0))],     # g0 == 0 -> squashed
        halt=True,
    ))
    sim = TTASimulator(arch, program, activity=True)
    result = sim.run()
    assert result.moves_squashed == 1
    act = sim.activity
    assert act.bus_toggles == {} and act.port_toggles == {}
    assert act.socket_transports == {}
    assert act.fetch_words == 1          # the word still fetches


# ----------------------------------------------------------------------
# tracing on vs off: exactly the same simulation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["gcd", "checksum", "crc16"])
def test_activity_tracing_is_result_equivalent(name):
    workload = build_workload(name)
    profile = IRInterpreter(workload, width=16).run().block_counts
    arch = build_architecture(small_space()[5], 16)
    compiled = compile_ir(workload, arch, profile=profile)

    plain = TTASimulator(arch, compiled.program)
    traced = TTASimulator(arch, compiled.program, activity=True)
    a, b = plain.run(), traced.run()
    assert (a.cycles, a.halted, a.reason) == (b.cycles, b.halted, b.reason)
    assert (a.moves_executed, a.moves_squashed, a.triggers) == (
        b.moves_executed, b.moves_squashed, b.triggers
    )
    # architectural state agrees too
    assert plain.dmem == traced.dmem
    assert plain.guards == traced.guards
    assert plain.activity is None and traced.activity is not None
    # every executed move is a transport
    assert traced.activity.total_transports == b.moves_executed


# ----------------------------------------------------------------------
# the model: breakdown sums, monotonicity, technology registry
# ----------------------------------------------------------------------
def _gcd_breakdown(width, config=None):
    workload = build_gcd_ir(252, 105)
    profile = IRInterpreter(workload, width=width).run().block_counts
    config = config or small_space()[0]
    arch = build_architecture(config, width)
    compiled = compile_ir(workload, arch, profile=profile)
    return energy_report(arch, compiled.program)


def test_breakdown_sums_to_total():
    breakdown = _gcd_breakdown(16)
    assert breakdown.total == pytest.approx(
        sum(e.energy for e in breakdown.entries)
    )
    assert breakdown.total > 0
    assert breakdown.dynamic < breakdown.total
    for category in ("bus", "fu", "rf", "fetch", "leakage"):
        assert breakdown.category_total(category) >= 0
    assert breakdown.category_total("bus") > 0
    assert breakdown.entry("fetch").toggles > 0
    assert breakdown.edp == pytest.approx(
        breakdown.total * breakdown.cycles
    )
    text = format_energy_report(breakdown)
    assert "bus0" in text and "leakage" in text and "share" in text


def test_energy_monotone_in_width():
    """Wider datapaths move more bits per event: energy must rise."""
    totals = [_gcd_breakdown(w).total for w in (8, 16, 32)]
    assert totals[0] < totals[1] < totals[2]


def test_unhalted_program_raises():
    arch = _tiny_arch()
    program = Program(name="spin")
    program.append(Instruction(
        slots=[Move(src=Literal(0), dst=PortRef("pc", "target"),
                    opcode="jump")]
    ))
    program.append(Instruction(slots=[None]))
    with pytest.raises(ValueError, match="no halt"):
        energy_report(arch, program, max_cycles=100)


def test_technology_registry():
    assert {"default", "low_power"} <= set(technology_names())
    default = technology_by_name("default")
    low = technology_by_name("low_power")
    assert default.fingerprint() != low.fingerprint()
    # same content -> same fingerprint; changed content -> changed tag
    assert default.fingerprint() == TechnologyParameters().fingerprint()
    with pytest.raises(KeyError, match="unknown technology"):
        technology_by_name("nope")

    name = "_test_corner"
    try:
        register_technology(TechnologyParameters(
            name=name, cap_per_area=0.1, leakage_per_area=0.0
        ))
        assert name in technology_names()
        breakdown = _gcd_breakdown(16)
        workload = build_gcd_ir(252, 105)
        profile = IRInterpreter(workload, width=16).run().block_counts
        arch = build_architecture(small_space()[0], 16)
        compiled = compile_ir(workload, arch, profile=profile)
        corner = energy_report(
            arch, compiled.program, tech=technology_by_name(name)
        )
        assert corner.total < breakdown.total
        assert corner.category_total("leakage") == 0.0
    finally:
        del _TECHNOLOGIES[name]


def test_energy_model_weight_structure():
    arch = build_architecture(small_space()[0], 16)
    model = EnergyModel(arch, technology_by_name("default"))
    assert model.leakage_per_cycle > 0
    assert model.bus_toggle(0) > 0
    # input toggles ripple through the core; result toggles only flip
    # the pipeline register — the former must dominate for an ALU
    assert model.port_toggle("alu0", "a") > model.port_toggle("alu0", "y")
    assert model.rf_write_toggle("rf0") > model.rf_read_toggle("rf0")


# ----------------------------------------------------------------------
# attach pass + objectives + cache + pool
# ----------------------------------------------------------------------
def test_attach_memo_distinguishes_same_named_workloads():
    """Two IR builds sharing a name must not share memoized energies."""
    from repro.explore import EvaluationContext

    config = small_space()[0]
    energies = []
    for args in ((252, 105), (24, 18)):
        workload = build_gcd_ir(*args)        # both named "gcd"
        profile = IRInterpreter(workload, width=16).run().block_counts
        context = EvaluationContext(workload, profile, 16)
        point = context.evaluate(config)
        attach_energy([point], workload, context=context)
        energies.append(point.energy)
    assert energies[0] != energies[1]


def test_cache_put_merges_post_pass_axes(tmp_path):
    """A study computing one post-pass axis must not erase the other
    axis's persisted value from a shared result cache."""
    from repro.energy import technology_by_name

    cache = ResultCache(tmp_path)
    base = dict(name="m", workloads=("gcd",), space="small")
    march = "March C-"
    tag = technology_by_name("default").fingerprint()
    test_run = run_study(
        StudySpec(**base, objectives=("area", "cycles", "test_cost")),
        cache=cache,
    )
    costed = [p for p in test_run.points if p.test_cost is not None]
    assert costed
    # an energy-only study over the same cache rewrites those entries
    energy_run = run_study(
        StudySpec(**base, objectives=("area", "cycles", "energy")),
        cache=cache,
    )
    # the march-keyed test costs must still be on disk, unchanged
    for p in costed:
        stored = cache.get("gcd", p.config, 16, march=march)
        assert stored is not None and stored.test_cost == p.test_cost
    # and symmetrically, a test-cost study must not wipe the energies
    run_study(
        StudySpec(**base, objectives=("area", "cycles", "test_cost")),
        cache=cache,
    )
    for p in energy_run.pareto:
        stored = cache.get("gcd", p.config, 16, energy_model=tag)
        assert stored is not None and stored.energy == p.energy


def test_attach_energy_skips_infeasible_and_annotated():
    workload = build_gcd_ir(252, 105)
    from repro.explore import EvaluatedPoint

    infeasible = EvaluatedPoint(
        config=ArchConfig(num_buses=1), area=1.0, cycles=None
    )
    pre_annotated = EvaluatedPoint(
        config=ArchConfig(num_buses=1), area=1.0, cycles=10, energy=42.0
    )
    attach_energy([infeasible, pre_annotated], workload)
    assert infeasible.energy is None
    assert pre_annotated.energy == 42.0


def test_objectives_registered_and_gated():
    energy = objective_by_name("energy")
    edp = objective_by_name("edp")
    assert energy.requires_energy and edp.requires_energy
    assert energy.needs_post_pass and not energy.requires_test_costs
    from repro.explore import EvaluatedPoint

    bare = EvaluatedPoint(config=ArchConfig(num_buses=1), area=1.0, cycles=10)
    assert not energy.available(bare)
    bare.energy = 5.0
    assert energy.available(bare)
    assert edp.measure(bare) == pytest.approx(50.0)


@pytest.mark.parametrize("space", ["small", "dsp"])
def test_energy_study_end_to_end(space, tmp_path):
    """(cycles, area, energy) study over cache and pool paths."""
    workload = "gcd" if space == "small" else "fir"
    cache = ResultCache(tmp_path)
    spec = StudySpec(
        name="energy3d",
        workloads=(workload,),
        space=space,
        objectives=("cycles", "area", "energy"),
        select=True,
    )
    first = run_study(spec, cache=cache)
    front = first.pareto
    assert len(front) >= 2, "non-degenerate 3-D front"
    assert all(p.energy is not None for p in front)
    assert len({p.energy for p in front}) > 1
    assert first.selection is not None

    # cache path: same front, zero evaluations, energies restored
    second = run_study(spec, cache=cache)
    assert second.single.stats.evaluated == 0
    assert [
        (p.label, p.energy) for p in second.pareto
    ] == [(p.label, p.energy) for p in front]

    # pool path: identical results through the process pool
    pooled = run_study(spec, workers=2)
    assert [
        (p.label, p.energy) for p in pooled.pareto
    ] == [(p.label, p.energy) for p in front]


def test_energy_cache_keyed_by_technology(tmp_path):
    """A cached energy under one technology never leaks into another."""
    cache = ResultCache(tmp_path)
    base = dict(
        name="t", workloads=("gcd",), space="small",
        objectives=("cycles", "area", "energy"),
    )
    default = run_study(StudySpec(**base), cache=cache)
    low = run_study(StudySpec(**base, tech="low_power"), cache=cache)
    d = {p.label: p.energy for p in default.pareto}
    l = {p.label: p.energy for p in low.pareto}
    for label in set(d) & set(l):
        assert l[label] < d[label]


def test_edp_selects_single_point():
    result = run_study(
        StudySpec(
            name="edp", workloads=("gcd",), space="small",
            objectives=("edp",), select=True,
        )
    )
    assert len(result.pareto) == 1
    assert result.selection is not None
    assert result.selection.point is result.pareto[0]
    # the winner minimises energy * cycles over the feasible points
    feasible = [p for p in result.points if p.energy is not None]
    best = min(feasible, key=lambda p: p.energy * p.cycles)
    assert result.selection.point.label == best.label


def test_energy_front_is_staged():
    """Energy is attached on the base front only: off-front points keep
    energy=None, so a stray cached energy cannot change the front."""
    result = run_study(
        StudySpec(
            name="staged", workloads=("gcd",), space="small",
            objectives=("cycles", "area", "energy"),
        )
    )
    run = result.single
    base_front_labels = {p.label for p in run.result.pareto2d}
    for p in run.result.points:
        if p.label not in base_front_labels:
            assert p.energy is None


def test_breakdown_of_point_matches_attached_energy():
    workload = build_gcd_ir(252, 105)
    profile = IRInterpreter(workload, width=16).run().block_counts
    from repro.explore import EvaluationContext

    context = EvaluationContext(workload, profile, 16)
    point = context.evaluate(small_space()[0])
    attach_energy([point], workload, context=context)
    breakdown = energy_breakdown_of(point, workload, context=context)
    assert point.energy == pytest.approx(breakdown.total, abs=1e-3)


def test_standalone_calls_match_study_path():
    """Context-less attach/breakdown must compile with the real profile
    (the profile steers regalloc and hence the program and its energy),
    so they agree with what a study attaches — and the memo must not
    cross-contaminate the two paths."""
    study = run_study(
        StudySpec(
            name="s", workloads=("crc16",), space="small",
            objectives=("cycles", "area", "energy"),
        )
    )
    workload = build_workload("crc16")
    for point in study.pareto:
        breakdown = energy_breakdown_of(point, workload)
        assert breakdown.total == pytest.approx(point.energy, abs=1e-3)
        from repro.explore import EvaluatedPoint

        bare = EvaluatedPoint(
            config=point.config, area=point.area, cycles=point.cycles
        )
        attach_energy([bare], workload)
        assert bare.energy == pytest.approx(point.energy, abs=1e-3)


def test_glitch_factor_default_is_identity():
    """glitch_factor=1.0 (the default) must be byte-identical to the
    glitch-free model: same fingerprint, same per-unit weights."""
    assert (TechnologyParameters(glitch_factor=1.0).fingerprint()
            == TechnologyParameters().fingerprint())
    assert (TechnologyParameters(glitch_factor=1.3).fingerprint()
            != TechnologyParameters().fingerprint())
    arch = build_architecture(dsp_space()[3], 16)
    base = EnergyModel(arch, technology_by_name("default"))
    same = EnergyModel(arch, TechnologyParameters(glitch_factor=1.0))
    assert same._input_bit == base._input_bit


def test_glitch_factor_scales_deep_units_hardest():
    """A glitchy corner penalises the deep array multiplier more than
    the shallow ALU; the shallowest core is the depth reference and
    stays at exactly 1x."""
    arch = build_architecture(dsp_space()[3], 16)
    base = EnergyModel(arch, technology_by_name("default"))
    glitchy = EnergyModel(arch, TechnologyParameters(glitch_factor=1.5))
    ratio = {
        unit: glitchy._input_bit[unit] / base._input_bit[unit]
        for unit in ("alu0", "mul0", "imm0")
    }
    assert ratio["mul0"] > ratio["alu0"] > 1.0
    assert ratio["imm0"] == pytest.approx(1.0)
