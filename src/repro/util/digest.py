"""Canonical JSON and content digests.

Three on-disk key spaces hash JSON payloads the same way: result-cache
entry keys (:func:`repro.campaign.cache.cache_key`), study checkpoint
spec hashes (:func:`repro.resilience.checkpoint.spec_digest`) and the
service layer's :attr:`~repro.study.spec.StudySpec.spec_id` job keys.
They must agree byte-for-byte — a client, a checkpoint and the dedupe
index all have to derive the *same* id from the same spec — so the
canonicalisation lives here, once.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_json", "content_digest"]


def canonical_json(obj) -> str:
    """The unique JSON text of a JSON-safe object.

    Keys sorted, no whitespace: two equal payloads serialise to the
    same string regardless of dict insertion order.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_digest(obj) -> str:
    """Hex SHA-256 of an object's canonical JSON form."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()
