"""Immediate unit netlist.

Long immediates in a TTA come from a dedicated immediate unit fed by the
instruction stream; short immediates ride in the move source field.  The
unit's datapath is a buffered pass-through (the register sits in the
pipeline layer), optionally sign-extending a short field to the bus width.

PIs: ``imm[width]``, ``short`` (select sign-extended low half).
POs: ``value[width]``.
"""

from __future__ import annotations

from repro.netlist.builder import WordBuilder
from repro.netlist.netlist import Netlist


def build_immediate(width: int = 16, name: str = "imm") -> Netlist:
    """Build the immediate-unit pass-through/extension netlist."""
    if width < 2 or width % 2:
        raise ValueError(f"immediate width must be even and >= 2, got {width}")
    half = width // 2
    wb = WordBuilder(f"{name}{width}")
    imm = wb.input_word("imm", width)
    short = wb.input_bit("short")

    sign = imm[half - 1]
    extended = imm[:half] + [sign] * half
    value = wb.mux2_word(short, imm, extended)
    wb.output_word("value", value)
    wb.netlist.check()
    return wb.netlist
