#!/usr/bin/env python3
"""ASCII rendering of the Fig. 2 / Fig. 8 solution space.

Plots the explored architectures in the (area, execution time) plane —
dots for dominated points, '#' for the Pareto frontier — and annotates
the frontier with its test costs, all in plain text.

Run:  python examples/pareto_plot.py
"""

from repro import StudySpec, run_study

WIDTH, HEIGHT = 72, 24


def ascii_scatter(points, pareto):
    xs = [p.area for p in points]
    ys = [p.cycles for p in points]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    grid = [[" "] * WIDTH for _ in range(HEIGHT)]
    pareto_set = {id(p) for p in pareto}

    def cell(p):
        col = int((p.area - x0) / (x1 - x0 + 1e-9) * (WIDTH - 1))
        row = int((p.cycles - y0) / (y1 - y0 + 1e-9) * (HEIGHT - 1))
        return row, col

    for p in points:
        row, col = cell(p)
        if grid[row][col] == " ":
            grid[row][col] = "."
    for p in pareto:
        row, col = cell(p)
        grid[row][col] = "#"

    lines = [f"cycles {y0:>8} (top) .. {y1} (bottom)   area -> "
             f"{x0:.0f} .. {x1:.0f}"]
    lines.append("+" + "-" * WIDTH + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * WIDTH + "+")
    lines.append("'.' explored   '#' Pareto frontier")
    return "\n".join(lines)


def main():
    # The test_cost objective makes the study attach Fig. 8's third
    # axis to the 2-D frontier automatically.
    study = run_study(StudySpec(
        name="pareto-plot", workloads=("crypt",), space="crypt",
        objectives=("area", "cycles", "test_cost"),
    ))
    result = study.single.result
    feasible = result.feasible_points
    pareto = result.pareto2d
    print(f"{len(feasible)} feasible architectures, "
          f"{len(pareto)} on the frontier\n")
    print(ascii_scatter(feasible, pareto))

    print("\nfrontier with test costs (Fig. 8's third axis):")
    for p in sorted(pareto, key=lambda q: q.area):
        bar = "*" * max(1, p.test_cost // 400)
        print(f"  {p.label:<34} f_t={p.test_cost:>6} {bar}")


if __name__ == "__main__":
    main()
