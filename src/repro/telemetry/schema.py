"""The versioned trace-record schema (schema version 2).

Every line of a trace file written by :class:`repro.telemetry.Tracer`
is one JSON object — a *record* — with the following shape:

Required fields (every record):

``v``
    int — schema version; this module validates versions ``1`` and
    ``2``.  Version 2 added the ``metric_snapshot`` kind and the
    ``job``/``tenant`` correlation fields; a version-1 record may not
    use either.
``kind``
    str — one of ``meta``, ``span``, ``event``, ``metric_snapshot``.
    A ``metric_snapshot`` is a periodic dump of the live metrics
    registry (:class:`~repro.telemetry.live.LiveRegistry`) — its
    ``data`` holds the registry snapshot (or a subset of its series),
    letting ``trace summarize`` plot operational state over the same
    monotonic clock as spans and events.
``ts``
    float — seconds since the tracer opened, from a **monotonic**
    clock (``time.perf_counter``), so records order and subtract
    correctly even across system-clock adjustments.
``name``
    str — what the record describes.  Names used by the study stack:

    * ``trace``    (meta)  — the header record, always first;
    * ``study``    (span)  — one whole :class:`~repro.study.engine.
      Study` execution;
    * ``run``      (span)  — one (workload, space, width) run;
    * ``search``   (span)  — the strategy walk inside a run;
    * ``wave``     (event) — one ``evaluate_many`` batch: requested /
      cached / fresh point counts and the pool size used;
    * ``point``    (event) — one evaluated configuration: area,
      cycles, feasibility and whether it came from cache
      (``source=cache|fresh``) — the recorded evaluation stream
      surrogate strategies can train on;
    * ``strategy`` (event) — move accounting (proposed / accepted /
      rejected) for strategies that report it;
    * ``cache``    (event) — result-cache statistics delta for the
      run (hits, misses, puts, merged axes, bytes);
    * ``metrics``  (event) — the run's merged phase timers and
      counters (a :meth:`~repro.telemetry.metrics.MetricsCollector.
      snapshot`);
    * ``retry``    (event) — one re-attempt of a failing point under a
      ``retry`` fault policy (config, attempt ordinal, error class);
    * ``failure``  (event) — a point whose evaluation died for good:
      error class, message, traceback digest, attempts used;
    * ``interrupted`` (event) — the run was cut short (cancel token or
      KeyboardInterrupt); carries completed/total point counts;
    * ``calibration`` (event) — one RTL calibration report for a
      front point (:meth:`repro.rtl.calibrate.CalibrationReport.
      to_dict`): static vs simulated cycles, modelled model/rtl area
      and per-category deltas, and the ``ok`` verdict.

    Names used by the study service (:mod:`repro.service`; its ``run``
    field carries the job id, not a run label):

    * ``job_state`` (event) — one job lifecycle transition: the new
      state (``queued|running|done|failed|cancelled``), the tenant,
      and the error text for failures;
    * ``queue``    (event) — one scheduler action: ``action=submit``
      (with dedupe outcome and priority), ``action=start`` (with the
      worker lease granted and remaining budget), ``action=cancel``,
      or ``action=finish`` (with in-flight dedupe claims released);
    * ``registry`` (metric_snapshot) — the server's live-registry
      dump, written periodically and at job completion.

Optional fields:

``dur``
    float — **spans only** (required there): duration in seconds;
    ``ts`` is the span's start.
``study``
    str — the study name the record belongs to.
``run``
    str — the ``workload/space/wWIDTH`` run label.
``wave``
    int — evaluation-wave ordinal within the run (0-based).
``config``
    str — the :meth:`~repro.explore.space.ArchConfig.label` of the
    configuration the record is about.
``job``
    str — **version 2+**: the service job id the record belongs to.
    Server-side spans and events stamp it so ``trace summarize`` can
    join server records to the study records the job produced (whose
    service ``run`` field also carries the job id).
``tenant``
    str — **version 2+**: the service tenant that owns the record.
``data``
    object — free-form JSON-safe payload (counter dicts, point costs,
    registry snapshots); required on ``metric_snapshot`` records.

No other top-level fields are allowed; additions bump
:data:`SCHEMA_VERSION`.
"""

from __future__ import annotations

import json
from typing import Iterable

#: Version stamped into new records; the reader accepts
#: :data:`ACCEPTED_VERSIONS`.
SCHEMA_VERSION = 2

#: Versions :func:`validate_record` accepts.
ACCEPTED_VERSIONS = (1, 2)

#: The record kinds schema version 2 defines.
KINDS = ("meta", "span", "event", "metric_snapshot")

#: Every top-level field a version-2 record may carry.
_FIELDS = {
    "v", "kind", "ts", "name", "dur", "study", "run", "wave", "config",
    "job", "tenant", "data",
}

#: Additions version 2 made over version 1 (rejected on v=1 records).
_V2_KINDS = ("metric_snapshot",)
_V2_FIELDS = {"job", "tenant"}

_REQUIRED = ("v", "kind", "ts", "name")

#: field -> accepted types (bool is an int subclass; reject it where
#: a number is meant).
_TYPES = {
    "v": int,
    "kind": str,
    "ts": (int, float),
    "name": str,
    "dur": (int, float),
    "study": str,
    "run": str,
    "wave": int,
    "config": str,
    "job": str,
    "tenant": str,
    "data": dict,
}


def validate_record(record: object) -> dict:
    """Check one parsed record against the schema (versions 1 and 2).

    Returns the record on success; raises ``ValueError`` naming the
    first violation otherwise.
    """
    if not isinstance(record, dict):
        raise ValueError(f"record is {type(record).__name__}, not an object")
    for field in _REQUIRED:
        if field not in record:
            raise ValueError(f"record lacks required field {field!r}")
    unknown = set(record) - _FIELDS
    if unknown:
        raise ValueError(f"unknown field(s) {sorted(unknown)}")
    for field, value in record.items():
        expected = _TYPES[field]
        if isinstance(value, bool) or not isinstance(value, expected):
            raise ValueError(
                f"field {field!r} is {type(value).__name__}, "
                f"expected {expected}"
            )
    if record["v"] not in ACCEPTED_VERSIONS:
        raise ValueError(
            f"schema version {record['v']} (this reader handles "
            f"{ACCEPTED_VERSIONS})"
        )
    if record["kind"] not in KINDS:
        raise ValueError(f"unknown kind {record['kind']!r}")
    if record["v"] == 1:
        if record["kind"] in _V2_KINDS:
            raise ValueError(
                f"kind {record['kind']!r} requires schema version 2"
            )
        v2_used = _V2_FIELDS & set(record)
        if v2_used:
            raise ValueError(
                f"field(s) {sorted(v2_used)} require schema version 2"
            )
    if record["kind"] == "span" and "dur" not in record:
        raise ValueError(f"span {record['name']!r} lacks 'dur'")
    if record["kind"] != "span" and "dur" in record:
        raise ValueError(f"{record['kind']} {record['name']!r} carries 'dur'")
    if record["kind"] == "metric_snapshot" and "data" not in record:
        raise ValueError(
            f"metric_snapshot {record['name']!r} lacks 'data'"
        )
    if record["ts"] < 0 or record["kind"] == "span" and record["dur"] < 0:
        raise ValueError("negative timestamp/duration")
    return record


def read_trace(lines: Iterable[str]) -> list[dict]:
    """Parse and validate a JSONL trace; raises ``ValueError`` with the
    offending line number on the first bad record."""
    records = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = validate_record(json.loads(line))
        except ValueError as exc:
            raise ValueError(f"trace line {number}: {exc}") from None
        records.append(record)
    if not records:
        raise ValueError("empty trace")
    if records[0]["kind"] != "meta":
        raise ValueError("trace does not start with a meta record")
    return records
