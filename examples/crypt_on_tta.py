#!/usr/bin/env python3
"""Run real Unix crypt(3) on a simulated TTA, bit-exactly.

Compiles the 25x16-round salted-DES kernel onto a Fig. 9-style TTA,
simulates it cycle by cycle (~100k cycles), and compares the final hash
against the pure-Python reference — the strongest end-to-end check the
reproduction has.

Run:  python examples/crypt_on_tta.py [password] [salt]
"""

import sys
import time

from repro import (
    ArchConfig,
    RFConfig,
    TTASimulator,
    build_architecture,
    build_crypt_ir,
    crypt_output_from_memory,
    unix_crypt,
)
from repro.compiler import IRInterpreter, compile_ir

password = sys.argv[1] if len(sys.argv) > 1 else "password"
salt = sys.argv[2] if len(sys.argv) > 2 else "ab"

print(f"crypt({password!r}, {salt!r})")
reference = unix_crypt(password, salt)
print(f"  reference (pure Python):  {reference}")

workload = build_crypt_ir(password, salt)
profile = IRInterpreter(workload, width=16).run().block_counts

arch = build_architecture(
    ArchConfig(num_buses=2, rfs=(RFConfig(8), RFConfig(12)))
)
compiled = compile_ir(workload, arch, profile=profile)
print(f"  compiled onto {arch.name}: {len(compiled.program)} instructions, "
      f"{compiled.total_moves} static moves")

start = time.time()
sim = TTASimulator(arch, compiled.program)
result = sim.run(max_cycles=5_000_000)
hash_from_tta = crypt_output_from_memory(sim.dmem, salt)
elapsed = time.time() - start

print(f"  TTA simulation:           {hash_from_tta}")
print(f"  {result.cycles} cycles, {result.moves_executed} moves executed, "
      f"{result.ipc:.2f} moves/cycle ({elapsed:.1f}s wall)")

if hash_from_tta == reference:
    print("  MATCH — the TTA computed the identical hash.")
else:
    print("  MISMATCH — this is a bug, please report it.")
    sys.exit(1)
