"""Optimiser passes: each must preserve semantics and actually optimise."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_gcd_ir
from repro.apps.crypt_kernel import build_crypt_ir
from repro.compiler import IRBuilder, IRInterpreter, compile_ir, optimize_ir
from repro.tta import TTASimulator

from tests.conftest import make_arch


def _total_ops(fn):
    return sum(len(b.ops) for b in fn.blocks.values())


def test_constant_folding_collapses_chain():
    b = IRBuilder("t")
    b.block("entry")
    x = b.li(5)
    y = b.add(x, 7)
    z = b.shl(y, 2)
    b.store(0, z)
    b.halt()
    fn = optimize_ir(b.finish())
    ops = fn.blocks["entry"].ops
    # the whole chain folds into a single literal store
    assert len(ops) == 1
    assert ops[0].opcode == "st" and ops[0].b == 48
    result = IRInterpreter(fn, width=16).run()
    assert result.memory[0] == 48


def test_folding_respects_redefinition():
    b = IRBuilder("t")
    b.block("entry")
    b.li(1, "%x")
    b.mov("%x", "%y")          # %y = old %x
    b.li(9, "%x")              # redefine %x
    b.add("%y", 0, "%out")     # must still see the OLD value
    b.store(0, "%out")
    b.halt()
    fn = optimize_ir(b.finish())
    result = IRInterpreter(fn, width=16).run()
    assert result.memory[0] == 1


def test_cse_removes_duplicate_expression():
    b = IRBuilder("t")
    b.block("entry")
    x = b.li(3, "%x")
    a1 = b.add("%x", "%x")
    a2 = b.add("%x", "%x")     # duplicate
    b.store(0, a1)
    b.store(1, a2)
    b.halt()
    fn = optimize_ir(b.finish(), fold_constants=False)
    adds = [
        op for op in fn.blocks["entry"].ops if op.opcode == "add"
    ]
    assert len(adds) == 1
    result = IRInterpreter(fn, width=16).run()
    assert result.memory[0] == 6 and result.memory[1] == 6


def test_cse_invalidated_by_redefinition():
    b = IRBuilder("t")
    b.block("entry")
    b.li(3, "%x")
    a1 = b.add("%x", 1)
    b.li(10, "%x")
    a2 = b.add("%x", 1)        # NOT a duplicate: %x changed
    b.store(0, a1)
    b.store(1, a2)
    b.halt()
    fn = optimize_ir(b.finish(), fold_constants=False)
    result = IRInterpreter(fn, width=16).run()
    assert result.memory[0] == 4 and result.memory[1] == 11


def test_dce_drops_unused_pure_ops():
    b = IRBuilder("t")
    b.block("entry")
    b.li(1, "%used")
    b.add("%used", 41, "%result")
    b.xor("%used", 0xFF, "%dead")      # never used
    b.load(5, dst="%dead_load")        # never used: loads are pure
    b.store(0, "%result")
    b.halt()
    fn = optimize_ir(b.finish())
    opcodes = [op.opcode for op in fn.blocks["entry"].ops]
    assert "xor" not in opcodes
    assert not any(o.startswith("ld") for o in opcodes)
    result = IRInterpreter(fn, width=16).run()
    assert result.memory[0] == 42


def test_dce_keeps_stores_and_live_loop_state():
    fn = optimize_ir(build_gcd_ir(252, 105))
    result = IRInterpreter(fn, width=16).run()
    assert result.memory[100] == 21


def test_optimizer_shrinks_crypt_kernel():
    fn = build_crypt_ir("password", "ab")
    before = _total_ops(fn)
    optimized = optimize_ir(fn)
    after = _total_ops(optimized)
    assert after <= before
    result = IRInterpreter(optimized, width=16).run()
    from repro.apps.crypt_kernel import crypt_output_from_memory
    from repro.apps.crypt3 import unix_crypt

    assert crypt_output_from_memory(result.memory, "ab") == unix_crypt(
        "password", "ab"
    )


def test_optimized_code_compiles_and_runs():
    fn = optimize_ir(build_gcd_ir(1071, 462))
    arch = make_arch(2)
    profile = IRInterpreter(fn, width=16).run().block_counts
    compiled = compile_ir(fn, arch, profile=profile)
    sim = TTASimulator(arch, compiled.program)
    sim.run(max_cycles=200_000)
    assert sim.dmem_read(100) == 21


# ----------------------------------------------------------------------
# randomised differential testing: optimize_ir must be semantics-neutral
# ----------------------------------------------------------------------
_BINOPS = ["add", "sub", "and", "or", "xor", "shl", "shr", "mul"]


def _random_function(seed: int):
    rng = random.Random(seed)
    b = IRBuilder(f"fuzz{seed}")
    b.block("entry")
    live = [b.li(rng.getrandbits(8)) for _ in range(3)]
    for _ in range(rng.randrange(5, 25)):
        choice = rng.random()
        if choice < 0.6:
            op = rng.choice(_BINOPS)
            x = rng.choice(live)
            y = rng.choice(live) if rng.random() < 0.7 else rng.getrandbits(8)
            live.append(b._binary(op, x, y))
        elif choice < 0.75:
            live.append(b.li(rng.getrandbits(16)))
        elif choice < 0.9:
            live.append(b.mov(rng.choice(live)))
        else:
            addr = 200 + rng.randrange(8)
            b.store(addr, rng.choice(live))
            live.append(b.load(addr))
    for i, v in enumerate(live[-4:]):
        b.store(i, v)
    b.halt()
    return b.finish()


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_optimizer_preserves_semantics_fuzz(seed):
    fn = _random_function(seed)
    reference = IRInterpreter(fn, width=16).run()
    optimized = optimize_ir(fn)
    result = IRInterpreter(optimized, width=16).run()
    assert result.memory == reference.memory
    assert _total_ops(optimized) <= _total_ops(fn)
