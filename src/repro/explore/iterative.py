"""Iterative (neighbourhood-search) exploration.

The MOVE environment performs "iterative generation of different
architectures" rather than brute-force sweeps.  This explorer starts
from seed templates, evaluates their neighbourhoods (one architectural
parameter changed at a time), and expands only candidates that are
non-dominated so far — typically reaching the same Pareto frontier as
the exhaustive sweep while evaluating a fraction of the space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.interp import IRInterpreter
from repro.compiler.ir import IRFunction
from repro.explore.evaluate import EvaluatedPoint, evaluate_config
from repro.explore.explorer import ExplorationResult
from repro.explore.pareto import dominates, pareto_filter
from repro.explore.space import ArchConfig, RFConfig

#: RF arrangements the neighbourhood can step through, small to large.
_RF_LADDER: tuple[tuple[RFConfig, ...], ...] = (
    (RFConfig(4),),
    (RFConfig(8),),
    (RFConfig(12),),
    (RFConfig(8), RFConfig(12)),
    (RFConfig(8, read_ports=2), RFConfig(12)),
    (RFConfig(12, read_ports=2), RFConfig(12, read_ports=2)),
    (RFConfig(16, read_ports=2, write_ports=2),),
)


def neighbours(config: ArchConfig) -> list[ArchConfig]:
    """Single-parameter mutations of one template."""
    out: list[ArchConfig] = []

    def replace(**kwargs) -> None:
        merged = dict(
            num_buses=config.num_buses,
            num_alus=config.num_alus,
            num_cmps=config.num_cmps,
            num_shifters=config.num_shifters,
            num_muls=config.num_muls,
            rfs=config.rfs,
        )
        merged.update(kwargs)
        out.append(ArchConfig(**merged))

    if config.num_buses < 4:
        replace(num_buses=config.num_buses + 1)
    if config.num_buses > 1:
        replace(num_buses=config.num_buses - 1)
    if config.num_alus < 3:
        replace(num_alus=config.num_alus + 1)
    if config.num_alus > 1:
        replace(num_alus=config.num_alus - 1)
    replace(num_shifters=1 - config.num_shifters)

    try:
        position = _RF_LADDER.index(config.rfs)
    except ValueError:
        position = None
    if position is not None:
        if position + 1 < len(_RF_LADDER):
            replace(rfs=_RF_LADDER[position + 1])
        if position > 0:
            replace(rfs=_RF_LADDER[position - 1])
    return out


@dataclass
class IterativeResult:
    """Exploration outcome plus search statistics."""

    result: ExplorationResult
    evaluations: int
    iterations: int
    frontier_history: list[int] = field(default_factory=list)


def iterative_explore(
    workload: IRFunction,
    seeds: list[ArchConfig] | None = None,
    max_evaluations: int = 80,
    width: int = 16,
) -> IterativeResult:
    """Neighbourhood search from ``seeds`` toward the Pareto frontier."""
    interp = IRInterpreter(workload, width=width)
    profile = interp.run().block_counts

    if seeds is None:
        seeds = [
            ArchConfig(num_buses=1, rfs=(RFConfig(8),)),
            ArchConfig(num_buses=3, num_alus=2, rfs=_RF_LADDER[3]),
        ]

    seen: dict[str, EvaluatedPoint] = {}
    frontier: list[EvaluatedPoint] = []
    queue: list[ArchConfig] = list(seeds)
    evaluations = 0
    iterations = 0
    history: list[int] = []

    def evaluate(config: ArchConfig) -> EvaluatedPoint | None:
        nonlocal evaluations
        label = config.label()
        if label in seen:
            return None
        if evaluations >= max_evaluations:
            return None
        evaluations += 1
        point = evaluate_config(config, workload, profile, width)
        seen[label] = point
        return point

    while queue and evaluations < max_evaluations:
        iterations += 1
        expanded: list[EvaluatedPoint] = []
        for config in queue:
            point = evaluate(config)
            if point is not None and point.feasible:
                expanded.append(point)
        frontier = pareto_filter(
            frontier + expanded, key=lambda p: p.cost2d()
        )
        history.append(len(frontier))

        # Expand only the frontier's unexplored neighbourhoods.
        queue = []
        for point in frontier:
            for neighbour in neighbours(point.config):
                if neighbour.label() not in seen:
                    queue.append(neighbour)

    result = ExplorationResult(
        workload=workload.name,
        profile=profile,
        points=list(seen.values()),
    )
    return IterativeResult(
        result=result,
        evaluations=evaluations,
        iterations=iterations,
        frontier_history=history,
    )
