"""Fixed-bucket histograms with mergeable snapshots.

A :class:`Histogram` counts observations into a fixed, shared set of
upper-bound buckets (plus an implicit overflow bucket), the way
Prometheus client histograms do.  Because the bounds are fixed at
construction and bucket counts are plain integers, merging two
snapshots is element-wise addition — **commutative and associative** —
so merged pool snapshots yield identical bucket counts no matter how a
process pool interleaved the work, matching the determinism invariant
the counter merge from PR 5 established.

Quantiles (:meth:`Histogram.quantile`) are estimated by linear
interpolation inside the bucket holding the target rank; they are as
precise as the bucket resolution, which is the usual trade for
mergeability.  The default bounds are log-spaced seconds chosen for
evaluation latencies (tens of microseconds to minutes).

Snapshots are picklable plain dicts so they ride the same channel as
:meth:`~repro.telemetry.metrics.MetricsCollector.snapshot` — workers
observe locally and ship deltas home.
"""

from __future__ import annotations

#: Default upper bounds, in seconds, for latency histograms: log-ish
#: spacing from 50 microseconds to 2 minutes.  Values above the last
#: bound land in the overflow bucket.
DEFAULT_BOUNDS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 120.0,
)


class Histogram:
    """Count observations into fixed upper-bound buckets.

    ``bounds`` must be strictly increasing; bucket ``i`` counts values
    ``<= bounds[i]`` (cumulative style is derived, storage is
    per-bucket), and one extra overflow bucket counts the rest.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple = DEFAULT_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            a >= b for a, b in zip(bounds, bounds[1:])
        ):
            raise ValueError("histogram bounds must strictly increase")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)   # +1: overflow
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation (a non-negative number of seconds)."""
        value = float(value)
        self.counts[self._index(value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def _index(self, value: float) -> int:
        # binary search: first bound >= value
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Picklable plain-dict view (mergeable, JSON-safe).

        Shape: ``{"bounds": [...], "counts": [...], "count": int,
        "sum": float, "min": float|None, "max": float|None}`` where
        ``counts`` has one entry per bound plus the overflow bucket.
        """
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": None if self.min is None else round(self.min, 6),
            "max": None if self.max is None else round(self.max, 6),
        }

    def merge(self, snapshot: dict) -> None:
        """Fold one :meth:`snapshot` in (additive; bounds must match)."""
        if tuple(snapshot["bounds"]) != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, n in enumerate(snapshot["counts"]):
            self.counts[i] += n
        self.count += snapshot["count"]
        self.sum += snapshot["sum"]
        for attr, pick in (("min", min), ("max", max)):
            other = snapshot.get(attr)
            if other is not None:
                mine = getattr(self, attr)
                setattr(
                    self, attr,
                    other if mine is None else pick(mine, other),
                )

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "Histogram":
        hist = cls(tuple(snapshot["bounds"]))
        hist.merge(snapshot)
        return hist

    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from buckets.

        Linear interpolation inside the target bucket; ``None`` when
        the histogram is empty.  The overflow bucket reports its lower
        bound (clamped to the observed max when known).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            cumulative += n
            if cumulative >= rank:
                if i == len(self.bounds):   # overflow bucket
                    return self.max if self.max is not None else (
                        self.bounds[-1]
                    )
                lower = self.bounds[i - 1] if i else 0.0
                upper = self.bounds[i]
                inside = rank - (cumulative - n)
                return lower + (upper - lower) * (inside / n)
        return self.max   # pragma: no cover - rank <= count always hits

    def quantiles(self, qs=(0.5, 0.9, 0.99)) -> dict:
        """``{"p50": ..., "p90": ..., "p99": ...}`` for the given qs."""
        return {
            f"p{int(q * 100)}": (
                None if (v := self.quantile(q)) is None else round(v, 6)
            )
            for q in qs
        }


def merge_histogram_snapshots(snapshots: "list[dict]") -> dict | None:
    """Merge histogram snapshots (order-independent); None when empty."""
    hist: Histogram | None = None
    for snapshot in snapshots:
        if hist is None:
            hist = Histogram(tuple(snapshot["bounds"]))
        hist.merge(snapshot)
    return None if hist is None else hist.snapshot()
