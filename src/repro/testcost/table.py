"""Table 1 generator: full scan vs. the functional-transport approach.

Reproduces the paper's comparison for the components of a selected
architecture: per component the full-scan application cycles, our
approach's cycles (``f_tfu``/``f_trf`` + ``f_ts``), the scan-chain length
``n_l``, the analytical cost terms and the fault coverage.  LD/ST and PC
appear with parenthesised values exactly like the paper — they are tested
identically under both schemes and do not enter the ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.components.spec import ComponentKind
from repro.testcost.cost import TestCostBreakdown, architecture_test_cost
from repro.testcost.fullscan import full_scan_component_cycles
from repro.tta.arch import Architecture


@dataclass
class Table1Row:
    """One component row."""

    component: str
    spec_name: str
    kind: ComponentKind
    full_scan: int
    our_approach: int
    nl: int
    ftfu: int | None
    ftrf: int | None
    fts: int | None
    fault_coverage: float
    counted: bool

    @property
    def advantage(self) -> float:
        """full scan cycles / our cycles (bigger = our method wins)."""
        return self.full_scan / self.our_approach if self.our_approach else 0.0


def build_table1(
    arch: Architecture,
    march_name: str = "March C-",
) -> tuple[list[Table1Row], TestCostBreakdown]:
    """Build the Table 1 rows for every unit of ``arch``."""
    breakdown = architecture_test_cost(arch, march_name)
    rows: list[Table1Row] = []
    for unit_cost in breakdown.units:
        spec = arch.unit(unit_cost.unit_name).spec
        fullscan = full_scan_component_cycles(spec)
        counted = unit_cost.counted
        if counted:
            ours = unit_cost.component_cost + unit_cost.socket_cost
        else:
            # Excluded units are tested the same way under both schemes.
            ours = fullscan.cycles
        back = unit_cost.backannotation
        coverage = (
            back.fault_coverage
            if spec.kind is not ComponentKind.RF
            else fullscan.fault_coverage
        )
        rows.append(
            Table1Row(
                component=unit_cost.unit_name.upper(),
                spec_name=spec.name,
                kind=spec.kind,
                full_scan=fullscan.cycles,
                our_approach=ours,
                nl=back.scan_chain_length,
                ftfu=unit_cost.component_cost
                if spec.kind is ComponentKind.FU
                else None,
                ftrf=unit_cost.component_cost
                if spec.kind is ComponentKind.RF
                else None,
                fts=unit_cost.socket_cost if counted else None,
                fault_coverage=coverage,
                counted=counted,
            )
        )
    return rows, breakdown


def format_table1(rows: list[Table1Row]) -> str:
    """Render rows in the paper's column layout."""
    header = (
        f"{'Component':<12}{'full scan':>11}{'our approach':>14}"
        f"{'nl':>6}{'ftfu':>7}{'ftrf':>7}{'fts':>7}{'FC (%)':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        ours = f"{row.our_approach}" if row.counted else f"({row.our_approach})"
        lines.append(
            f"{row.component:<12}"
            f"{row.full_scan:>11}"
            f"{ours:>14}"
            f"{row.nl:>6}"
            f"{row.ftfu if row.ftfu is not None else '-':>7}"
            f"{row.ftrf if row.ftrf is not None else '-':>7}"
            f"{row.fts if row.fts is not None else '-':>7}"
            f"{row.fault_coverage:>9.2f}"
        )
    return "\n".join(lines)
