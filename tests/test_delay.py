"""Transition (delay) fault testing — the paper's at-speed claim."""

import pytest

from repro.atpg import run_atpg
from repro.atpg.delay import (
    DelayAnalyzer,
    TransitionFault,
    delay_test_cycles,
    enumerate_transition_faults,
)
from repro.netlist import CellType, Netlist, WordBuilder


def _adder(width=4):
    wb = WordBuilder(f"delay_add{width}")
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)
    s, c = wb.ripple_adder(a, b)
    wb.output_word("s", s)
    wb.output_bit("cout", c)
    return wb.netlist


def test_enumeration_two_per_stem():
    nl = Netlist("t")
    a = nl.add_input("a")
    y = nl.add_gate(CellType.NOT, [a])
    nl.add_output(y)
    faults = enumerate_transition_faults(nl)
    assert len(faults) == 4   # a and y, both polarities


def test_stuck_equivalent_polarity():
    fault = TransitionFault(3, rising=True)
    assert fault.stuck_equivalent.stuck_at == 0
    assert TransitionFault(3, rising=False).stuck_equivalent.stuck_at == 1


def test_pair_detects_on_inverter():
    nl = Netlist("inv")
    a = nl.add_input("a")
    y = nl.add_gate(CellType.NOT, [a])
    nl.add_output(y)
    analyzer = DelayAnalyzer(nl)
    rise_a = TransitionFault(a, rising=True)
    # a: 0 -> 1 launches the rise; capture observes y
    assert analyzer.pair_detects(0b0, 0b1, rise_a)
    # wrong initialisation: no transition launched
    assert not analyzer.pair_detects(0b1, 0b1, rise_a)
    # wrong direction
    assert not analyzer.pair_detects(0b1, 0b0, rise_a)


def test_sequence_coverage_on_adder():
    nl = _adder(4)
    atpg = run_atpg(nl, use_cache=False)
    analyzer = DelayAnalyzer(nl)
    coverage = analyzer.coverage_of_sequence(atpg.patterns)
    # back-to-back stuck-at patterns give substantial delay coverage for
    # free — the paper's claim; it is *not* complete
    assert 30.0 < coverage.coverage < 100.0
    assert coverage.sequence_length == len(atpg.patterns)


def test_augmentation_improves_coverage():
    nl = _adder(4)
    atpg = run_atpg(nl, use_cache=False)
    analyzer = DelayAnalyzer(nl)
    base = analyzer.coverage_of_sequence(atpg.patterns)
    augmented = analyzer.augment_sequence(atpg.patterns, max_extra=64)
    better = analyzer.coverage_of_sequence(augmented)
    assert better.detected >= base.detected
    assert better.coverage > base.coverage
    # augmentation only reuses existing patterns
    assert set(augmented) == set(atpg.patterns)


def test_empty_and_single_pattern_sequences():
    nl = _adder(3)
    analyzer = DelayAnalyzer(nl)
    assert analyzer.coverage_of_sequence([]).detected == 0
    assert analyzer.coverage_of_sequence([5]).detected == 0


def test_delay_cycles_model():
    assert delay_test_cycles(10, 3) == 40
    assert delay_test_cycles(0, 3) == 0
    with pytest.raises(ValueError):
        delay_test_cycles(-1, 3)
    with pytest.raises(ValueError):
        delay_test_cycles(1, 0)
