#!/usr/bin/env python3
"""A two-workload sweep through the declarative Study API.

What used to need the separate campaign path is now two studies sharing
one on-disk result cache: sweep the Crypt kernel over the small grid
and the FIR kernel over the MUL-equipped DSP grid, select a winner with
the weighted norm, and let the cache make the second invocation
near-free — run this script twice and watch the "evaluated" counts drop
to zero.

The same sweep runs from the shell as:

    python -m repro study --workloads crypt --space small --select
    python -m repro study --workloads fir --space dsp --select

(or via the campaign alias:
    python -m repro campaign --workloads crypt,fir --spaces small,dsp \
        --select --workers 4)

Run:  python examples/campaign_sweep.py
"""

from repro import ResultCache, StudySpec, run_study

cache = ResultCache()          # ~/.cache/repro-tta/campaign

specs = [
    StudySpec(
        name="crypt-on-small",
        workloads=("crypt",),
        space="small",
        objectives=("area", "cycles"),
        strategy="exhaustive",
        select=True,
    ),
    StudySpec(
        name="fir-on-dsp",
        workloads=("fir",),
        space="dsp",           # fir needs the MUL-equipped grid
        objectives=("area", "cycles"),
        strategy="exhaustive",
        select=True,
    ),
]

for spec in specs:
    print(f"study spec (JSON round-trip safe):\n{spec.to_json()}\n")
    result = run_study(spec, cache=cache, workers=2, progress=print)
    print(result.summary())
    run = result.single
    if run.selection is not None:
        print(f"  winner: {run.selection.point.label} "
              f"(norm={run.selection.norm:.4f})\n")
    else:
        print("  no feasible points\n")

print("run it again: every point now comes from the cache.")
