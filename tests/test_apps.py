"""Workload correctness: DES vectors, crypt(3), the IR kernels."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.crypt3 import (
    CRYPT_B64,
    crypt_from_words,
    crypt_rounds_words,
    password_to_key,
    salt_to_mask,
    unix_crypt,
)
from repro.apps.crypt_kernel import build_crypt_ir, crypt_output_from_memory
from repro.apps.des import (
    des_decrypt_block,
    des_encrypt_block,
    f_function,
    key_schedule,
    permute,
    subkey_chunks,
    E,
    IP,
    FP,
)
from repro.apps.kernels import (
    build_checksum_ir,
    build_dotprod_ir,
    build_fir_ir,
    build_gcd_ir,
    checksum_reference,
    fir_reference,
)
from repro.compiler import IRInterpreter

KEY64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


# ----------------------------------------------------------------------
# DES
# ----------------------------------------------------------------------
def test_des_published_vector():
    ct = des_encrypt_block(0x133457799BBCDFF1, 0x0123456789ABCDEF)
    assert ct == 0x85E813540F0AB405


def test_des_zero_vector():
    assert des_encrypt_block(0, 0) == 0x8CA64DE9C1B123A7


@settings(max_examples=20, deadline=None)
@given(KEY64, KEY64)
def test_des_roundtrip(key, plaintext):
    ct = des_encrypt_block(key, plaintext)
    assert des_decrypt_block(key, ct) == plaintext


def test_ip_fp_are_inverses():
    value = 0x0123456789ABCDEF
    assert permute(permute(value, 64, IP), 64, FP) == value


def test_key_schedule_properties():
    subkeys = key_schedule(0x133457799BBCDFF1)
    assert len(subkeys) == 16
    assert all(0 <= k < (1 << 48) for k in subkeys)
    # the classic first subkey for this key
    assert subkeys[0] == 0b000110110000001011101111111111000111000001110010


def test_subkey_chunks_reassemble():
    subkeys = key_schedule(0xAABB09182736CCDD)
    chunks = subkey_chunks(subkeys)
    for key, chunk_row in zip(subkeys, chunks):
        rebuilt = 0
        for c in chunk_row:
            rebuilt = (rebuilt << 6) | c
        assert rebuilt == key


def test_f_function_salt_zero_is_plain():
    assert f_function(0x12345678, 0xABCDEF, 0) == f_function(
        0x12345678, 0xABCDEF
    )


def test_f_function_salt_changes_result():
    # a salt bit only matters when the swapped E-bits differ
    r = 0x0000FFFF
    plain = f_function(r, 0, 0)
    salted = f_function(r, 0, 0xFFF)
    assert plain != salted


def test_expansion_table_structure():
    # E is the classic sliding 6-bit window stepping by 4
    assert len(E) == 48
    assert E[0] == 32 and E[-1] == 1


# ----------------------------------------------------------------------
# crypt(3)
# ----------------------------------------------------------------------
def test_crypt_output_format():
    h = unix_crypt("password", "ab")
    assert len(h) == 13
    assert h[:2] == "ab"
    assert all(c in CRYPT_B64 for c in h)


def test_crypt_salt_changes_hash():
    assert unix_crypt("secret", "aa") != unix_crypt("secret", "ab")


def test_crypt_password_changes_hash():
    assert unix_crypt("secret1", "ab") != unix_crypt("secret2", "ab")


def test_crypt_eight_char_truncation():
    assert unix_crypt("12345678", "xy") == unix_crypt("12345678extra", "xy")


def test_crypt_short_salt_padded():
    h = unix_crypt("pw", "Z")
    assert h[:2] == "Z."


def test_password_to_key_seven_bit():
    key = password_to_key("A")           # 0x41 << 1 in the top byte
    assert key >> 56 == 0x41 << 1
    assert password_to_key("") == 0


def test_salt_to_mask():
    assert salt_to_mask("..") == 0
    assert salt_to_mask("/.") == 1
    assert salt_to_mask("./") == 1 << 6
    assert salt_to_mask("zz") == (63 << 6) | 63


@pytest.mark.parametrize(
    "password,salt",
    [("password", "ab"), ("", ".."), ("secret42", "Zz"), ("a", "/.")],
)
def test_word_level_crypt_matches_reference(password, salt):
    words = crypt_rounds_words(password, salt)
    assert crypt_from_words(*words, salt) == unix_crypt(password, salt)


def test_crypt_kernel_ir_bit_exact():
    fn = build_crypt_ir("password", "ab")
    result = IRInterpreter(fn, width=16).run()
    out = crypt_output_from_memory(result.memory, "ab")
    assert out == unix_crypt("password", "ab")
    # 25 outer iterations x 16 rounds
    assert result.block_counts["round"] == 400
    assert result.block_counts["outer"] == 25


def test_crypt_kernel_other_salt():
    fn = build_crypt_ir("tta", "Zz")
    result = IRInterpreter(fn, width=16).run()
    assert crypt_output_from_memory(result.memory, "Zz") == unix_crypt(
        "tta", "Zz"
    )


# ----------------------------------------------------------------------
# small kernels
# ----------------------------------------------------------------------
def test_gcd_kernel():
    fn = build_gcd_ir(1071, 462)
    result = IRInterpreter(fn, width=16).run()
    assert result.memory[100] == 21


def test_fir_kernel_matches_reference():
    samples = [1, 2, 3, 4, 5, 6, 7, 8]
    taps = [2, 1, 3]
    fn = build_fir_ir(samples, taps)
    result = IRInterpreter(fn, width=16).run()
    expected = fir_reference(samples, taps)
    got = [result.memory.get(600 + i, 0) for i in range(len(samples))]
    assert got == expected


def test_dotprod_kernel():
    a = [3, 1, 4, 1, 5]
    b = [2, 7, 1, 8, 2]
    fn = build_dotprod_ir(a, b)
    result = IRInterpreter(fn, width=16).run()
    assert result.memory[100] == sum(x * y for x, y in zip(a, b))


def test_dotprod_length_mismatch_rejected():
    with pytest.raises(ValueError):
        build_dotprod_ir([1, 2], [1])


def test_checksum_kernel_matches_reference():
    words = [0xDEAD, 0xBEEF, 0x1234, 0x0001]
    fn = build_checksum_ir(words)
    result = IRInterpreter(fn, width=16).run()
    assert result.memory[100] == checksum_reference(words)


def test_crc16_kernel_matches_reference():
    from repro.apps.kernels import build_crc16_ir, crc16_reference

    words = [0x3141, 0x5926, 0x5358, 0x9793]
    fn = build_crc16_ir(words)
    result = IRInterpreter(fn, width=16).run()
    assert result.memory[100] == crc16_reference(words)


def test_crc16_on_tta():
    from repro.apps.kernels import build_crc16_ir, crc16_reference
    from repro.compiler import compile_ir
    from repro.tta import TTASimulator
    from tests.conftest import make_arch

    words = [0xCAFE, 0xF00D]
    fn = build_crc16_ir(words)
    profile = IRInterpreter(fn, width=16).run().block_counts
    arch = make_arch(2)
    compiled = compile_ir(fn, arch, profile=profile)
    sim = TTASimulator(arch, compiled.program)
    sim.run(max_cycles=300_000)
    assert sim.dmem_read(100) == crc16_reference(words)
