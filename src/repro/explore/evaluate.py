"""Evaluation of architecture configurations against a workload.

Mirrors the MOVE evaluation loop: compile the application onto the
candidate, take the **profile-weighted static cycle count** as the
throughput cost and the placed **area** from the component datasheets.
Configurations the compiler cannot map (no RF capacity, missing FU
classes) are reported infeasible rather than silently skipped.

The sweep hot path is :class:`EvaluationContext`: one instance per
(workload, profile, width) computes the work that is identical across
the whole configuration grid exactly once —

* the workload is IR-validated once, not per configuration;
* register allocation is memoized by RF arrangement, because the
  allocation reads only the register files, never the bus/FU mix;
* unmappable configurations (too few registers, missing FU class) are
  rejected by an exact pre-check before the scheduler ever runs;
* architectures come from the shared builder cache, and their area
  model reuses the per-component-type netlist statistics.

Both the serial loop and the process-pool workers (via the pool
initializer) evaluate through a context, so serial and parallel sweeps
share one code path and produce identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.compiler.ir import LOAD_OPCODES, IRFunction
from repro.compiler.regalloc import (
    _MIN_LOCAL_POOL,
    AllocationError,
    RegisterAllocation,
    allocate,
)
from repro.compiler.scheduler import (
    CompileResult,
    ScheduleError,
    schedule_allocated,
)
from repro.explore.space import (
    ArchConfig,
    build_architecture_cached,
)
from repro.resilience import faults as _faults
from repro.telemetry.metrics import MetricsCollector
from repro.tta.arch import Architecture
from repro.tta.encoding import MoveEncoder
from repro.tta.timing import validate_program

#: Opcodes the scheduler lowers without a matching functional unit.
_NON_FU_OPCODES = frozenset({"li", "st"}) | LOAD_OPCODES


def required_fu_opcodes(workload: IRFunction) -> frozenset[str]:
    """Opcodes of ``workload`` that must be backed by a functional unit.

    Matches the scheduler's lowering exactly: literals, loads and stores
    need no FU (the LSU is part of every template), and ``mov`` lowers
    to ``or`` on an ALU.
    """
    ops: set[str] = set()
    for block in workload.blocks.values():
        for op in block.ops:
            opcode = op.opcode
            if opcode in _NON_FU_OPCODES:
                continue
            ops.add("or" if opcode == "mov" else opcode)
    return frozenset(ops)


@dataclass
class EvaluatedPoint:
    """One point of the solution space."""

    config: ArchConfig
    area: float
    cycles: int | None                      # None = infeasible
    test_cost: int | None = None            # attached by repro.testcost
    energy: float | None = None             # attached by repro.energy
    #: Instruction-memory footprint in bits
    #: (``MoveEncoder.program_memory_bits``); None when infeasible.
    code_size: int | None = None
    compile_result: CompileResult | None = None
    #: True for the placeholder a skipped/exhausted-retries evaluation
    #: failure leaves in the point list (always infeasible; the real
    #: record is the run's FailedPoint).  Distinguishes "could not be
    #: evaluated" from the ordinary "compiles to infeasible".
    failed: bool = False

    @property
    def feasible(self) -> bool:
        return self.cycles is not None

    @property
    def label(self) -> str:
        return self.config.label()

    def cost2d(self) -> tuple[float, float]:
        assert self.cycles is not None
        return (self.area, float(self.cycles))

    def cost3d(self) -> tuple[float, float, float]:
        assert self.cycles is not None and self.test_cost is not None
        return (self.area, float(self.cycles), float(self.test_cost))


class EvaluationContext:
    """Shared-work cache for one sweep of a (workload, profile, width).

    The context owns everything that is invariant across the sweep's
    configurations, so ``evaluate`` touches only per-configuration work:
    build (or fetch) the architecture, pre-check mappability, reuse the
    RF-arrangement's register allocation, and schedule.
    """

    def __init__(
        self,
        workload: IRFunction,
        profile: dict[str, int],
        width: int = 16,
        validate: bool = True,
        metrics: MetricsCollector | None = None,
    ) -> None:
        workload.validate()                 # once per sweep, not per config
        self.workload = workload
        self.profile = dict(profile)
        self.width = width
        self.validate = validate
        #: Optional phase-timer/counter sink.  ``None`` (the default)
        #: keeps evaluation on the untimed hot path; callers may also
        #: swap a collector in per call (the pool's telemetry worker
        #: does, to ship per-configuration deltas).
        self.metrics = metrics
        self.required_ops = required_fu_opcodes(workload)
        # RF arrangement -> (rewritten IR, allocation), or the message
        # of the AllocationError the arrangement raises (stored as a
        # plain string — re-raising one cached exception object would
        # grow its traceback on every infeasible configuration).  The
        # allocation reads only the register files, so every
        # configuration sharing an arrangement shares one allocation
        # verbatim.
        self._allocations: dict[
            tuple, tuple[IRFunction, RegisterAllocation] | str
        ] = {}

    def _allocation(
        self, config: ArchConfig, arch: Architecture
    ) -> tuple[IRFunction, RegisterAllocation]:
        key = config.rfs
        entry = self._allocations.get(key)
        if entry is None:
            metrics = self.metrics
            try:
                if metrics is None:
                    entry = allocate(self.workload, arch, self.profile)
                else:
                    with metrics.phase("regalloc"):
                        entry = allocate(self.workload, arch, self.profile)
            except AllocationError as exc:
                entry = str(exc)
            self._allocations[key] = entry
        if isinstance(entry, str):
            raise AllocationError(entry)
        return entry

    def evaluate(
        self, config: ArchConfig, keep_compile_result: bool = False
    ) -> EvaluatedPoint:
        """Compile the workload onto one configuration and cost it.

        When a :class:`~repro.telemetry.MetricsCollector` is attached
        the metered twin runs instead; the untimed path below stays
        branch-free so sweeps with telemetry off pay nothing.
        """
        _faults.on_evaluate(config)
        if self.metrics is not None:
            return self._evaluate_metered(config, keep_compile_result)
        arch = build_architecture_cached(config, self.width)
        area = arch.area()
        # Exact feasibility pre-checks: both conditions are precisely
        # the early failures ``allocate``/``schedule_allocated`` would
        # raise, so rejecting here changes nothing but the time spent.
        if config.total_registers < _MIN_LOCAL_POOL:
            return EvaluatedPoint(config=config, area=area, cycles=None)
        if not self.required_ops <= arch.ops_supported():
            return EvaluatedPoint(config=config, area=area, cycles=None)
        try:
            rewritten, allocation = self._allocation(config, arch)
            compiled = schedule_allocated(
                rewritten, allocation, arch, validate=self.validate
            )
        except (AllocationError, ScheduleError):
            return EvaluatedPoint(config=config, area=area, cycles=None)
        cycles = compiled.static_cycles(self.profile)
        return EvaluatedPoint(
            config=config,
            area=area,
            cycles=cycles,
            code_size=MoveEncoder(arch).program_memory_bits(
                compiled.program
            ),
            compile_result=compiled if keep_compile_result else None,
        )

    def _evaluate_metered(
        self, config: ArchConfig, keep_compile_result: bool = False
    ) -> EvaluatedPoint:
        """``evaluate`` with phase timers — result-identical by design.

        The phases are disjoint (build / netlist_stats / regalloc /
        schedule / validate, never nested), so their seconds sum to at
        most the serial wall clock.  Scheduling and timing validation
        are timed separately by scheduling unvalidated and running
        :func:`~repro.tta.timing.validate_program` here — exactly what
        ``schedule_allocated(validate=True)`` does internally, so a
        violation still yields the same infeasible point.  Counters
        (``evaluations``, ``feasible``, ``infeasible_*``) are
        per-configuration and therefore merge deterministically from
        any pool interleaving.  The whole call is additionally observed
        into the ``eval_seconds`` histogram — measured in-worker, so
        the latency distribution rides the same snapshot channel as
        the counters.
        """
        start = perf_counter()
        try:
            return self._evaluate_metered_inner(config, keep_compile_result)
        finally:
            self.metrics.observe("eval_seconds", perf_counter() - start)

    def _evaluate_metered_inner(
        self, config: ArchConfig, keep_compile_result: bool = False
    ) -> EvaluatedPoint:
        metrics = self.metrics
        with metrics.phase("build"):
            arch = build_architecture_cached(config, self.width)
        with metrics.phase("netlist_stats"):
            area = arch.area()
        metrics.count("evaluations")
        if (
            config.total_registers < _MIN_LOCAL_POOL
            or not self.required_ops <= arch.ops_supported()
        ):
            metrics.count("infeasible_precheck")
            return EvaluatedPoint(config=config, area=area, cycles=None)
        try:
            rewritten, allocation = self._allocation(config, arch)
            with metrics.phase("schedule"):
                compiled = schedule_allocated(
                    rewritten, allocation, arch, validate=False
                )
            if self.validate:
                with metrics.phase("validate"):
                    violations = validate_program(
                        arch, compiled.program, strict=False
                    )
                if violations:
                    metrics.count("infeasible_compile")
                    return EvaluatedPoint(
                        config=config, area=area, cycles=None
                    )
        except (AllocationError, ScheduleError):
            metrics.count("infeasible_compile")
            return EvaluatedPoint(config=config, area=area, cycles=None)
        metrics.count("feasible")
        cycles = compiled.static_cycles(self.profile)
        return EvaluatedPoint(
            config=config,
            area=area,
            cycles=cycles,
            code_size=MoveEncoder(arch).program_memory_bits(
                compiled.program
            ),
            compile_result=compiled if keep_compile_result else None,
        )

    def evaluate_space(self, space: list[ArchConfig]) -> list[EvaluatedPoint]:
        """Evaluate every configuration (feasible or not) in ``space``."""
        return [self.evaluate(config) for config in space]


# ----------------------------------------------------------------------
# process-pool entry points
#
# ``ProcessPoolExecutor`` can only ship module-level callables, and the
# workload/profile are identical for every configuration of a sweep, so
# they travel once per worker (via the pool initializer), which then
# pins a per-worker EvaluationContext — each worker gets the same
# shared-work caching the serial loop enjoys.
# ----------------------------------------------------------------------
_WORKER_CONTEXT: dict[str, EvaluationContext] = {}


def init_evaluation_worker(
    workload: IRFunction, profile: dict[str, int], width: int
) -> None:
    """Pool initializer: pin the shared per-sweep evaluation context."""
    _WORKER_CONTEXT["context"] = EvaluationContext(workload, profile, width)


def evaluate_config_worker(config: ArchConfig) -> EvaluatedPoint:
    """Evaluate one configuration against the pinned worker context."""
    context = _WORKER_CONTEXT.get("context")
    if context is None:
        raise RuntimeError("init_evaluation_worker() was not called")
    return context.evaluate(config)


def evaluate_config_worker_metered(
    config: ArchConfig,
) -> tuple[EvaluatedPoint, dict]:
    """Evaluate one configuration and ship its telemetry delta.

    Pool workers cannot write the parent's trace, so each call measures
    into a fresh collector and returns ``(point, snapshot)`` — the
    per-configuration delta the parent merges on wave completion.
    Per-configuration deltas (rather than per-worker totals) make the
    merged counters independent of how the pool interleaved the chunks.
    """
    context = _WORKER_CONTEXT.get("context")
    if context is None:
        raise RuntimeError("init_evaluation_worker() was not called")
    collector = MetricsCollector()
    context.metrics = collector
    try:
        point = context.evaluate(config)
    finally:
        context.metrics = None
    return point, collector.snapshot()


def architecture_of(point: EvaluatedPoint, width: int = 16) -> Architecture:
    """The architecture of an evaluated point (shared builder cache)."""
    return build_architecture_cached(point.config, width)
