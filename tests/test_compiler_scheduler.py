"""Transport scheduler: compiled programs must simulate correctly on
every architecture shape, and always pass the eq. 2-8 validator."""

import pytest

from repro.apps import build_checksum_ir, build_gcd_ir
from repro.apps.kernels import checksum_reference
from repro.compiler import IRBuilder, IRInterpreter, compile_ir
from repro.compiler.scheduler import ScheduleError
from repro.tta import TTASimulator, validate_program

from tests.conftest import make_arch

ARCH_SHAPES = [
    dict(num_buses=1),
    dict(num_buses=2),
    dict(num_buses=3),
    dict(num_buses=4, num_alus=2),
    dict(num_buses=2, rf_setups=((4, 1, 1),)),
    dict(num_buses=3, rf_setups=((8, 2, 1), (12, 1, 1))),
    dict(num_buses=2, rf_setups=((4, 1, 1), (4, 1, 1))),
]


def _compile_and_run(fn, arch, max_cycles=300_000):
    profile = IRInterpreter(fn, width=16).run().block_counts
    compiled = compile_ir(fn, arch, profile=profile)
    assert validate_program(arch, compiled.program, strict=False) == []
    sim = TTASimulator(arch, compiled.program)
    result = sim.run(max_cycles=max_cycles)
    assert result.halted, "program must reach its halt"
    return sim, compiled


@pytest.mark.parametrize("shape", ARCH_SHAPES, ids=lambda s: str(s))
def test_gcd_on_every_shape(shape):
    arch = make_arch(**shape)
    sim, _ = _compile_and_run(build_gcd_ir(252, 105), arch)
    assert sim.dmem_read(100) == 21


@pytest.mark.parametrize("shape", ARCH_SHAPES[:4], ids=lambda s: str(s))
def test_checksum_on_shapes(shape):
    words = [0x1234, 0xFFFF, 0x0001, 0xABCD, 0x5555, 0x0F0F]
    arch = make_arch(**shape)
    sim, _ = _compile_and_run(build_checksum_ir(words), arch)
    assert sim.dmem_read(100) == checksum_reference(words)


def test_more_buses_never_hurt_much():
    """Resource monotonicity: 3 buses beat 1 bus on the same workload."""
    fn = build_gcd_ir(1071, 462)
    profile = IRInterpreter(fn, width=16).run().block_counts
    cycles = {}
    for buses in (1, 3):
        arch = make_arch(buses)
        compiled = compile_ir(fn, arch, profile=profile)
        cycles[buses] = compiled.static_cycles(profile)
    assert cycles[3] < cycles[1]


def test_slot_antidependence_regression():
    """Reused RF slots must not be clobbered before their last read.

    Regression for the bug where the crypt round block's L/R swap was
    scheduled with a write landing before an earlier tenant's read.
    """
    b = IRBuilder("swap")
    b.block("entry")
    b.li(0x1111, "%a")
    b.li(0x2222, "%b")
    b.jump("body")
    b.block("body")
    # chains of temps that force slot reuse, then a swap pattern
    t1 = b.xor("%a", "%b")
    t2 = b.xor(t1, 0x0F0F)
    t3 = b.add(t2, t1)
    b.mov("%a", "%t")
    b.mov("%b", "%a")
    b.mov("%t", "%b")
    t4 = b.xor("%a", t3)
    b.store(0, t4)
    b.store(1, "%a")
    b.store(2, "%b")
    b.halt()
    fn = b.finish()

    expected = IRInterpreter(fn, width=16).run().memory
    for shape in ARCH_SHAPES:
        arch = make_arch(**shape)
        sim, _ = _compile_and_run(fn, arch)
        for addr in (0, 1, 2):
            assert sim.dmem_read(addr) == expected[addr], shape


def test_missing_fu_rejected():
    b = IRBuilder("t")
    b.block("entry")
    b.store(0, b.mul(b.li(3), 5))
    b.halt()
    fn = b.finish()
    arch = make_arch(2)          # no multiplier
    with pytest.raises(ScheduleError, match="no FU supports"):
        compile_ir(fn, arch)


def test_mul_schedules_with_mul_unit():
    b = IRBuilder("t")
    b.block("entry")
    b.store(0, b.mul(b.li(7), 6))
    b.halt()
    fn = b.finish()
    arch = make_arch(2, with_mul=True)
    sim, _ = _compile_and_run(fn, arch)
    assert sim.dmem_read(0) == 42


def test_static_estimate_matches_straightline_simulation():
    """For branch-free code the static estimate is exact."""
    b = IRBuilder("t")
    b.block("entry")
    acc = b.li(1)
    for i in range(6):
        acc = b.add(acc, i)
    b.store(0, acc)
    b.halt()
    fn = b.finish()
    arch = make_arch(2)
    profile = {"entry": 1}
    compiled = compile_ir(fn, arch, profile=profile)
    sim = TTASimulator(arch, compiled.program)
    result = sim.run()
    assert compiled.static_cycles(profile) == result.cycles


def test_branch_fusion_writes_guard_directly():
    fn = build_gcd_ir(10, 4)
    arch = make_arch(2)
    compiled = compile_ir(fn, arch)
    guard_writes = [
        m
        for i in compiled.program.instructions
        for m in i.moves
        if m.dst.unit == "guard"
    ]
    # the cmp feeding each branch goes straight to g0 (no RF round trip)
    assert guard_writes
    assert all(m.src.unit == "cmp0" for m in guard_writes)


def test_memory_ops_stay_ordered():
    b = IRBuilder("t")
    b.block("entry")
    b.store(5, 1)
    b.store(5, 2)
    v = b.load(5)
    b.store(6, v)
    b.halt()
    fn = b.finish()
    for shape in ARCH_SHAPES[:4]:
        arch = make_arch(**shape)
        sim, _ = _compile_and_run(fn, arch)
        assert sim.dmem_read(6) == 2, "store-store-load order must hold"


def test_compile_result_metadata():
    fn = build_gcd_ir(12, 8)
    arch = make_arch(2)
    profile = IRInterpreter(fn, width=16).run().block_counts
    compiled = compile_ir(fn, arch, profile=profile)
    assert set(compiled.block_starts) == set(compiled.block_cycles)
    assert compiled.total_moves > 0
    assert compiled.static_cycles(profile) >= sum(
        compiled.block_cycles[b] for b in compiled.block_cycles if b == "entry"
    )
