"""Register allocation onto the architecture's register files.

Two-level scheme, deliberately sensitive to RF capacity so that small
register files show up in the Pareto curve as longer schedules:

1. **Globals** (vregs live across block boundaries) are ranked by
   (profile-weighted) use count and assigned to RF slots round-robin
   across the register files — spreading them balances read-port
   pressure.  Globals that do not fit are *spilled*: every use loads
   from a memory home, every definition stores back.
2. **Locals** (block-local temporaries, including the reload temps from
   step 1) are allocated per block with a Belady (farthest-next-use)
   policy over the slots the globals left free; evictions insert
   store/reload pairs.

The result is a rewritten :class:`IRFunction` in which *every* vreg has a
physical (rf, index) home plus the inserted spill traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import (
    Block,
    Branch,
    IRFunction,
    Jump,
    Op,
)
from repro.components.spec import ComponentKind
from repro.tta.arch import Architecture


class AllocationError(Exception):
    """The function cannot be mapped onto the architecture's RFs."""


#: Minimum slots kept free for block-local temporaries.
_MIN_LOCAL_POOL = 3


@dataclass
class RegisterAllocation:
    """vreg -> physical home map plus spill bookkeeping."""

    reg_of: dict[str, tuple[str, int]] = field(default_factory=dict)
    spill_slots: dict[str, int] = field(default_factory=dict)   # global homes
    spill_base: int = 0
    spill_words: int = 0
    globals_in_regs: int = 0
    globals_spilled: int = 0
    local_spills: int = 0

    def home(self, vreg: str) -> tuple[str, int]:
        try:
            return self.reg_of[vreg]
        except KeyError:
            raise AllocationError(f"vreg {vreg!r} has no register home") from None


# ----------------------------------------------------------------------
# liveness
# ----------------------------------------------------------------------
def _block_use_def(block: Block) -> tuple[set[str], set[str]]:
    use: set[str] = set()
    defined: set[str] = set()
    for op in block.ops:
        for src in op.sources():
            if src not in defined:
                use.add(src)
        if op.dst is not None:
            defined.add(op.dst)
    if isinstance(block.terminator, Branch):
        if block.terminator.cond not in defined:
            use.add(block.terminator.cond)
    return use, defined


def liveness(fn: IRFunction) -> dict[str, set[str]]:
    """Live-in set per block (iterative backward dataflow)."""
    use_def = {name: _block_use_def(blk) for name, blk in fn.blocks.items()}
    live_in: dict[str, set[str]] = {name: set() for name in fn.blocks}
    changed = True
    while changed:
        changed = False
        for name, block in fn.blocks.items():
            use, defined = use_def[name]
            live_out: set[str] = set()
            for successor in block.successors():
                live_out |= live_in[successor]
            new_in = use | (live_out - defined)
            if new_in != live_in[name]:
                live_in[name] = new_in
                changed = True
    return live_in


# ----------------------------------------------------------------------
# main entry
# ----------------------------------------------------------------------
def allocate(
    fn: IRFunction,
    arch: Architecture,
    profile: dict[str, int] | None = None,
    spill_base: int | None = None,
) -> tuple[IRFunction, RegisterAllocation]:
    """Allocate ``fn`` onto ``arch``'s register files.

    Returns the rewritten function (with spill code) and the allocation.
    ``spill_base`` defaults to the top of the address space, below which
    spill homes grow downward-free (i.e. allocated upward from base).
    """
    rf_units = [u for u in arch.units.values() if u.spec.kind is ComponentKind.RF]
    if not rf_units:
        raise AllocationError("architecture has no register file")
    slots: list[tuple[str, int]] = []
    max_regs = max(u.spec.num_regs for u in rf_units)
    for index in range(max_regs):           # interleave across RFs
        for unit in rf_units:
            if index < unit.spec.num_regs:
                slots.append((unit.name, index))
    total_slots = len(slots)
    if total_slots < _MIN_LOCAL_POOL:
        raise AllocationError(
            f"{total_slots} registers total; need >= {_MIN_LOCAL_POOL}"
        )

    live_in = liveness(fn)
    globals_set: set[str] = set()
    for name, live in live_in.items():
        globals_set |= live

    weights = _use_weights(fn, profile)
    # Tie-break by name: set iteration order is hash-seed dependent and
    # must never leak into the allocation (reproducible compiles).
    ranked = sorted(globals_set, key=lambda v: (-weights.get(v, 0), v))
    budget = total_slots - _MIN_LOCAL_POOL
    in_regs = ranked[: max(0, budget)]
    spilled = ranked[max(0, budget):]

    allocation = RegisterAllocation(spill_base=spill_base or 0)
    for i, vreg in enumerate(in_regs):
        allocation.reg_of[vreg] = slots[i]
    allocation.globals_in_regs = len(in_regs)
    allocation.globals_spilled = len(spilled)

    base = spill_base if spill_base is not None else 0x8000
    allocation.spill_base = base
    next_slot = base
    for vreg in spilled:
        allocation.spill_slots[vreg] = next_slot
        next_slot += 1

    local_pool = slots[len(in_regs):]
    global_names = set(in_regs)
    rewritten = IRFunction(fn.name, entry=fn.entry, data=dict(fn.data))
    counter = [0]
    spill_cursor = [next_slot]
    for name, block in fn.blocks.items():
        rewritten.blocks[name] = _rewrite_block(
            block, allocation, global_names, local_pool, counter, spill_cursor
        )
    allocation.spill_words = spill_cursor[0] - base
    rewritten.validate()
    return rewritten, allocation


def _use_weights(fn: IRFunction, profile: dict[str, int] | None) -> dict[str, int]:
    weights: dict[str, int] = {}
    for name, block in fn.blocks.items():
        factor = (profile or {}).get(name, 1)
        for op in block.ops:
            for src in op.sources():
                weights[src] = weights.get(src, 0) + factor
            if op.dst is not None:
                weights[op.dst] = weights.get(op.dst, 0) + factor
        if isinstance(block.terminator, Branch):
            cond = block.terminator.cond
            weights[cond] = weights.get(cond, 0) + factor
    return weights


# ----------------------------------------------------------------------
# per-block rewrite: spilled-global traffic + Belady local allocation
# ----------------------------------------------------------------------
def _rewrite_block(
    block: Block,
    allocation: RegisterAllocation,
    global_names: set[str],
    local_pool: list[tuple[str, int]],
    counter: list[int],
    spill_cursor: list[int],
) -> Block:
    # Step 1: replace spilled-global accesses with reload/writeback temps.
    staged: list[Op] = []
    terminator = block.terminator
    for op in block.ops:
        a, b = op.a, op.b
        for attr, operand in (("a", a), ("b", b)):
            if isinstance(operand, str) and operand in allocation.spill_slots:
                counter[0] += 1
                temp = f"%rl{counter[0]}"
                staged.append(Op("ld", temp, allocation.spill_slots[operand]))
                if attr == "a":
                    a = temp
                else:
                    b = temp
        dst = op.dst
        writeback: Op | None = None
        if dst is not None and dst in allocation.spill_slots:
            counter[0] += 1
            temp = f"%wb{counter[0]}"
            writeback = Op("st", None, allocation.spill_slots[dst], temp)
            dst = temp
        staged.append(Op(op.opcode, dst, a, b))
        if writeback is not None:
            staged.append(writeback)
    if isinstance(terminator, Branch) and terminator.cond in allocation.spill_slots:
        counter[0] += 1
        temp = f"%rl{counter[0]}"
        staged.append(Op("ld", temp, allocation.spill_slots[terminator.cond]))
        terminator = Branch(
            temp, terminator.if_true, terminator.if_false, terminator.invert
        )

    # Step 1.5: SSA-style renaming of block-local vregs.  Two hazards
    # both caught by the fuzz suite demand it: (a) the same source name
    # may be a *different* local value in two blocks, and (b) a local
    # redefined *within* a block has two live ranges that may get two
    # different slots — but the scheduler can only consult one home per
    # name.  Renaming every definition to a fresh block-qualified name
    # makes "one name = one live range = one home" true by construction.
    # Globals keep their names and fixed homes.
    version: dict[str, int] = {}

    def _is_local_name(vreg) -> bool:
        return isinstance(vreg, str) and vreg not in global_names

    def _versioned(vreg: str, v: int) -> str:
        base = f"{vreg}@{block.name}"
        return base if v == 0 else f"{base}.{v}"

    def current(vreg):
        if not _is_local_name(vreg):
            return vreg
        return _versioned(vreg, version.get(vreg, 0))

    renamed: list[Op] = []
    for op in staged:
        a = current(op.a)
        b = current(op.b)
        dst = op.dst
        if dst is not None and _is_local_name(dst):
            version[dst] = version.get(dst, -1) + 1
            dst = _versioned(dst, version[dst])
        renamed.append(Op(op.opcode, dst, a, b))
    staged = renamed
    if isinstance(terminator, Branch):
        terminator = Branch(
            current(terminator.cond),
            terminator.if_true,
            terminator.if_false,
            terminator.invert,
        )

    # Step 2: Belady local allocation over the free pool.
    final_ops, local_map, spills, terminator = _allocate_locals(
        staged, terminator, allocation, local_pool, counter, spill_cursor
    )
    allocation.local_spills += spills
    allocation.reg_of.update(local_map)
    return Block(block.name, final_ops, terminator)


def _allocate_locals(
    ops: list[Op],
    terminator,
    allocation: RegisterAllocation,
    pool: list[tuple[str, int]],
    counter: list[int],
    spill_cursor: list[int],
):
    """Belady allocation of block-local vregs onto ``pool`` slots.

    Returns (ops-with-spill-code, vreg->slot map, eviction count,
    possibly-rewritten terminator).  Evicted locals are renamed on reload
    so every final vreg name has exactly one physical home.
    """
    is_local = lambda v: isinstance(v, str) and v not in allocation.reg_of

    # Next-use table (op index -> position list) for Belady decisions.
    positions: dict[str, list[int]] = {}
    for index, op in enumerate(ops):
        for src in op.sources():
            if is_local(src):
                positions.setdefault(src, []).append(index)
        if op.dst is not None and is_local(op.dst):
            positions.setdefault(op.dst, []).append(index)
    if terminator is not None and isinstance(terminator, Branch):
        if is_local(terminator.cond):
            positions.setdefault(terminator.cond, []).append(len(ops))

    free = list(pool)
    in_reg: dict[str, tuple[str, int]] = {}
    home_slot: dict[str, int] = {}      # evicted local -> memory slot
    rename: dict[str, str] = {}          # original local -> current name
    result_map: dict[str, tuple[str, int]] = {}
    out_ops: list[Op] = []
    evictions = 0

    def next_use(vreg: str, after: int) -> int:
        for position in positions.get(vreg, []):
            if position >= after:
                return position
        return 1 << 30

    def take_slot(index: int, for_vreg: str) -> tuple[str, int]:
        nonlocal evictions
        if free:
            return free.pop(0)
        # Evict the local with the farthest next use.
        victim = max(in_reg, key=lambda v: next_use(v, index))
        if next_use(victim, index) <= index:
            raise AllocationError(
                f"local pool of {len(pool)} registers too small at op {index}"
            )
        slot = in_reg.pop(victim)
        if next_use(victim, index) < (1 << 30):
            # Victim still needed: store it to a fresh memory home.
            if victim not in home_slot:
                home_slot[victim] = spill_cursor[0]
                spill_cursor[0] += 1
            out_ops.append(Op("st", None, home_slot[victim], victim))
            evictions += 1
        return slot

    def current_name(vreg: str) -> str:
        return rename.get(vreg, vreg)

    def ensure_loaded(vreg: str, index: int) -> str:
        name = current_name(vreg)
        if name in in_reg:
            return name
        if vreg not in home_slot:
            raise AllocationError(f"use of undefined local {vreg!r}")
        slot = take_slot(index, vreg)
        counter[0] += 1
        fresh = f"%rs{counter[0]}"
        out_ops.append(Op("ld", fresh, home_slot[vreg]))
        in_reg[fresh] = slot
        result_map[fresh] = slot
        rename[vreg] = fresh
        # Future next-uses of vreg guide Belady for the fresh name too.
        positions[fresh] = [p for p in positions.get(vreg, []) if p >= index]
        return fresh

    for index, op in enumerate(ops):
        new_a, new_b = op.a, op.b
        if is_local(op.a):
            new_a = ensure_loaded(op.a, index)
        if is_local(op.b):
            new_b = ensure_loaded(op.b, index)
        new_dst = op.dst
        if op.dst is not None and is_local(op.dst):
            name = current_name(op.dst)
            if name in in_reg:
                slot = in_reg[name]
            else:
                slot = take_slot(index, op.dst)
            # A redefinition starts a fresh value: drop stale rename/home.
            rename.pop(op.dst, None)
            home_slot.pop(op.dst, None)
            in_reg.pop(name, None)
            in_reg[op.dst] = slot
            result_map[op.dst] = slot
        out_ops.append(Op(op.opcode, new_dst, new_a, new_b))
        # Free registers of locals with no further use.
        for vreg in list(in_reg):
            if next_use(vreg, index + 1) >= (1 << 30):
                free.append(in_reg.pop(vreg))

    if terminator is not None and isinstance(terminator, Branch):
        if is_local(terminator.cond):
            name = ensure_loaded(terminator.cond, len(ops))
            if name != terminator.cond:
                terminator = Branch(
                    name, terminator.if_true, terminator.if_false,
                    terminator.invert,
                )

    return out_ops, result_map, evictions, terminator
