"""The ``python -m repro`` command line, driven through ``main()``."""

import csv
import io
import json

import pytest

from repro.__main__ import main


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list(capsys):
    code, out, _ = _run(capsys, "list")
    assert code == 0
    assert "crypt" in out and "spaces:" in out
    # the registries behind the study layer are listed too
    assert "objectives:" in out and "strategies:" in out


def test_list_objectives_flag(capsys):
    code, out, _ = _run(capsys, "list", "--objectives")
    assert code == 0
    assert "area" in out and "cycles" in out and "test_cost" in out
    assert "workloads:" not in out and "strategies:" not in out


def test_list_strategies_flag(capsys):
    code, out, _ = _run(capsys, "list", "--strategies")
    assert code == 0
    for name in ("exhaustive", "iterative", "random", "simulated_annealing"):
        assert name in out
    assert "params:" in out
    assert "workloads:" not in out and "objectives:" not in out


def test_list_shows_energy_objectives_and_technologies(capsys):
    code, out, _ = _run(capsys, "list", "--objectives")
    assert code == 0
    assert "energy" in out and "edp" in out
    assert "[needs energy pass]" in out

    code, out, _ = _run(capsys, "list", "--technologies")
    assert code == 0
    assert "default" in out and "low_power" in out
    assert "objectives:" not in out


def test_energy_breakdown_command(capsys):
    code, out, _ = _run(capsys, "energy", "gcd", "--space", "small",
                        "--index", "1")
    assert code == 0
    assert "energy report: gcd" in out
    assert "bus0" in out and "fetch" in out and "leakage" in out
    assert "total" in out and "share" in out


def test_energy_command_rejects_bad_index(capsys):
    code, _, err = _run(capsys, "energy", "gcd", "--index", "99")
    assert code == 1
    assert "outside space" in err


def test_energy_command_rejects_unmappable_workload(capsys):
    # fir needs a multiplier; the small space has none
    code, _, err = _run(capsys, "energy", "fir", "--space", "small")
    assert code == 1
    assert "does not compile" in err


def test_energy_command_clean_error_on_cycle_budget(capsys):
    code, _, err = _run(capsys, "energy", "gcd", "--space", "small",
                        "--index", "3", "--max-cycles", "10")
    assert code == 1
    assert "error:" in err and "no halt" in err
    assert "Traceback" not in err


def test_study_with_energy_objective(capsys):
    code, out, _ = _run(
        capsys, "study", "--workloads", "gcd", "--space", "small",
        "--objectives", "cycles,area,energy", "--select",
        "--no-cache", "-q",
    )
    assert code == 0
    assert "cycles+area+energy" in out
    assert "selected [gcd/small/w16]" in out


def test_study_summary(capsys):
    code, out, _ = _run(
        capsys, "study", "--workloads", "gcd", "--space", "small",
        "--no-cache", "-q",
    )
    assert code == 0
    assert "study 'study'" in out
    assert "gcd/small/w16" in out


def test_study_random_strategy_csv(capsys, tmp_path):
    out_file = tmp_path / "sample.csv"
    code, _, _ = _run(
        capsys, "study", "--workloads", "gcd", "--space", "small",
        "--strategy", "random", "--param", "budget=5", "--param", "seed=2",
        "--no-cache", "-q", "--format", "csv", "-o", str(out_file),
    )
    assert code == 0
    rows = list(csv.DictReader(io.StringIO(out_file.read_text())))
    assert len(rows) == 5


def test_study_spec_file_with_selection(capsys, tmp_path):
    from repro.study import StudySpec

    spec_file = tmp_path / "study.json"
    spec_file.write_text(
        StudySpec(
            name="from-file",
            workloads=("gcd",),
            space="small",
            objectives=("area", "cycles", "test_cost"),
            select=True,
        ).to_json()
    )
    code, out, _ = _run(
        capsys, "study", "--spec", str(spec_file), "--no-cache", "-q",
    )
    assert code == 0
    assert "study 'from-file'" in out
    assert "selected [gcd/small/w16]" in out


def test_study_unknown_objective_fails(capsys):
    code, _, err = _run(
        capsys, "study", "--workloads", "gcd", "--objectives", "area,nope",
        "--no-cache", "-q",
    )
    assert code == 1
    assert "unknown objective" in err


def test_study_needs_spec_or_workloads(capsys):
    with pytest.raises(SystemExit):
        main(["study", "-q"])


def test_explore_summary(capsys):
    code, out, _ = _run(
        capsys, "explore", "--workload", "gcd", "--space", "small",
        "--no-cache", "-q",
    )
    assert code == 0
    assert "exploration of gcd" in out
    assert "Pareto" in out


def test_explore_csv_pareto(capsys, tmp_path):
    out_file = tmp_path / "points.csv"
    code, _, _ = _run(
        capsys, "explore", "--workload", "gcd", "--no-cache", "-q",
        "--format", "csv", "--pareto", "-o", str(out_file),
    )
    assert code == 0
    rows = list(csv.DictReader(io.StringIO(out_file.read_text())))
    assert rows and all(r["feasible"] == "True" for r in rows)
    assert "config" in rows[0]


def test_explore_unknown_workload_fails(capsys):
    code, _, err = _run(capsys, "explore", "--workload", "nope", "-q")
    assert code == 1
    assert "unknown workload" in err


def test_campaign_flags_and_resume(capsys, tmp_path):
    cache = tmp_path / "cache"
    out_dir = tmp_path / "out"
    argv = (
        "campaign", "--workloads", "gcd,checksum", "--spaces", "small",
        "--cache-dir", str(cache), "--out-dir", str(out_dir), "-q",
    )
    code, out, _ = _run(capsys, *argv)
    assert code == 0
    assert "24 evaluated, 0 cache hits" in out
    assert (out_dir / "spec.json").exists()
    assert (out_dir / "gcd__small__w16.csv").exists()

    code, out, _ = _run(capsys, *argv)
    assert code == 0
    assert "0 evaluated, 24 cache hits" in out


def test_campaign_spec_file(capsys, tmp_path):
    from repro.campaign import CampaignSpec

    spec_file = tmp_path / "spec.json"
    spec_file.write_text(
        CampaignSpec(
            name="from-file", workloads=("gcd",), spaces=("small",),
            select=True,
        ).to_json()
    )
    code, out, _ = _run(
        capsys, "campaign", "--spec", str(spec_file), "--no-cache", "-q",
    )
    assert code == 0
    assert "campaign 'from-file'" in out
    assert "selected [gcd/small/w16]" in out


def test_campaign_needs_spec_or_workloads(capsys):
    with pytest.raises(SystemExit):
        main(["campaign", "-q"])


def test_report_round_trip(capsys, tmp_path):
    result = tmp_path / "points.json"
    code, _, _ = _run(
        capsys, "explore", "--workload", "gcd", "--no-cache", "-q",
        "--format", "json", "-o", str(result),
    )
    assert code == 0

    code, out, _ = _run(capsys, "report", str(result), "--format", "json")
    assert code == 0
    assert json.loads(out) == json.loads(result.read_text())

    code, out, _ = _run(
        capsys, "report", str(result), "--pareto", "--format", "summary",
    )
    assert code == 0
    assert "architecture" in out


def test_report_missing_file(capsys, tmp_path):
    code, _, err = _run(capsys, "report", str(tmp_path / "missing.json"))
    assert code == 1
    assert "error:" in err


def test_explore_profile_flag(capsys):
    code, out, err = _run(
        capsys, "explore", "--workload", "gcd", "--space", "small",
        "--no-cache", "-q", "--profile",
    )
    assert code == 0
    assert "exploration of gcd" in out
    # cProfile top-25 cumulative goes to stderr
    assert "cumulative" in err and "ncalls" in err


def test_bench_small_suite(capsys, tmp_path):
    out_file = tmp_path / "bench.json"
    history = tmp_path / "benchmarks" / "history.jsonl"
    code, out, _ = _run(
        capsys, "bench", "--suite", "small", "-o", str(out_file),
        "--history", str(history),
    )
    assert code == 0
    assert "speedup" in out
    report = json.loads(out_file.read_text())
    assert report["sweeps"] and all(
        s["pareto_identical"] for s in report["sweeps"]
    )
    assert "small_speedup" in report
    # every run appends one trend line: timestamp, commit, speedups
    lines = history.read_text().splitlines()
    assert len(lines) == 1
    entry = json.loads(lines[0])
    assert entry["timestamp"] == report["generated_at"]
    assert entry["small_speedup"] == report["small_speedup"]
    assert set(entry) == {
        "timestamp", "commit", "small_speedup", "medium_speedup",
        "python",
    }
    # a second run appends, never truncates
    from repro.bench import append_history

    append_history(report, history)
    assert len(history.read_text().splitlines()) == 2


def test_bench_no_write(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code, out, _ = _run(capsys, "bench", "--suite", "small", "--no-write")
    assert code == 0
    assert "pareto filter" in out
    assert not (tmp_path / "BENCH_evaluate.json").exists()
    assert not (tmp_path / "benchmarks").exists()


def test_study_trace_and_metrics_out(capsys, tmp_path):
    trace = tmp_path / "study.jsonl"
    metrics = tmp_path / "metrics.json"
    code, out, err = _run(
        capsys, "study", "--workloads", "gcd", "--space", "small",
        "--no-cache", "-q",
        "--trace", str(trace), "--metrics-out", str(metrics),
    )
    assert code == 0
    assert "phase" in out and "schedule" in out  # summary prints the table
    report = json.loads(metrics.read_text())
    run = report["runs"][0]
    counters = run["counters"]
    assert counters["proposed"] == counters["cache_hits"] + counters["evaluated"]
    assert report["merged"]["phases"]
    # the trace validates and summarizes through the CLI
    code, out, _ = _run(capsys, "trace", "validate", str(trace))
    assert code == 0 and "schema OK" in out
    code, out, _ = _run(capsys, "trace", "summarize", str(trace))
    assert code == 0
    assert "gcd/small/w16" in out and "12 points" in out
    # --format json round-trips the whole summary dict
    code, out, _ = _run(
        capsys, "trace", "summarize", str(trace), "--format", "json",
    )
    assert code == 0
    summary = json.loads(out)
    assert summary["runs"][0]["label"] == "gcd/small/w16"
    assert summary["runs"][0]["points"] == 12
    assert summary["jobs"] == []


def test_trace_rejects_corrupt_file(capsys, tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"v": 1, "kind": "event", "ts": 0.0, "name": "x"}\n')
    code, _, err = _run(capsys, "trace", "validate", str(bad))
    assert code == 1
    assert "meta" in err


def test_energy_metrics_out(capsys, tmp_path):
    metrics = tmp_path / "energy-metrics.json"
    code, out, _ = _run(
        capsys, "energy", "gcd", "--space", "small", "--index", "5",
        "--metrics-out", str(metrics),
    )
    assert code == 0
    snapshot = json.loads(metrics.read_text())
    assert "simulate" in snapshot["phases"]
    assert "energy_model" in snapshot["phases"]


def test_rtl_emit_json(capsys):
    code, out, _ = _run(
        capsys, "rtl", "emit", "gcd", "--space", "small", "--index", "5",
        "--format", "json",
    )
    assert code == 0
    data = json.loads(out)
    assert data["lint_problems"] == []
    assert data["top"] == "tta_core"
    assert data["top"] in data["modules"]
    assert data["num_instructions"] > 0
    # each imem word carries the encoded instruction plus a halt bit
    assert data["imem_bits"] == (
        data["num_instructions"] * (data["instruction_bits"] + 1)
    )


def test_rtl_emit_verilog_to_file(capsys, tmp_path):
    core = tmp_path / "core.v"
    code, _, err = _run(
        capsys, "rtl", "emit", "--space", "small", "--index", "5",
        "--top", "my_core", "-o", str(core),
    )
    assert code == 0
    assert "lint" not in err
    text = core.read_text()
    assert "module my_core" in text
    assert text.rstrip().endswith("endmodule")


def test_rtl_emit_rejects_bad_index(capsys):
    code, _, err = _run(capsys, "rtl", "emit", "--space", "small",
                        "--index", "99")
    assert code == 1
    assert "outside space" in err


def test_rtl_calibrate_text_and_json(capsys):
    code, out, _ = _run(
        capsys, "rtl", "calibrate", "gcd", "--space", "small", "--index", "5",
    )
    assert code == 0
    assert "calibration gcd" in out and ": OK" in out
    assert "delta=+0" in out and "interconnect" in out
    assert "(unmodelled)" in out

    code, out, _ = _run(
        capsys, "rtl", "calibrate", "gcd", "--space", "small", "--index", "5",
        "--format", "json",
    )
    assert code == 0
    report = json.loads(out)
    assert report["ok"] is True
    assert report["cycles_delta"] == 0


def test_rtl_calibrate_rejects_unmappable_workload(capsys):
    # fir needs a multiplier the small space's first point lacks
    code, _, err = _run(capsys, "rtl", "calibrate", "fir", "--space", "small",
                        "--index", "0")
    assert code == 1
    assert "does not map" in err


def test_study_calibrate_flag(capsys):
    code, out, _ = _run(
        capsys, "study", "--workloads", "gcd", "--space", "small",
        "--objectives", "area,cycles,code_size", "--calibrate",
        "--no-cache", "-q",
    )
    assert code == 0
    assert "calibrated" in out and "0 drifted" in out


def test_list_objectives_shows_code_size(capsys):
    code, out, _ = _run(capsys, "list", "--objectives")
    assert code == 0
    assert "code_size" in out and "instruction-memory bits" in out
