"""Ablation — bus count vs throughput and test cost.

Buses are the TTA's central resource: more buses mean more parallel
moves (shorter schedules) *and* cheaper functional tests (eq. 11's
n_conn/n_b ratio and eq. 9/10's CD both relax).  This bench fixes the
Fig. 9 component mix and sweeps only the bus count.
"""

from benchmarks.conftest import save_artifact
from repro.apps.crypt_kernel import build_crypt_ir
from repro.compiler import IRInterpreter, compile_ir
from repro.explore import ArchConfig, RFConfig, build_architecture
from repro.testcost import architecture_test_cost, transport_latency


def test_bus_sweep(benchmark):
    workload = build_crypt_ir("password", "ab")
    profile = IRInterpreter(workload, width=16).run().block_counts

    def sweep():
        rows = []
        for buses in (1, 2, 3, 4):
            arch = build_architecture(
                ArchConfig(num_buses=buses, rfs=(RFConfig(8), RFConfig(12)))
            )
            compiled = compile_ir(workload, arch, profile=profile)
            breakdown = architecture_test_cost(arch)
            rows.append(
                (
                    buses,
                    compiled.static_cycles(profile),
                    breakdown.total,
                    transport_latency(arch, "alu0"),
                    arch.area(),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    cycles = [r[1] for r in rows]
    test_costs = [r[2] for r in rows]
    cds = [r[3] for r in rows]
    areas = [r[4] for r in rows]
    # throughput strictly improves from 1 to 3 buses on this workload
    assert cycles[0] > cycles[1] > cycles[2]
    # the ALU's transport latency relaxes from 5 to the eq. 9 minimum 3
    assert cds[0] >= 4 and cds[-1] == 3
    assert cds == sorted(cds, reverse=True)
    # test cost never increases with more buses
    assert all(a >= b for a, b in zip(test_costs, test_costs[1:]))
    # area strictly grows with buses (the interconnect price)
    assert areas == sorted(areas)

    lines = [
        "Ablation: bus count sweep (ALU+CMP+RF8+RF12+LSU+PC+IMM)",
        f"{'buses':>6}{'cycles':>10}{'f_t':>8}{'CD(alu)':>9}{'area':>9}",
    ]
    for buses, cyc, ft, cd, area in rows:
        lines.append(f"{buses:>6}{cyc:>10}{ft:>8}{cd:>9}{area:>9.0f}")
    save_artifact("ablation_buses", "\n".join(lines))
