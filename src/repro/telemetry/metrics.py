"""Phase timers and counters for the evaluation stack.

A :class:`MetricsCollector` accumulates two kinds of numbers:

* **phases** — named wall-clock timers around the stack's work units
  (:data:`PHASES` lists the ones the study engine records).  Phases
  are *disjoint by construction* — no instrumented region nests inside
  another — so their seconds sum to at most the elapsed wall clock of
  a serial run.
* **counters** — named integer tallies (evaluations, cache hits,
  strategy moves).  Counters recorded per configuration are
  deterministic: the same study merges to the same values no matter
  how a process pool interleaved the work.
* **histograms** — fixed-bucket latency distributions
  (:class:`~repro.telemetry.histogram.Histogram`) for per-point
  timings such as ``eval_seconds``.  Bucket counts merge additively,
  so merged pool snapshots are bucket-for-bucket deterministic the
  same way counters are (the timings inside vary run to run, but the
  *merge* never depends on pool interleaving).

Collectors are cheap plain-dict state.  :meth:`~MetricsCollector.
snapshot` returns a picklable plain-dict view, and :meth:`~
MetricsCollector.merge` folds a snapshot back in — that pair is how
pool workers report: each worker measures into its own collector and
ships the per-configuration delta home, where the parent merges it on
wave completion.

Everything is opt-in: instrumented call sites take
``metrics=None`` (the default) and skip all bookkeeping in that case.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from repro.telemetry.histogram import Histogram

#: The phases the study stack records, in pipeline order.  A collector
#: accepts any name; this tuple is documentation plus the display
#: order of summaries.
PHASES = (
    "build",          # architecture construction (shared builder cache)
    "netlist_stats",  # the netlist-statistics-backed area model
    "regalloc",       # register allocation (memo misses only)
    "schedule",       # transport scheduling
    "validate",       # the timing validator
    "simulate",       # activity-traced simulation (energy post-pass)
    "energy_model",   # folding activity traces through the energy model
    "test_cost",      # the analytical test-cost model (ATPG-backed)
)


class MetricsCollector:
    """Accumulate disjoint phase timings and integer counters."""

    __slots__ = ("phases", "counters", "histograms")

    def __init__(self) -> None:
        # phase name -> [calls, seconds]
        self.phases: dict[str, list] = {}
        self.counters: dict[str, int] = {}
        self.histograms: dict[str, Histogram] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one block under ``name`` (adds one call + its seconds)."""
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            entry = self.phases.get(name)
            if entry is None:
                self.phases[name] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` (seconds) into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Picklable plain-dict view: what workers ship to the parent.

        Shape: ``{"phases": {name: {"calls": int, "seconds": float}},
        "counters": {name: int}, "histograms": {name: <histogram
        snapshot>}}``.  Seconds are rounded to the microsecond so
        snapshots serialise compactly and compare stably.
        """
        return {
            "phases": {
                name: {"calls": calls, "seconds": round(seconds, 6)}
                for name, (calls, seconds) in self.phases.items()
            },
            "counters": dict(self.counters),
            "histograms": {
                name: hist.snapshot()
                for name, hist in self.histograms.items()
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold one :meth:`snapshot` into this collector (additive)."""
        for name, stat in snapshot.get("phases", {}).items():
            entry = self.phases.get(name)
            if entry is None:
                self.phases[name] = [stat["calls"], stat["seconds"]]
            else:
                entry[0] += stat["calls"]
                entry[1] += stat["seconds"]
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, hist_snap in snapshot.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram(
                    tuple(hist_snap["bounds"])
                )
            hist.merge(hist_snap)


def merge_snapshots(snapshots: "list[dict]") -> dict:
    """Merge snapshot dicts without a collector (order-independent)."""
    collector = MetricsCollector()
    for snapshot in snapshots:
        collector.merge(snapshot)
    return collector.snapshot()


def format_phases(snapshot: dict, indent: str = "") -> str:
    """Per-phase time table of one snapshot (known phases first)."""
    phases = snapshot.get("phases", {})
    if not phases:
        return f"{indent}(no phase timings)"
    order = [p for p in PHASES if p in phases] + sorted(
        p for p in phases if p not in PHASES
    )
    total = sum(phases[p]["seconds"] for p in order) or 1.0
    lines = [
        f"{indent}{'phase':<14} {'calls':>8} {'seconds':>9} {'share':>6}"
    ]
    for name in order:
        stat = phases[name]
        lines.append(
            f"{indent}{name:<14} {stat['calls']:>8} "
            f"{stat['seconds']:>9.3f} {stat['seconds'] / total:>6.1%}"
        )
    return "\n".join(lines)
