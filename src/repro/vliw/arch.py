"""The Fig. 7 bus-oriented VLIW ASIP template.

Unlike the TTA (where *every* FU and RF hangs directly off the move
buses), the VLIW template allows component ports that are reachable only
through another component — Fig. 7 shows the register file's output
feeding the execution units directly.  That connectivity is what changes
the test strategy (Sec. 3.2): indirectly-accessible components need the
intermediate components configured as transparent paths, and the test
order must follow the access topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.components.spec import ComponentSpec


@dataclass
class VLIWComponent:
    """One component of the VLIW template.

    ``inputs_from``/``outputs_to`` name either ``"bus"`` (directly
    accessible) or another component (indirect access through it).
    """

    name: str
    spec: ComponentSpec
    inputs_from: tuple[str, ...] = ("bus",)
    outputs_to: tuple[str, ...] = ("bus",)


@dataclass
class VLIWTemplate:
    """A bus-oriented VLIW ASIP datapath."""

    name: str
    width: int
    num_buses: int
    components: dict[str, VLIWComponent] = field(default_factory=dict)

    def add(self, component: VLIWComponent) -> None:
        if component.name in self.components:
            raise ValueError(f"duplicate component {component.name!r}")
        for src in component.inputs_from:
            if src != "bus" and src not in self.components:
                raise ValueError(
                    f"{component.name}: input source {src!r} not yet defined"
                )
        self.components[component.name] = component

    def component(self, name: str) -> VLIWComponent:
        return self.components[name]

    def directly_accessible(self, name: str) -> bool:
        c = self.components[name]
        return "bus" in c.inputs_from and "bus" in c.outputs_to


def fig7_template(width: int = 16, num_units: int = 3) -> VLIWTemplate:
    """The paper's Fig. 7: RF + n execution units + data cache.

    The register file's *output* is connected to the bus through the
    execution units (the situation the paper calls out explicitly), while
    its input is written from the bus; execution units and the data cache
    sit directly on the buses.
    """
    from repro.components.library import alu_spec, lsu_spec, rf_spec

    template = VLIWTemplate(
        name=f"fig7_vliw_{num_units}u", width=width, num_buses=num_units
    )
    for i in range(num_units):
        template.add(
            VLIWComponent(f"eu{i}", alu_spec(width))
        )
    template.add(
        VLIWComponent(
            "rf",
            rf_spec(16, width, read_ports=2, write_ports=1),
            inputs_from=("bus",),
            outputs_to=tuple(f"eu{i}" for i in range(num_units)),
        )
    )
    template.add(VLIWComponent("dcache", lsu_spec(width)))
    return template
