"""Fault isolation, checkpoint/resume, and fault injection for studies.

The package is the robustness layer under the study engine:

* :mod:`repro.resilience.policy` — :class:`FaultPolicy` (``fail_fast``
  | ``skip`` | ``retry`` with backoff and per-point timeouts) and the
  structured :class:`FailedPoint` record;
* :mod:`repro.resilience.isolation` — the fault-isolated serial guard
  and pool supervisor behind ``iter_evaluations``;
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointManager`,
  :class:`CancelToken`, and the RNG-state codecs that make
  ``Study.resume`` exact for seeded strategies;
* :mod:`repro.resilience.faults` — deterministic fault injectors
  (raise / sleep / SIGKILL / truncate-cache-entry) the test suite and
  CI smoke jobs drive the recovery paths with.
"""

from repro.resilience.checkpoint import (
    CancelToken,
    CheckpointManager,
    StudyInterrupted,
    rng_state_from_json,
    rng_state_to_json,
)
from repro.resilience.isolation import (
    SweepInterrupted,
    WorkerCrash,
    call_guarded,
    iter_pool_isolated,
)
from repro.resilience.policy import (
    FAIL_FAST,
    MODES,
    FailedPoint,
    FaultPolicy,
    traceback_digest,
)

__all__ = [
    "FAIL_FAST",
    "MODES",
    "CancelToken",
    "CheckpointManager",
    "FailedPoint",
    "FaultPolicy",
    "StudyInterrupted",
    "SweepInterrupted",
    "WorkerCrash",
    "call_guarded",
    "iter_pool_isolated",
    "rng_state_from_json",
    "rng_state_to_json",
    "traceback_digest",
]
