"""Iterative exploration vs the exhaustive sweep (MOVE's actual modus).

The paper's exploration is "performed with iterative generation of
different architectures"; this bench measures how much of the true
Pareto frontier the neighbourhood search recovers at a fraction of the
evaluations.
"""

from benchmarks.conftest import save_artifact
from repro.explore import crypt_space, pareto_filter
from repro.study.engine import run_search


def test_iterative_vs_exhaustive(benchmark, crypt_exploration):
    exhaustive = crypt_exploration
    target = {(p.area, p.cycles) for p in exhaustive.pareto2d}

    from repro.apps.crypt_kernel import build_crypt_ir

    workload = build_crypt_ir("password", "ab")
    iterative = benchmark.pedantic(
        lambda: run_search(
            workload, [], strategy="iterative",
            strategy_params={"max_evaluations": 70},
        ),
        rounds=1,
        iterations=1,
    )

    front = pareto_filter(
        [p for p in iterative.points if p.feasible],
        key=lambda p: p.cost2d(),
    )
    found = {(p.area, p.cycles) for p in front}
    recovered = len(found & target) / len(target)
    assert iterative.evaluations <= 70 < len(crypt_space())
    assert recovered >= 0.5, f"{recovered:.0%} of the frontier recovered"

    lines = [
        "Iterative (neighbourhood) exploration vs exhaustive sweep",
        f"exhaustive: {len(crypt_space())} evaluations, "
        f"{len(target)} Pareto points",
        f"iterative:  {iterative.evaluations} evaluations, "
        f"{len(found)} frontier points, {iterative.iterations} waves",
        f"true frontier recovered: {recovered:.0%}",
        f"frontier growth per wave: {iterative.frontier_history}",
    ]
    save_artifact("iterative_explorer", "\n".join(lines))
