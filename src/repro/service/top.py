"""``repro top``: a live terminal dashboard over the study server.

Polls the server's ``metrics`` and ``jobs`` ops on an interval and
redraws one plain-ANSI screen: uptime, worker occupancy, queue depth,
per-tenant throughput and latency percentiles, and the job table with
lifecycle ages.  No curses, no dependencies — the only escape codes
used are clear-screen + cursor-home (``ESC[2J ESC[H``), so the output
also behaves when piped (``--no-clear`` drops even those, printing one
frame after another for transcripts and tests).

Rendering is separated from polling: :func:`render_dashboard` is a
pure function of the two response dicts, so tests can assert on frames
without a server, and :func:`run_top` is the loop the CLI drives.
"""

from __future__ import annotations

import time

from repro.service.client import ServiceClient

__all__ = ["render_dashboard", "run_top"]

CLEAR = "\x1b[2J\x1b[H"

#: Job states in display order.
_STATE_ORDER = ("running", "queued", "done", "failed", "cancelled")


def _fmt_seconds(value: float | None) -> str:
    """Compact duration: ``815us``, ``2.4ms``, ``1.8s``, ``3m12s``."""
    if value is None:
        return "-"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    if value < 60.0:
        return f"{value:.1f}s"
    minutes, seconds = divmod(int(value), 60)
    return f"{minutes}m{seconds:02d}s"


def _quantile(agg: dict | None, name: str) -> float | None:
    if not agg:
        return None
    return (agg.get("quantiles") or {}).get(name)


def _counter(tenant_agg: dict, name: str) -> int:
    entry = tenant_agg.get(name)
    return int(entry["value"]) if entry else 0


def _job_points(metrics: dict) -> dict[str, int]:
    """Per-job recorded-point counts out of the registry snapshot."""
    series = (
        metrics.get("registry", {})
        .get("counters", {})
        .get("points_recorded", [])
    )
    points: dict[str, int] = {}
    for entry in series:
        job = entry["labels"].get("job")
        if job:
            points[job] = points.get(job, 0) + int(entry["value"])
    return points


def render_dashboard(
    metrics: dict, jobs: list[dict], now: float | None = None,
) -> str:
    """One dashboard frame from ``metrics`` op + ``jobs`` op output."""
    now = time.time() if now is None else now
    workers = metrics.get("workers", {})
    queue = metrics.get("queue", {})
    by_state = queue.get("jobs", {})
    lines = [
        "repro top — study server"
        f" · up {_fmt_seconds(metrics.get('uptime'))}"
        f" · workers {workers.get('busy', 0)}/{workers.get('total', 0)}"
        f" · queue {queue.get('depth', 0)}",
        " ".join(
            f"{state}:{by_state[state]}"
            for state in _STATE_ORDER if by_state.get(state)
        ) or "(no jobs)",
        "",
    ]

    tenants = metrics.get("tenants", {})
    if tenants:
        lines.append(
            f"{'tenant':<10} {'jobs':>5} {'points':>7} {'evals':>6} "
            f"{'hits':>5} {'wait p50':>9} {'wait p90':>9} "
            f"{'eval p50':>9} {'eval p99':>9}"
        )
        for tenant in sorted(tenants):
            agg = tenants[tenant]
            wait = agg.get("queue_wait_seconds")
            evals = agg.get("eval_seconds")
            lines.append(
                f"{tenant:<10} "
                f"{_counter(agg, 'jobs_submitted'):>5} "
                f"{_counter(agg, 'points_recorded'):>7} "
                f"{_counter(agg, 'points_evaluated'):>6} "
                f"{_counter(agg, 'cache_hits'):>5} "
                f"{_fmt_seconds(_quantile(wait, 'p50')):>9} "
                f"{_fmt_seconds(_quantile(wait, 'p90')):>9} "
                f"{_fmt_seconds(_quantile(evals, 'p50')):>9} "
                f"{_fmt_seconds(_quantile(evals, 'p99')):>9}"
            )
        lines.append("")

    points = _job_points(metrics)
    lines.append(
        f"{'job':<26} {'tenant':<10} {'state':<10} {'points':>7} "
        f"{'age':>7} {'took':>7}"
    )
    order = {state: i for i, state in enumerate(_STATE_ORDER)}
    for job in sorted(
        jobs, key=lambda j: (order.get(j.get("state"), 9), j.get("job", ""))
    ):
        submitted = job.get("submitted_at")
        started = job.get("started_at")
        finished = job.get("finished_at")
        age = None if submitted is None else max(0.0, now - submitted)
        took = None
        if started is not None:
            took = max(0.0, (finished or now) - started)
        lines.append(
            f"{job.get('job', '?'):<26} {job.get('tenant', '?'):<10} "
            f"{job.get('state', '?'):<10} "
            f"{points.get(job.get('job'), 0):>7} "
            f"{_fmt_seconds(age):>7} {_fmt_seconds(took):>7}"
        )
    if not jobs:
        lines.append("(queue is empty)")
    return "\n".join(lines) + "\n"


def run_top(
    address: str,
    interval: float = 2.0,
    iterations: int | None = None,
    clear: bool = True,
    out=None,
) -> int:
    """Poll ``address`` and redraw until interrupted.

    ``iterations`` bounds the number of frames (None = forever); the
    CLI leaves it unbounded, tests and the CI smoke pass a small
    number.  Returns a process exit code.
    """
    import sys

    out = sys.stdout if out is None else out
    drawn = 0
    try:
        while iterations is None or drawn < iterations:
            with ServiceClient(address) as client:
                metrics = client.metrics()
                jobs = client.request("jobs")["jobs"]
            frame = render_dashboard(metrics, jobs)
            if clear:
                out.write(CLEAR)
            out.write(frame)
            out.flush()
            drawn += 1
            if iterations is not None and drawn >= iterations:
                break
            time.sleep(interval)
    except KeyboardInterrupt:
        pass
    return 0
