"""Unit and property tests for repro.util.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    bit,
    bits_of,
    from_bits,
    mask,
    parity,
    popcount,
    rotl,
    rotr,
    sign_extend,
    to_signed,
    to_unsigned,
)


def test_mask_values():
    assert mask(0) == 0
    assert mask(1) == 1
    assert mask(16) == 0xFFFF
    assert mask(64) == (1 << 64) - 1


def test_mask_negative_rejected():
    with pytest.raises(ValueError):
        mask(-1)


def test_bit_extraction():
    assert bit(0b1010, 0) == 0
    assert bit(0b1010, 1) == 1
    assert bit(0b1010, 3) == 1


def test_bits_roundtrip_examples():
    assert bits_of(0b1011, 4) == [1, 1, 0, 1]
    assert from_bits([1, 1, 0, 1]) == 0b1011


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_bits_roundtrip_property(value):
    assert from_bits(bits_of(value, 32)) == value


@given(st.integers(min_value=0, max_value=(1 << 24) - 1))
def test_popcount_matches_bin(value):
    assert popcount(value) == bin(value).count("1")


def test_popcount_negative_rejected():
    with pytest.raises(ValueError):
        popcount(-5)


@given(st.integers(min_value=0, max_value=(1 << 24) - 1))
def test_parity_is_popcount_lsb(value):
    assert parity(value) == popcount(value) % 2


@given(
    st.integers(min_value=0, max_value=0xFFFF),
    st.integers(min_value=0, max_value=40),
)
def test_rotl_rotr_inverse(value, amount):
    assert rotr(rotl(value, amount, 16), amount, 16) == value


def test_rotl_known():
    assert rotl(0b1000_0000_0000_0001, 1, 16) == 0b0000_0000_0000_0011


@given(st.integers(min_value=0, max_value=0xFFFF))
def test_rotl_full_turn_identity(value):
    assert rotl(value, 16, 16) == value


@given(st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
def test_signed_roundtrip(value):
    assert to_signed(to_unsigned(value, 16), 16) == value


def test_to_signed_extremes():
    assert to_signed(0x8000, 16) == -32768
    assert to_signed(0x7FFF, 16) == 32767
    assert to_signed(0xFFFF, 16) == -1


@given(st.integers(min_value=0, max_value=0xFF))
def test_sign_extend_preserves_value(value):
    assert to_signed(sign_extend(value, 8, 16), 16) == to_signed(value, 8)


def test_sign_extend_narrowing_rejected():
    with pytest.raises(ValueError):
        sign_extend(3, 16, 8)
