"""Ablation — ATPG phases: random-only vs random+PODEM.

The back-annotated ``n_p`` drives every f_tfu in the cost model, so this
bench shows what each ATPG phase buys on a real component: the random
phase gets coverage cheaply, PODEM closes the random-resistant tail and
proves redundancies, compaction shrinks the pattern set.
"""

from benchmarks.conftest import save_artifact
from repro.atpg import run_atpg
from repro.components import build_alu


def test_atpg_phase_ablation(benchmark):
    alu = build_alu(8)

    def sweep():
        random_only = run_atpg(
            alu, use_cache=False, random_words=4, backtrack_limit=0
        )
        full = run_atpg(
            alu, use_cache=False, random_words=4, backtrack_limit=256
        )
        uncompacted = run_atpg(
            alu, use_cache=False, random_words=4, backtrack_limit=256,
            compact=False,
        )
        return random_only, full, uncompacted

    random_only, full, uncompacted = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    # PODEM adds coverage over a short random phase...
    assert full.detected >= random_only.detected
    assert full.fault_coverage > random_only.fault_coverage
    # ...and proves redundancies random simulation cannot
    assert full.redundant > random_only.redundant
    assert random_only.aborted > full.aborted
    # compaction shrinks (or at worst keeps) the pattern count
    assert full.num_patterns <= uncompacted.num_patterns

    lines = [
        "Ablation: ATPG phases on the 8-bit ALU core",
        f"{'configuration':<22}{'n_p':>6}{'detected':>10}{'FC %':>8}"
        f"{'redundant':>11}{'aborted':>9}",
        f"{'random only':<22}{random_only.num_patterns:>6}"
        f"{random_only.detected:>10}{random_only.raw_coverage:>8.2f}"
        f"{random_only.redundant:>11}{random_only.aborted:>9}",
        f"{'random+PODEM':<22}{full.num_patterns:>6}{full.detected:>10}"
        f"{full.fault_coverage:>8.2f}{full.redundant:>11}{full.aborted:>9}",
        f"{'.. no compaction':<22}{uncompacted.num_patterns:>6}"
        f"{uncompacted.detected:>10}{uncompacted.fault_coverage:>8.2f}"
        f"{uncompacted.redundant:>11}{uncompacted.aborted:>9}",
    ]
    save_artifact("ablation_atpg", "\n".join(lines))
