"""``repro.study`` — the declarative exploration entry point.

One public surface for everything the repo does (the Sec. 2-4 flow and
its generalisations):

* :class:`StudySpec` — frozen, JSON-round-trippable description of a
  study (workloads by registry name, space by name or inline configs,
  objective names, strategy name + params);
* the **objective registry** (``area``, ``cycles``, ``test_cost``,
  ``energy``, ``edp`` seeded) — pluggable cost axes with per-axis
  post-pass requirements (the test-cost pass runs the analytical model,
  the energy pass simulates with activity tracing);
* the **strategy registry** (``exhaustive``, ``iterative``, ``random``,
  ``simulated_annealing`` seeded) — pluggable search drivers sharing
  one evaluation interface with caching, resume and process-pool
  fan-out;
* :class:`Study` / :func:`run_study` — the executor, returning a
  :class:`StudyResult`; the campaign runner is N studies sharing one
  result cache.
"""

from repro.study.engine import (
    CachedEvaluator,
    RunStats,
    Study,
    StudyResult,
    StudyRun,
    evaluate_configs,
    run_exploration,
    run_search,
    run_study,
    workload_profile,
)
from repro.study.objectives import (
    Objective,
    cost_vector,
    objective_by_name,
    objective_names,
    pareto_front,
    register_objective,
    resolve_objectives,
)
from repro.study.spec import StudySpec
from repro.study.strategies import (
    SearchJob,
    SearchOutcome,
    StrategyEntry,
    register_strategy,
    run_strategy,
    strategy_by_name,
    strategy_names,
)

__all__ = [
    "CachedEvaluator",
    "Objective",
    "RunStats",
    "SearchJob",
    "SearchOutcome",
    "StrategyEntry",
    "Study",
    "StudyResult",
    "StudyRun",
    "StudySpec",
    "cost_vector",
    "evaluate_configs",
    "objective_by_name",
    "objective_names",
    "pareto_front",
    "register_objective",
    "register_strategy",
    "resolve_objectives",
    "run_exploration",
    "run_search",
    "run_strategy",
    "run_study",
    "strategy_by_name",
    "strategy_names",
    "workload_profile",
]
