"""Datapath component generators.

Every component the paper's architectures use (Fig. 9: ALU, CMP, two
register files, load/store unit, program counter, immediate unit) is
generated here as a gate-level netlist plus a behavioural reference model.
The netlists feed the ATPG back-annotation; the reference models feed the
TTA simulator and the differential tests.
"""

from repro.components.spec import ComponentKind, ComponentSpec, PortSpec
from repro.components.reference import (
    ALU_OPS,
    CMP_OPS,
    LSU_OPS,
    alu_reference,
    cmp_reference,
    lsu_extend_reference,
)
from repro.components.alu import build_alu
from repro.components.comparator import build_comparator
from repro.components.shifter import build_shifter
from repro.components.multiplier import build_multiplier
from repro.components.register_file import (
    MultiPortMemory,
    build_ff_register_file,
)
from repro.components.loadstore import build_lsu
from repro.components.pc import build_pc
from repro.components.immediate import build_immediate
from repro.components.library import (
    ComponentDatasheet,
    component_datasheet,
    default_catalog,
)

__all__ = [
    "ALU_OPS",
    "CMP_OPS",
    "LSU_OPS",
    "ComponentDatasheet",
    "ComponentKind",
    "ComponentSpec",
    "MultiPortMemory",
    "PortSpec",
    "alu_reference",
    "build_alu",
    "build_comparator",
    "build_ff_register_file",
    "build_immediate",
    "build_lsu",
    "build_multiplier",
    "build_pc",
    "build_shifter",
    "cmp_reference",
    "component_datasheet",
    "default_catalog",
    "lsu_extend_reference",
]
