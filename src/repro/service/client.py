"""The blocking client for the study service.

:class:`ServiceClient` is deliberately boring: one socket, a file
wrapper, :func:`~repro.service.protocol.encode_frame` out and
:func:`~repro.service.protocol.decode_frame` in.  The CLI subcommands
(``repro submit|jobs|results|cancel``), the tests and CI all drive the
server through it; anything it can do, a dozen lines of any language
can do too — that is the point of the line-JSON protocol.

Server errors surface as :class:`ServiceError` (carrying the server's
message), transport problems as the usual ``OSError`` family.
"""

from __future__ import annotations

import socket
import time
from typing import Iterator

from repro.service.protocol import (
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
    parse_address,
)

__all__ = ["ServiceClient", "ServiceError", "wait_for_server"]


class ServiceError(RuntimeError):
    """The server answered ``{"ok": false, ...}``."""


class ServiceClient:
    """One connection to a :class:`~repro.service.server.StudyServer`.

    Usable as a context manager.  ``timeout`` is the socket timeout
    for connect and for each response read; ``watch`` frames arrive at
    the study's pace, so :meth:`watch` stretches it per frame.
    """

    def __init__(self, address: str, timeout: float = 30.0) -> None:
        self.address = address
        family, target = parse_address(address)
        if family == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.settimeout(timeout)
        self._sock.connect(target)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _send(self, frame: dict) -> None:
        self._file.write(encode_frame(frame))
        self._file.flush()

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ConnectionError(
                f"server at {self.address} closed the connection"
            )
        return decode_frame(line)

    def request(self, op: str, **fields) -> dict:
        """One request/response round trip; raises on ``ok: false``."""
        self._send({"op": op, **fields})
        response = self._recv()
        if not response.get("ok", False):
            raise ServiceError(
                response.get("error", f"{op} failed with no message")
            )
        return response

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def ping(self) -> dict:
        response = self.request("ping")
        version = response.get("version")
        if version != PROTOCOL_VERSION:
            raise ServiceError(
                f"server speaks protocol {version}, "
                f"this client {PROTOCOL_VERSION}"
            )
        return response

    def submit(
        self, spec_dict: dict, tenant: str = "default", priority: int = 0
    ) -> dict:
        """Submit a study spec; returns ``{"job", "deduped", ...}``."""
        return self.request(
            "submit", spec=spec_dict, tenant=tenant, priority=priority
        )

    def jobs(self) -> list[dict]:
        return self.request("jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self.request("status", job=job_id)["status"]

    def result(self, job_id: str) -> dict:
        """The finished study's result dict (error unless ``done``)."""
        return self.request("result", job=job_id)["result"]

    def cancel(self, job_id: str) -> dict:
        return self.request("cancel", job=job_id)

    def stats(self) -> dict:
        return self.request("stats")

    def metrics(self, tenant: str | None = None) -> dict:
        """The server's live metrics: registry snapshot, per-tenant
        and global aggregates with histogram quantiles."""
        fields = {} if tenant is None else {"tenant": tenant}
        return self.request("metrics", **fields)["metrics"]

    def shutdown(self) -> dict:
        return self.request("shutdown")

    def watch(self, job_id: str, timeout: float = 600.0) -> Iterator[dict]:
        """Stream a job's events until it reaches a terminal state.

        Yields ``job_state`` and ``front`` event frames (the
        subscription starts with a replay of the job's current state,
        so watching an already-finished job yields its final state
        immediately).  ``timeout`` bounds the wait for *each* frame.
        """
        self._sock.settimeout(timeout)
        self._send({"op": "watch", "job": job_id})
        response = self._recv()
        if not response.get("ok", False):
            raise ServiceError(response.get("error", "watch failed"))
        while True:
            frame = self._recv()
            if "event" not in frame:
                raise ServiceError(f"expected event frame, got {frame!r}")
            yield frame
            if frame["event"] == "job_state" and frame.get("terminal"):
                return


def wait_for_server(
    address: str, timeout: float = 20.0, interval: float = 0.1
) -> None:
    """Block until the server at ``address`` answers a ping.

    The test/CI helper for "start the server, then talk to it":
    retries connect-and-ping until ``timeout``, re-raising the last
    error when it expires.
    """
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(address, timeout=interval * 10) as client:
                client.ping()
                return
        except (OSError, ServiceError) as exc:
            last = exc
            time.sleep(interval)
    raise TimeoutError(
        f"no server answering at {address} within {timeout:.0f}s"
    ) from last
