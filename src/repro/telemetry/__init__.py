"""``repro.telemetry`` — opt-in tracing and metrics for the study stack.

Five small, zero-dependency pieces:

* :class:`Tracer` — structured span/event records (monotonic
  timestamps, study/run/wave/config ids, buffered writes) onto a JSONL
  sink, under the documented, versioned schema of
  :mod:`repro.telemetry.schema`; :meth:`Tracer.bind` stamps service
  job/tenant ids so server records join study records;
* :class:`MetricsCollector` — disjoint phase timers (compile,
  schedule, regalloc, timing-validate, simulate, netlist-stats,
  test-cost, energy), integer counters and per-point latency
  :class:`Histogram` s, with picklable snapshots so process-pool
  workers report their share for merging on wave completion;
* :class:`Histogram` — fixed-bucket, mergeable latency distributions
  with estimated p50/p90/p99;
* :class:`LiveRegistry` — the long-lived, thread-safe counters/gauges/
  histograms the study server exposes over its ``metrics`` op and the
  Prometheus ``/metrics`` listener (:class:`MetricsExporter`,
  :func:`render_prometheus`);
* :func:`summarize_trace` / :func:`format_trace_summary` — offline
  analysis of a recorded run (the ``python -m repro trace summarize``
  subcommand).

Telemetry is strictly opt-in and result-equivalent: every instrumented
call site defaults to ``tracer=None`` / ``metrics=None`` and produces
identical fronts and cache contents either way.
"""

from repro.telemetry.histogram import (
    DEFAULT_BOUNDS,
    Histogram,
    merge_histogram_snapshots,
)
from repro.telemetry.live import (
    LiveRegistry,
    MetricsExporter,
    aggregate_series,
    render_prometheus,
)
from repro.telemetry.metrics import (
    PHASES,
    MetricsCollector,
    format_phases,
    merge_snapshots,
)
from repro.telemetry.schema import (
    SCHEMA_VERSION,
    read_trace,
    validate_record,
)
from repro.telemetry.summarize import (
    format_trace_summary,
    load_trace,
    summarize_trace,
)
from repro.telemetry.tracer import BoundTracer, Tracer

__all__ = [
    "BoundTracer",
    "DEFAULT_BOUNDS",
    "Histogram",
    "LiveRegistry",
    "MetricsCollector",
    "MetricsExporter",
    "PHASES",
    "SCHEMA_VERSION",
    "Tracer",
    "aggregate_series",
    "format_phases",
    "format_trace_summary",
    "load_trace",
    "merge_histogram_snapshots",
    "merge_snapshots",
    "read_trace",
    "render_prometheus",
    "summarize_trace",
    "validate_record",
]
