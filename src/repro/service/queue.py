"""The job queue: priorities, per-tenant fairness, durable state.

A :class:`Job` is one submitted spec with an owner (*tenant*), a
priority and a lifecycle (``queued → running → done|failed|cancelled``).
The queue is plain data plus scheduling policy — no threads, no I/O —
so the server can mutate it from its event loop and unit tests can
drive every corner without a socket in sight.

Scheduling is fair across tenants first, priority within a tenant
second: :meth:`JobQueue.pick` chooses the eligible tenant with the
fewest running jobs (ties broken by who was scheduled longest ago),
then that tenant's highest-priority oldest job.  A tenant hammering
the queue with a hundred submissions therefore delays its *own* jobs,
not its neighbours'.

Duplicate submissions dedupe on ``(tenant, spec_id)`` — the same
stable content hash checkpoints and the result cache derive
(:attr:`~repro.study.spec.StudySpec.spec_id`) — so a client retrying a
submit after a dropped connection gets the original job back instead
of queueing the study twice.  A *finished* duplicate re-queues only
when the first attempt failed or was cancelled.

The whole queue serialises to one dict (:meth:`JobQueue.to_dict`) so
the server can persist it through the checkpoint machinery; on load,
jobs that were mid-run are returned to ``queued`` — their evaluated
points live in per-job study checkpoints, so re-running them resumes
rather than restarts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Job", "JobQueue", "JobState"]

QUEUE_SCHEMA = 1


class JobState:
    """The lifecycle names (plain strings on the wire and on disk)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a job never leaves (except by explicit resubmission).
    TERMINAL = (DONE, FAILED, CANCELLED)
    #: States in which a duplicate submit returns the existing job.
    DEDUPE = (QUEUED, RUNNING, DONE)


@dataclass
class Job:
    """One submitted study and its lifecycle bookkeeping.

    ``job_id`` is ``<tenant>-<spec_id prefix>`` — human-quotable, and
    stable across server restarts because both halves are.  ``seq`` is
    the submission serial (FIFO tiebreaker); ``last_scheduled`` the
    scheduler serial of the job's tenant when it last started (fairness
    tiebreaker).  ``interrupted`` marks a job recovered from a killed
    server, so the runner knows to resume from its study checkpoint.

    ``submitted_at``/``started_at``/``finished_at`` are wall-clock
    (``time.time``) lifecycle stamps — queue-wait (started - submitted)
    and run duration (finished - started) feed the live metrics
    histograms and the ``repro top`` dashboard.  They persist with the
    job, so waits stay meaningful across a server restart.
    """

    tenant: str
    spec_id: str
    spec_dict: dict
    priority: int = 0
    seq: int = 0
    state: str = JobState.QUEUED
    error: str | None = None
    interrupted: bool = False
    submissions: int = 1
    submitted_at: float | None = None
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def job_id(self) -> str:
        return f"{self.tenant}-{self.spec_id[:10]}"

    @property
    def name(self) -> str:
        return str(self.spec_dict.get("name", "?"))

    def describe(self) -> dict:
        """The wire/status view of this job."""
        return {
            "job": self.job_id,
            "tenant": self.tenant,
            "name": self.name,
            "spec_id": self.spec_id,
            "priority": self.priority,
            "state": self.state,
            "error": self.error,
            "submissions": self.submissions,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "spec_id": self.spec_id,
            "spec": self.spec_dict,
            "priority": self.priority,
            "seq": self.seq,
            "state": self.state,
            "error": self.error,
            "interrupted": self.interrupted,
            "submissions": self.submissions,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> Job:
        return cls(
            tenant=str(data["tenant"]),
            spec_id=str(data["spec_id"]),
            spec_dict=data["spec"],
            priority=int(data.get("priority", 0)),
            seq=int(data.get("seq", 0)),
            state=str(data.get("state", JobState.QUEUED)),
            error=data.get("error"),
            interrupted=bool(data.get("interrupted", False)),
            submissions=int(data.get("submissions", 1)),
            submitted_at=data.get("submitted_at"),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
        )


class JobQueue:
    """Priority queue with per-tenant fairness and submit dedupe.

    ``tenant_max_running`` caps how many of one tenant's jobs run
    concurrently (the server separately caps total concurrency through
    its worker budget).
    """

    def __init__(self, tenant_max_running: int = 2) -> None:
        if tenant_max_running < 1:
            raise ValueError("tenant_max_running must be >= 1")
        self.tenant_max_running = tenant_max_running
        self.jobs: dict[str, Job] = {}
        self._seq = 0
        self._sched_seq = 0
        self._last_scheduled: dict[str, int] = {}

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self, tenant: str, spec_id: str, spec_dict: dict, priority: int = 0
    ) -> tuple[Job, bool]:
        """Queue a job; returns ``(job, deduped)``.

        ``deduped=True`` means an equivalent submission already exists:
        queued, running, or successfully finished — the caller gets the
        original job (its id, its state, eventually its result).  A
        failed or cancelled duplicate is *re-armed*: same job id, back
        to ``queued``, priority raised to the new submission's if
        higher.
        """
        if not tenant:
            raise ValueError("tenant must be non-empty")
        job = Job(
            tenant=tenant, spec_id=spec_id, spec_dict=spec_dict,
            priority=priority,
        )
        existing = self.jobs.get(job.job_id)
        if existing is not None:
            existing.submissions += 1
            if existing.state in JobState.DEDUPE:
                return existing, True
            # failed/cancelled: resubmission is the retry path
            existing.state = JobState.QUEUED
            existing.error = None
            existing.priority = max(existing.priority, priority)
            existing.submitted_at = time.time()
            existing.started_at = None
            existing.finished_at = None
            self._seq += 1
            existing.seq = self._seq
            return existing, False
        self._seq += 1
        job.seq = self._seq
        job.submitted_at = time.time()
        self.jobs[job.job_id] = job
        return job, False

    def get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(
                f"no job {job_id!r} "
                f"(known: {', '.join(sorted(self.jobs)) or 'none'})"
            )
        return job

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def running_count(self, tenant: str | None = None) -> int:
        return sum(
            1 for j in self.jobs.values()
            if j.state == JobState.RUNNING
            and (tenant is None or j.tenant == tenant)
        )

    def queued(self) -> list[Job]:
        return [
            j for j in self.jobs.values() if j.state == JobState.QUEUED
        ]

    def pick(self) -> Job | None:
        """The next job to start, or None when nothing is eligible.

        Fairness first: among tenants with queued work under their
        running cap, the one with the fewest running jobs wins (ties to
        the tenant scheduled longest ago, then name for determinism).
        Then that tenant's best job: highest priority, oldest
        submission.  The caller marks the job running via
        :meth:`mark_running`.
        """
        by_tenant: dict[str, list[Job]] = {}
        for job in self.queued():
            by_tenant.setdefault(job.tenant, []).append(job)
        eligible = [
            tenant for tenant in by_tenant
            if self.running_count(tenant) < self.tenant_max_running
        ]
        if not eligible:
            return None
        tenant = min(
            eligible,
            key=lambda t: (
                self.running_count(t),
                self._last_scheduled.get(t, 0),
                t,
            ),
        )
        return min(by_tenant[tenant], key=lambda j: (-j.priority, j.seq))

    def mark_running(self, job: Job) -> None:
        self._sched_seq += 1
        self._last_scheduled[job.tenant] = self._sched_seq
        job.state = JobState.RUNNING
        job.started_at = time.time()

    def finish(self, job: Job, state: str, error: str | None = None) -> None:
        if state not in JobState.TERMINAL:
            raise ValueError(f"not a terminal state: {state!r}")
        job.state = state
        job.error = error
        job.interrupted = False
        job.finished_at = time.time()

    # ------------------------------------------------------------------
    # durable state
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": QUEUE_SCHEMA,
            "tenant_max_running": self.tenant_max_running,
            "seq": self._seq,
            "sched_seq": self._sched_seq,
            "last_scheduled": dict(self._last_scheduled),
            "jobs": [
                job.to_dict()
                for job in sorted(self.jobs.values(), key=lambda j: j.seq)
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> JobQueue:
        """Rehydrate a queue; mid-run jobs return to ``queued``.

        A job that was ``running`` when the server died is exactly a
        job whose study was interrupted: it goes back in the queue with
        ``interrupted=True`` so the runner resumes it from its study
        checkpoint instead of starting over.
        """
        if data.get("schema") != QUEUE_SCHEMA:
            raise ValueError(
                f"queue state has schema {data.get('schema')!r}; "
                f"this reader handles {QUEUE_SCHEMA}"
            )
        queue = cls(
            tenant_max_running=int(data.get("tenant_max_running", 2))
        )
        queue._seq = int(data.get("seq", 0))
        queue._sched_seq = int(data.get("sched_seq", 0))
        queue._last_scheduled = {
            str(k): int(v)
            for k, v in data.get("last_scheduled", {}).items()
        }
        for entry in data.get("jobs", []):
            job = Job.from_dict(entry)
            if job.state == JobState.RUNNING:
                job.state = JobState.QUEUED
                job.interrupted = True
            queue.jobs[job.job_id] = job
        return queue
