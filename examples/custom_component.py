#!/usr/bin/env python3
"""Characterise a custom functional unit and price its test.

Shows the component-engineering workflow a library user would follow:
build a gate-level netlist with :class:`WordBuilder`, run the ATPG to
get n_p and fault coverage, run the march engine on a memory, and see
how port->bus binding changes the unit's transport latency (the Fig. 6
effect) inside an architecture.

Run:  python examples/custom_component.py
"""

from repro import run_atpg, MARCH_CM, run_march, transport_latency
from repro.components.library import alu_spec, pc_spec
from repro.memtest import FaultyMemory, StuckAtCellFault
from repro.netlist import WordBuilder, netlist_stats, to_structural_verilog
from repro.tta import Architecture, UnitInstance

# 1. A custom 8-bit saturating adder as a gate-level netlist.
wb = WordBuilder("satadd8")
a = wb.input_word("a", 8)
b = wb.input_word("b", 8)
total, carry = wb.ripple_adder(a, b)
saturated = wb.mux2_word(carry, total, wb.const_word(0xFF, 8))
wb.output_word("y", saturated)
netlist = wb.netlist
netlist.check()

stats = netlist_stats(netlist)
print(f"satadd8: {stats.num_gates} gates, area {stats.area:.1f} "
      f"NAND2-eq, depth {stats.logic_depth}")

# 2. ATPG back-annotation: the n_p that eq. 11 consumes.
result = run_atpg(netlist, use_cache=False)
print(f"ATPG: {result.num_patterns} patterns, "
      f"{result.fault_coverage:.2f}% fault coverage "
      f"({result.num_faults} collapsed faults, "
      f"{result.redundant} proven redundant)")

# 3. A glimpse of the structural Verilog export.
verilog = to_structural_verilog(netlist)
print("\nstructural Verilog (first 5 lines):")
print("\n".join(verilog.splitlines()[:5]))

# 4. March-test a small memory with an injected fault.
memory = FaultyMemory(8, 8, [StuckAtCellFault(3, 2, value=1)])
march = run_march(MARCH_CM, memory)
print(f"\n{march.test_name} on faulty 8x8 memory: "
      f"{'PASS (bad!)' if march.passed else 'FAIL as expected'} "
      f"-> {march.first_failure}")

# 5. The Fig. 6 effect: binding both ALU inputs to one bus raises CD.
spread = Architecture(
    "spread", 16, 3,
    [UnitInstance("fu", alu_spec(16)), UnitInstance("pc", pc_spec(16))],
)
shared = Architecture(
    "shared", 16, 3,
    [UnitInstance("fu", alu_spec(16)), UnitInstance("pc", pc_spec(16))],
    connectivity={
        ("fu", "a"): frozenset({0}),
        ("fu", "b"): frozenset({0}),
    },
)
print(f"\ntransport latency CD: spread ports = "
      f"{transport_latency(spread, 'fu')}, shared bus = "
      f"{transport_latency(shared, 'fu')}  (eqs. 9 vs 10)")
