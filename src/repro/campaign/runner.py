"""Campaign execution: fan out, cache, resume.

Every configuration of a sweep compiles independently of every other, so
the evaluation loop — the hot path of the whole flow — fans out over a
``ProcessPoolExecutor``.  ``workers=1`` bypasses the pool entirely and
runs the exact serial loop the one-shot :func:`repro.explore.explore`
uses; both paths keep the space's configuration order, so serial and
parallel campaigns produce identical point lists and Pareto sets.

Points already present in the :class:`~repro.campaign.cache.ResultCache`
are never re-evaluated, which is also the resume story: kill a campaign
half-way and the next invocation picks up at the first un-cached point.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro.apps.registry import build_workload
from repro.campaign.cache import ResultCache
from repro.campaign.spec import CampaignSpec
from repro.compiler.interp import IRInterpreter
from repro.explore.evaluate import (
    EvaluatedPoint,
    EvaluationContext,
    evaluate_config_worker,
    init_evaluation_worker,
)
from repro.explore.explorer import ExplorationResult
from repro.explore.selection import SelectionResult, select_architecture
from repro.explore.space import ArchConfig, space_by_name
from repro.testcost.cost import attach_test_costs

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class RunStats:
    """How one (workload, space, width) job was executed."""

    total: int                 # points in the space
    cache_hits: int            # served from the result cache
    evaluated: int             # actually compiled this run
    workers: int               # pool size used (1 = serial path)
    elapsed: float             # wall-clock seconds for the whole job


@dataclass
class WorkloadRun:
    """One job's exploration, optional selection, and run accounting."""

    workload: str
    space: str
    width: int
    result: ExplorationResult
    selection: SelectionResult | None
    stats: RunStats

    @property
    def label(self) -> str:
        return f"{self.workload}/{self.space}/w{self.width}"


@dataclass
class CampaignResult:
    """Everything a campaign produced, in spec job order."""

    spec: CampaignSpec
    runs: list[WorkloadRun] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(r.stats.cache_hits for r in self.runs)

    @property
    def evaluated(self) -> int:
        return sum(r.stats.evaluated for r in self.runs)

    def run(self, label: str) -> WorkloadRun:
        for r in self.runs:
            if r.label == label:
                return r
        raise KeyError(f"no run {label!r} in campaign {self.spec.name!r}")

    def summary(self) -> str:
        lines = [
            f"campaign {self.spec.name!r}: {len(self.runs)} runs, "
            f"{self.evaluated} evaluated, {self.cache_hits} cache hits"
        ]
        for r in self.runs:
            res = r.result
            parts = [
                f"  {r.label:<24} {len(res.points):>4} points",
                f"{len(res.feasible_points):>4} feasible",
                f"{len(res.pareto2d):>3} Pareto-2D",
            ]
            if self.spec.attach_test_costs:
                parts.append(f"{len(res.pareto3d):>3} Pareto-3D")
            parts.append(
                f"[{r.stats.cache_hits} cached, {r.stats.evaluated} "
                f"evaluated, {r.stats.elapsed:.2f}s]"
            )
            if r.selection is not None:
                parts.append(f"-> {r.selection.point.label}")
            elif self.spec.select:
                parts.append("-> (no feasible points)")
            lines.append(" ".join(parts))
        return "\n".join(lines)


def _iter_evaluations(
    configs: list[ArchConfig],
    workload,
    profile: dict[str, int],
    width: int,
    workers: int,
):
    """Yield evaluated points in configuration order, streaming.

    Streaming matters for resumability: the caller persists each point
    as it arrives, so a killed campaign keeps everything that finished
    rather than losing the whole sweep.  ``pool.map`` yields completed
    results in submission order, chunk by chunk.
    """
    if workers <= 1 or len(configs) <= 1:
        context = EvaluationContext(workload, profile, width)
        for config in configs:
            yield context.evaluate(config)
        return
    chunksize = max(1, len(configs) // (workers * 4))
    with ProcessPoolExecutor(
        max_workers=min(workers, len(configs)),
        initializer=init_evaluation_worker,
        initargs=(workload, profile, width),
    ) as pool:
        yield from pool.map(
            evaluate_config_worker, configs, chunksize=chunksize
        )


def evaluate_configs(
    configs: list[ArchConfig],
    workload,
    profile: dict[str, int],
    width: int = 16,
    workers: int = 1,
) -> list[EvaluatedPoint]:
    """Evaluate a configuration list, fanning out when ``workers > 1``.

    Order-preserving in both modes: a drop-in parallel
    :func:`repro.explore.evaluate.evaluate_space`.
    """
    return list(
        _iter_evaluations(configs, workload, profile, width, workers)
    )


def _run_job(
    spec: CampaignSpec,
    workload_name: str,
    space_name: str,
    width: int,
    workers: int,
    cache: ResultCache | None,
    progress: ProgressFn | None,
) -> WorkloadRun:
    started = perf_counter()
    workload = build_workload(workload_name)
    configs = space_by_name(space_name)
    profile = IRInterpreter(workload, width=width).run().block_counts

    # Only ask the cache to restore test costs the spec will use —
    # otherwise output would depend on what earlier campaigns attached.
    march = spec.march if spec.attach_test_costs else None
    points: list[EvaluatedPoint | None] = [None] * len(configs)
    missing: list[int] = []
    for i, config in enumerate(configs):
        cached = (
            cache.get(workload_name, config, width, march)
            if cache is not None
            else None
        )
        if cached is not None:
            points[i] = cached
        else:
            missing.append(i)

    hits = len(configs) - len(missing)
    if progress is not None:
        progress(
            f"{workload_name}/{space_name}/w{width}: {hits} cached, "
            f"evaluating {len(missing)} of {len(configs)} points "
            f"({workers} worker{'s' if workers != 1 else ''})"
        )
    if missing:
        fresh = _iter_evaluations(
            [configs[i] for i in missing], workload, profile, width, workers
        )
        for i, point in zip(missing, fresh):
            points[i] = point
            if cache is not None:
                cache.put(workload_name, point, width, march)

    result = ExplorationResult(
        workload=workload.name, profile=profile, points=points
    )

    if spec.attach_test_costs and result.pareto2d:
        # Points restored from the cache already carry a march-matched
        # test cost; only the rest need the (ATPG-backed) attachment.
        todo = [p for p in result.pareto2d if p.test_cost is None]
        attach_test_costs(todo, spec.march, width)
        if cache is not None:
            for point in todo:
                cache.put(workload_name, point, width, march)

    selection: SelectionResult | None = None
    if spec.select and result.pareto2d:
        if spec.attach_test_costs:
            selection = select_architecture(
                result.pareto3d, weights=spec.weights
            )
        else:
            selection = select_architecture(
                result.pareto2d, weights=spec.weights, use_test_cost=False
            )

    stats = RunStats(
        total=len(configs),
        cache_hits=hits,
        evaluated=len(missing),
        workers=workers,
        elapsed=perf_counter() - started,
    )
    return WorkloadRun(
        workload=workload_name,
        space=space_name,
        width=width,
        result=result,
        selection=selection,
        stats=stats,
    )


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: ProgressFn | None = None,
) -> CampaignResult:
    """Run every (workload, space, width) job of ``spec``.

    ``cache=None`` disables caching entirely (every point re-evaluates);
    pass ``ResultCache()`` for the default on-disk location.  ``workers``
    is per job: 1 keeps everything in-process and deterministic,
    anything larger fans the un-cached points out over a process pool.
    """
    spec.validate()
    if workers < 1:
        raise ValueError("workers must be >= 1")
    campaign = CampaignResult(spec=spec)
    for workload_name, space_name, width in spec.jobs:
        campaign.runs.append(
            _run_job(
                spec, workload_name, space_name, width,
                workers, cache, progress,
            )
        )
    return campaign
