"""Ablation — march algorithm choice vs register-file test cost.

Eq. 12's ``n_p`` is the march length over the register bank; the paper
assumes marching patterns [14] without fixing the algorithm.  This bench
prices the Fig. 9 RFs under MATS+ (5n), March X (6n), March Y (8n) and
March C- (10n): cost scales with the algorithm's length while coverage
of the memory fault classes grows (cf. tests/test_memtest.py).
"""

from benchmarks.conftest import save_artifact
from repro.explore import ArchConfig, RFConfig, build_architecture
from repro.memtest import MARCH_ALGORITHMS
from repro.testcost import architecture_test_cost

_ORDER = ["MATS+", "March X", "March Y", "March C-"]


def test_march_ablation(benchmark):
    arch = build_architecture(
        ArchConfig(num_buses=2, rfs=(RFConfig(8), RFConfig(12)))
    )

    def sweep():
        return {
            name: architecture_test_cost(arch, march_name=name)
            for name in _ORDER
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rf_costs = {
        name: (
            breakdown.unit("rf0").component_cost,
            breakdown.unit("rf1").component_cost,
        )
        for name, breakdown in results.items()
    }
    # longer march -> strictly higher RF cost, same ordering for both RFs
    for earlier, later in zip(_ORDER, _ORDER[1:]):
        assert rf_costs[earlier][0] < rf_costs[later][0]
        assert rf_costs[earlier][1] < rf_costs[later][1]
    # RF2 (12 regs) always costs more than RF1 (8 regs)
    for name in _ORDER:
        assert rf_costs[name][1] > rf_costs[name][0]

    lines = [
        "Ablation: march algorithm vs RF test cost (Fig. 9 register files)",
        f"{'algorithm':<12}{'ops/word':>9}{'f_trf RF1(8)':>14}"
        f"{'f_trf RF2(12)':>15}{'total f_t':>11}",
    ]
    for name in _ORDER:
        march = MARCH_ALGORITHMS[name]
        lines.append(
            f"{name:<12}{march.ops_per_word:>9}"
            f"{rf_costs[name][0]:>14}{rf_costs[name][1]:>15}"
            f"{results[name].total:>11}"
        )
    save_artifact("ablation_march", "\n".join(lines))
