"""Fig. 6 — two identical FUs with different port->bus connectors.

"the figure 6 shows the two identical components (FU1 = FU2) where
ftf1 < ftf2 due to their different ports' connectors."  FU1's operand
and trigger reach distinct buses (CD = 3 by eq. 9); FU2's two input
ports share one bus (CD >= 4 by eq. 10), so its test cost is strictly
larger although the hardware is identical.
"""

from benchmarks.conftest import save_artifact
from repro.components.library import alu_spec, pc_spec
from repro.testcost import architecture_test_cost, transport_latency
from repro.tta import Architecture, UnitInstance


def _fig6_architecture():
    width = 16
    units = [
        UnitInstance("fu1", alu_spec(width)),
        UnitInstance("fu2", alu_spec(width)),
        UnitInstance("pc", pc_spec(width)),
    ]
    # FU2: both input ports tied to bus 0 (the Fig. 6 situation).
    connectivity = {
        ("fu2", "a"): frozenset({0}),
        ("fu2", "b"): frozenset({0}),
    }
    return Architecture(
        "fig6", width, num_buses=3, units=units, connectivity=connectivity
    )


def test_fig6_port_binding(benchmark):
    arch = _fig6_architecture()
    breakdown = benchmark.pedantic(
        lambda: architecture_test_cost(arch), rounds=1, iterations=1
    )

    cd1 = transport_latency(arch, "fu1")
    cd2 = transport_latency(arch, "fu2")
    assert cd1 == 3, "distinct buses: eq. 9 minimum"
    assert cd2 >= 4, "shared input bus: eq. 10"

    ftf1 = breakdown.unit("fu1").component_cost
    ftf2 = breakdown.unit("fu2").component_cost
    assert ftf1 < ftf2, "identical FUs, different connectors -> ftf1 < ftf2"

    save_artifact(
        "fig6_port_binding",
        "\n".join(
            [
                "Fig. 6 reproduction: identical FUs, different connectors",
                f"FU1 (spread ports):  CD={cd1}  f_tfu={ftf1}",
                f"FU2 (shared bus):    CD={cd2}  f_tfu={ftf2}",
                f"ratio: {ftf2/ftf1:.2f}x",
            ]
        ),
    )
