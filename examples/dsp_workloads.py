#!/usr/bin/env python3
"""DSP-style workloads on TTAs: FIR filter and dot product.

The MOVE framework's home turf is embedded DSP — this example compiles
a 4-tap FIR filter and a dot product (both need the multiplier FU) onto
two machines and shows how the extra ALU/bus resources shorten the
schedules, verifying every result against plain Python.

Run:  python examples/dsp_workloads.py
"""

from repro import TTASimulator
from repro.apps import build_dotprod_ir, build_fir_ir
from repro.apps.kernels import fir_reference
from repro.compiler import IRInterpreter, compile_ir
from repro.explore import ArchConfig, RFConfig, build_architecture

SAMPLES = [10, 64, 23, 99, 5, 31, 77, 42, 18, 63, 11, 90]
TAPS = [3, 7, 1, 5]
VEC_A = [3, 1, 4, 1, 5, 9, 2, 6]
VEC_B = [2, 7, 1, 8, 2, 8, 1, 8]

small = build_architecture(
    ArchConfig(num_buses=2, num_muls=1, rfs=(RFConfig(8),))
)
wide = build_architecture(
    ArchConfig(num_buses=4, num_alus=2, num_muls=1,
               rfs=(RFConfig(8, read_ports=2), RFConfig(12)))
)

print("FIR filter: y[i] = sum_k h[k] * x[i-k]")
fir = build_fir_ir(SAMPLES, TAPS)
profile = IRInterpreter(fir, width=16).run().block_counts
expected = fir_reference(SAMPLES, TAPS)
for arch in (small, wide):
    compiled = compile_ir(fir, arch, profile=profile)
    sim = TTASimulator(arch, compiled.program)
    result = sim.run(max_cycles=500_000)
    got = [sim.dmem_read(600 + i) for i in range(len(SAMPLES))]
    status = "OK" if got == expected else "MISMATCH"
    print(f"  {arch.name:<38} {result.cycles:>7} cycles  [{status}]")
assert got == expected

print("\ndot product:")
dot = build_dotprod_ir(VEC_A, VEC_B)
profile = IRInterpreter(dot, width=16).run().block_counts
expected_dot = sum(a * b for a, b in zip(VEC_A, VEC_B)) & 0xFFFF
for arch in (small, wide):
    compiled = compile_ir(dot, arch, profile=profile)
    sim = TTASimulator(arch, compiled.program)
    result = sim.run(max_cycles=100_000)
    got_dot = sim.dmem_read(100)
    status = "OK" if got_dot == expected_dot else "MISMATCH"
    print(f"  {arch.name:<38} {result.cycles:>7} cycles  "
          f"dot={got_dot} [{status}]")
assert got_dot == expected_dot
print("\nall workloads verified against plain Python")
