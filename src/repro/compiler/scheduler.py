"""Transport list scheduler and move code generator.

Lowers register-allocated IR onto a concrete TTA: every IR operation
becomes an operand move, a trigger move and (usually) a result move,
placed greedily into bus slots under the architecture's resources and the
paper's transport timing relations:

* eq. 2 — the operand move lands no later than the trigger move (equality
  allowed: commits are end-of-cycle and the trigger sees fresh operands);
* eq. 3 — the result move happens >= ``latency`` cycles after the trigger;
* eqs. 4/5 — per-FU in-order issue: operands of a new operation are never
  placed at or before the previous trigger's cycle, and a new trigger is
  delayed until the previous result has been drained;
* eqs. 6-8 — socket decode latency is folded into the one-move-per-bus-
  per-cycle transport granularity.

Scheduling is per basic block with progressive resource reservation;
blocks are concatenated, jump targets patched, and the final program is
checked by :func:`repro.tta.timing.validate_program` — a scheduler bug
fails loudly, never silently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import (
    CMP_OPCODES,
    LOAD_OPCODES,
    Branch,
    Halt,
    IRFunction,
    Jump,
    Op,
)
from repro.compiler.regalloc import RegisterAllocation, allocate
from repro.components.spec import ComponentKind
from repro.tta.arch import Architecture
from repro.tta.isa import (
    GUARD_UNIT,
    SHORT_IMM_BITS,
    Guard,
    Instruction,
    Literal,
    Move,
    PortRef,
    Program,
)
from repro.tta.simulator import BRANCH_DELAY_SLOTS
from repro.tta.timing import validate_program

#: Placeholder for unpatched jump targets (never a valid address).
_JUMP_PLACEHOLDER = -1

#: Bus slots reserved for a jump move (target may patch to a long imm).
_JUMP_SLOTS = 2

_SEARCH_LIMIT = 100_000

#: Literals outside [-limit, limit) need a long-immediate extension slot.
_SHORT_IMM_LIMIT = 1 << (SHORT_IMM_BITS - 1)


class ScheduleError(Exception):
    """The function cannot be scheduled on this architecture."""


@dataclass
class CompileResult:
    """A compiled workload: the program plus per-block metadata."""

    program: Program
    allocation: RegisterAllocation
    block_cycles: dict[str, int]
    block_starts: dict[str, int]
    total_moves: int

    def static_cycles(self, profile: dict[str, int]) -> int:
        """Profile-weighted cycle estimate (the MOVE-style DSE metric)."""
        return sum(
            self.block_cycles[name] * count
            for name, count in profile.items()
            if name in self.block_cycles
        )


@dataclass(slots=True)
class _FUTrack:
    last_trigger: int = -1       # cycle of most recent trigger (eqs. 4/5)
    min_next_trigger: int = 0    # keep the result register drained (eq. 4)
    last_mem_trigger: int = -1   # LSU program order


class _BlockScheduler:
    """Greedy per-block transport scheduler with immediate reservation."""

    def __init__(self, arch: Architecture, allocation: RegisterAllocation):
        self.arch = arch
        self.num_buses = arch.num_buses
        self.allocation = allocation
        self.placed: list[tuple[int, Move]] = []
        # Per-cycle bus occupancy, indexed by cycle (grown on demand):
        # the schedule search probes slot availability cycle by cycle,
        # and a flat list beats hashing every probe.
        self.bus_load: list[int] = []
        self.port_busy: set[tuple[int, str, str]] = set()
        # Per-RF-unit port name tuples (the spec views are cached, but
        # the (unit -> names) resolution is per-architecture).
        self._rf_read_ports: dict[str, tuple[str, ...]] = {}
        self._rf_write_ports: dict[str, tuple[str, ...]] = {}
        self.avail: dict[str, int] = {}     # vreg -> first readable cycle
        self.fu: dict[str, _FUTrack] = {}
        self.guard_ready = 0
        self.last_jump: int | None = None
        self.top = 0                         # highest used cycle + 1
        # Physical-slot hazard tracking: register allocation reuses RF
        # slots across vregs, so a write to a slot must not be scheduled
        # before an earlier tenant's reads (anti-dependence) nor tie with
        # a previous write (output dependence).
        self.slot_reads: dict[tuple[str, int], int] = {}
        self.slot_writes: dict[tuple[str, int], int] = {}

    # -- resource primitives -----------------------------------------------
    @staticmethod
    def _imm_slots(src) -> int:
        if isinstance(src, Literal):
            return 1 if -_SHORT_IMM_LIMIT <= src.value < _SHORT_IMM_LIMIT else 2
        return 1

    def _load_at(self, cycle: int) -> int:
        load = self.bus_load
        return load[cycle] if cycle < len(load) else 0

    def _add_load(self, cycle: int, amount: int) -> None:
        load = self.bus_load
        if cycle >= len(load):
            load.extend([0] * (cycle + 1 - len(load)))
        load[cycle] += amount

    def _bus_free(self, cycle: int, want: int) -> bool:
        """Slot availability, with the 1-bus long-immediate convention.

        A long immediate needs an extension slot.  On a single-bus machine
        that extension word rides in the *next* instruction, which must
        stay completely empty (variable-length immediate fetch).
        """
        nb = self.num_buses
        if want <= nb:
            return self._load_at(cycle) + want <= nb
        if nb == 1 and want == 2:
            return self._load_at(cycle) == 0 and self._load_at(cycle + 1) == 0
        return False

    def _port_free(self, cycle: int, unit: str, port: str) -> bool:
        return (cycle, unit, port) not in self.port_busy

    def _place(
        self,
        cycle: int,
        move: Move,
        ports: list[tuple[str, str]],
        slots: int | None = None,
    ) -> None:
        want = slots if slots is not None else self._imm_slots(move.src)
        nb = self.num_buses
        if want > nb:
            # 1-bus long immediate: block the extension instruction.
            self._add_load(cycle, 1)
            self._add_load(cycle + 1, nb - self._load_at(cycle + 1))
            self.top = max(self.top, cycle + 2)
        else:
            self._add_load(cycle, want)
            self.top = max(self.top, cycle + 1)
        for unit, port in ports:
            self.port_busy.add((cycle, unit, port))
        self.placed.append((cycle, move))

    def _pick_rf_port(self, cycle: int, rf_unit: str, output: bool) -> str | None:
        cache = self._rf_read_ports if output else self._rf_write_ports
        names = cache.get(rf_unit)
        if names is None:
            spec = self.arch.unit(rf_unit).spec
            ports = spec.output_ports if output else spec.input_ports
            names = cache[rf_unit] = tuple(p.name for p in ports)
        busy = self.port_busy
        for name in names:
            if (cycle, rf_unit, name) not in busy:
                return name
        return None

    # -- generic "deliver a value to an input port" -------------------------
    def _deliver(
        self,
        operand: str | int,
        dst: PortRef,
        earliest: int,
        opcode: str | None = None,
        dst_reg: int | None = None,
        reserve_dst_port: bool = True,
    ) -> int:
        """Place a move carrying ``operand`` into ``dst`` at the earliest
        feasible cycle >= ``earliest``; returns that cycle."""
        literal = isinstance(operand, int)
        ready = 0 if literal else self.avail.get(operand, 0)
        cycle = max(earliest, ready, 0)
        if literal:
            lit_src = Literal(operand)
            lit_slots = self._imm_slots(lit_src)
        else:
            rf_unit, index = self.allocation.home(operand)
        port_busy = self.port_busy
        bus_load = self.bus_load
        nb = self.num_buses
        dst_unit, dst_port = dst.unit, dst.port
        for _ in range(_SEARCH_LIMIT):
            ports: list[tuple[str, str]] = []
            if reserve_dst_port and (cycle, dst_unit, dst_port) in port_busy:
                cycle += 1
                continue
            if literal:
                src: Literal | PortRef = lit_src
                src_reg = None
                if not self._bus_free(cycle, lit_slots):
                    cycle += 1
                    continue
            else:
                if (bus_load[cycle] if cycle < len(bus_load) else 0) >= nb:
                    cycle += 1
                    continue
                rport = self._pick_rf_port(cycle, rf_unit, output=True)
                if rport is None:
                    cycle += 1
                    continue
                src = PortRef(rf_unit, rport)
                src_reg = index
                ports.append((rf_unit, rport))
            if reserve_dst_port:
                ports.append((dst.unit, dst.port))
            move = Move(src, dst, opcode=opcode, src_reg=src_reg, dst_reg=dst_reg)
            self._place(cycle, move, ports)
            if not literal:
                slot = (rf_unit, index)
                prior = self.slot_reads.get(slot, -1)
                if cycle > prior:
                    self.slot_reads[slot] = cycle
            return cycle
        raise ScheduleError(f"cannot deliver {operand!r} to {dst}")

    def _drain_result(
        self,
        unit_name: str,
        result_port: str,
        earliest: int,
        dst: str | None,
        to_guard: bool,
    ) -> int:
        """Place the result move (FU result register -> RF home or guard)."""
        cycle = max(earliest, 0)
        if not to_guard:
            assert dst is not None
            slot = self.allocation.home(dst)
            cycle = max(
                cycle,
                self.slot_reads.get(slot, -1),          # anti-dependence
                self.slot_writes.get(slot, -1) + 1,     # output dependence
            )
        port_busy = self.port_busy
        bus_load = self.bus_load
        nb = self.num_buses
        for _ in range(_SEARCH_LIMIT):
            if (bus_load[cycle] if cycle < len(bus_load) else 0) >= nb or (
                cycle, unit_name, result_port
            ) in port_busy:
                cycle += 1
                continue
            if to_guard:
                move = Move(
                    PortRef(unit_name, result_port), PortRef(GUARD_UNIT, "g0")
                )
                self._place(cycle, move, [(unit_name, result_port)])
                self.guard_ready = cycle + 1
                return cycle
            rf_unit, index = slot
            wport = self._pick_rf_port(cycle, rf_unit, output=False)
            if wport is None:
                cycle += 1
                continue
            move = Move(
                PortRef(unit_name, result_port),
                PortRef(rf_unit, wport),
                dst_reg=index,
            )
            self._place(
                cycle, move, [(unit_name, result_port), (rf_unit, wport)]
            )
            self.avail[dst] = cycle + 1
            self.slot_writes[slot] = cycle
            return cycle
        raise ScheduleError(f"cannot drain result of {unit_name}")

    # -- op scheduling ----------------------------------------------------
    def schedule_op(self, op: Op, guard_dst: bool = False) -> None:
        if op.opcode == "li":
            self._schedule_copy(int(op.a), op.dst)
            return
        if op.opcode == "mov":
            self._schedule_fu_op(Op("or", op.dst, op.a, 0), guard_dst)
            return
        if op.opcode in LOAD_OPCODES or op.opcode == "st":
            self._schedule_memory(op)
            return
        self._schedule_fu_op(op, guard_dst)

    def _schedule_copy(self, value: int, dst: str) -> None:
        slot = self.allocation.home(dst)
        rf_unit, index = slot
        src = Literal(value)
        want = self._imm_slots(src)
        cycle = max(
            0,
            self.slot_reads.get(slot, -1),
            self.slot_writes.get(slot, -1) + 1,
        )
        for _ in range(_SEARCH_LIMIT):
            if self._bus_free(cycle, want):
                wport = self._pick_rf_port(cycle, rf_unit, output=False)
                if wport is not None:
                    move = Move(src, PortRef(rf_unit, wport), dst_reg=index)
                    self._place(cycle, move, [(rf_unit, wport)])
                    self.avail[dst] = cycle + 1
                    self.slot_writes[slot] = cycle
                    return
            cycle += 1
        raise ScheduleError("cannot place literal copy")

    def _track(self, unit_name: str) -> _FUTrack:
        track = self.fu.get(unit_name)
        if track is None:
            track = self.fu[unit_name] = _FUTrack()
        return track

    def _choose_fu(self, op: Op) -> "Unitlike":
        candidates = self.arch.fu_for_op(op.opcode)
        if not candidates:
            raise ScheduleError(f"no FU supports {op.opcode!r}")
        if len(candidates) == 1:
            return candidates[0]

        def pressure(unit) -> tuple[int, int]:
            track = self._track(unit.name)
            return (max(track.min_next_trigger, track.last_trigger + 1),
                    track.last_trigger)

        return min(candidates, key=pressure)

    def _schedule_fu_op(self, op: Op, guard_dst: bool) -> None:
        unit = self._choose_fu(op)
        spec = unit.spec
        track = self._track(unit.name)
        trigger_port = spec.trigger_port.name
        operand_port = next(
            (p.name for p in spec.input_ports if not p.is_trigger), None
        )
        result_port = spec.output_ports[0].name

        t_op = track.last_trigger  # so trigger lower bound is last_trigger+1
        if operand_port is not None:
            t_op = self._deliver(
                op.a, PortRef(unit.name, operand_port),
                earliest=track.last_trigger + 1,
            )
        t_trig = self._deliver(
            op.b,
            PortRef(unit.name, trigger_port),
            earliest=max(t_op, track.min_next_trigger, track.last_trigger + 1),
            opcode=op.opcode,
        )
        t_res = self._drain_result(
            unit.name, result_port, t_trig + spec.latency, op.dst, guard_dst
        )
        track.last_trigger = t_trig
        track.min_next_trigger = max(
            track.min_next_trigger, t_res - spec.latency + 1
        )

    def _schedule_memory(self, op: Op) -> None:
        unit = self.arch.lsu
        if unit is None:
            raise ScheduleError("architecture has no load/store unit")
        spec = unit.spec
        track = self._track(unit.name)
        is_store = op.opcode == "st"

        t_op = track.last_trigger
        if is_store:
            t_op = self._deliver(
                op.b, PortRef(unit.name, "wdata"),
                earliest=track.last_trigger + 1,
            )
        t_trig = self._deliver(
            op.a,
            PortRef(unit.name, "addr"),
            earliest=max(
                t_op,
                track.min_next_trigger,
                track.last_trigger + 1,
                track.last_mem_trigger + 1,
            ),
            opcode=op.opcode,
        )
        track.last_trigger = t_trig
        track.last_mem_trigger = t_trig
        if not is_store:
            t_res = self._drain_result(
                unit.name, "rdata", t_trig + spec.latency, op.dst, False
            )
            track.min_next_trigger = max(
                track.min_next_trigger, t_res - spec.latency + 1
            )

    # -- control flow ----------------------------------------------------
    def schedule_guard_load(self, cond: str) -> None:
        """Copy a boolean vreg from its RF home into guard register g0."""
        cycle = self._deliver(
            cond, PortRef(GUARD_UNIT, "g0"), earliest=0, reserve_dst_port=False
        )
        self.guard_ready = cycle + 1

    def schedule_jump(self, guarded: bool, invert: bool) -> int:
        """Place a jump move; target patched after layout."""
        pc_name = self.arch.pc_unit.name
        earliest = max(
            self.guard_ready if guarded else 0,
            self.top - 1 - BRANCH_DELAY_SLOTS + 1,   # work finishes in slot
            0,
        )
        if self.last_jump is not None:
            # A second jump must not sit in the first one's delay window.
            earliest = max(earliest, self.last_jump + BRANCH_DELAY_SLOTS + 1)
        cycle = earliest
        for _ in range(_SEARCH_LIMIT):
            if self._bus_free(cycle, _JUMP_SLOTS) and self._port_free(
                cycle, pc_name, "target"
            ):
                guard = Guard(0, invert) if guarded else None
                move = Move(
                    Literal(_JUMP_PLACEHOLDER),
                    PortRef(pc_name, "target"),
                    opcode="jump",
                    guard=guard,
                )
                self._place(
                    cycle, move, [(pc_name, "target")], slots=_JUMP_SLOTS
                )
                self.last_jump = cycle
                return cycle
            cycle += 1
        raise ScheduleError("cannot place jump")

    # -- finalisation ----------------------------------------------------
    def build_instructions(self, length: int, halt: bool) -> list[Instruction]:
        instructions = [
            Instruction(slots=[None] * self.arch.num_buses)
            for _ in range(length)
        ]
        by_cycle: dict[int, list[Move]] = {}
        for cycle, move in self.placed:
            by_cycle.setdefault(cycle, []).append(move)
        for cycle, moves in by_cycle.items():
            bus = 0
            for move in moves:
                while (
                    bus < self.arch.num_buses
                    and instructions[cycle].slots[bus] is not None
                ):
                    bus += 1
                if bus >= self.arch.num_buses:
                    raise ScheduleError(f"slot overflow at relative cycle {cycle}")
                instructions[cycle].slots[bus] = move
                bus += 1
        if halt and instructions:
            instructions[-1].halt = True
        return instructions


# ----------------------------------------------------------------------
# whole-function compilation
# ----------------------------------------------------------------------
def compile_ir(
    fn: IRFunction,
    arch: Architecture,
    profile: dict[str, int] | None = None,
    validate: bool = True,
) -> CompileResult:
    """Allocate, schedule and lay out ``fn`` for ``arch``."""
    fn.validate()
    rewritten, allocation = allocate(fn, arch, profile)
    return schedule_allocated(rewritten, allocation, arch, validate=validate)


def schedule_allocated(
    rewritten: IRFunction,
    allocation: RegisterAllocation,
    arch: Architecture,
    validate: bool = True,
) -> CompileResult:
    """Schedule and lay out an already register-allocated function.

    ``rewritten``/``allocation`` must come from :func:`allocate` against
    an architecture with the *same register files* — the scheduler reads
    but never mutates them, so one allocation can be reused across every
    configuration sharing an RF arrangement (the exploration sweeps do
    exactly this via ``EvaluationContext``).
    """
    block_instrs: dict[str, list[Instruction]] = {}
    jump_fixups: list[tuple[str, int, str]] = []   # (block, rel cycle, target)
    block_cycles: dict[str, int] = {}

    names = list(rewritten.blocks)
    for position, name in enumerate(names):
        block = rewritten.blocks[name]
        sched = _BlockScheduler(arch, allocation)

        guard_op_index = _fusable_cmp(rewritten, block)
        for index, op in enumerate(block.ops):
            sched.schedule_op(op, guard_dst=(index == guard_op_index))

        term = block.terminator
        fallthrough = names[position + 1] if position + 1 < len(names) else None
        halt = isinstance(term, Halt)
        jump_cycle = None
        if isinstance(term, Jump):
            if term.target != fallthrough:
                jump_cycle = sched.schedule_jump(guarded=False, invert=False)
                jump_fixups.append((name, jump_cycle, term.target))
        elif isinstance(term, Branch):
            needs_jump = not (
                term.if_true == fallthrough and term.if_false == fallthrough
            )
            if needs_jump:
                if guard_op_index is None:
                    sched.schedule_guard_load(term.cond)
                if term.if_true == fallthrough:
                    # Invert: branch away only when the condition is false.
                    jump_cycle = sched.schedule_jump(
                        guarded=True, invert=not term.invert
                    )
                    jump_fixups.append((name, jump_cycle, term.if_false))
                else:
                    jump_cycle = sched.schedule_jump(
                        guarded=True, invert=term.invert
                    )
                    jump_fixups.append((name, jump_cycle, term.if_true))
                    if term.if_false != fallthrough:
                        second = sched.schedule_jump(guarded=False, invert=False)
                        jump_fixups.append((name, second, term.if_false))
                        jump_cycle = second

        length = sched.top
        if jump_cycle is not None:
            length = max(length, jump_cycle + 1 + BRANCH_DELAY_SLOTS)
        length = max(length, 1)
        block_instrs[name] = sched.build_instructions(length, halt)
        block_cycles[name] = length

    # Layout + jump patching.
    program = Program(name=rewritten.name, data=dict(rewritten.data))
    block_starts: dict[str, int] = {}
    for name in names:
        block_starts[name] = len(program.instructions)
        for index, instruction in enumerate(block_instrs[name]):
            if index == 0:
                instruction.label = name
            program.append(instruction)

    for name, rel_cycle, target in jump_fixups:
        instruction = program.instructions[block_starts[name] + rel_cycle]
        for bus, move in enumerate(instruction.slots):
            if (
                move is not None
                and isinstance(move.src, Literal)
                and move.src.value == _JUMP_PLACEHOLDER
                and move.opcode == "jump"
            ):
                instruction.slots[bus] = Move(
                    Literal(block_starts[target]),
                    move.dst,
                    opcode=move.opcode,
                    guard=move.guard,
                )
                break
        else:
            raise ScheduleError(f"jump fixup lost in block {name!r}")

    total_moves = sum(len(i.moves) for i in program.instructions)
    result = CompileResult(
        program=program,
        allocation=allocation,
        block_cycles=block_cycles,
        block_starts=block_starts,
        total_moves=total_moves,
    )
    if validate:
        violations = validate_program(arch, program, strict=False)
        if violations:
            details = "; ".join(str(v) for v in violations[:5])
            raise ScheduleError(
                f"scheduler produced invalid code ({len(violations)} "
                f"violations): {details}"
            )
    return result


def _fusable_cmp(fn: IRFunction, block) -> int | None:
    """Index of a cmp op whose only consumer is this block's branch.

    When found, the cmp's result move targets guard register g0 directly,
    skipping the RF round trip — the scheduler's one classic TTA
    optimisation (software bypassing of the condition).
    """
    term = block.terminator
    if not isinstance(term, Branch):
        return None
    cond = term.cond
    def_index = None
    for index, op in enumerate(block.ops):
        if op.dst == cond:
            def_index = index
    if def_index is None or block.ops[def_index].opcode not in CMP_OPCODES:
        return None
    for other in fn.blocks.values():
        for op in other.ops:
            if cond in op.sources():
                return None
        if other is not block and isinstance(other.terminator, Branch):
            if other.terminator.cond == cond:
                return None
    return def_index
