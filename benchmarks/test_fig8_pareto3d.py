"""Fig. 8 — 3-D Pareto points (area, execution time, test cost).

Checks the paper's two headline observations:

* the area/time projection of the 3-D point set *is* the Fig. 2 curve
  ("the already achieved area-throughput ratio is preserved");
* the test cost "may vary significantly even for the architectures that
  are close to each other at the 2D Pareto curve".
"""

from benchmarks.conftest import save_artifact
from repro.testcost import attach_test_costs


def test_fig8_pareto_3d(benchmark, crypt_exploration):
    result = crypt_exploration
    pareto2d = result.pareto2d

    benchmark.pedantic(
        lambda: attach_test_costs(pareto2d), rounds=1, iterations=1
    )

    assert all(p.test_cost is not None for p in pareto2d)

    # Projection preserved: the 3-D set lives exactly on the 2-D curve.
    pareto3d = result.pareto3d
    labels2d = {p.label for p in pareto2d}
    assert {p.label for p in pareto3d} <= labels2d
    assert len(pareto3d) >= 0.8 * len(pareto2d)

    # Significant test-cost variation along the curve.
    costs = [p.test_cost for p in sorted(pareto2d, key=lambda p: p.area)]
    assert max(costs) / min(costs) > 1.5
    neighbour_jumps = [
        abs(a - b) / min(a, b) for a, b in zip(costs, costs[1:])
    ]
    assert max(neighbour_jumps) > 0.15, (
        "adjacent Pareto points should differ markedly in test cost"
    )

    lines = [
        "Fig. 8 reproduction: 3-D Pareto points (area, cycles, test cost)",
        f"{'architecture':<34}{'area':>9}{'cycles':>10}{'f_t':>8}",
    ]
    for p in sorted(pareto2d, key=lambda p: p.area):
        marker = " *" if p in pareto3d else ""
        lines.append(
            f"{p.label:<34}{p.area:>9.0f}{p.cycles:>10}{p.test_cost:>8}{marker}"
        )
    lines.append("(*) member of the 3-D Pareto set")
    lines.append(
        f"test-cost span along the curve: {max(costs)/min(costs):.2f}x, "
        f"max neighbour jump: {max(neighbour_jumps)*100:.0f}%"
    )
    save_artifact("fig8_pareto3d", "\n".join(lines))
