"""IR-level optimisations: constant folding, local CSE, dead-code removal.

The MOVE compiler runs classic scalar optimisations before transport
scheduling; these are the three with the largest effect on our workloads
(the crypt kernel's address arithmetic folds heavily).  All passes are
semantics-preserving per block plus a global liveness-driven DCE; the
test suite checks every pass against the IR interpreter on randomised
programs.
"""

from __future__ import annotations

from repro.compiler.ir import (
    ALU_OPCODES,
    CMP_OPCODES,
    Block,
    Branch,
    IRFunction,
    Op,
)
from repro.compiler.regalloc import liveness
from repro.components.reference import alu_reference, cmp_reference, mul_reference

#: Opcodes that are pure functions of their operands (foldable/CSE-able).
_PURE = ALU_OPCODES | CMP_OPCODES | {"mul", "mov", "li"}

#: Commutative opcodes (operands sorted for CSE keying).
_COMMUTATIVE = {"add", "and", "or", "xor", "mul", "eq", "ne"}


def optimize_ir(
    fn: IRFunction,
    width: int = 16,
    fold_constants: bool = True,
    cse: bool = True,
    dce: bool = True,
) -> IRFunction:
    """Return an optimised copy of ``fn`` (the input is not mutated)."""
    out = IRFunction(fn.name, entry=fn.entry, data=dict(fn.data))
    for name, block in fn.blocks.items():
        ops = list(block.ops)
        terminator = block.terminator
        if fold_constants:
            ops = _fold_block(ops, width)
        if cse:
            ops = _cse_block(ops)
        out.blocks[name] = Block(name, ops, terminator)
    if dce:
        _dce(out)
    out.validate()
    return out


# ----------------------------------------------------------------------
# constant folding + copy/constant propagation (local)
# ----------------------------------------------------------------------
def _evaluate(opcode: str, a: int, b: int | None, width: int) -> int | None:
    if opcode in ALU_OPCODES:
        return alu_reference(opcode, a, b, width)
    if opcode in CMP_OPCODES:
        return cmp_reference(opcode, a, b, width)
    if opcode == "mul":
        return mul_reference(a, b, width)
    return None


def _fold_block(ops: list[Op], width: int) -> list[Op]:
    """Propagate known constants/copies and fold pure ops on literals.

    Constants are tracked per vreg *within the block only*; a vreg that
    is redefined invalidates its entry.  Redefinition of a vreg used
    across blocks stays visible because the folded op still writes it.
    """
    known: dict[str, int] = {}      # vreg -> constant value
    copies: dict[str, str] = {}     # vreg -> original vreg

    def resolve(operand):
        if isinstance(operand, str):
            operand = copies.get(operand, operand)
            if operand in known:
                return known[operand]
        return operand

    folded: list[Op] = []
    for op in ops:
        a = resolve(op.a)
        b = resolve(op.b)
        if op.dst is not None:
            known.pop(op.dst, None)
            copies.pop(op.dst, None)
            # any copy chains through dst are now stale
            stale = [k for k, v in copies.items() if v == op.dst]
            for k in stale:
                del copies[k]

        if op.opcode == "li":
            known[op.dst] = int(op.a) & ((1 << width) - 1)
            folded.append(Op("li", op.dst, known[op.dst]))
            continue
        if op.opcode == "mov":
            if isinstance(a, int):
                known[op.dst] = a
                folded.append(Op("li", op.dst, a))
            else:
                copies[op.dst] = a
                folded.append(Op("mov", op.dst, a))
            continue
        if (
            op.opcode in _PURE
            and isinstance(a, int)
            and (op.b is None or isinstance(b, int))
        ):
            value = _evaluate(op.opcode, a, b, width)
            if value is not None:
                known[op.dst] = value
                folded.append(Op("li", op.dst, value))
                continue
        folded.append(Op(op.opcode, op.dst, a, b))
    return folded


# ----------------------------------------------------------------------
# local common-subexpression elimination
# ----------------------------------------------------------------------
def _cse_block(ops: list[Op]) -> list[Op]:
    """Replace repeated pure computations with copies of the first.

    Expression keys are invalidated when any source vreg is redefined.
    Loads are *not* CSE'd (stores may intervene; keeping the analysis
    trivially sound costs little on our workloads).
    """
    available: dict[tuple, str] = {}
    out: list[Op] = []

    def invalidate(vreg: str) -> None:
        dead = [k for k in available if vreg in k or available[k] == vreg]
        for k in dead:
            del available[k]

    for op in ops:
        key = None
        if op.opcode in _PURE and op.opcode not in ("li", "mov"):
            a, b = op.a, op.b
            if op.opcode in _COMMUTATIVE:
                a, b = sorted((a, b), key=repr)
            key = (op.opcode, a, b)
            if key in available:
                out.append(Op("mov", op.dst, available[key]))
                if op.dst is not None:
                    invalidate(op.dst)
                continue
        if op.dst is not None:
            invalidate(op.dst)
        out.append(op)
        # Record the expression unless the op overwrote one of its own
        # operands (the key would then refer to the *new* value, wrongly
        # matching later identical-looking expressions — fuzz-caught).
        if key is not None and op.dst not in (op.a, op.b):
            available[key] = op.dst
    return out


# ----------------------------------------------------------------------
# dead code elimination (global, liveness-driven)
# ----------------------------------------------------------------------
def _dce(fn: IRFunction) -> None:
    """Iteratively drop pure ops whose results are never used."""
    changed = True
    while changed:
        changed = False
        live_in = liveness(fn)
        for name, block in fn.blocks.items():
            live_out: set[str] = set()
            for successor in block.successors():
                live_out |= live_in[successor]
            live = set(live_out)
            if isinstance(block.terminator, Branch):
                live.add(block.terminator.cond)
            kept_rev: list[Op] = []
            for op in reversed(block.ops):
                is_pure = op.opcode in _PURE or op.opcode.startswith("ld")
                if (
                    is_pure
                    and op.dst is not None
                    and op.dst not in live
                ):
                    changed = True
                    continue
                if op.dst is not None:
                    live.discard(op.dst)
                live.update(op.sources())
                kept_rev.append(op)
            block.ops = list(reversed(kept_rev))
