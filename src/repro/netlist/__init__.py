"""Gate-level netlist substrate.

This package provides the structural layer the paper assumes as input: every
datapath component is "predesigned up to the gate level" and the number of
test patterns, area and delay of each component are back-annotated from that
structure.  Here the structure is a :class:`~repro.netlist.netlist.Netlist`
of primitive cells, built with :class:`~repro.netlist.builder.WordBuilder`,
evaluated bit-parallel, and costed by :mod:`repro.netlist.stats`.
"""

from repro.netlist.cells import (
    CELL_AREA,
    CELL_DELAY,
    CellType,
    cell_area,
    cell_delay,
    evaluate_cell,
)
from repro.netlist.netlist import Gate, Net, Netlist, NetlistError
from repro.netlist.builder import WordBuilder
from repro.netlist.stats import NetlistStats, netlist_stats
from repro.netlist.verilog import WordPort, to_structural_verilog, word_ports

__all__ = [
    "CELL_AREA",
    "CELL_DELAY",
    "CellType",
    "Gate",
    "Net",
    "Netlist",
    "NetlistError",
    "NetlistStats",
    "WordBuilder",
    "WordPort",
    "cell_area",
    "cell_delay",
    "evaluate_cell",
    "netlist_stats",
    "to_structural_verilog",
    "word_ports",
]
