#!/usr/bin/env python3
"""The paper's whole flow on the Crypt application (Figs. 2, 8, 9, Table 1).

1. generate the crypt(3) kernel as IR and profile it,
2. explore 168 TTA templates -> 2-D Pareto set (Fig. 2),
3. back-annotate test costs on the Pareto points   (Fig. 8),
4. select with the equal-weight Euclid norm        (Fig. 9),
5. print the full-scan-vs-functional Table 1 for the winner.

First run takes a few minutes while the ATPG characterises the component
library; results are cached under ~/.cache/repro-tta/ afterwards.

Run:  python examples/crypt_exploration.py
"""

from repro import (
    StudySpec,
    build_architecture,
    build_table1,
    crypt_space,
    format_table1,
    run_study,
)

print(f"exploring {len(crypt_space())} architecture templates "
      "(one declarative study: sweep + test costs + selection) ...")
study = run_study(StudySpec(
    name="crypt-paper-flow",
    workloads=("crypt",),                       # the crypt(3) kernel
    space="crypt",                              # the 168-template grid
    objectives=("area", "cycles", "test_cost"), # Figs. 2 + 8 axes
    strategy="exhaustive",
    select=True,                                # Fig. 9 weighted norm
))
result = study.single.result
print(result.summary())

print("\nFig. 8 — (area, cycles, test cost) on the Pareto curve:")
for p in sorted(result.pareto2d, key=lambda q: q.area):
    print(f"  {p.label:<34} area={p.area:>7.0f} cycles={p.cycles:>8} "
          f"f_t={p.test_cost:>6}")

best = study.selection
print(f"\nFig. 9 — selected architecture (equal weights, Euclid norm):")
print(f"  {best.point.label}  norm={best.norm:.4f}")
arch = build_architecture(best.point.config)
print(arch.describe())

print("\nTable 1 — full scan vs our approach for the winner's components:")
rows, breakdown = build_table1(arch)
print(format_table1(rows))
print(f"\ntotal architecture test cost f_t = {breakdown.total} cycles")
