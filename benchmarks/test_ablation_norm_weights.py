"""Ablation — how the norm weights steer the Fig. 9 selection.

The paper uses equal weights ("no preferences have been given neither to
the minimum test, nor area, nor throughput").  This bench sweeps the
weight vector and shows the selection moving along the frontier: weight
on area picks smaller machines, weight on time picks faster ones, weight
on test picks lower-f_t ones.
"""

from benchmarks.conftest import save_artifact
from repro.explore import select_architecture

WEIGHTS = {
    "equal (paper)": (1.0, 1.0, 1.0),
    "area-heavy": (4.0, 1.0, 1.0),
    "time-heavy": (1.0, 4.0, 1.0),
    "test-heavy": (1.0, 1.0, 4.0),
    "area-only": (1.0, 0.0, 0.0),
    "time-only": (0.0, 1.0, 0.0),
    "test-only": (0.0, 0.0, 1.0),
}


def test_norm_weight_sweep(benchmark, crypt_exploration):
    candidates = crypt_exploration.pareto3d

    def sweep():
        return {
            name: select_architecture(candidates, weights=w)
            for name, w in WEIGHTS.items()
        }

    chosen = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # extreme weights reach the corresponding extreme points
    area_best = min(candidates, key=lambda p: p.area)
    time_best = min(candidates, key=lambda p: p.cycles)
    test_best = min(candidates, key=lambda p: p.test_cost)
    assert chosen["area-only"].point.label == area_best.label
    assert chosen["time-only"].point.label == time_best.label
    assert chosen["test-only"].point.label == test_best.label

    # weighting must actually move the selection somewhere
    labels = {r.point.label for r in chosen.values()}
    assert len(labels) >= 3

    lines = [
        "Ablation: selection vs norm weights (area, time, test)",
        f"{'weights':<16}{'winner':<34}{'area':>8}{'cycles':>9}{'f_t':>7}",
    ]
    for name, result in chosen.items():
        p = result.point
        lines.append(
            f"{name:<16}{p.label:<34}{p.area:>8.0f}{p.cycles:>9}"
            f"{p.test_cost:>7}"
        )
    save_artifact("ablation_norm_weights", "\n".join(lines))
