"""64-way bit-parallel stuck-at fault simulation (PPSFP).

The good circuit is simulated once per word of up to 64 packed patterns;
each still-active fault is then re-simulated only through its fanout cone
with a sparse value overlay.  Detected faults are dropped by the caller.
"""

from __future__ import annotations

from repro.atpg.faults import Fault
from repro.netlist.cells import evaluate_cell
from repro.netlist.netlist import Netlist

#: Patterns packed per simulation word.
WORD = 64


def pack_patterns(netlist: Netlist, patterns: list[int]) -> dict[int, int]:
    """Pack per-pattern PI words into per-PI pattern vectors.

    ``patterns[k]`` holds pattern *k* as an integer whose bit *i* is the
    value of ``netlist.inputs[i]``.  The result maps PI net id -> vector
    whose bit *k* is that PI's value under pattern *k*.
    """
    vectors: dict[int, int] = {pi: 0 for pi in netlist.inputs}
    for k, pattern in enumerate(patterns):
        for i, pi in enumerate(netlist.inputs):
            if (pattern >> i) & 1:
                vectors[pi] |= 1 << k
    return vectors


class FaultSimulator:
    """Reusable fault-simulation context for one netlist."""

    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        self._order = netlist.topological_order()
        self._position = {gid: i for i, gid in enumerate(self._order)}
        self._cone_cache: dict[tuple[int, int | None], tuple[int, ...]] = {}
        self._po_set = set(netlist.outputs)

    # ------------------------------------------------------------------
    def _cone(self, fault: Fault) -> tuple[int, ...]:
        """Topologically sorted gate ids a fault can influence."""
        key = (fault.net, fault.gate)
        cached = self._cone_cache.get(key)
        if cached is not None:
            return cached
        if fault.is_branch:
            gates = {fault.gate}
            gates |= self.netlist.fanout_cone(self.netlist.gates[fault.gate].output)
        else:
            gates = self.netlist.fanout_cone(fault.net)
        cone = tuple(sorted(gates, key=self._position.__getitem__))
        self._cone_cache[key] = cone
        return cone

    # ------------------------------------------------------------------
    def simulate_word(
        self,
        patterns: list[int],
        faults: list[Fault],
    ) -> dict[Fault, int]:
        """Fault-simulate up to :data:`WORD` patterns against ``faults``.

        Returns a map fault -> detection mask (bit *k* set when pattern
        *k* propagates the fault to at least one primary output).
        """
        if len(patterns) > WORD:
            raise ValueError(f"at most {WORD} patterns per word")
        num = len(patterns)
        all_ones = (1 << num) - 1
        pi_vectors = pack_patterns(self.netlist, patterns)
        good = self.netlist.evaluate(pi_vectors, num)

        gates = self.netlist.gates
        nets = self.netlist.nets
        detections: dict[Fault, int] = {}

        for fault in faults:
            stuck_vec = all_ones if fault.stuck_at else 0
            overlay: dict[int, int] = {}

            if not fault.is_branch:
                # Activation requires the good value to differ somewhere.
                if good[fault.net] == stuck_vec:
                    detections[fault] = 0
                    continue
                overlay[fault.net] = stuck_vec

            detect = 0
            for gid in self._cone(fault):
                gate = gates[gid]
                ins = [overlay.get(n, good[n]) for n in gate.inputs]
                if fault.is_branch and gid == fault.gate:
                    ins[fault.pin] = stuck_vec
                value = evaluate_cell(gate.cell_type, ins, all_ones)
                if value == good[gate.output]:
                    # Converged back to good value: only record if the net
                    # was previously diverged, to keep the overlay small.
                    if gate.output in overlay:
                        overlay[gate.output] = value
                    continue
                overlay[gate.output] = value
                if gate.output in self._po_set:
                    detect |= value ^ good[gate.output]
            if not fault.is_branch and fault.net in self._po_set:
                detect |= overlay[fault.net] ^ good[fault.net]
            detections[fault] = detect & all_ones
        return detections

    # ------------------------------------------------------------------
    def detects(self, pattern: int, fault: Fault) -> bool:
        """Single-pattern convenience check."""
        return bool(self.simulate_word([pattern], [fault])[fault])
