"""Workloads.

The paper validates its flow on the Unix "Crypt" application [7] — DES-
based password hashing.  This package provides:

* :mod:`repro.apps.des` — a textbook DES (validated on published
  vectors) plus a word-level "fast" formulation whose structure the TTA
  kernel mirrors statement-for-statement;
* :mod:`repro.apps.crypt3` — Unix crypt(3): 25 iterations of
  salt-perturbed DES over a zero block, base64-encoded;
* :mod:`repro.apps.crypt_kernel` — the crypt inner loop as compilable
  IR for 16-bit TTAs (bit-exact against the reference);
* :mod:`repro.apps.kernels` — smaller workloads (FIR, dot product,
  GCD, checksum) for examples and exploration tests.
"""

from repro.apps.des import (
    des_decrypt_block,
    des_encrypt_block,
    final_permutation,
    initial_permutation,
    key_schedule,
    subkey_chunks,
)
from repro.apps.crypt3 import (
    CRYPT_B64,
    crypt_rounds_words,
    salt_to_mask,
    unix_crypt,
)
from repro.apps.crypt_kernel import build_crypt_ir, crypt_output_from_memory
from repro.apps.kernels import (
    build_checksum_ir,
    build_dotprod_ir,
    build_fir_ir,
    build_gcd_ir,
)
from repro.apps.registry import (
    WorkloadEntry,
    build_workload,
    register_workload,
    workload_entry,
    workload_names,
)

__all__ = [
    "CRYPT_B64",
    "WorkloadEntry",
    "build_checksum_ir",
    "build_crypt_ir",
    "build_dotprod_ir",
    "build_fir_ir",
    "build_gcd_ir",
    "build_workload",
    "crypt_output_from_memory",
    "crypt_rounds_words",
    "des_decrypt_block",
    "des_encrypt_block",
    "final_permutation",
    "initial_permutation",
    "key_schedule",
    "register_workload",
    "salt_to_mask",
    "subkey_chunks",
    "unix_crypt",
    "workload_entry",
    "workload_names",
]
