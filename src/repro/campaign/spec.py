"""Declarative campaign descriptions.

A :class:`CampaignSpec` is the *what* of a sweep — which workloads, over
which configuration grids, at which datapath widths, and whether the
test-cost axis and the final selection run.  It deliberately excludes
the *how* (worker count, cache directory): those are execution
parameters of :func:`repro.campaign.runner.run_campaign`, so the same
spec file reproduces the same results on a laptop and a 64-core box.

Specs round-trip through plain dicts / JSON so they can live in version
control next to the results they produced.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.apps.registry import workload_entry
from repro.explore.space import space_by_name


@dataclass(frozen=True)
class CampaignSpec:
    """One campaign: the cross product of workloads x spaces x widths."""

    name: str
    workloads: tuple[str, ...]
    spaces: tuple[str, ...] = ("crypt",)
    widths: tuple[int, ...] = (16,)
    attach_test_costs: bool = False
    march: str = "March C-"
    select: bool = False
    weights: tuple[float, ...] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign needs a name")
        if not self.workloads:
            raise ValueError("campaign needs at least one workload")
        if not self.spaces:
            raise ValueError("campaign needs at least one space")
        if not self.widths or any(w <= 0 for w in self.widths):
            raise ValueError("widths must be positive")

    def validate(self) -> None:
        """Resolve every referenced workload/space name (raises KeyError)."""
        for workload in self.workloads:
            workload_entry(workload)
        for space in self.spaces:
            space_by_name(space)

    @property
    def jobs(self) -> list[tuple[str, str, int]]:
        """The (workload, space, width) combinations, in run order."""
        return [
            (workload, space, width)
            for workload in self.workloads
            for space in self.spaces
            for width in self.widths
        ]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "spaces": list(self.spaces),
            "widths": list(self.widths),
            "attach_test_costs": self.attach_test_costs,
            "march": self.march,
            "select": self.select,
            "weights": list(self.weights),
        }

    @classmethod
    def from_dict(cls, data: dict) -> CampaignSpec:
        return cls(
            name=str(data["name"]),
            workloads=tuple(data["workloads"]),
            spaces=tuple(data.get("spaces", ("crypt",))),
            widths=tuple(int(w) for w in data.get("widths", (16,))),
            attach_test_costs=bool(data.get("attach_test_costs", False)),
            march=str(data.get("march", "March C-")),
            select=bool(data.get("select", False)),
            weights=tuple(
                float(w) for w in data.get("weights", (1.0, 1.0, 1.0))
            ),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> CampaignSpec:
        return cls.from_dict(json.loads(text))
