#!/usr/bin/env python3
"""The Fig. 7 VLIW extension: test order and indirect access costs.

Builds the paper's bus-oriented VLIW ASIP template (register file whose
output reaches the buses only through the execution units), derives the
mandatory test order, and prices each component's functional test with
the indirection penalty.

Run:  python examples/vliw_testpath.py
"""

from repro import fig7_template, test_order, vliw_test_cost
from repro.vliw import test_access_paths

template = fig7_template(num_units=3)
print(f"template: {template.name}")
for name, component in template.components.items():
    direct = template.directly_accessible(name)
    print(f"  {name:<8} {component.spec.name:<22} "
          f"{'direct' if direct else 'indirect access'}")

paths = test_access_paths(template)
print("\naccess paths:")
for name, path in paths.items():
    route = " -> ".join(path.through) if path.through else "(bus)"
    print(f"  {name:<8} in_hops={path.input_hops} "
          f"out_hops={path.output_hops} via {route}")

order = test_order(template)
print(f"\nmandatory test order: {' -> '.join(order)}")
print("(components on access paths are tested before their dependents,")
print(" the paper's 'order of testing the components becomes relevant')")

costs = vliw_test_cost(template)
print("\nfunctional test cost per component (eq. 11 + indirection):")
for name in order:
    print(f"  {name:<8} {costs[name]:>7} cycles")
print(f"  total   {sum(costs.values()):>7} cycles")
