"""Differential tests: gate-level components vs behavioural references."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.components import (
    ALU_OPS,
    CMP_OPS,
    build_alu,
    build_comparator,
    build_ff_register_file,
    build_immediate,
    build_lsu,
    build_multiplier,
    build_pc,
    build_shifter,
)
from repro.components.reference import (
    LSU_OPS,
    SHIFTER_OPS,
    alu_reference,
    cmp_reference,
    lsu_extend_reference,
    mul_reference,
    shifter_reference,
)
from repro.components.socket import build_socket
from repro.netlist import netlist_stats

WORD16 = st.integers(min_value=0, max_value=0xFFFF)
WORD8 = st.integers(min_value=0, max_value=0xFF)

# Build each netlist once per test session.
_ALU16 = build_alu(16)
_CMP16 = build_comparator(16)
_SHIFTER16 = build_shifter(16)
_MUL8 = build_multiplier(8)
_LSU16 = build_lsu(16)
_PC16 = build_pc(16)
_IMM16 = build_immediate(16)


@settings(max_examples=200)
@given(WORD16, WORD16, st.integers(min_value=0, max_value=7))
def test_alu_differential(a, b, op):
    out = _ALU16.evaluate_words({"a": a, "b": b, "op": op})["y"]
    assert out == alu_reference(ALU_OPS[op], a, b, 16)


@settings(max_examples=200)
@given(WORD16, WORD16, st.integers(min_value=0, max_value=5))
def test_cmp_differential(a, b, op):
    out = _CMP16.evaluate_words({"a": a, "b": b, "op": op})["y"]
    assert out == cmp_reference(CMP_OPS[op], a, b, 16)


@given(WORD16, WORD16, st.integers(min_value=0, max_value=2))
def test_shifter_differential(a, b, op):
    out = _SHIFTER16.evaluate_words({"a": a, "b": b, "op": op})["y"]
    assert out == shifter_reference(SHIFTER_OPS[op], a, b, 16)


@settings(max_examples=150)
@given(WORD8, WORD8)
def test_multiplier_differential(a, b):
    out = _MUL8.evaluate_words({"a": a, "b": b})["y"]
    assert out == mul_reference(a, b, 8)


@given(WORD16, st.integers(min_value=0, max_value=3))
def test_lsu_read_extension(data, mode):
    out = _LSU16.evaluate_words(
        {"addr": 0, "wdata": 0, "rdata_mem": data, "mode": mode}
    )["rdata"]
    assert out == lsu_extend_reference(LSU_OPS[mode], data, 16)


@given(WORD16, WORD16)
def test_lsu_passthrough(addr, wdata):
    out = _LSU16.evaluate_words(
        {"addr": addr, "wdata": wdata, "rdata_mem": 0, "mode": 0}
    )
    assert out["addr_mem"] == addr
    assert out["wdata_mem"] == wdata


@given(WORD16, WORD16, st.booleans(), st.booleans())
def test_pc_next_logic(pc, target, jump, guard):
    out = _PC16.evaluate_words(
        {"pc_q": pc, "target": target, "jump": int(jump), "guard": int(guard)}
    )["pc_d"]
    if jump and guard:
        assert out == target
    else:
        assert out == (pc + 1) & 0xFFFF


@given(WORD16, st.booleans())
def test_immediate_extension(value, short):
    out = _IMM16.evaluate_words({"imm": value, "short": int(short)})["value"]
    if not short:
        assert out == value
    else:
        low = value & 0xFF
        sign = 0xFF00 if low & 0x80 else 0
        assert out == sign | low


def test_socket_match_and_fsm():
    sock = build_socket()
    # matching ID + valid + guard fires the load strobe
    out = sock.evaluate_words(
        {"dst": 0b101010, "my_id": 0b101010, "valid": 1, "guard": 1, "fsm_q": 0}
    )
    assert out["load"] == 1
    assert out["fsm_d"] & 1 == 1
    # mismatch keeps it quiet
    out = sock.evaluate_words(
        {"dst": 0b101010, "my_id": 0b101011, "valid": 1, "guard": 1, "fsm_q": 0}
    )
    assert out["load"] == 0
    # a squashed (guard=0) move must not fire
    out = sock.evaluate_words(
        {"dst": 5, "my_id": 5, "valid": 1, "guard": 0, "fsm_q": 0}
    )
    assert out["load"] == 0
    # busy pipeline deasserts ready
    out = sock.evaluate_words(
        {"dst": 0, "my_id": 1, "valid": 0, "guard": 0, "fsm_q": 0b010}
    )
    assert out["ready"] == 0


def test_ff_register_file_write_then_read():
    rf = build_ff_register_file(4, 8, read_ports=1, write_ports=1)
    # write 0xAB to register 2: next state d2 must pick up wdata
    out = rf.evaluate_words(
        {"w0addr": 2, "w0data": 0xAB, "w0en": 1, "r0addr": 2,
         "q0": 1, "q1": 2, "q2": 3, "q3": 4}
    )
    assert out["d2"] == 0xAB
    assert out["d0"] == 1 and out["d1"] == 2 and out["d3"] == 4
    # read path reflects *current* state, not the write
    assert out["r0data"] == 3


def test_ff_register_file_write_disabled():
    rf = build_ff_register_file(4, 8)
    out = rf.evaluate_words(
        {"w0addr": 2, "w0data": 0xAB, "w0en": 0, "r0addr": 1,
         "q0": 1, "q1": 2, "q2": 3, "q3": 4}
    )
    assert out["d2"] == 3
    assert out["r0data"] == 2


def test_ff_register_file_multiport_priority():
    rf = build_ff_register_file(4, 8, read_ports=2, write_ports=2)
    out = rf.evaluate_words(
        {"w0addr": 1, "w0data": 0x11, "w0en": 1,
         "w1addr": 1, "w1data": 0x22, "w1en": 1,
         "r0addr": 0, "r1addr": 3,
         "q0": 0xA0, "q1": 0, "q2": 0, "q3": 0xD0}
    )
    # later write port wins
    assert out["d1"] == 0x22
    assert out["r0data"] == 0xA0
    assert out["r1data"] == 0xD0


def test_width_validation():
    with pytest.raises(ValueError):
        build_alu(12)           # not a power of two
    with pytest.raises(ValueError):
        build_lsu(7)            # odd
    with pytest.raises(ValueError):
        build_ff_register_file(1, 8)


def test_stats_scale_with_width():
    small = netlist_stats(build_alu(8))
    large = netlist_stats(build_alu(16))
    assert large.num_gates > small.num_gates
    assert large.area > small.area
    assert large.critical_path > small.critical_path


def test_alu_gate_count_reasonable():
    stats = netlist_stats(_ALU16)
    # a 16-bit ALU with barrel shifter lands near a thousand gates
    assert 500 < stats.num_gates < 3000
