"""Exploration: space, Pareto filtering, evaluation, selection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import build_gcd_ir
from repro.explore import (
    ArchConfig,
    EvaluatedPoint,
    RFConfig,
    build_architecture,
    crypt_space,
    dominates,
    pareto_filter,
    select_architecture,
    small_space,
)
from repro.explore.selection import normalize_points
from repro.study import run_exploration as _sweep


# ----------------------------------------------------------------------
# space
# ----------------------------------------------------------------------
def test_crypt_space_size():
    space = crypt_space()
    assert len(space) == 4 * 3 * 2 * 7
    assert len({c.label() for c in space}) == len(space)


def test_small_space_builds():
    for config in small_space():
        arch = build_architecture(config)
        assert arch.num_buses == config.num_buses
        assert arch.lsu is not None and arch.imm_unit is not None


def test_config_labels_readable():
    config = ArchConfig(num_buses=2, num_alus=2, num_shifters=1,
                        rfs=(RFConfig(8), RFConfig(12, read_ports=2)))
    label = config.label()
    assert "b2" in label and "alu2" in label and "sh1" in label
    assert config.total_registers == 20


# ----------------------------------------------------------------------
# pareto
# ----------------------------------------------------------------------
def test_dominates_basic():
    assert dominates((1, 1), (2, 2))
    assert dominates((1, 2), (1, 3))
    assert not dominates((1, 2), (1, 2))
    assert not dominates((1, 3), (2, 2))


def test_dominates_dimension_mismatch():
    with pytest.raises(ValueError):
        dominates((1,), (1, 2))


def test_pareto_filter_example():
    points = [(1, 10), (2, 5), (3, 6), (4, 4), (5, 5)]
    kept = pareto_filter(points, key=lambda p: p)
    assert kept == [(1, 10), (2, 5), (4, 4)]


def test_pareto_filter_keeps_first_of_duplicates():
    points = [("a", 1, 1), ("b", 1, 1)]
    kept = pareto_filter(points, key=lambda p: (p[1], p[2]))
    assert kept == [("a", 1, 1)]


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=20),
            st.integers(min_value=0, max_value=20),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_pareto_properties(points):
    kept = pareto_filter(points, key=lambda p: p)
    assert kept, "frontier never empty"
    # no kept point dominates another kept point
    for a in kept:
        for b in kept:
            if a is not b:
                assert not dominates(a, b)
    # every dropped point is dominated by (or duplicates) a kept point
    for p in points:
        if p not in kept:
            assert any(dominates(k, p) or tuple(k) == tuple(p) for k in kept)


# ----------------------------------------------------------------------
# evaluation + explorer
# ----------------------------------------------------------------------
def test_explore_gcd_small_space():
    result = _sweep(build_gcd_ir(252, 105), small_space())
    assert len(result.points) == len(small_space())
    assert result.feasible_points
    pareto = result.pareto2d
    ordered = sorted(pareto, key=lambda p: p.area)
    for a, b in zip(ordered, ordered[1:]):
        assert b.cycles < a.cycles
    assert "gcd" in result.summary()


def test_explore_profile_recorded():
    result = _sweep(build_gcd_ir(24, 18), small_space()[:2])
    assert result.profile["entry"] == 1
    assert result.profile["check"] >= 2


# ----------------------------------------------------------------------
# selection
# ----------------------------------------------------------------------
def _points(*triples):
    out = []
    for i, (area, cycles, ft) in enumerate(triples):
        p = EvaluatedPoint(
            config=ArchConfig(num_buses=1 + i % 4),
            area=area,
            cycles=cycles,
            test_cost=ft,
        )
        out.append(p)
    return out


def test_normalize_unit_range():
    pts = _points((10, 100, 5), (20, 50, 10), (30, 25, 2))
    normalized = normalize_points(pts)
    for _p, vec in normalized:
        assert all(0.0 <= x <= 1.0 for x in vec)
    # extremes map to 0 and 1
    areas = [v[0] for _p, v in normalized]
    assert min(areas) == 0.0 and max(areas) == 1.0


def test_select_equal_weights_balances():
    pts = _points(
        (10, 100, 100),    # cheap, slow, bad test
        (50, 50, 50),      # balanced
        (100, 10, 100),    # fast, big
    )
    best = select_architecture(pts)
    assert best.point is pts[1]


def test_select_weights_steer():
    pts = _points((10, 100, 50), (50, 50, 50), (100, 10, 50))
    area_heavy = select_architecture(pts, weights=(10, 1, 1))
    time_heavy = select_architecture(pts, weights=(1, 10, 1))
    assert area_heavy.point is pts[0]
    assert time_heavy.point is pts[2]


def test_select_norm_orders():
    pts = _points((0, 100, 100), (60, 60, 60), (100, 0, 100))
    manhattan = select_architecture(pts, order=1.0)
    chebyshev = select_architecture(pts, order=float("inf"))
    assert manhattan.norm >= 0 and chebyshev.norm >= 0


def test_select_requires_test_cost():
    p = EvaluatedPoint(config=ArchConfig(num_buses=1), area=1.0, cycles=10)
    with pytest.raises(ValueError, match="test cost"):
        select_architecture([p])


def test_select_2d_mode():
    pts = _points((10, 100, 1), (100, 10, 1))
    best = select_architecture(pts, weights=(1.0, 1.0), use_test_cost=False)
    assert best.point in pts


def test_infeasible_rejected_in_selection():
    p = EvaluatedPoint(config=ArchConfig(num_buses=1), area=1.0, cycles=None)
    with pytest.raises(ValueError, match="infeasible"):
        select_architecture([p])
