"""Telemetry: tracing, phase metrics, and their result-neutrality.

The contract under test is the tentpole's hard requirement: telemetry
is strictly opt-in and *result-equivalent* — a study run with a tracer
and metrics attached produces exactly the fronts and cache contents of
an untraced run — plus the bookkeeping invariants (phase seconds sum
to at most the elapsed wall clock, merged pool counters are
deterministic, ``proposed == cache_hits + evaluated``).
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, ResultCache, run_campaign
from repro.study import StudySpec, run_study
from repro.telemetry import (
    DEFAULT_BOUNDS,
    Histogram,
    LiveRegistry,
    MetricsCollector,
    MetricsExporter,
    Tracer,
    aggregate_series,
    load_trace,
    merge_histogram_snapshots,
    merge_snapshots,
    read_trace,
    render_prometheus,
    summarize_trace,
    validate_record,
)
from repro.telemetry.metrics import format_phases
from repro.telemetry.summarize import format_trace_summary


def _point_rows(result):
    return [
        (p.label, p.area, p.cycles, p.test_cost, p.energy, p.feasible)
        for run in result.runs
        for p in run.result.points
    ]


def _cache_bytes(directory: Path) -> dict[str, str]:
    return {
        path.name: path.read_text()
        for path in sorted(Path(directory).glob("shards/*/*.json"))
    }


# ----------------------------------------------------------------------
# schema + tracer round-trip
# ----------------------------------------------------------------------
class TestSchema:
    def test_tracer_output_round_trips_through_validation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path, study="s") as tracer:
            tracer.event("wave", run="r", wave=0, requested=3)
            with tracer.span("study", strategy="exhaustive"):
                tracer.event(
                    "point", run="r", wave=0, config="b2", source="fresh",
                )
        records = read_trace(path.read_text().splitlines())
        assert [r["kind"] for r in records] == [
            "meta", "event", "event", "span",
        ]
        assert records[0]["name"] == "trace"
        assert records[0]["data"]["schema"] == 2
        # spans carry a duration, and ts are monotone non-negative
        span = records[-1]
        assert span["dur"] >= 0
        assert all(r["ts"] >= 0 for r in records)
        assert all(r["study"] == "s" for r in records[1:])

    def test_validate_record_rejects_malformed(self):
        good = {"v": 1, "kind": "event", "ts": 0.5, "name": "wave"}
        assert validate_record(dict(good)) == good
        bad = [
            {**good, "extra": 1},                      # unknown field
            {**good, "v": 3},                          # unknown version
            {**good, "kind": "other"},                 # unknown kind
            {**good, "ts": -1.0},                      # negative ts
            {**good, "ts": True},                      # bool-as-number
            {**good, "dur": 0.1},                      # dur on non-span
            {**good, "job": "j1"},                     # v2 field on v1
            {"v": 1, "kind": "metric_snapshot", "ts": 0.0,
             "name": "registry", "data": {}},          # v2 kind on v1
            {"v": 2, "kind": "metric_snapshot", "ts": 0.0,
             "name": "registry"},                      # snapshot sans data
            {"v": 1, "kind": "span", "ts": 0.0, "name": "s"},  # no dur
            {"v": 1, "kind": "meta", "ts": 0.0},       # missing name
            [good],                                    # not an object
        ]
        for record in bad:
            with pytest.raises(ValueError):
                validate_record(record)

    def test_read_trace_requires_meta_header(self):
        line = json.dumps({"v": 1, "kind": "event", "ts": 0.0, "name": "x"})
        with pytest.raises(ValueError, match="meta"):
            read_trace([line])
        with pytest.raises(ValueError, match="empty"):
            read_trace([])
        with pytest.raises(ValueError, match="line 2"):
            meta = json.dumps(
                {"v": 1, "kind": "meta", "ts": 0.0, "name": "trace"}
            )
            read_trace([meta, "{not json"])

    def test_tracer_accepts_file_like_sink(self):
        sink = io.StringIO()
        tracer = Tracer(sink)
        tracer.event("wave", run="r")
        tracer.close()
        records = read_trace(sink.getvalue().splitlines())
        assert len(records) == 2
        assert records[1]["run"] == "r"


# ----------------------------------------------------------------------
# metrics collector
# ----------------------------------------------------------------------
class TestMetrics:
    def test_phase_and_counter_accumulation(self):
        m = MetricsCollector()
        for _ in range(3):
            with m.phase("schedule"):
                pass
        m.count("proposed", 5)
        m.count("proposed")
        snap = m.snapshot()
        assert snap["phases"]["schedule"]["calls"] == 3
        assert snap["phases"]["schedule"]["seconds"] >= 0
        assert snap["counters"] == {"proposed": 6}

    def test_phase_records_time_on_exception(self):
        m = MetricsCollector()
        with pytest.raises(RuntimeError):
            with m.phase("build"):
                raise RuntimeError("boom")
        assert m.snapshot()["phases"]["build"]["calls"] == 1

    def test_merge_is_additive_and_order_independent(self):
        a = MetricsCollector()
        with a.phase("build"):
            pass
        a.count("evaluated", 2)
        b = MetricsCollector()
        with b.phase("build"):
            pass
        with b.phase("simulate"):
            pass
        b.count("evaluated", 3)
        ab = merge_snapshots([a.snapshot(), b.snapshot()])
        ba = merge_snapshots([b.snapshot(), a.snapshot()])
        assert ab["counters"] == ba["counters"] == {"evaluated": 5}
        assert ab["phases"]["build"]["calls"] == 2
        assert ab["phases"].keys() == ba["phases"].keys()

    def test_format_phases_lists_known_phases_first(self):
        m = MetricsCollector()
        with m.phase("zebra"):
            pass
        with m.phase("build"):
            pass
        text = format_phases(m.snapshot())
        assert text.index("build") < text.index("zebra")
        assert format_phases({"phases": {}}) == "(no phase timings)"


# ----------------------------------------------------------------------
# result equivalence: telemetry on == telemetry off
# ----------------------------------------------------------------------
SPACES = (
    ("gcd", "small"),
    ("fir", "dsp"),
)


class TestResultEquivalence:
    @pytest.mark.parametrize("workload,space", SPACES)
    def test_study_results_and_cache_identical(
        self, tmp_path, workload, space
    ):
        """Same fronts, same bytes in the result cache, on vs off."""
        def spec(name):
            return StudySpec(
                name=name, workloads=(workload,), space=space,
                objectives=("area", "cycles", "test_cost"), select=True,
            )

        plain = run_study(spec("off"), cache=ResultCache(tmp_path / "a"))
        traced = run_study(
            spec("on"),
            cache=ResultCache(tmp_path / "b"),
            tracer=Tracer(tmp_path / "t.jsonl"),
            collect_metrics=True,
        )
        assert _point_rows(plain) == _point_rows(traced)
        assert [p.label for p in plain.single.pareto] == [
            p.label for p in traced.single.pareto
        ]
        if plain.single.selection is not None:
            assert (
                plain.single.selection.point.label
                == traced.single.selection.point.label
            )
        assert _cache_bytes(tmp_path / "a") == _cache_bytes(tmp_path / "b")

    def test_annealing_rng_stream_unchanged_by_move_counters(self):
        """Move accounting must not perturb the annealing walk."""
        def spec(name):
            return StudySpec(
                name=name, workloads=("gcd",), space="small",
                strategy="simulated_annealing",
                strategy_params={"max_evaluations": 10, "seed": 3},
            )

        plain = run_study(spec("off"))
        metered = run_study(spec("on"), collect_metrics=True)
        assert _point_rows(plain) == _point_rows(metered)
        counters = metered.single.stats.counters
        assert counters["moves_proposed"] == (
            counters["moves_accepted"] + counters["moves_rejected"]
        )

    def test_stats_empty_without_telemetry(self):
        result = run_study(
            StudySpec(name="plain", workloads=("gcd",), space="small")
        )
        assert result.single.stats.phases == {}
        assert result.single.stats.counters == {}


# ----------------------------------------------------------------------
# phase timers and counter invariants
# ----------------------------------------------------------------------
class TestInvariants:
    def test_phase_seconds_bounded_by_elapsed_serial(self):
        from repro.energy import attach as energy_attach

        # Earlier tests may have memoized gcd/small energies in this
        # process; the simulate phase only runs on memo misses.
        energy_attach._ENERGY_CACHE.clear()
        result = run_study(
            StudySpec(
                name="timed", workloads=("gcd",), space="small",
                objectives=("area", "cycles", "test_cost", "energy"),
            ),
            collect_metrics=True,
        )
        stats = result.single.stats
        assert stats.phases, "metrics collection yielded no phases"
        total = sum(p["seconds"] for p in stats.phases.values())
        assert total <= stats.elapsed
        assert {"build", "schedule", "test_cost", "simulate"} <= set(
            stats.phases
        )

    def test_proposed_equals_hits_plus_evaluated(self, tmp_path):
        spec = StudySpec(name="inv", workloads=("gcd",), space="small")
        cache = ResultCache(tmp_path)
        for _ in range(2):  # second pass is all cache hits
            stats = run_study(
                spec, cache=cache, collect_metrics=True
            ).single.stats
            c = stats.counters
            assert c["proposed"] == c["cache_hits"] + c["evaluated"]
            assert c["cache_hits"] == stats.cache_hits
            assert c["evaluated"] == stats.evaluated

    def test_merged_pool_counters_deterministic(self, tmp_path):
        """workers=2 merges per-config snapshots in submission order:
        counters must match serial exactly, run after run."""
        def counters(cache_dir, workers):
            stats = run_study(
                StudySpec(
                    name="pool", workloads=("gcd",), space="small",
                ),
                cache=ResultCache(cache_dir),
                workers=workers,
                collect_metrics=True,
            ).single.stats
            return stats.counters

        serial = counters(tmp_path / "w1", 1)
        pooled_a = counters(tmp_path / "w2a", 2)
        pooled_b = counters(tmp_path / "w2b", 2)
        assert pooled_a == pooled_b == serial
        assert serial["proposed"] == 12


# ----------------------------------------------------------------------
# cache + post-pass instrumentation
# ----------------------------------------------------------------------
class TestCacheInstrumentation:
    def test_cache_stats_lifecycle(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = StudySpec(
            name="cs", workloads=("gcd",), space="small",
            objectives=("area", "cycles", "test_cost"),
        )
        run_study(spec, cache=cache)
        first = cache.stats.as_dict()
        assert first["misses"] == 12
        assert first["puts"] >= 12
        assert first["bytes_written"] > 0
        assert cache.bytes_on_disk() > 0
        run_study(spec, cache=cache)
        delta = cache.stats.delta(first)
        assert delta["hits"] == 12
        assert delta["misses"] == 0
        assert delta["puts"] == 0
        assert 0 < cache.stats.hit_rate < 1

    def test_post_pass_hits_reported_without_telemetry(self, tmp_path):
        """Satellite: the second run's summary must credit post-pass
        work served from the cache, with telemetry off."""
        cache = ResultCache(tmp_path)
        spec = StudySpec(
            name="pp", workloads=("gcd",), space="small",
            objectives=("area", "cycles", "test_cost"),
        )
        first = run_study(spec, cache=cache)
        assert first.single.stats.post_pass_hits == 0
        second = run_study(spec, cache=cache)
        front = len(second.single.pareto)
        assert second.single.stats.post_pass_hits == front > 0
        assert f"+{front}pp" in second.summary()


# ----------------------------------------------------------------------
# trace contents + offline summarize
# ----------------------------------------------------------------------
class TestTraceContents:
    def test_study_trace_structure(self, tmp_path):
        path = tmp_path / "study.jsonl"
        with Tracer(path) as tracer:
            run_study(
                StudySpec(
                    name="traced", workloads=("gcd",), space="small",
                    objectives=("area", "cycles", "test_cost"),
                ),
                cache=ResultCache(tmp_path / "cache"),
                tracer=tracer,
            )
        records = load_trace(path)
        by_name: dict[str, list] = {}
        for r in records:
            by_name.setdefault(r["name"], []).append(r)
        assert set(by_name) >= {
            "trace", "study", "run", "search", "wave", "point",
            "cache", "metrics",
        }
        points = by_name["point"]
        assert len(points) == 12
        assert {p["data"]["source"] for p in points} == {"fresh"}
        assert all(p["config"] for p in points)
        summary = summarize_trace(records)
        assert summary["study"] == "traced"
        run = summary["runs"][0]
        assert run["points"] == 12
        assert run["cached_points"] == 0
        assert run["seconds"] is not None
        text = format_trace_summary(summary)
        assert "gcd/small/w16" in text
        assert "result cache" in text

    def test_calibration_events_summarized(self, tmp_path):
        """A calibrated study writes one ``calibration`` event per
        front point, and summarize rolls them into an audited/drifted
        line."""
        path = tmp_path / "calibrated.jsonl"
        with Tracer(path) as tracer:
            run_study(
                StudySpec(
                    name="calibrated", workloads=("gcd",),
                    space="small", objectives=("area", "cycles"),
                ),
                cache=ResultCache(tmp_path / "cache"),
                tracer=tracer,
                calibrate_front=True,
            )
        records = load_trace(path)
        events = [r for r in records if r["name"] == "calibration"]
        assert events
        assert all(e["data"]["ok"] for e in events)
        assert all(e["data"]["cycles_delta"] == 0 for e in events)
        summary = summarize_trace(records)
        calibrations = summary["runs"][0]["calibrations"]
        assert len(calibrations) == len(events)
        for entry in calibrations:
            assert entry["ok"] and entry["cycles_delta"] == 0
        text = format_trace_summary(summary)
        assert f"calibration: {len(events)} front point" in text
        assert "0 drifted" in text

    def test_campaign_trace_spans_all_jobs(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with Tracer(path) as tracer:
            run_campaign(
                CampaignSpec(
                    name="camp", workloads=("gcd", "crc16"),
                    spaces=("small",), widths=(16,),
                ),
                cache=ResultCache(tmp_path / "cache"),
                tracer=tracer,
            )
        summary = summarize_trace(load_trace(path))
        assert summary["study"] == "camp"
        assert {r["label"] for r in summary["runs"]} == {
            "gcd/small/w16", "crc16/small/w16",
        }
        assert summary["metrics"]["phases"]


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
class TestReporting:
    def test_study_to_json_carries_telemetry(self):
        from repro.reporting import study_to_dict

        result = run_study(
            StudySpec(
                name="ser", workloads=("gcd",), space="small",
                objectives=("area", "cycles", "test_cost"),
            ),
            collect_metrics=True,
        )
        data = study_to_dict(result)
        stats = data["runs"][0]["stats"]
        assert stats["post_pass_hits"] == 0
        assert "schedule" in stats["phases"]
        assert stats["counters"]["proposed"] == 12
        json.dumps(data)  # JSON-safe end to end


# ----------------------------------------------------------------------
# histograms
# ----------------------------------------------------------------------
class TestHistogram:
    def test_observe_count_sum_min_max(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.5, 40.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(40.503)
        assert snap["min"] == 0.001
        assert snap["max"] == 40.0
        assert sum(snap["counts"]) == 4
        assert len(snap["counts"]) == len(DEFAULT_BOUNDS) + 1

    def test_quantiles_interpolate_and_bound(self):
        h = Histogram(bounds=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        # all mass in the (1, 2] bucket: every quantile lands inside it
        q = h.quantiles()
        assert 1.0 < q["p50"] <= 2.0
        assert 1.0 < q["p99"] <= 2.0
        assert Histogram().quantile(0.5) is None

    def test_overflow_bucket_reports_observed_max(self):
        h = Histogram(bounds=(1.0,))
        h.observe(7.5)
        assert h.quantile(0.99) == 7.5
        assert h.counts[-1] == 1

    def test_merge_is_additive_commutative_and_exact(self):
        import random

        rng = random.Random(7)
        values = [rng.uniform(0.0001, 20.0) for _ in range(500)]
        serial = Histogram()
        for v in values:
            serial.observe(v)
        shards = [Histogram() for _ in range(4)]
        for i, v in enumerate(values):
            shards[i % 4].observe(v)
        snaps = [s.snapshot() for s in shards]
        forward = merge_histogram_snapshots(snaps)
        backward = merge_histogram_snapshots(list(reversed(snaps)))
        # bucket-for-bucket identical regardless of merge order, and
        # identical to observing serially
        assert forward["counts"] == backward["counts"] == serial.counts
        assert forward["count"] == serial.count == 500
        assert forward["sum"] == pytest.approx(serial.sum)
        assert forward["min"] == pytest.approx(serial.min, abs=1e-6)
        assert forward["max"] == pytest.approx(serial.max, abs=1e-6)
        assert (
            Histogram.from_snapshot(forward).quantiles()
            == serial.quantiles()
        )
        assert merge_histogram_snapshots([]) is None

    def test_merge_rejects_mismatched_bounds(self):
        h = Histogram(bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="bounds"):
            h.merge(Histogram(bounds=(1.0, 3.0)).snapshot())

    def test_snapshot_round_trips(self):
        h = Histogram()
        h.observe(0.3)
        h.observe(3.0)
        clone = Histogram.from_snapshot(h.snapshot())
        assert clone.snapshot() == h.snapshot()

    def test_collector_histograms_ride_snapshots(self):
        a = MetricsCollector()
        a.observe("eval_seconds", 0.002)
        b = MetricsCollector()
        b.observe("eval_seconds", 0.004)
        b.observe("eval_seconds", 30.0)
        merged = MetricsCollector()
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        snap = merged.snapshot()["histograms"]["eval_seconds"]
        assert snap["count"] == 3
        assert snap["max"] == 30.0


# ----------------------------------------------------------------------
# live registry + Prometheus exposition
# ----------------------------------------------------------------------
class TestLiveRegistry:
    def test_counters_accumulate_per_label_set(self):
        reg = LiveRegistry()
        reg.count("jobs", tenant="a")
        reg.count("jobs", 2, tenant="a")
        reg.count("jobs", tenant="b")
        snap = reg.snapshot()
        by_tenant = {
            e["labels"]["tenant"]: e["value"]
            for e in snap["counters"]["jobs"]
        }
        assert by_tenant == {"a": 3, "b": 1}

    def test_counters_reject_negative_and_type_conflicts(self):
        reg = LiveRegistry()
        reg.count("x")
        with pytest.raises(ValueError):
            reg.count("x", -1)
        with pytest.raises(ValueError):
            reg.gauge("x", 1.0)
        with pytest.raises(ValueError):
            reg.observe("x", 0.5)

    def test_gauges_overwrite(self):
        reg = LiveRegistry()
        reg.gauge("depth", 4)
        reg.gauge("depth", 2)
        assert reg.snapshot()["gauges"]["depth"][0]["value"] == 2

    def test_histograms_snapshot_with_quantiles(self):
        reg = LiveRegistry()
        for v in (0.001, 0.01, 0.1):
            reg.observe("lat", v, tenant="a")
        entry = reg.snapshot()["histograms"]["lat"][0]
        assert entry["count"] == 3
        assert set(entry["quantiles"]) == {"p50", "p90", "p99"}
        json.dumps(reg.snapshot())  # JSON-safe end to end

    def test_merge_histogram_folds_external_snapshot(self):
        h = Histogram()
        h.observe(0.02)
        h.observe(0.04)
        reg = LiveRegistry()
        reg.merge_histogram("eval", h.snapshot(), tenant="a", job="j1")
        reg.merge_histogram("eval", h.snapshot(), tenant="a", job="j2")
        entries = reg.snapshot()["histograms"]["eval"]
        assert [e["count"] for e in entries] == [2, 2]

    def test_aggregate_series_by_tenant_and_global(self):
        reg = LiveRegistry()
        reg.count("points", 5, tenant="a", job="j1")
        reg.count("points", 2, tenant="a", job="j2")
        reg.count("points", 3, tenant="b", job="j3")
        series = reg.snapshot()["counters"]["points"]
        by_tenant = aggregate_series(series, by="tenant")
        assert by_tenant["a"]["value"] == 7
        assert by_tenant["b"]["value"] == 3
        assert aggregate_series(series)[""]["value"] == 10

    def test_aggregate_series_merges_histograms(self):
        reg = LiveRegistry()
        reg.observe("lat", 0.001, tenant="a", job="j1")
        reg.observe("lat", 0.002, tenant="a", job="j2")
        series = reg.snapshot()["histograms"]["lat"]
        agg = aggregate_series(series, by="tenant")["a"]
        assert agg["count"] == 2
        assert agg["quantiles"]["p50"] is not None


class TestPrometheusRender:
    def _registry(self):
        reg = LiveRegistry()
        reg.count("jobs_submitted", 3, help="jobs accepted", tenant="a")
        reg.count("jobs_submitted", 1, tenant="b")
        reg.gauge("queue_depth", 2, help="queued jobs")
        reg.observe("eval_seconds", 0.002, bounds=(0.001, 0.01, 1.0),
                    help="per-point latency", tenant="a")
        reg.observe("eval_seconds", 0.5, bounds=(0.001, 0.01, 1.0),
                    tenant="a")
        return reg

    def test_help_and_type_emitted_once_per_name(self):
        text = self._registry().render_prometheus()
        helps = [l for l in text.splitlines() if l.startswith("# HELP")]
        types = [l for l in text.splitlines() if l.startswith("# TYPE")]
        names = [l.split()[2] for l in helps]
        assert len(names) == len(set(names))
        assert len(types) == len(set(t.split()[2] for t in types))
        assert "# TYPE repro_jobs_submitted_total counter" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "# TYPE repro_eval_seconds histogram" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = self._registry().render_prometheus()
        buckets = {}
        for line in text.splitlines():
            if line.startswith("repro_eval_seconds_bucket"):
                le = line.split('le="')[1].split('"')[0]
                buckets[le] = int(line.rsplit(" ", 1)[1])
        assert buckets["0.001"] <= buckets["0.01"] <= buckets["1"]
        assert buckets["+Inf"] == 2
        assert "repro_eval_seconds_count" in text
        assert "repro_eval_seconds_sum" in text

    def test_counter_values_and_label_escaping(self):
        reg = LiveRegistry()
        reg.count("odd", 1, path='a"b\\c\nd')
        text = reg.render_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text
        assert 'repro_jobs_submitted_total{tenant="a"} 3' in (
            self._registry().render_prometheus()
        )

    def test_exporter_serves_metrics_over_http(self):
        import urllib.request

        reg = LiveRegistry()
        reg.count("hits", 4)
        exporter = MetricsExporter(reg).start()
        try:
            base = f"http://{exporter.address}"
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                assert resp.status == 200
                assert "version=0.0.4" in resp.headers["Content-Type"]
                body = resp.read().decode()
            assert "repro_hits_total 4" in body
            with urllib.request.urlopen(f"{base}/healthz") as resp:
                assert resp.status == 200
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/nope")
        finally:
            exporter.stop()


# ----------------------------------------------------------------------
# buffered tracer + job/tenant binding
# ----------------------------------------------------------------------
class TestBufferedTracer:
    def test_writes_buffer_until_threshold(self, tmp_path):
        path = tmp_path / "b.jsonl"
        tracer = Tracer(path, flush_every=100, flush_seconds=3600.0)
        tracer.event("wave", run="r")
        # meta + event are buffered, nothing on disk yet
        assert path.read_text() == ""
        tracer.flush()
        assert len(path.read_text().splitlines()) == 2
        tracer.close()

    def test_close_flushes_remaining_records(self, tmp_path):
        path = tmp_path / "c.jsonl"
        with Tracer(path, flush_every=100, flush_seconds=3600.0) as t:
            for i in range(5):
                t.event("wave", run="r", wave=i)
        assert len(read_trace(path.read_text().splitlines())) == 6

    def test_flush_every_one_writes_through(self, tmp_path):
        path = tmp_path / "w.jsonl"
        tracer = Tracer(path, flush_every=1)
        tracer.event("wave", run="r")
        assert len(path.read_text().splitlines()) == 2
        tracer.close()

    def test_bound_tracer_stamps_job_and_tenant(self, tmp_path):
        path = tmp_path / "bound.jsonl"
        with Tracer(path, study="svc") as base:
            bound = base.bind(job="j1", tenant="alice")
            bound.event("queue", run="j1", action="submit")
            with bound.span("run", run="gcd/small/w16"):
                pass
            bound.metric_snapshot("registry", {"counters": {}})
        records = read_trace(path.read_text().splitlines())
        stamped = [r for r in records if r["kind"] != "meta"]
        assert all(r["job"] == "j1" for r in stamped)
        assert all(r["tenant"] == "alice" for r in stamped)
        assert stamped[-1]["kind"] == "metric_snapshot"
        assert stamped[-1]["data"] == {"counters": {}}

    def test_bound_study_is_view_local(self, tmp_path):
        """Two bound views setting .study must not race through the
        shared base tracer (concurrent server jobs do exactly this)."""
        path = tmp_path / "views.jsonl"
        with Tracer(path) as base:
            a = base.bind(job="j1", tenant="a")
            b = base.bind(job="j2", tenant="b")
            a.study = "study-a"
            b.study = "study-b"
            a.event("wave", run="r1")
            b.event("wave", run="r2")
            assert base.study is None
        records = read_trace(path.read_text().splitlines())
        studies = {r["job"]: r["study"] for r in records if r["kind"] != "meta"}
        assert studies == {"j1": "study-a", "j2": "study-b"}


# ----------------------------------------------------------------------
# summarize: the service join
# ----------------------------------------------------------------------
class TestSummarizeJoin:
    def test_jobs_join_runs_and_snapshots(self, tmp_path):
        path = tmp_path / "svc.jsonl"
        with Tracer(path) as base:
            bound = base.bind(job="j1", tenant="alice")
            bound.study = "s"
            bound.event("queue", run="j1", action="submit")
            bound.event("job_state", run="j1", state="running")
            bound.event("wave", run="gcd/small/w16", wave=0)
            bound.event(
                "point", run="gcd/small/w16", wave=0, config="b2",
                source="fresh",
            )
            bound.event("job_state", run="j1", state="done")
            bound.metric_snapshot("registry", {"counters": {}})
        summary = summarize_trace(load_trace(path))
        assert len(summary["jobs"]) == 1
        job = summary["jobs"][0]
        assert job["job"] == "j1"
        assert job["tenant"] == "alice"
        assert job["states"] == ["running", "done"]
        assert job["queue"] == {"submit": 1}
        assert job["runs"] == ["gcd/small/w16"]
        assert job["snapshots"] == 1
        # service lifecycle events stay out of the study-run table
        assert {r["label"] for r in summary["runs"]} == {"gcd/small/w16"}
        assert summary["runs"][0]["job"] == "j1"
        assert summary["metric_snapshots"]["count"] == 1
        text = format_trace_summary(summary)
        assert "job j1 (tenant alice): running -> done" in text
        assert "[job j1]" in text
        json.dumps(summary)

    def test_v1_service_traces_still_join(self):
        """PR 8 traces carried the job id in ``run`` and the tenant in
        ``data`` — the join must keep working on archived traces."""
        records = [
            {"v": 1, "kind": "meta", "ts": 0.0, "name": "trace",
             "data": {"schema": 1}},
            {"v": 1, "kind": "event", "ts": 0.1, "name": "queue",
             "run": "job-1", "data": {"action": "submit", "tenant": "t"}},
            {"v": 1, "kind": "event", "ts": 0.2, "name": "job_state",
             "run": "job-1", "data": {"state": "done", "tenant": "t"}},
        ]
        summary = summarize_trace(
            [validate_record(r) for r in records]
        )
        assert summary["jobs"] == [{
            "job": "job-1", "tenant": "t", "states": ["done"],
            "queue": {"submit": 1}, "runs": [], "snapshots": 0,
        }]
        assert summary["runs"] == []


# ----------------------------------------------------------------------
# live registry result-neutrality + pooled histogram determinism
# ----------------------------------------------------------------------
class TestLiveTelemetryEquivalence:
    def test_registry_fold_is_result_neutral(self, tmp_path):
        """The server-side fold (metered study -> LiveRegistry) must
        leave results and cache bytes byte-identical to a plain run."""
        def spec(name):
            return StudySpec(
                name=name, workloads=("gcd",), space="small",
                objectives=("area", "cycles", "test_cost"), select=True,
            )

        plain = run_study(spec("off"), cache=ResultCache(tmp_path / "a"))
        registry = LiveRegistry()
        metered = run_study(
            spec("on"), cache=ResultCache(tmp_path / "b"),
            collect_metrics=True,
        )
        for run in metered.runs:
            registry.count(
                "points_evaluated", run.stats.evaluated,
                tenant="t", job="j1",
            )
            hist = run.stats.histograms.get("eval_seconds")
            if hist:
                registry.merge_histogram(
                    "eval_seconds", hist, tenant="t", job="j1",
                )
        assert _point_rows(plain) == _point_rows(metered)
        assert _cache_bytes(tmp_path / "a") == _cache_bytes(tmp_path / "b")
        series = registry.snapshot()["counters"]["points_evaluated"]
        assert aggregate_series(series)[""]["value"] == 12
        hist = registry.snapshot()["histograms"]["eval_seconds"][0]
        assert hist["count"] == 12

    def test_pooled_eval_histogram_counts_deterministic(self, tmp_path):
        """workers=2 merges worker snapshots in submission order: the
        eval_seconds histogram must account for every evaluated point,
        run after run, exactly as the serial path does."""
        def stats(cache_dir, workers):
            return run_study(
                StudySpec(name="ph", workloads=("gcd",), space="small"),
                cache=ResultCache(cache_dir),
                workers=workers,
                collect_metrics=True,
            ).single.stats

        serial = stats(tmp_path / "w1", 1)
        pooled_a = stats(tmp_path / "w2a", 2)
        pooled_b = stats(tmp_path / "w2b", 2)
        for s in (serial, pooled_a, pooled_b):
            snap = s.histograms["eval_seconds"]
            assert snap["count"] == s.counters["evaluated"] == 12
            assert sum(snap["counts"]) == 12
            assert tuple(snap["bounds"]) == DEFAULT_BOUNDS
        assert pooled_a.counters == pooled_b.counters == serial.counters
