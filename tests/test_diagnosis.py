"""Fault-dictionary diagnosis: injected faults must be localised."""

import random

import pytest

from repro.atpg import run_atpg
from repro.atpg.diagnosis import FaultDictionary
from repro.atpg.faults import collapse_faults
from repro.atpg.faultsim import FaultSimulator
from repro.netlist import WordBuilder


def _adder(width=4):
    wb = WordBuilder(f"diag_add{width}")
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)
    s, c = wb.ripple_adder(a, b)
    wb.output_word("s", s)
    wb.output_bit("cout", c)
    return wb.netlist


@pytest.fixture(scope="module")
def dictionary():
    netlist = _adder()
    atpg = run_atpg(netlist, use_cache=False)
    return FaultDictionary(netlist, atpg.patterns)


def test_dictionary_covers_faults(dictionary):
    assert dictionary.num_faults > 50
    assert len(dictionary.patterns) > 0


def test_injected_fault_is_top_candidate(dictionary):
    rng = random.Random(11)
    netlist = dictionary.netlist
    faults, _ = collapse_faults(netlist)
    sim = FaultSimulator(netlist)
    testable = [
        f for f in faults
        if any(
            sim.simulate_word([p], [f])[f] for p in dictionary.patterns
        )
    ]
    for fault in rng.sample(testable, 10):
        failing = dictionary.expected_failures(fault)
        candidates = dictionary.diagnose(failing)
        assert candidates, fault.describe(netlist)
        top = candidates[0]
        assert top.exact
        # the true fault (or an equivalent with identical signature)
        assert dictionary.signature_of(top.fault) == dictionary.signature_of(
            fault
        )


def test_partial_observation_still_ranks_fault(dictionary):
    netlist = dictionary.netlist
    faults, _ = collapse_faults(netlist)
    fault = next(
        f for f in faults if len(dictionary.expected_failures(f)) >= 3
    )
    failing = dictionary.expected_failures(fault)[:-1]   # one escaped
    candidates = dictionary.diagnose(failing, max_candidates=5)
    signatures = {dictionary.signature_of(c.fault) for c in candidates}
    assert dictionary.signature_of(fault) in signatures


def test_no_failures_no_candidates(dictionary):
    assert dictionary.diagnose([]) == []


def test_bad_pattern_index_rejected(dictionary):
    with pytest.raises(ValueError):
        dictionary.diagnose([10_000])


def test_diagnose_from_raw_responses(dictionary):
    netlist = dictionary.netlist
    faults, _ = collapse_faults(netlist)
    fault = next(
        f for f in faults if dictionary.expected_failures(f)
    )
    sim = FaultSimulator(netlist)
    responses = []
    for pattern in dictionary.patterns:
        detected = bool(sim.simulate_word([pattern], [fault])[fault])
        pi_map = {
            pi: (pattern >> i) & 1 for i, pi in enumerate(netlist.inputs)
        }
        golden = [v & 1 for v in netlist.evaluate_outputs(pi_map, 1)]
        if detected:
            golden[0] ^= 1      # some output flipped on the real device
        responses.append(golden)
    candidates = dictionary.diagnose_responses(responses)
    assert candidates
    observed = dictionary.expected_failures(fault)
    top_predicted = dictionary.expected_failures(candidates[0].fault)
    assert set(observed) & set(top_predicted)
