"""Iterative (neighbourhood-search) exploration.

The MOVE environment performs "iterative generation of different
architectures" rather than brute-force sweeps.  This explorer starts
from seed templates, evaluates their neighbourhoods (one architectural
parameter changed at a time), and expands only candidates that are
non-dominated so far — typically reaching the same Pareto frontier as
the exhaustive sweep while evaluating a fraction of the space.

The search loop itself lives in :mod:`repro.study.strategies` as the
``iterative`` strategy; this module keeps the neighbourhood model
(:func:`neighbours`, the RF ladder) and the legacy
:func:`iterative_explore` entry point as a deprecation shim over the
study engine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.compiler.ir import IRFunction
from repro.explore.explorer import ExplorationResult
from repro.explore.space import ArchConfig, RFConfig

#: RF arrangements the neighbourhood can step through, small to large.
_RF_LADDER: tuple[tuple[RFConfig, ...], ...] = (
    (RFConfig(4),),
    (RFConfig(8),),
    (RFConfig(12),),
    (RFConfig(8), RFConfig(12)),
    (RFConfig(8, read_ports=2), RFConfig(12)),
    (RFConfig(12, read_ports=2), RFConfig(12, read_ports=2)),
    (RFConfig(16, read_ports=2, write_ports=2),),
)


def default_seeds() -> list[ArchConfig]:
    """The seed templates the iterative search starts from by default:
    one minimal single-bus machine and one mid-range template."""
    return [
        ArchConfig(num_buses=1, rfs=(RFConfig(8),)),
        ArchConfig(num_buses=3, num_alus=2, rfs=_RF_LADDER[3]),
    ]


def neighbours(config: ArchConfig) -> list[ArchConfig]:
    """Single-parameter mutations of one template."""
    out: list[ArchConfig] = []

    def replace(**kwargs) -> None:
        merged = dict(
            num_buses=config.num_buses,
            num_alus=config.num_alus,
            num_cmps=config.num_cmps,
            num_shifters=config.num_shifters,
            num_muls=config.num_muls,
            rfs=config.rfs,
        )
        merged.update(kwargs)
        out.append(ArchConfig(**merged))

    if config.num_buses < 4:
        replace(num_buses=config.num_buses + 1)
    if config.num_buses > 1:
        replace(num_buses=config.num_buses - 1)
    if config.num_alus < 3:
        replace(num_alus=config.num_alus + 1)
    if config.num_alus > 1:
        replace(num_alus=config.num_alus - 1)
    replace(num_shifters=1 - config.num_shifters)

    try:
        position = _RF_LADDER.index(config.rfs)
    except ValueError:
        position = None
    if position is not None:
        if position + 1 < len(_RF_LADDER):
            replace(rfs=_RF_LADDER[position + 1])
        if position > 0:
            replace(rfs=_RF_LADDER[position - 1])
    return out


@dataclass
class IterativeResult:
    """Exploration outcome plus search statistics."""

    result: ExplorationResult
    evaluations: int
    iterations: int
    frontier_history: list[int] = field(default_factory=list)


def iterative_explore(
    workload: IRFunction,
    seeds: list[ArchConfig] | None = None,
    max_evaluations: int = 80,
    width: int = 16,
) -> IterativeResult:
    """Neighbourhood search from ``seeds`` toward the Pareto frontier.

    .. deprecated::
        Delegates to the study engine's ``iterative`` strategy; prefer
        :class:`repro.study.Study` with ``strategy="iterative"``.
    """
    warnings.warn(
        "iterative_explore() is deprecated; use repro.study.Study with "
        "strategy='iterative' (run_search for in-memory workloads)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.compiler.interp import IRInterpreter
    from repro.study.engine import run_search

    profile = IRInterpreter(workload, width=width).run().block_counts
    params: dict = {"max_evaluations": max_evaluations}
    if seeds is not None:
        params["seeds"] = seeds
    outcome = run_search(
        workload, [], width=width, strategy="iterative",
        strategy_params=params, profile=profile,
    )
    result = ExplorationResult(
        workload=workload.name, profile=profile, points=outcome.points
    )
    return IterativeResult(
        result=result,
        evaluations=outcome.evaluations,
        iterations=outcome.iterations,
        frontier_history=outcome.frontier_history,
    )
