"""Evaluation of one architecture configuration against a workload.

Mirrors the MOVE evaluation loop: compile the application onto the
candidate, take the **profile-weighted static cycle count** as the
throughput cost and the placed **area** from the component datasheets.
Configurations the compiler cannot map (no RF capacity, missing FU
classes) are reported infeasible rather than silently skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import IRFunction
from repro.compiler.regalloc import AllocationError
from repro.compiler.scheduler import CompileResult, ScheduleError, compile_ir
from repro.explore.space import ArchConfig, build_architecture
from repro.tta.arch import Architecture


@dataclass
class EvaluatedPoint:
    """One point of the solution space."""

    config: ArchConfig
    area: float
    cycles: int | None                      # None = infeasible
    test_cost: int | None = None            # attached by repro.testcost
    compile_result: CompileResult | None = None

    @property
    def feasible(self) -> bool:
        return self.cycles is not None

    @property
    def label(self) -> str:
        return self.config.label()

    def cost2d(self) -> tuple[float, float]:
        assert self.cycles is not None
        return (self.area, float(self.cycles))

    def cost3d(self) -> tuple[float, float, float]:
        assert self.cycles is not None and self.test_cost is not None
        return (self.area, float(self.cycles), float(self.test_cost))


def evaluate_config(
    config: ArchConfig,
    workload: IRFunction,
    profile: dict[str, int],
    width: int = 16,
    keep_compile_result: bool = False,
) -> EvaluatedPoint:
    """Compile ``workload`` onto one configuration and cost it."""
    arch = build_architecture(config, width)
    area = arch.area()
    try:
        compiled = compile_ir(workload, arch, profile=profile)
    except (AllocationError, ScheduleError):
        return EvaluatedPoint(config=config, area=area, cycles=None)
    cycles = compiled.static_cycles(profile)
    return EvaluatedPoint(
        config=config,
        area=area,
        cycles=cycles,
        compile_result=compiled if keep_compile_result else None,
    )


# ----------------------------------------------------------------------
# process-pool entry points
#
# ``ProcessPoolExecutor`` can only ship module-level callables, and the
# workload/profile are identical for every configuration of a sweep, so
# they travel once per worker (via the pool initializer) instead of once
# per task.
# ----------------------------------------------------------------------
_WORKER_CONTEXT: dict[str, object] = {}


def init_evaluation_worker(
    workload: IRFunction, profile: dict[str, int], width: int
) -> None:
    """Pool initializer: pin the shared per-sweep evaluation inputs."""
    _WORKER_CONTEXT["workload"] = workload
    _WORKER_CONTEXT["profile"] = profile
    _WORKER_CONTEXT["width"] = width


def evaluate_config_worker(config: ArchConfig) -> EvaluatedPoint:
    """Evaluate one configuration against the pinned worker context."""
    if "workload" not in _WORKER_CONTEXT:
        raise RuntimeError("init_evaluation_worker() was not called")
    return evaluate_config(
        config,
        _WORKER_CONTEXT["workload"],        # type: ignore[arg-type]
        _WORKER_CONTEXT["profile"],         # type: ignore[arg-type]
        _WORKER_CONTEXT["width"],           # type: ignore[arg-type]
    )


def evaluate_space(
    space: list[ArchConfig],
    workload: IRFunction,
    profile: dict[str, int],
    width: int = 16,
) -> list[EvaluatedPoint]:
    """Evaluate every configuration (feasible or not) in ``space``."""
    return [
        evaluate_config(config, workload, profile, width) for config in space
    ]


def architecture_of(point: EvaluatedPoint, width: int = 16) -> Architecture:
    """Re-instantiate the architecture of an evaluated point."""
    return build_architecture(point.config, width)
