"""The study service: queue, dedupe, sharded cache, wire protocol, e2e.

Unit sections exercise the queue's fairness/dedupe policy, the
single-flight in-flight index and the sharded/LRU result cache with no
sockets involved.  The end-to-end section runs real servers in
subprocesses (``python -m repro serve``) and drives them through
:class:`repro.service.ServiceClient` — including the SIGKILL-and-resume
path, which only means anything against a real process.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign.cache import ResultCache, cache_key
from repro.explore import EvaluatedPoint
from repro.explore.space import ArchConfig
from repro.resilience.checkpoint import spec_digest
from repro.service import (
    DedupeCache,
    InflightIndex,
    JobQueue,
    JobState,
    METRICS_VERSION,
    ServiceClient,
    parse_address,
    render_dashboard,
    wait_for_server,
)
from repro.service.client import ServiceError
from repro.service.protocol import decode_frame, encode_frame
from repro.study import StudySpec, run_study
from repro.__main__ import main

SRC = Path(__file__).resolve().parent.parent / "src"


# ----------------------------------------------------------------------
# spec_id / digest unification
# ----------------------------------------------------------------------
class TestSpecId:
    def test_spec_id_is_the_checkpoint_digest(self):
        spec = StudySpec(name="s", workloads=("gcd",), space="small")
        assert spec.spec_id == spec_digest(spec.to_dict())

    def test_spec_id_stable_across_param_order(self):
        a = StudySpec(
            name="s", workloads=("gcd",), strategy="random",
            strategy_params={"budget": 4, "seed": 1},
        )
        b = StudySpec(
            name="s", workloads=("gcd",), strategy="random",
            strategy_params={"seed": 1, "budget": 4},
        )
        assert a.spec_id == b.spec_id

    def test_spec_id_changes_with_content(self):
        a = StudySpec(name="s", workloads=("gcd",))
        b = StudySpec(name="s", workloads=("gcd",), width=32)
        assert a.spec_id != b.spec_id

    def test_spec_hashable_via_spec_id(self):
        a = StudySpec(name="s", workloads=("gcd",))
        b = StudySpec(name="s", workloads=("gcd",))
        assert hash(a) == hash(b) and len({a, b}) == 1


# ----------------------------------------------------------------------
# protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        frame = {"op": "submit", "spec": {"name": "x"}, "priority": 2}
        assert decode_frame(encode_frame(frame)) == frame

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("unix:/tmp/x.sock", ("unix", "/tmp/x.sock")),
            ("/tmp/x", ("unix", "/tmp/x")),
            ("x.sock", ("unix", "x.sock")),
            ("tcp:somehost:900", ("tcp", ("somehost", 900))),
            ("tcp:900", ("tcp", ("127.0.0.1", 900))),
            ("somehost:900", ("tcp", ("somehost", 900))),
            ("900", ("tcp", ("127.0.0.1", 900))),
        ],
    )
    def test_parse_address(self, text, expected):
        assert parse_address(text) == expected

    def test_parse_address_rejects_nonsense(self):
        with pytest.raises(ValueError, match="cannot parse"):
            parse_address("not an address")


# ----------------------------------------------------------------------
# job queue
# ----------------------------------------------------------------------
def _spec_dict(name="s", **kw):
    kw.setdefault("workloads", ("gcd",))
    kw.setdefault("space", "small")
    return StudySpec(name=name, **kw).to_dict()


def _submit(queue, tenant, name="s", priority=0, **kw):
    spec = _spec_dict(name, **kw)
    return queue.submit(tenant, spec_digest(spec), spec, priority)


class TestJobQueue:
    def test_duplicate_submit_dedupes(self):
        queue = JobQueue()
        job, deduped = _submit(queue, "a")
        assert not deduped and job.state == JobState.QUEUED
        again, deduped = _submit(queue, "a")
        assert deduped and again is job and job.submissions == 2
        queue.mark_running(job)
        _, deduped = _submit(queue, "a")
        assert deduped
        queue.finish(job, JobState.DONE)
        _, deduped = _submit(queue, "a")
        assert deduped

    def test_same_spec_different_tenants_do_not_dedupe(self):
        queue = JobQueue()
        job_a, _ = _submit(queue, "a")
        job_b, deduped = _submit(queue, "b")
        assert not deduped and job_a.job_id != job_b.job_id

    def test_failed_job_resubmit_rearms(self):
        queue = JobQueue()
        job, _ = _submit(queue, "a")
        queue.mark_running(job)
        queue.finish(job, JobState.FAILED, "boom")
        again, deduped = _submit(queue, "a", priority=7)
        assert not deduped and again is job
        assert job.state == JobState.QUEUED
        assert job.error is None and job.priority == 7

    def test_fairness_under_contention(self):
        queue = JobQueue(tenant_max_running=1)
        a1, _ = _submit(queue, "a", name="a1")
        a2, _ = _submit(queue, "a", name="a2")
        a3, _ = _submit(queue, "a", name="a3", priority=5)
        b1, _ = _submit(queue, "b", name="b1")
        first = queue.pick()
        assert first is a3            # a's highest priority
        queue.mark_running(first)
        second = queue.pick()
        assert second is b1           # a is at its running cap
        queue.mark_running(second)
        assert queue.pick() is None   # both tenants capped
        queue.finish(first, JobState.DONE)
        third = queue.pick()
        assert third is a1            # back under cap; FIFO beyond prio

    def test_fairness_prefers_starved_tenant(self):
        queue = JobQueue(tenant_max_running=2)
        _submit(queue, "a", name="a1")
        _submit(queue, "a", name="a2")
        b1, _ = _submit(queue, "b", name="b1")
        first = queue.pick()
        queue.mark_running(first)
        # One of each is fair: with a running, b has fewer running jobs.
        second = queue.pick()
        assert second is b1
        queue.mark_running(second)

    def test_queue_state_round_trip(self):
        queue = JobQueue(tenant_max_running=3)
        a1, _ = _submit(queue, "a", name="a1")
        a2, _ = _submit(queue, "a", name="a2", priority=2)
        queue.mark_running(a1)
        queue.finish(a2, JobState.CANCELLED)
        loaded = JobQueue.from_dict(
            json.loads(json.dumps(queue.to_dict()))
        )
        # the running job came back queued + interrupted (resume path)
        job = loaded.get(a1.job_id)
        assert job.state == JobState.QUEUED and job.interrupted
        assert loaded.get(a2.job_id).state == JobState.CANCELLED
        assert loaded.tenant_max_running == 3
        # the scheduler serials survive, so fairness has no amnesia
        assert loaded.to_dict()["sched_seq"] == queue.to_dict()["sched_seq"]

    def test_from_dict_rejects_alien_schema(self):
        with pytest.raises(ValueError, match="schema"):
            JobQueue.from_dict({"schema": 99})


# ----------------------------------------------------------------------
# in-flight dedupe
# ----------------------------------------------------------------------
class _DictCache:
    """A minimal thread-safe get/put cache for dedupe unit tests."""

    def __init__(self):
        self.data = {}
        self.puts = 0
        self.lock = threading.Lock()
        self.stats = None

    def get(self, workload, config, width, march=None, energy_model=None):
        with self.lock:
            return self.data.get(cache_key(workload, config, width))

    def put(self, workload, point, width, march=None, energy_model=None):
        with self.lock:
            self.data[cache_key(workload, point.config, width)] = point
            self.puts += 1


class TestInflightDedupe:
    def test_claim_resolve_cycle(self):
        index = InflightIndex()
        assert index.claim("k", "job1") is None       # ours
        assert index.claim("k", "job1") is None       # re-claim is ours
        event = index.claim("k", "job2")
        assert event is not None and not event.is_set()
        index.resolve("k")
        assert event.is_set()
        assert index.as_dict()["in_flight"] == 0

    def test_release_owner_wakes_waiters(self):
        index = InflightIndex()
        index.claim("k1", "job1")
        index.claim("k2", "job1")
        event = index.claim("k1", "job2")
        assert index.release_owner("job1") == 2
        assert event.is_set()

    def test_concurrent_misses_evaluate_once(self):
        inner = _DictCache()
        index = InflightIndex()
        config = ArchConfig(num_buses=2)
        point = EvaluatedPoint(config=config, area=1.0, cycles=10)
        barrier = threading.Barrier(2)
        results = {}

        def job(name):
            cache = DedupeCache(inner, index, name, wait_timeout=5.0)
            barrier.wait()
            hit = cache.get("gcd", config, 16)
            if hit is None:
                time.sleep(0.05)          # the "evaluation"
                cache.put("gcd", point, 16)
                hit = point
            results[name] = hit

        threads = [
            threading.Thread(target=job, args=(f"job{i}",))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert inner.puts == 1            # the point ran exactly once
        assert index.coalesced == 1
        assert results["job0"].area == results["job1"].area == 1.0

    def test_waiter_falls_back_when_owner_dies(self):
        inner = _DictCache()
        index = InflightIndex()
        config = ArchConfig(num_buses=1)
        owner = DedupeCache(inner, index, "dying", wait_timeout=5.0)
        assert owner.get("gcd", config, 16) is None   # claims the key

        woke = {}

        def waiter():
            cache = DedupeCache(inner, index, "patient", wait_timeout=5.0)
            woke["result"] = cache.get("gcd", config, 16)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.1)
        owner.release()                   # the job died without a put
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert woke["result"] is None     # waiter re-evaluates itself


# ----------------------------------------------------------------------
# sharded cache
# ----------------------------------------------------------------------
def _point(n: int) -> EvaluatedPoint:
    return EvaluatedPoint(
        config=ArchConfig(num_buses=n), area=float(n), cycles=10 * n
    )


class TestShardedCache:
    def test_entries_land_in_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("gcd", _point(1), 16)
        key = cache_key("gcd", ArchConfig(num_buses=1), 16)
        path = tmp_path / "shards" / key[:2] / f"{key}.json"
        assert path.exists()
        assert not (tmp_path / f"{key}.json").exists()
        assert len(cache) == 1

    def test_flat_cache_migrates_transparently(self, tmp_path):
        cache = ResultCache(tmp_path)
        points = [_point(n) for n in (1, 2, 3)]
        for point in points:
            cache.put("gcd", point, 16)
        before = {
            n: cache.get("gcd", ArchConfig(num_buses=n), 16)
            for n in (1, 2, 3)
        }
        # Rewind to the pre-shard layout: entries at the top level.
        for path in list(tmp_path.glob("shards/*/*.json")):
            os.rename(path, tmp_path / path.name)
        shutil.rmtree(tmp_path / "shards")

        legacy = ResultCache(tmp_path)
        assert len(legacy) == 3
        assert legacy.shard_stats() == {
            "(flat)": {
                "entries": 3,
                "bytes": legacy.bytes_on_disk(),
            }
        }
        after = {
            n: legacy.get("gcd", ArchConfig(num_buses=n), 16)
            for n in (1, 2, 3)
        }
        for n in (1, 2, 3):
            assert (after[n].area, after[n].cycles) == (
                before[n].area, before[n].cycles
            )
        # same entries, now sharded; nothing left flat
        assert legacy.stats.migrated == 3
        assert len(legacy) == 3
        assert not list(tmp_path.glob("*.json"))
        assert "(flat)" not in legacy.shard_stats()
        assert legacy.verify()["ok"] == 3

    def test_verify_and_clear_cover_both_layouts(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("gcd", _point(1), 16)
        (tmp_path / "legacyentry.json").write_text(
            json.dumps(
                {
                    "schema": 2, "workload": "gcd", "width": 16,
                    "config": ArchConfig(num_buses=2).to_dict(),
                    "area": 2.0, "cycles": 20, "code_size": None,
                    "test_cost": None,
                    "march": None, "energy": None, "energy_model": None,
                }
            )
        )
        assert len(cache) == 2
        assert cache.verify()["ok"] == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_stats_file_is_not_an_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("gcd", _point(1), 16)
        cache.persist_stats()
        assert (tmp_path / "stats.json").exists()
        assert len(cache) == 1
        assert cache.verify()["checked"] == 1

    def test_lru_eviction_drops_oldest(self, tmp_path):
        seed = ResultCache(tmp_path)
        for n in (1, 2):
            seed.put("gcd", _point(n), 16)
        budget = seed.bytes_on_disk() + 16   # room for 2, not 3
        key1 = cache_key("gcd", ArchConfig(num_buses=1), 16)
        path1 = tmp_path / "shards" / key1[:2] / f"{key1}.json"
        os.utime(path1, (1, 1))              # entry 1 is clearly oldest

        cache = ResultCache(tmp_path, max_bytes=budget)
        cache.put("gcd", _point(3), 16)      # pushes past the budget
        assert cache.stats.evictions >= 1
        assert cache.get("gcd", ArchConfig(num_buses=1), 16) is None
        assert cache.get("gcd", ArchConfig(num_buses=3), 16) is not None
        assert cache.bytes_on_disk() <= budget

    def test_hit_refreshes_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=1 << 20)
        cache.put("gcd", _point(1), 16)
        key = cache_key("gcd", ArchConfig(num_buses=1), 16)
        path = tmp_path / "shards" / key[:2] / f"{key}.json"
        os.utime(path, (1, 1))
        assert cache.get("gcd", ArchConfig(num_buses=1), 16) is not None
        assert path.stat().st_mtime > 1      # the hit was the LRU touch

    def test_explicit_compact_with_override_budget(self, tmp_path):
        cache = ResultCache(tmp_path)        # unbounded instance
        for n in (1, 2, 3):
            cache.put("gcd", _point(n), 16)
            key = cache_key("gcd", ArchConfig(num_buses=n), 16)
            os.utime(
                tmp_path / "shards" / key[:2] / f"{key}.json", (n, n)
            )
        report = cache.compact(max_bytes=0)
        assert report["evicted"] == 3 and report["bytes"] == 0
        assert cache.stats.evictions == 3

    def test_persist_stats_accumulates_across_instances(self, tmp_path):
        first = ResultCache(tmp_path)
        first.put("gcd", _point(1), 16)
        first.get("gcd", ArchConfig(num_buses=1), 16)
        merged = first.persist_stats()
        assert merged["puts"] == 1 and merged["hits"] == 1
        second = ResultCache(tmp_path)
        second.get("gcd", ArchConfig(num_buses=1), 16)
        second.get("gcd", ArchConfig(num_buses=9), 16)
        merged = second.persist_stats()
        assert merged["hits"] == 2 and merged["misses"] == 1
        # idempotent: persisting with no new activity changes nothing
        assert second.persist_stats() == merged

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultCache(tmp_path, max_bytes=0)


# ----------------------------------------------------------------------
# cache stats CLI
# ----------------------------------------------------------------------
class TestCacheStatsCli:
    def test_stats_on_sharded_cache(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        for n in (1, 2, 3):
            cache.put("gcd", _point(n), 16)
        cache.get("gcd", ArchConfig(num_buses=1), 16)
        cache.persist_stats()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out
        assert "shard" in out
        assert "1 hits / 1 lookups" in out

    def test_stats_on_flat_cache(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        cache.put("gcd", _point(1), 16)
        for path in list(tmp_path.glob("shards/*/*.json")):
            os.rename(path, tmp_path / path.name)
        shutil.rmtree(tmp_path / "shards")
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "(flat)" in out and "1 entries" in out


# ----------------------------------------------------------------------
# end-to-end: real servers in subprocesses
# ----------------------------------------------------------------------
def _env(fault: str | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_INJECT", None)
    if fault:
        env["REPRO_FAULT_INJECT"] = fault
    return env


def _start_server(tmp_path: Path, *extra: str, fault: str | None = None):
    sock = tmp_path / "s.sock"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(sock),
            "--state-dir", str(tmp_path / "state"), *extra,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=_env(fault),
    )
    try:
        wait_for_server(str(sock))
    except Exception:
        proc.kill()
        out, _ = proc.communicate(timeout=10)
        raise AssertionError(f"server never came up; output:\n{out}")
    return proc


def _stop_server(proc, sock: str | Path) -> None:
    try:
        with ServiceClient(str(sock)) as client:
            client.shutdown()
    except (OSError, ServiceError):
        proc.kill()
    proc.wait(timeout=30)


def _batch_front(spec_dict: dict) -> list[str]:
    result = run_study(StudySpec.from_dict(spec_dict))
    return sorted(p.label for p in result.single.pareto)


def _watch_until_done(client, job_id: str) -> tuple[dict, dict]:
    """Drain a watch; returns (final job_state frame, last front per run)."""
    fronts: dict[str, dict] = {}
    for frame in client.watch(job_id):
        if frame["event"] == "front":
            fronts[frame["run"]] = frame
        elif frame["event"] == "job_state" and frame.get("terminal"):
            return frame, fronts
    raise AssertionError(f"watch of {job_id} ended without a terminal state")


SPEC_A = {"name": "svc-a", "workloads": ["gcd"], "space": "small"}
SPEC_B = {
    "name": "svc-b", "workloads": ["gcd", "checksum"], "space": "small",
}


class TestServiceEndToEnd:
    def test_concurrent_overlap_streams_and_dedupes(self, tmp_path):
        """Two tenants, overlapping studies: fronts match batch runs and
        each shared point is evaluated exactly once across the server."""
        sock = tmp_path / "s.sock"
        proc = _start_server(
            tmp_path,
            "--workers", "2", "--stream-every", "2",
            "--cache-dir", str(tmp_path / "cache"),
            fault="sleep@*:0.05",   # stretch points so the jobs overlap
        )
        try:
            with ServiceClient(str(sock)) as ca, \
                    ServiceClient(str(sock)) as cb:
                job_a = ca.submit(SPEC_A, tenant="a")["job"]
                job_b = cb.submit(SPEC_B, tenant="b")["job"]
                state_a, fronts_a = _watch_until_done(ca, job_a)
                state_b, fronts_b = _watch_until_done(cb, job_b)
                assert state_a["state"] == "done"
                assert state_b["state"] == "done"
                result_a = ca.result(job_a)
                result_b = cb.result(job_b)
                stats = ca.stats()

            # streamed final fronts == the batch Study.run() fronts
            assert fronts_a["gcd/small/w16"]["final"]
            assert sorted(fronts_a["gcd/small/w16"]["front"]) == (
                _batch_front(SPEC_A)
            )
            batch_b = run_study(StudySpec.from_dict(SPEC_B))
            for run in batch_b.runs:
                assert sorted(fronts_b[run.label]["front"]) == sorted(
                    p.label for p in run.pareto
                )
                assert fronts_b[run.label]["final"]
            # ...and the persisted results agree with the stream
            assert sorted(result_a["runs"][0]["pareto"]) == (
                _batch_front(SPEC_A)
            )

            # the dedupe guarantee: 24 unique points (12 gcd shared +
            # 12 checksum), evaluated exactly once server-wide
            evaluated = sum(
                run["stats"]["evaluated"]
                for result in (result_a, result_b)
                for run in result["runs"]
            )
            assert evaluated == 24
            # the shared points were served by coalescing or the cache
            shared = sum(
                run["stats"]["cache_hits"]
                for result in (result_a, result_b)
                for run in result["runs"]
            ) + stats["dedupe"]["coalesced"]
            assert shared >= 12
        finally:
            _stop_server(proc, sock)

    def test_cancel_queued_and_running(self, tmp_path):
        sock = tmp_path / "s.sock"
        proc = _start_server(
            tmp_path,
            "--workers", "1", "--no-cache", "--stream-every", "1",
            fault="sleep@*:0.2",
        )
        try:
            with ServiceClient(str(sock)) as client, \
                    ServiceClient(str(sock)) as side:
                running = client.submit(SPEC_A, tenant="a")["job"]
                queued = client.submit(
                    dict(SPEC_A, name="svc-queued"), tenant="a"
                )["job"]
                # worker budget is 1: the second job cannot be running
                side.cancel(queued)
                assert side.status(queued)["state"] == "cancelled"

                cancelled = False
                for frame in client.watch(running):
                    if frame["event"] == "front" and not cancelled:
                        side.cancel(running)   # mid-wave, points pending
                        cancelled = True
                    if frame["event"] == "job_state" and frame.get(
                        "terminal"
                    ):
                        assert frame["state"] == "cancelled"
                        break
                with pytest.raises(ServiceError, match="no result"):
                    side.result(running)
        finally:
            _stop_server(proc, sock)

    def test_sigkill_server_resumes_queue_and_finishes(self, tmp_path):
        """SIGKILL mid-study; the restarted server resumes the running
        job from its checkpoint and still runs the queued one."""
        sock = tmp_path / "s.sock"
        flags = (
            "--workers", "1", "--tenant-max-running", "1", "--no-cache",
            "--stream-every", "1", "--checkpoint-every", "1",
        )
        proc = _start_server(tmp_path, *flags, fault="sleep@*:0.1")
        spec_second = {
            "name": "svc-second", "workloads": ["checksum"],
            "space": "small",
        }
        with ServiceClient(str(sock)) as client:
            job_a = client.submit(SPEC_A, tenant="a")["job"]
            job_b = client.submit(spec_second, tenant="b")["job"]
            fronts_seen = 0
            for frame in client.watch(job_a):
                if frame["event"] == "front":
                    fronts_seen += 1
                if fronts_seen >= 3:       # mid-study, points recorded
                    break
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        proc = _start_server(tmp_path, *flags)   # no fault: finish fast
        try:
            with ServiceClient(str(sock)) as client:
                state_a, fronts_a = _watch_until_done(client, job_a)
                state_b, _ = _watch_until_done(client, job_b)
                assert state_a["state"] == "done"
                assert state_b["state"] == "done"
                result_a = client.result(job_a)
                result_b = client.result(job_b)
            assert sorted(result_a["runs"][0]["pareto"]) == (
                _batch_front(SPEC_A)
            )
            assert fronts_a["gcd/small/w16"]["front"] == (
                _batch_front(SPEC_A)
            )
            assert sorted(result_b["runs"][0]["pareto"]) == (
                _batch_front(spec_second)
            )
            # the resumed run did not restart: all 12 points are there
            assert result_a["runs"][0]["stats"]["total"] == 12
            assert len(result_a["runs"][0]["points"]) == 12
        finally:
            _stop_server(proc, sock)


# ----------------------------------------------------------------------
# job lifecycle timestamps (what `repro top` ages come from)
# ----------------------------------------------------------------------
class TestJobTimestamps:
    def test_lifecycle_stamps_and_round_trip(self):
        queue = JobQueue()
        job, _ = _submit(queue, "a")
        assert job.submitted_at is not None
        assert job.started_at is None and job.finished_at is None
        queue.mark_running(job)
        assert job.started_at >= job.submitted_at
        queue.finish(job, JobState.DONE)
        assert job.finished_at >= job.started_at
        loaded = JobQueue.from_dict(
            json.loads(json.dumps(queue.to_dict()))
        ).get(job.job_id)
        assert loaded.submitted_at == job.submitted_at
        assert loaded.started_at == job.started_at
        assert loaded.finished_at == job.finished_at

    def test_rearm_resets_stamps(self):
        queue = JobQueue()
        job, _ = _submit(queue, "a")
        first_submit = job.submitted_at
        queue.mark_running(job)
        queue.finish(job, JobState.FAILED, "boom")
        time.sleep(0.01)
        again, deduped = _submit(queue, "a")
        assert again is job and not deduped
        assert job.submitted_at > first_submit
        assert job.started_at is None and job.finished_at is None


# ----------------------------------------------------------------------
# `repro top` rendering (pure function; no server)
# ----------------------------------------------------------------------
class TestTopDashboard:
    METRICS = {
        "uptime": 61.0,
        "queue": {"depth": 1, "jobs": {"running": 1, "done": 2}},
        "workers": {"total": 4, "available": 3, "busy": 1},
        "tenants": {
            "alice": {
                "jobs_submitted": {"value": 2},
                "points_recorded": {"value": 24},
                "points_evaluated": {"value": 12},
                "cache_hits": {"value": 12},
                "queue_wait_seconds": {
                    "count": 2, "quantiles": {"p50": 0.0008, "p90": 0.002},
                },
                "eval_seconds": {
                    "count": 12,
                    "quantiles": {"p50": 0.004, "p99": 0.09},
                },
            },
        },
        "registry": {"counters": {"points_recorded": [
            {"labels": {"tenant": "alice", "job": "j1"}, "value": 24},
        ]}},
    }
    JOBS = [
        {"job": "j1", "tenant": "alice", "state": "done",
         "submitted_at": 100.0, "started_at": 101.0, "finished_at": 103.5},
        {"job": "j2", "tenant": "alice", "state": "running",
         "submitted_at": 104.0, "started_at": 105.0, "finished_at": None},
    ]

    def test_frame_contents_and_ordering(self):
        frame = render_dashboard(self.METRICS, self.JOBS, now=110.0)
        assert "up 1m01s" in frame
        assert "workers 1/4" in frame
        assert "queue 1" in frame
        assert "running:1 done:2" in frame
        # tenant row: points, evals, hits, latency quantiles
        alice = next(l for l in frame.splitlines() if l.startswith("alice"))
        assert "24" in alice and "12" in alice
        assert "800us" in alice and "4.0ms" in alice
        # running jobs sort above done ones; ages come from the stamps
        lines = frame.splitlines()
        assert lines.index(
            next(l for l in lines if l.startswith("j2"))
        ) < lines.index(next(l for l in lines if l.startswith("j1")))
        j1 = next(l for l in lines if l.startswith("j1"))
        assert "2.5s" in j1      # took = finished - started
        j2 = next(l for l in lines if l.startswith("j2"))
        assert "6.0s" in j2      # age = now - submitted

    def test_empty_server_renders(self):
        frame = render_dashboard({"uptime": 0.5}, [], now=1.0)
        assert "(no jobs)" in frame
        assert "(queue is empty)" in frame


# ----------------------------------------------------------------------
# the metrics op + CLI, against real servers
# ----------------------------------------------------------------------
class TestMetricsEndToEnd:
    def test_metrics_op_two_concurrent_tenants(self, tmp_path):
        """Acceptance: per-tenant evaluation counts reported by the
        ``metrics`` op equal the points actually recorded/evaluated by
        that tenant's jobs, with both tenants in flight at once."""
        sock = tmp_path / "s.sock"
        proc = _start_server(
            tmp_path,
            "--workers", "2", "--stream-every", "2",
            "--cache-dir", str(tmp_path / "cache"),
            fault="sleep@*:0.05",
        )
        try:
            with ServiceClient(str(sock)) as ca, \
                    ServiceClient(str(sock)) as cb:
                job_a = ca.submit(SPEC_A, tenant="a")["job"]
                job_b = cb.submit(SPEC_B, tenant="b")["job"]
                _watch_until_done(ca, job_a)
                _watch_until_done(cb, job_b)
                result_a = ca.result(job_a)
                result_b = cb.result(job_b)
                metrics = ca.metrics()
                only_b = ca.metrics(tenant="b")
                jobs = ca.request("jobs")["jobs"]

            assert metrics["version"] == METRICS_VERSION
            assert metrics["uptime"] > 0
            for tenant, result in (("a", result_a), ("b", result_b)):
                agg = metrics["tenants"][tenant]
                recorded = sum(
                    len(run["points"]) for run in result["runs"]
                )
                evaluated = sum(
                    run["stats"]["evaluated"] for run in result["runs"]
                )
                assert agg["points_recorded"]["value"] == recorded
                assert agg["points_evaluated"]["value"] == evaluated
                assert agg["jobs_submitted"]["value"] == 1
                assert agg["jobs_finished"]["value"] == 1
                # the per-point latency histogram saw every evaluation
                assert agg["eval_seconds"]["count"] == evaluated
                assert agg["queue_wait_seconds"]["count"] == 1
            assert list(only_b["tenants"]) == ["b"]
            g = metrics["global"]
            assert g["points_evaluated"]["value"] == 24   # dedupe holds
            assert g["jobs_finished"]["value"] == 2
            assert metrics["workers"]["total"] == 2
            assert metrics["queue"]["jobs"]["done"] == 2
            # per-(tenant, job) series survive in the raw registry
            eval_series = (
                metrics["registry"]["histograms"]["eval_seconds"]
            )
            assert sum(e["count"] for e in eval_series) == 24
            assert {e["labels"]["job"] for e in eval_series} == {
                job_a, job_b,
            }
            # lifecycle stamps flow through the jobs op for `repro top`
            for job in jobs:
                assert (
                    job["submitted_at"]
                    <= job["started_at"]
                    <= job["finished_at"]
                )
        finally:
            _stop_server(proc, sock)

    def test_metrics_cli_and_top_frames(self, tmp_path, capsys):
        sock = tmp_path / "s.sock"
        proc = _start_server(tmp_path, "--workers", "1", "--no-cache")
        try:
            with ServiceClient(str(sock)) as client:
                job = client.submit(SPEC_A, tenant="alice")["job"]
                _watch_until_done(client, job)

            # --format json round-trips the full metrics op response
            assert main([
                "metrics", "dump", "--server", str(sock),
                "--format", "json",
            ]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["version"] == METRICS_VERSION
            assert (
                payload["tenants"]["alice"]["points_evaluated"]["value"]
                == 12
            )

            # the default format is parseable Prometheus text
            assert main(["metrics", "dump", "--server", str(sock)]) == 0
            prom = capsys.readouterr().out
            helps = [
                l.split()[2] for l in prom.splitlines()
                if l.startswith("# HELP")
            ]
            types = [
                l.split()[2] for l in prom.splitlines()
                if l.startswith("# TYPE")
            ]
            assert helps and len(helps) == len(set(helps))
            assert types and len(types) == len(set(types))
            assert all(
                l.startswith(("#", "repro_"))
                for l in prom.splitlines() if l
            )
            assert (
                f'repro_points_evaluated_total'
                f'{{job="{job}",tenant="alice"}} 12'
            ) in prom

            # two top frames, no clear codes, job + tenant visible
            assert main([
                "top", "--server", str(sock), "--iterations", "2",
                "--interval", "0", "--no-clear",
            ]) == 0
            frames = capsys.readouterr().out
            assert frames.count("repro top — study server") == 2
            assert "\x1b" not in frames
            assert "alice" in frames and job in frames
        finally:
            _stop_server(proc, sock)
