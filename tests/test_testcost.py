"""The analytical cost model: eqs. 9-14 and the Fig. 6 effect."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.components.library import alu_spec, pc_spec, rf_spec
from repro.explore import ArchConfig, RFConfig, build_architecture
from repro.testcost import (
    fu_test_cost,
    rf_test_cost,
    socket_test_cost,
    transport_latency,
)
from repro.testcost import test_bus_assignment as bus_assignment_of
from repro.tta import Architecture, UnitInstance


def _arch_with_binding(num_buses, connectivity=None):
    return Architecture(
        "t", 16, num_buses,
        [UnitInstance("fu", alu_spec(16)), UnitInstance("pc", pc_spec(16))],
        connectivity=connectivity,
    )


# ----------------------------------------------------------------------
# transport latency (eqs. 9-10)
# ----------------------------------------------------------------------
def test_cd_minimum_three_with_enough_buses():
    arch = _arch_with_binding(3)
    assert transport_latency(arch, "fu") == 3


def test_cd_four_when_inputs_share_bus():
    arch = _arch_with_binding(
        3,
        {("fu", "a"): frozenset({0}), ("fu", "b"): frozenset({0})},
    )
    assert transport_latency(arch, "fu") == 4


def test_cd_five_when_everything_shares():
    arch = _arch_with_binding(
        3,
        {("fu", "a"): frozenset({0}), ("fu", "b"): frozenset({0}),
         ("fu", "y"): frozenset({0})},
    )
    assert transport_latency(arch, "fu") == 5


def test_cd_single_bus_architecture():
    arch = _arch_with_binding(1)
    assert transport_latency(arch, "fu") == 5   # 2 inputs + result on 1 bus


def test_test_bus_assignment_spreads():
    arch = _arch_with_binding(3)
    assignment = bus_assignment_of(arch, "fu")
    assert assignment["a"] != assignment["b"]
    assert assignment["y"] not in (assignment["a"], assignment["b"])


def test_fig6_identical_fus_different_costs():
    """The paper's Fig. 6: same FU, different connectors, ftf1 < ftf2."""
    arch = Architecture(
        "fig6", 16, 3,
        [UnitInstance("fu1", alu_spec(16)), UnitInstance("fu2", alu_spec(16)),
         UnitInstance("pc", pc_spec(16))],
        connectivity={
            ("fu2", "a"): frozenset({0}),
            ("fu2", "b"): frozenset({0}),
        },
    )
    cd1 = transport_latency(arch, "fu1")
    cd2 = transport_latency(arch, "fu2")
    assert cd1 < cd2
    np = 100
    ftf1 = fu_test_cost(np, cd1, 3, 3)
    ftf2 = fu_test_cost(np, cd2, 3, 3)
    assert ftf1 < ftf2


# ----------------------------------------------------------------------
# eq. 11
# ----------------------------------------------------------------------
def test_fu_cost_base():
    assert fu_test_cost(100, 3, 3, 4) == 300       # ports fit: ratio 1
    assert fu_test_cost(100, 3, 3, 3) == 300
    assert fu_test_cost(100, 3, 3, 2) == 450       # 1.5x ratio
    assert fu_test_cost(100, 3, 3, 1) == 900


def test_fu_cost_validation():
    with pytest.raises(ValueError):
        fu_test_cost(-1, 3, 3, 2)
    with pytest.raises(ValueError):
        fu_test_cost(1, 0, 3, 2)


@given(
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=3, max_value=6),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=6),
)
def test_fu_cost_monotone_in_everything(np, cd, nconn, nb):
    base = fu_test_cost(np, cd, nconn, nb)
    assert fu_test_cost(np + 1, cd, nconn, nb) >= base
    assert fu_test_cost(np, cd + 1, nconn, nb) >= base
    assert fu_test_cost(np, cd, nconn, nb + 1) <= base


# ----------------------------------------------------------------------
# eq. 12 (reconstruction)
# ----------------------------------------------------------------------
def test_rf_cost_parallel_ports_help():
    # within the bus budget, more ports divide the application time
    assert rf_test_cost(80, 3, 1, 1, 2) == 240
    assert rf_test_cost(80, 3, 2, 2, 2) == 120
    assert rf_test_cost(80, 3, 2, 4, 2) == 120    # min side limits


def test_rf_cost_pathological_port_excess():
    # both sides beyond the buses: serialisation penalty kicks in
    narrow = rf_test_cost(80, 3, 3, 3, 2)
    wide = rf_test_cost(80, 3, 2, 2, 2)
    assert narrow > wide


def test_rf_cost_validation():
    with pytest.raises(ValueError):
        rf_test_cost(80, 3, 0, 1, 1)


@given(
    st.integers(min_value=10, max_value=400),
    st.integers(min_value=3, max_value=5),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
def test_rf_cost_monotone_in_patterns(np, cd, nin, nout, nb):
    assert rf_test_cost(np + 10, cd, nin, nout, nb) >= rf_test_cost(
        np, cd, nin, nout, nb
    )


# ----------------------------------------------------------------------
# eq. 13 + architecture-level composition (eq. 14)
# ----------------------------------------------------------------------
def test_socket_cost():
    assert socket_test_cost(14, 58) == 812      # the paper's own numbers
    assert socket_test_cost(14, 75) == 1050
    with pytest.raises(ValueError):
        socket_test_cost(-1, 10)


def test_architecture_cost_composition():
    from repro.testcost import architecture_test_cost

    arch = build_architecture(
        ArchConfig(num_buses=2, rfs=(RFConfig(8), RFConfig(12)))
    )
    breakdown = architecture_test_cost(arch)
    counted = [u for u in breakdown.units if u.counted]
    excluded = [u for u in breakdown.units if not u.counted]
    # eq. 14: the total is the sum over counted units
    assert breakdown.total == sum(u.total for u in counted)
    # LSU/PC/IMM excluded ("they contribute equally", Sec. 4)
    assert {u.unit_name for u in excluded} == {"lsu0", "pc", "imm0"}
    # RF2 (12 words) must cost more than RF1 (8 words)
    rf_costs = {u.unit_name: u.component_cost for u in counted
                if u.unit_name.startswith("rf")}
    assert rf_costs["rf1"] > rf_costs["rf0"]


def test_more_buses_reduce_test_cost():
    from repro.testcost import architecture_test_cost

    totals = []
    for buses in (1, 2, 3):
        arch = build_architecture(
            ArchConfig(num_buses=buses, rfs=(RFConfig(8),))
        )
        totals.append(architecture_test_cost(arch).total)
    assert totals[0] > totals[1] >= totals[2]


def test_march_choice_scales_rf_cost():
    from repro.testcost import architecture_test_cost

    arch = build_architecture(ArchConfig(num_buses=2, rfs=(RFConfig(8),)))
    cheap = architecture_test_cost(arch, march_name="MATS+")
    thorough = architecture_test_cost(arch, march_name="March C-")
    assert cheap.unit("rf0").component_cost < thorough.unit("rf0").component_cost
