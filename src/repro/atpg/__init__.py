"""Automatic test pattern generation for stuck-at faults.

This package replaces the commercial ATPG the paper back-annotates from:
``n_p`` (pattern count) and fault coverage for every gate-level component
come from here.

Pipeline (see :func:`~repro.atpg.engine.run_atpg`):

1. single stuck-at fault enumeration with equivalence collapsing,
2. a seeded random-pattern phase with 64-way bit-parallel fault
   simulation and fault dropping,
3. PODEM for the random-resistant faults (with redundancy proofs and a
   backtrack abort limit — aborted faults are what keeps coverage just
   under 100%, exactly like Table 1's 99.5-99.8%),
4. greedy reverse-order compaction of the pattern set.
"""

from repro.atpg.faults import Fault, collapse_faults, enumerate_faults
from repro.atpg.faultsim import FaultSimulator, pack_patterns
from repro.atpg.podem import Podem, PodemOutcome, PodemResult
from repro.atpg.engine import ATPGResult, clear_atpg_cache, run_atpg
from repro.atpg.diagnosis import DiagnosisCandidate, FaultDictionary
from repro.atpg.delay import (
    DelayAnalyzer,
    DelayCoverage,
    delay_test_cycles,
    enumerate_transition_faults,
)

__all__ = [
    "ATPGResult",
    "DelayAnalyzer",
    "DelayCoverage",
    "DiagnosisCandidate",
    "delay_test_cycles",
    "enumerate_transition_faults",
    "Fault",
    "FaultDictionary",
    "FaultSimulator",
    "Podem",
    "PodemOutcome",
    "PodemResult",
    "clear_atpg_cache",
    "collapse_faults",
    "enumerate_faults",
    "pack_patterns",
    "run_atpg",
]
