"""The asyncio study server.

One process, one event loop, three moving parts:

* the **queue** (:class:`~repro.service.queue.JobQueue`) — mutated only
  from the event loop, persisted through a
  :class:`~repro.resilience.checkpoint.CheckpointManager` (atomic
  rename + content-hash verification) on every transition, so a
  ``SIGKILL`` at any moment leaves a loadable ``queue.json`` and the
  restarted server re-queues whatever was mid-run;
* the **runner** — each started job executes ``Study.run()`` on a
  worker thread (the study's own process pool does the heavy lifting;
  the thread exists so the loop stays responsive), holding a *lease* of
  worker slots from the server's shared budget so concurrent studies
  divide one pool-sized resource instead of oversubscribing the host;
* the **streamer** — a :class:`CheckpointManager` subclass taps the
  engine's per-point record stream (the same records the study
  checkpoint persists — streaming costs no extra bookkeeping), decodes
  them with the cache's entry codec and periodically recomputes the
  partial Pareto front, which subscribed ``watch`` connections receive
  as ``front`` events.

Evaluations dedupe at two levels: the shared
:class:`~repro.campaign.cache.ResultCache` collapses anything already
finished, and a per-server :class:`~repro.service.dedupe.InflightIndex`
single-flights points two running studies would otherwise both
evaluate.

Per-job study checkpoints live in ``<state_dir>/checkpoints/``; a job
recovered from a killed server resumes from its checkpoint (evaluated
points become an overlay) rather than restarting.  Finished results
are JSON files in ``<state_dir>/results/`` — restart-proof and
servable without re-deriving anything.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from time import perf_counter, time

from repro.campaign.cache import decode_entry
from repro.reporting import study_to_dict
from repro.resilience.checkpoint import CancelToken, CheckpointManager
from repro.service import protocol
from repro.service.dedupe import DedupeCache, InflightIndex
from repro.service.queue import JobQueue, JobState
from repro.service.protocol import parse_address
from repro.study.engine import Study
from repro.study.objectives import pareto_front, resolve_objectives
from repro.study.spec import StudySpec
from repro.telemetry.live import LiveRegistry, aggregate_series

__all__ = ["ServiceCheckpointManager", "StudyServer"]

#: The pseudo-spec the queue checkpoint stores (a queue is not a study,
#: but the checkpoint file format wants to know whose state it holds).
_QUEUE_SPEC = {"service": "study-queue"}


class ServiceCheckpointManager(CheckpointManager):
    """A study checkpoint manager that also feeds a point tap.

    ``on_point`` (set after construction/load) receives every recorded
    point — the server wires it to the front streamer.  Everything
    durable is inherited unchanged, so a study checkpointed through
    this class resumes through plain :class:`CheckpointManager` logic.
    """

    on_point = None

    def record_point(self, label: str, config_label: str, entry: dict) -> None:
        super().record_point(label, config_label, entry)
        if self.on_point is not None:
            self.on_point(label, config_label, entry)


class _FrontStreamer:
    """Accumulate a job's decoded points; publish periodic fronts.

    Runs on the job's worker thread (it is called from the engine's
    record path); ``publish`` must therefore be thread-safe — the
    server passes a ``call_soon_threadsafe`` trampoline.  Fronts are
    computed under the spec's objectives that need no post-pass (the
    base axes the paper's staged fronts start from); the final,
    complete front comes from the finished result, not from here.
    """

    def __init__(self, spec: StudySpec, every: int, publish) -> None:
        self.every = max(1, every)
        self.publish = publish
        resolved = resolve_objectives(spec.objectives)
        base = tuple(o for o in resolved if not o.needs_post_pass)
        self.objectives = base or ("area", "cycles")
        self._points: dict[str, dict[str, object]] = {}
        self._since: dict[str, int] = {}

    def on_point(self, label: str, config_label: str, entry: dict) -> None:
        try:
            point = decode_entry(entry)
        except (ValueError, KeyError, TypeError, AttributeError):
            return
        if point is None:
            return
        run = self._points.setdefault(label, {})
        run[config_label] = point
        self._since[label] = self._since.get(label, 0) + 1
        if self._since[label] >= self.every:
            self._since[label] = 0
            self.flush(label)

    def flush(self, label: str) -> None:
        run = self._points.get(label, {})
        front = pareto_front(run.values(), self.objectives)
        self.publish(
            label,
            {
                "done": len(run),
                "front": sorted(p.label for p in front),
                "final": False,
            },
        )


class StudyServer:
    """The service: queue + runner + streamer behind one socket.

    ``total_workers`` is the shared evaluation budget every running
    study leases from; ``job_workers`` the per-job default when a
    spec's own ``workers`` hint is 1.  ``cache`` is a shared
    :class:`~repro.campaign.cache.ResultCache` (or None to run
    uncached — in-flight dedupe still works through study checkpoints?
    no: without a cache there is nowhere to coalesce *from*, so dedupe
    is effectively off).

    Operational state lives in :attr:`registry` — a
    :class:`~repro.telemetry.live.LiveRegistry` of queue/worker/cache
    gauges, job lifecycle counters and queue-wait/evaluation-latency
    histograms, served by the ``metrics`` op and (when the CLI starts
    one) the Prometheus ``/metrics`` exporter.  ``collect_metrics``
    runs each job's study metered so per-point latency histograms fold
    in on completion; metering is result-equivalent by design, so this
    defaults on.
    """

    def __init__(
        self,
        state_dir: str | Path,
        cache=None,
        total_workers: int = 2,
        job_workers: int = 1,
        tenant_max_running: int = 2,
        stream_every: int = 4,
        checkpoint_every: int = 4,
        stats_every: float = 30.0,
        tracer=None,
        wait_timeout: float | None = None,
        collect_metrics: bool = True,
    ) -> None:
        if total_workers < 1:
            raise ValueError("total_workers must be >= 1")
        self.state_dir = Path(state_dir)
        (self.state_dir / "checkpoints").mkdir(parents=True, exist_ok=True)
        (self.state_dir / "results").mkdir(parents=True, exist_ok=True)
        self.cache = cache
        self.total_workers = total_workers
        self.job_workers = max(1, job_workers)
        self.available_workers = total_workers
        self.stream_every = stream_every
        self.checkpoint_every = checkpoint_every
        self.stats_every = stats_every
        self.tracer = tracer
        self.wait_timeout = wait_timeout
        self.collect_metrics = collect_metrics
        #: The live, scrapeable operational metrics (thread-safe; the
        #: ``metrics`` op and the Prometheus exporter both read it).
        self.registry = LiveRegistry()
        self.started_at = time()
        self.index = InflightIndex()
        self.queue = self._load_queue(tenant_max_running)
        self._queue_ckpt = CheckpointManager(
            _QUEUE_SPEC, path=self.state_dir / "queue.json", every=1
        )
        self._watchers: dict[str, set[asyncio.Queue]] = {}
        self._fronts: dict[str, dict[str, dict]] = {}
        self._tokens: dict[str, CancelToken] = {}
        self._tasks: dict[str, asyncio.Task] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopping = asyncio.Event()

    # ------------------------------------------------------------------
    # durable queue state
    # ------------------------------------------------------------------
    def _load_queue(self, tenant_max_running: int) -> JobQueue:
        path = self.state_dir / "queue.json"
        if path.exists():
            manager = CheckpointManager.load(path)
            state = manager.points("queue").get("state")
            if state is not None:
                queue = JobQueue.from_dict(state)
                queue.tenant_max_running = tenant_max_running
                return queue
        return JobQueue(tenant_max_running)

    def _persist_queue(self) -> None:
        # ``every=1`` means each record is one atomic write; the queue
        # state rides the checkpoint format (schema + spec hash), so a
        # torn or hand-edited file fails loudly at load, not silently.
        start = perf_counter()
        self._queue_ckpt.record_point("queue", "state", self.queue.to_dict())
        self.registry.observe(
            "checkpoint_seconds", perf_counter() - start,
            help="durable-state write durations by kind", kind="queue",
        )

    # ------------------------------------------------------------------
    # telemetry + watcher fan-out
    # ------------------------------------------------------------------
    def _trace_event(self, name: str, **data) -> None:
        if self.tracer is not None:
            self.tracer.event(name, **data)

    def _notify(self, job_id: str, frame: dict) -> None:
        for queue in self._watchers.get(job_id, ()):  # loop thread only
            queue.put_nowait(frame)

    def _job_state_frame(self, job) -> dict:
        return protocol.event(
            "job_state",
            terminal=job.state in JobState.TERMINAL,
            **job.describe(),
        )

    def _set_state(self, job, state: str, error: str | None = None) -> None:
        if state in JobState.TERMINAL:
            self.queue.finish(job, state, error)
            self.registry.count(
                "jobs_finished",
                help="jobs reaching a terminal state",
                tenant=job.tenant, state=state,
            )
            if job.started_at is not None and job.finished_at is not None:
                self.registry.observe(
                    "job_seconds",
                    max(0.0, job.finished_at - job.started_at),
                    help="start-to-finish job duration",
                    tenant=job.tenant,
                )
        else:
            job.state = state
        self._persist_queue()
        self._trace_event(
            "job_state", run=job.job_id, job=job.job_id,
            tenant=job.tenant, state=job.state, error=error,
        )
        self._notify(job.job_id, self._job_state_frame(job))

    def _publish_front(self, job_id: str, run_label: str, info: dict) -> None:
        self._fronts.setdefault(job_id, {})[run_label] = info
        self._notify(
            job_id,
            protocol.event("front", job=job_id, run=run_label, **info),
        )

    # ------------------------------------------------------------------
    # live metrics
    # ------------------------------------------------------------------
    def _refresh_gauges(self, disk: bool = False) -> None:
        """Bring the registry's point-in-time gauges up to date.

        Cheap (in-memory) gauges refresh on every scheduler pass;
        ``disk=True`` additionally walks the cache for entry/byte
        totals — only the ``metrics`` op and the periodic stats
        flusher pay that.
        """
        reg = self.registry
        reg.gauge(
            "queue_depth", len(self.queue.queued()),
            help="jobs waiting for a worker lease",
        )
        reg.gauge(
            "jobs_running", self.queue.running_count(),
            help="jobs currently holding a lease",
        )
        reg.gauge(
            "workers_total", self.total_workers,
            help="the shared evaluation worker budget",
        )
        reg.gauge(
            "workers_available", self.available_workers,
            help="worker slots not currently leased",
        )
        reg.gauge(
            "workers_busy", self.total_workers - self.available_workers,
            help="worker slots leased to running jobs",
        )
        dedupe = self.index.as_dict()
        reg.gauge(
            "dedupe_inflight", dedupe["in_flight"],
            help="points currently claimed by a running study",
        )
        reg.gauge(
            "dedupe_claims", dedupe["claims"],
            help="lifetime single-flight claims taken",
        )
        reg.gauge(
            "dedupe_coalesced", dedupe["coalesced"],
            help="lifetime evaluations avoided by coalescing",
        )
        if self.cache is not None:
            stats = getattr(self.cache, "stats", None)
            if stats is not None:
                counters = stats.as_dict()
                hits = counters.get("hits", 0)
                misses = counters.get("misses", 0)
                reg.gauge(
                    "cache_hits_lifetime", hits,
                    help="result-cache hits since server start",
                )
                reg.gauge(
                    "cache_misses_lifetime", misses,
                    help="result-cache misses since server start",
                )
                reg.gauge(
                    "cache_hit_rate",
                    hits / (hits + misses) if hits + misses else 0.0,
                    help="hits / lookups since server start",
                )
            if disk:
                reg.gauge(
                    "cache_entries", len(self.cache),
                    help="entries in the shared result cache",
                )
                reg.gauge(
                    "cache_bytes", self.cache.bytes_on_disk(),
                    help="result-cache bytes on disk",
                )

    def _fold_run_metrics(self, job, result) -> None:
        """Fold a finished study's per-run telemetry into the registry.

        Counters and ``eval_seconds`` histograms were merged inside the
        study (worker snapshots, submission order — deterministic);
        here they land labelled by (tenant, job) so the ``metrics`` op
        can aggregate per tenant and globally.
        """
        labels = {"tenant": job.tenant, "job": job.job_id}
        for run in result.runs:
            stats = run.stats
            self.registry.count(
                "points_evaluated", stats.evaluated,
                help="configurations actually compiled", **labels,
            )
            self.registry.count(
                "cache_hits", stats.cache_hits,
                help="points served from the result cache", **labels,
            )
            hist = stats.histograms.get("eval_seconds")
            if hist is not None:
                self.registry.merge_histogram(
                    "eval_seconds", hist,
                    help="per-point evaluation latency "
                         "(measured in-worker)",
                    **labels,
                )

    def _snapshot_to_trace(self, job=None) -> None:
        """Emit one ``metric_snapshot`` trace record of the registry."""
        if self.tracer is None:
            return
        self.tracer.metric_snapshot(
            "registry",
            self.registry.snapshot(),
            job=None if job is None else job.job_id,
            tenant=None if job is None else job.tenant,
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _schedule(self) -> None:
        """Start every job the queue and worker budget allow."""
        if self._stopping.is_set():
            return
        while self.available_workers > 0:
            job = self.queue.pick()
            if job is None:
                return
            requested = max(
                int(job.spec_dict.get("workers", 1)), self.job_workers
            )
            lease = min(requested, self.available_workers)
            self.available_workers -= lease
            self.queue.mark_running(job)
            if job.submitted_at is not None and job.started_at is not None:
                self.registry.observe(
                    "queue_wait_seconds",
                    max(0.0, job.started_at - job.submitted_at),
                    help="submit-to-start latency",
                    tenant=job.tenant,
                )
            self._persist_queue()
            self._refresh_gauges()
            self._trace_event(
                "queue", run=job.job_id, job=job.job_id,
                tenant=job.tenant, action="start", lease=lease,
                available=self.available_workers,
                queued=len(self.queue.queued()),
            )
            self._notify(job.job_id, self._job_state_frame(job))
            task = asyncio.get_running_loop().create_task(
                self._run_job(job, lease)
            )
            self._tasks[job.job_id] = task

    def _checkpoint_path(self, job) -> Path:
        return self.state_dir / "checkpoints" / f"{job.job_id}.json"

    def _result_path(self, job_id: str) -> Path:
        return self.state_dir / "results" / f"{job_id}.json"

    def _build_study(self, job, lease: int) -> tuple[Study, CancelToken]:
        """Assemble one job's engine stack (manager, dedupe, token)."""
        spec = StudySpec.from_dict(job.spec_dict)
        token = CancelToken()
        ckpt = self._checkpoint_path(job)
        if job.interrupted and ckpt.exists():
            manager = ServiceCheckpointManager.load(
                ckpt, every=self.checkpoint_every
            )
        else:
            manager = ServiceCheckpointManager(
                spec.to_dict(), path=ckpt, every=self.checkpoint_every
            )
        loop = asyncio.get_running_loop()
        streamer = _FrontStreamer(
            spec,
            self.stream_every,
            lambda label, info: loop.call_soon_threadsafe(
                self._publish_front, job.job_id, label, info
            ),
        )
        registry = self.registry
        tenant, job_id = job.tenant, job.job_id

        def on_point(label, config_label, entry):
            # Runs on the job's worker thread; the registry locks.
            registry.count(
                "points_recorded",
                help="points recorded by running studies "
                     "(fresh and cached)",
                tenant=tenant, job=job_id,
            )
            streamer.on_point(label, config_label, entry)

        manager.on_point = on_point
        cache = self.cache
        if cache is not None:
            cache = DedupeCache(
                cache, self.index, job.job_id, token=token,
                wait_timeout=self.wait_timeout,
            )
        # Jobs run metered (opt-out via ``collect_metrics=False``):
        # the per-run counters and in-worker ``eval_seconds``
        # histograms fold into the live registry on completion.  When
        # the server traces, each job traces through a bound view that
        # stamps its job/tenant ids onto every study-layer record.
        tracer = (
            self.tracer.bind(job=job.job_id, tenant=job.tenant)
            if self.tracer is not None else None
        )
        study = Study(
            spec,
            cache=cache,
            workers=lease,
            manager=manager,
            cancel=token,
            tracer=tracer,
            collect_metrics=self.collect_metrics,
        )
        return study, token

    async def _run_job(self, job, lease: int) -> None:
        loop = asyncio.get_running_loop()
        job_id = job.job_id
        try:
            study, token = self._build_study(job, lease)
            self._tokens[job_id] = token
            result = await loop.run_in_executor(None, study.run)
            self._fold_run_metrics(job, result)
            if result.interrupted:
                self._set_state(job, JobState.CANCELLED)
                return
            payload = study_to_dict(result)
            payload["job"] = job.describe()
            self._write_result(job_id, payload)
            for run in result.runs:
                self._publish_front(
                    job_id,
                    run.label,
                    {
                        "done": len(run.result.points),
                        "front": sorted(p.label for p in run.pareto),
                        "final": True,
                    },
                )
            state = JobState.FAILED if result.failures else JobState.DONE
            error = (
                f"{len(result.failures)} point(s) failed"
                if result.failures else None
            )
            self._set_state(job, state, error)
        except asyncio.CancelledError:
            self._set_state(job, JobState.CANCELLED)
            raise
        except Exception as exc:              # noqa: BLE001 — job isolation:
            # one job's crash must never take the server down with it.
            self._set_state(job, JobState.FAILED, f"{type(exc).__name__}: {exc}")
        finally:
            self.available_workers += lease
            self._tasks.pop(job_id, None)
            self._tokens.pop(job_id, None)
            released = self.index.release_owner(job_id)
            self._trace_event(
                "queue", run=job_id, job=job_id, tenant=job.tenant,
                action="finish", available=self.available_workers,
                claims_released=released,
            )
            if self.cache is not None:
                try:
                    start = perf_counter()
                    self.cache.persist_stats()
                    self.registry.observe(
                        "flush_seconds", perf_counter() - start,
                        help="cache stats flush durations",
                        kind="cache_stats",
                    )
                except OSError:
                    pass
            self._refresh_gauges()
            self._snapshot_to_trace(job)
            self._schedule()

    def _write_result(self, job_id: str, payload: dict) -> None:
        path = self._result_path(job_id)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2))
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    return
                frame: dict = {}
                try:
                    frame = protocol.decode_frame(line)
                    response = await self._dispatch(frame, writer)
                except protocol.ProtocolError as exc:
                    response = protocol.error(str(exc))
                except (KeyError, ValueError) as exc:
                    message = exc.args[0] if exc.args else str(exc)
                    response = protocol.error(str(message))
                # ``watch`` writes its own frames (subscription ack +
                # event stream) and returns None — nothing to send.
                if response is not None:
                    writer.write(protocol.encode_frame(response))
                    await writer.drain()
                if frame.get("op") == "shutdown" and (
                    response is not None and response.get("ok")
                ):
                    self._stopping.set()
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    async def _dispatch(self, frame: dict, writer) -> dict | None:
        op = frame.get("op")
        if op == "ping":
            return protocol.ok(version=protocol.PROTOCOL_VERSION)
        if op == "submit":
            return self._op_submit(frame)
        if op == "jobs":
            return protocol.ok(
                jobs=[
                    job.describe()
                    for job in sorted(
                        self.queue.jobs.values(), key=lambda j: j.seq
                    )
                ]
            )
        if op == "status":
            return protocol.ok(
                status=self.queue.get(str(frame.get("job"))).describe()
            )
        if op == "result":
            return self._op_result(frame)
        if op == "cancel":
            return self._op_cancel(frame)
        if op == "watch":
            return await self._op_watch(frame, writer)
        if op == "stats":
            return self._op_stats()
        if op == "metrics":
            return self._op_metrics(frame)
        if op == "shutdown":
            return protocol.ok(stopping=True)
        return protocol.error(
            f"unknown op {op!r} (known: {', '.join(protocol.OPS)})"
        )

    def _op_submit(self, frame: dict) -> dict:
        spec = StudySpec.from_dict(frame["spec"])
        spec.validate()
        tenant = str(frame.get("tenant") or "default")
        priority = int(frame.get("priority", 0))
        job, deduped = self.queue.submit(
            tenant, spec.spec_id, spec.to_dict(), priority
        )
        self.registry.count(
            "jobs_submitted", help="submit requests accepted",
            tenant=tenant,
        )
        if deduped:
            self.registry.count(
                "jobs_deduped",
                help="submits answered by an existing job",
                tenant=tenant,
            )
        self._persist_queue()
        self._refresh_gauges()
        self._trace_event(
            "queue", run=job.job_id, job=job.job_id, tenant=tenant,
            action="submit", deduped=deduped, priority=priority,
        )
        if not deduped:
            self._schedule()
        return protocol.ok(
            job=job.job_id, deduped=deduped, state=job.state,
            spec_id=spec.spec_id,
        )

    def _op_result(self, frame: dict) -> dict:
        job = self.queue.get(str(frame.get("job")))
        path = self._result_path(job.job_id)
        if job.state not in (JobState.DONE, JobState.FAILED) \
                or not path.exists():
            raise ValueError(
                f"job {job.job_id} has no result (state: {job.state})"
            )
        return protocol.ok(result=json.loads(path.read_text()))

    def _op_cancel(self, frame: dict) -> dict:
        job = self.queue.get(str(frame.get("job")))
        if job.state == JobState.QUEUED:
            self._set_state(job, JobState.CANCELLED)
            return protocol.ok(job=job.job_id, state=job.state)
        if job.state == JobState.RUNNING:
            token = self._tokens.get(job.job_id)
            if token is not None:
                token.cancel()
            self._trace_event(
                "queue", run=job.job_id, job=job.job_id,
                tenant=job.tenant, action="cancel",
            )
            return protocol.ok(job=job.job_id, state=job.state)
        return protocol.ok(job=job.job_id, state=job.state, noop=True)

    async def _op_watch(self, frame: dict, writer) -> None:
        """Stream one job to this connection (writes its own frames).

        Replay first — the freshest front per run, then the current
        state — so a late subscriber starts from reality; a watch on an
        already-terminal job is exactly the replay.  Returns None: the
        subscription ack and every event frame went out here.
        """
        job = self.queue.get(str(frame.get("job")))
        job_id = job.job_id
        events: asyncio.Queue = asyncio.Queue()
        self._watchers.setdefault(job_id, set()).add(events)
        try:
            writer.write(protocol.encode_frame(protocol.ok(job=job_id)))
            for run_label, info in sorted(
                self._fronts.get(job_id, {}).items()
            ):
                writer.write(
                    protocol.encode_frame(
                        protocol.event(
                            "front", job=job_id, run=run_label, **info
                        )
                    )
                )
            writer.write(protocol.encode_frame(self._job_state_frame(job)))
            await writer.drain()
            if job.state in JobState.TERMINAL:
                return None
            while True:
                item = await events.get()
                writer.write(protocol.encode_frame(item))
                await writer.drain()
                if item.get("event") == "job_state" and item.get("terminal"):
                    return None
        finally:
            self._watchers.get(job_id, set()).discard(events)

    #: Metrics aggregated per tenant and globally by the ``metrics``
    #: op (counters sum; histograms merge buckets and re-derive
    #: quantiles).
    _AGGREGATED = (
        "jobs_submitted", "jobs_deduped", "jobs_finished",
        "points_recorded", "points_evaluated", "cache_hits",
        "queue_wait_seconds", "eval_seconds", "job_seconds",
    )

    def _op_metrics(self, frame: dict) -> dict:
        """The live registry plus per-tenant/global roll-ups.

        ``{"op": "metrics"}`` returns everything; ``{"op": "metrics",
        "tenant": "a"}`` narrows the ``tenants`` section to one tenant
        (the raw registry and global aggregates still cover all).
        """
        self._refresh_gauges(disk=True)
        snapshot = self.registry.snapshot()

        def series(name: str) -> list:
            for table in ("counters", "histograms", "gauges"):
                if name in snapshot[table]:
                    return snapshot[table][name]
            return []

        tenants: dict[str, dict] = {}
        global_agg: dict[str, dict] = {}
        for name in self._AGGREGATED:
            rows = series(name)
            if not rows:
                continue
            for tenant, value in aggregate_series(rows, by="tenant").items():
                if tenant:
                    tenants.setdefault(tenant, {})[name] = value
            global_agg[name] = aggregate_series(rows)[""]
        wanted = frame.get("tenant")
        if wanted is not None:
            tenants = {
                t: v for t, v in tenants.items() if t == str(wanted)
            }
        by_state: dict[str, int] = {}
        for job in self.queue.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return protocol.ok(
            metrics={
                "version": protocol.METRICS_VERSION,
                "uptime": round(time() - self.started_at, 3),
                "queue": {
                    "depth": len(self.queue.queued()),
                    "jobs": by_state,
                },
                "workers": {
                    "total": self.total_workers,
                    "available": self.available_workers,
                    "busy": self.total_workers - self.available_workers,
                },
                "tenants": tenants,
                "global": global_agg,
                "registry": snapshot,
            }
        )

    def _op_stats(self) -> dict:
        by_state: dict[str, int] = {}
        for job in self.queue.jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        cache_stats = None
        if self.cache is not None:
            stats = getattr(self.cache, "stats", None)
            cache_stats = {
                "counters": stats.as_dict() if stats else None,
                "persisted": self.cache.persisted_stats(),
                "entries": len(self.cache),
                "bytes": self.cache.bytes_on_disk(),
                "shards": len(self.cache.shard_stats()),
            }
        return protocol.ok(
            queue={
                "jobs": by_state,
                "tenant_max_running": self.queue.tenant_max_running,
            },
            workers={
                "total": self.total_workers,
                "available": self.available_workers,
            },
            dedupe=self.index.as_dict(),
            cache=cache_stats,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, address: str) -> str:
        """Bind and start serving; returns the bound address string.

        TCP port 0 picks a free port (the returned string carries the
        real one — how the tests avoid port races).  A stale unix
        socket file from a killed server is swept before binding.
        """
        self._loop = asyncio.get_running_loop()
        family, target = parse_address(address)
        if family == "unix":
            Path(target).parent.mkdir(parents=True, exist_ok=True)
            try:
                os.unlink(target)
            except OSError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle, path=target
            )
            bound = f"unix:{target}"
        else:
            host, port = target
            self._server = await asyncio.start_server(
                self._handle, host=host, port=port
            )
            port = self._server.sockets[0].getsockname()[1]
            bound = f"tcp:{host}:{port}"
        # Recover: anything the loaded queue holds is schedulable now.
        self._persist_queue()
        self._refresh_gauges()
        self._schedule()
        return bound

    async def serve_until_stopped(self) -> None:
        """Serve until ``shutdown`` (or :meth:`stop`); drain jobs."""
        stats_task = None
        if self.stats_every > 0 and (
            self.cache is not None or self.tracer is not None
        ):
            stats_task = asyncio.get_running_loop().create_task(
                self._stats_flusher()
            )
        await self._stopping.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._tasks:
            await asyncio.gather(
                *list(self._tasks.values()), return_exceptions=True
            )
        if stats_task is not None:
            stats_task.cancel()
        if self.cache is not None:
            try:
                self.cache.persist_stats()
            except OSError:
                pass

    async def _stats_flusher(self) -> None:
        while True:
            await asyncio.sleep(self.stats_every)
            if self.cache is not None:
                try:
                    start = perf_counter()
                    self.cache.persist_stats()
                    self.registry.observe(
                        "flush_seconds", perf_counter() - start,
                        help="cache stats flush durations",
                        kind="cache_stats",
                    )
                except OSError:
                    pass
            self._refresh_gauges(disk=True)
            self._snapshot_to_trace()

    def stop(self) -> None:
        """Request a graceful stop; safe from any thread.

        Signal handlers call it from the loop thread; tests call it
        from wherever they are — the cross-thread case trampolines
        through ``call_soon_threadsafe``.
        """
        loop = self._loop
        if loop is None or loop.is_closed():
            return
        try:
            running = asyncio.get_running_loop() is loop
        except RuntimeError:
            running = False
        if running:
            self._stopping.set()
        else:
            loop.call_soon_threadsafe(self._stopping.set)
