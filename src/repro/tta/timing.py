"""Transport timing relations (paper eqs. 2-8) as a program validator.

The stage-control FSM of Fig. 3 "ensures these conditions are fulfilled"
in hardware; here the same conditions are checked statically on scheduled
programs, so every scheduler bug that would deadlock or corrupt the
pipeline surfaces as a :class:`TimingViolation` list instead of silence.

Semantics note (eqs. 2 and 5): all moves of an instruction commit
together at end-of-cycle and a trigger launches with the post-commit
operand registers, so an operand move *in the trigger's cycle* feeds that
trigger (C(T) - C(O) >= 0 with equality allowed); operands of in-flight
operations are latched into the FU pipeline at trigger time, which is
what makes relation (5) hold by construction for later operand writes.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.components.reference import ALU_OPS, CMP_OPS, MUL_OPS, SHIFTER_OPS
from repro.components.spec import ComponentKind
from repro.tta.arch import Architecture
from repro.tta.isa import GUARD_UNIT, Literal, Move, PortRef, Program

#: Opcodes understood by the behavioural FU dispatch.
KNOWN_FU_OPS = set(ALU_OPS) | set(CMP_OPS) | set(MUL_OPS) | set(SHIFTER_OPS)
LSU_OPCODES = {"ld", "ld_ls", "ld_lu", "ld_h", "st"}
PC_OPCODES = {"jump"}


@dataclass(frozen=True)
class TimingViolation:
    """One validator finding."""

    cycle: int
    bus: int
    message: str

    def __str__(self) -> str:
        return f"cycle {self.cycle}, bus {self.bus}: {self.message}"


class _FUTracker:
    """Per-FU operation bookkeeping for relations (3) and (4)."""

    def __init__(self, latency: int):
        self.latency = latency
        self.trigger_cycles: list[int] = []
        self.results_read: list[bool] = []
        self.has_result: list[bool] = []

    def trigger(self, cycle: int, has_result: bool = True) -> None:
        self.trigger_cycles.append(cycle)
        self.results_read.append(False)
        self.has_result.append(has_result)

    def landed_index(self, cycle: int) -> int | None:
        """Most recent result-producing op that has landed by ``cycle``.

        ``trigger_cycles`` is ascending (the validator walks the program
        in cycle order), so the latest landed trigger is found by bisect
        instead of a scan over every operation the FU ever ran.
        """
        i = bisect_right(self.trigger_cycles, cycle - self.latency) - 1
        while i >= 0 and not self.has_result[i]:
            i -= 1
        return i if i >= 0 else None


def validate_program(
    arch: Architecture,
    program: Program,
    strict: bool = True,
) -> list[TimingViolation]:
    """Check a scheduled program against the architecture and eqs. 2-8.

    With ``strict`` set, results that are overwritten before ever being
    read are also reported (almost always a scheduler bug).
    """
    violations: list[TimingViolation] = []
    trackers: dict[str, _FUTracker] = {}
    port_table = arch.port_table
    num_buses = arch.num_buses

    def err(cycle: int, bus: int, message: str) -> None:
        violations.append(TimingViolation(cycle, bus, message))

    # The per-cycle conflict maps are reused (cleared) across cycles —
    # allocating three dicts per instruction dominated the validator.
    rf_port_use: dict[tuple[str, str], int] = {}
    dst_use: dict[tuple[str, str], int] = {}
    src_use: dict[tuple[str, str], int] = {}

    for cycle, instruction in enumerate(program.instructions):
        slots = instruction.slots
        if len(slots) > num_buses:
            err(cycle, 0, f"{len(slots)} slots > {num_buses} buses")
        num_moves = 0
        slots_used = 0
        for m in slots:
            if m is not None:
                num_moves += 1
                slots_used += 2 if m.needs_long_immediate() else 1
        if slots_used > num_buses:
            # 1-bus convention: one long-immediate move may spill its
            # extension word into the next instruction if that is empty.
            next_empty = (
                cycle + 1 < len(program.instructions)
                and not program.instructions[cycle + 1].moves
            ) or cycle + 1 >= len(program.instructions)
            one_long = num_buses == 1 and num_moves == 1 and slots_used == 2
            if not (one_long and next_empty):
                err(cycle, 0, "long immediates exceed available bus slots")

        rf_port_use.clear()
        dst_use.clear()
        src_use.clear()

        for bus, move in enumerate(slots):
            if move is None:
                continue
            src = move.src
            dst = move.dst
            src_info = (
                port_table.get((src.unit, src.port))
                if type(src) is PortRef
                else None
            )
            dst_info = port_table.get((dst.unit, dst.port))
            _check_move_structure(
                arch, program, move, cycle, bus, err, src_info, dst_info
            )
            if type(src) is PortRef and src.unit != GUARD_UNIT:
                key = (src.unit, src.port)
                src_use[key] = src_use.get(key, 0) + 1
                if src_info is not None and src_info[0].kind is ComponentKind.RF:
                    rf_port_use[key] = rf_port_use.get(key, 0) + 1
            if dst.unit != GUARD_UNIT:
                key = (dst.unit, dst.port)
                dst_use[key] = dst_use.get(key, 0) + 1
                if dst_info is not None and dst_info[0].kind is ComponentKind.RF:
                    rf_port_use[key] = rf_port_use.get(key, 0) + 1

            _check_fu_timing(move, cycle, bus, trackers, err, src_info, dst_info)

        for (unit, port), count in dst_use.items():
            if count > 1:
                err(cycle, 0, f"{count} moves write {unit}.{port} in one cycle")
        for (unit, port), count in src_use.items():
            if count > 1:
                err(cycle, 0, f"output socket {unit}.{port} drives {count} buses")
        for (unit, port), count in rf_port_use.items():
            if count > 1:
                err(cycle, 0, f"register-file port {unit}.{port} used {count}x")

    if strict:
        for name, tracker in trackers.items():
            if not _has_result(arch, name):
                continue
            result_ops = [
                (t, tracker.results_read[i])
                for i, t in enumerate(tracker.trigger_cycles)
                if tracker.has_result[i]
            ]
            for (t, was_read) in result_ops[:-1]:
                if not was_read:
                    err(
                        t, 0,
                        f"{name}: result of trigger at cycle {t} overwritten unread",
                    )
    return violations


def _has_result(arch: Architecture, unit: str) -> bool:
    spec = arch.unit(unit).spec
    return bool(spec.output_ports) and spec.kind is ComponentKind.FU


def _check_move_structure(
    arch, program, move: Move, cycle, bus, err, src_info=None, dst_info=None
) -> None:
    # Guard register range.
    if move.guard is not None and not 0 <= move.guard.index < arch.num_guard_regs:
        err(cycle, bus, f"guard g{move.guard.index} out of range")

    # Destination.
    if move.dst.unit == GUARD_UNIT:
        index = _guard_index(move.dst.port)
        if index is None or index >= arch.num_guard_regs:
            err(cycle, bus, f"bad guard destination {move.dst}")
    else:
        if dst_info is None:
            dst_info = arch.port_table.get((move.dst.unit, move.dst.port))
        if dst_info is None:
            if move.dst.unit not in arch.units:
                err(cycle, bus, f"unknown unit {move.dst.unit!r}")
            else:
                err(cycle, bus, f"unknown port {move.dst}")
            return
        spec, port, buses = dst_info
        if not port.is_input:
            err(cycle, bus, f"{move.dst} is not an input port")
        if bus not in buses:
            err(cycle, bus, f"{move.dst} not connected to bus {bus}")
        if spec.kind is ComponentKind.RF:
            if move.dst_reg is None or not 0 <= move.dst_reg < spec.num_regs:
                err(cycle, bus, f"bad register index on {move.dst}")
        if port.is_trigger:
            _check_opcode(arch, spec, move, cycle, bus, err)
        if spec.kind is ComponentKind.PC:
            target = move.src
            if isinstance(target, Literal) and not 0 <= target.value <= len(
                program.instructions
            ):
                err(cycle, bus, f"jump target {target.value} outside program")

    # Source.
    if isinstance(move.src, Literal):
        if move.needs_long_immediate() and arch.imm_unit is None:
            err(cycle, bus, "long immediate needs an immediate unit")
        return
    if move.src.unit == GUARD_UNIT:
        index = _guard_index(move.src.port)
        if index is None or index >= arch.num_guard_regs:
            err(cycle, bus, f"bad guard source {move.src}")
        return
    if src_info is None:
        src_info = arch.port_table.get((move.src.unit, move.src.port))
    if src_info is None:
        if move.src.unit not in arch.units:
            err(cycle, bus, f"unknown unit {move.src.unit!r}")
        else:
            err(cycle, bus, f"unknown port {move.src}")
        return
    spec, port, buses = src_info
    if port.is_input:
        err(cycle, bus, f"{move.src} is not an output port")
    if bus not in buses:
        err(cycle, bus, f"{move.src} not connected to bus {bus}")
    if spec.kind is ComponentKind.RF:
        if move.src_reg is None or not 0 <= move.src_reg < spec.num_regs:
            err(cycle, bus, f"bad register index on {move.src}")


def _check_opcode(arch, spec, move: Move, cycle, bus, err) -> None:
    if spec.kind is ComponentKind.FU:
        if move.opcode not in spec.ops:
            err(cycle, bus, f"opcode {move.opcode!r} not supported by {move.dst.unit}")
        elif move.opcode not in KNOWN_FU_OPS:
            err(cycle, bus, f"opcode {move.opcode!r} has no behavioural model")
    elif spec.kind is ComponentKind.LSU:
        if move.opcode not in LSU_OPCODES:
            err(cycle, bus, f"LSU opcode {move.opcode!r} invalid")
    elif spec.kind is ComponentKind.PC:
        if move.opcode not in PC_OPCODES:
            err(cycle, bus, f"PC opcode {move.opcode!r} invalid")


def _check_fu_timing(
    move: Move, cycle, bus, trackers, err, src_info, dst_info
) -> None:
    # Result reads: relation (3) — not before trigger + latency.
    if (
        src_info is not None
        and not src_info[1].is_input
        and src_info[0].kind in (ComponentKind.FU, ComponentKind.LSU)
    ):
        src = move.src
        tracker = trackers.get(src.unit)
        landed = tracker.landed_index(cycle) if tracker else None
        if landed is None:
            err(
                cycle,
                bus,
                f"read of {src} before any result is ready "
                f"(eq. 3: C(R) - C(T) >= {src_info[0].latency})",
            )
        else:
            tracker.results_read[landed] = True

    # Triggers: start a new operation record.
    if dst_info is not None and dst_info[1].is_trigger:
        spec = dst_info[0]
        if spec.kind in (ComponentKind.FU, ComponentKind.LSU):
            tracker = trackers.setdefault(
                move.dst.unit, _FUTracker(spec.latency)
            )
            tracker.trigger(cycle, has_result=move.opcode != "st")


def _guard_index(port: str) -> int | None:
    if port.startswith("g") and port[1:].isdigit():
        return int(port[1:])
    return None
