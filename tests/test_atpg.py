"""ATPG substrate tests: faults, fault simulation, PODEM, the engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg import (
    Fault,
    FaultSimulator,
    Podem,
    PodemOutcome,
    collapse_faults,
    enumerate_faults,
    run_atpg,
)
from repro.netlist import CellType, Netlist, WordBuilder


def _and_circuit():
    nl = Netlist("and2")
    a = nl.add_input("a")
    b = nl.add_input("b")
    y = nl.add_gate(CellType.AND, [a, b], name="y")
    nl.add_output(y)
    return nl


def _adder(width=4):
    wb = WordBuilder(f"add{width}")
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)
    s, c = wb.ripple_adder(a, b)
    wb.output_word("s", s)
    wb.output_bit("cout", c)
    return wb.netlist


# ----------------------------------------------------------------------
# fault enumeration and collapsing
# ----------------------------------------------------------------------
def test_enumerate_counts_and2():
    nl = _and_circuit()
    faults = enumerate_faults(nl)
    # three nets (a, b, y), no fanout branches: 6 stem faults
    assert len(faults) == 6


def test_collapse_and_gate_equivalences():
    nl = _and_circuit()
    reps, class_map = collapse_faults(nl)
    # a s-a-0 == b s-a-0 == y s-a-0 -> classes: {sa0 x3}, a1, b1, y1 = 4
    assert len(reps) == 4
    a, b = nl.inputs
    y = nl.outputs[0]
    assert class_map[Fault(a, 0)] == class_map[Fault(b, 0)] == class_map[Fault(y, 0)]


def test_collapse_not_chain():
    nl = Netlist("chain")
    a = nl.add_input("a")
    x = nl.add_gate(CellType.NOT, [a])
    y = nl.add_gate(CellType.NOT, [x])
    nl.add_output(y)
    reps, class_map = collapse_faults(nl)
    # whole chain collapses to two classes
    assert len(reps) == 2
    assert class_map[Fault(a, 0)] == class_map[Fault(x, 1)] == class_map[Fault(y, 0)]


def test_branch_faults_on_fanout():
    nl = Netlist("fan")
    a = nl.add_input("a")
    x = nl.add_gate(CellType.NOT, [a])
    y = nl.add_gate(CellType.AND, [x, a])
    z = nl.add_gate(CellType.OR, [x, a])
    nl.add_output(y)
    nl.add_output(z)
    faults = enumerate_faults(nl)
    branch = [f for f in faults if f.is_branch]
    # a fans out to 3 gates (6 pin faults), x to 2 gates (4 pin faults)
    assert len(branch) == 10


def test_fault_describe(rng):
    nl = _and_circuit()
    fault = Fault(nl.inputs[0], 1)
    assert "s-a-1" in fault.describe(nl)


# ----------------------------------------------------------------------
# fault simulation vs brute force
# ----------------------------------------------------------------------
def _brute_force_detects(nl, fault, pattern):
    """Inject by rebuilding gate evaluation manually."""
    pi_map = {pi: (pattern >> i) & 1 for i, pi in enumerate(nl.inputs)}
    good = nl.evaluate(pi_map)

    faulty = dict(pi_map)
    values = [0] * nl.num_nets
    for pi in nl.inputs:
        values[pi] = faulty.get(pi, 0)
    if not fault.is_branch:
        if nl.nets[fault.net].driver is None:
            values[fault.net] = fault.stuck_at
    from repro.netlist.cells import evaluate_cell

    for gid in nl.topological_order():
        gate = nl.gates[gid]
        ins = [values[n] for n in gate.inputs]
        if fault.is_branch and gid == fault.gate:
            ins[fault.pin] = fault.stuck_at
        values[gate.output] = evaluate_cell(gate.cell_type, ins, 1)
        if not fault.is_branch and gate.output == fault.net:
            values[gate.output] = fault.stuck_at
    return any(values[po] != good[po] for po in nl.outputs)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_faultsim_matches_bruteforce(seed):
    rng = random.Random(seed)
    nl = _adder(3)
    faults = enumerate_faults(nl)
    sim = FaultSimulator(nl)
    fault = rng.choice(faults)
    patterns = [rng.getrandbits(len(nl.inputs)) for _ in range(8)]
    masks = sim.simulate_word(patterns, [fault])[fault]
    for k, pattern in enumerate(patterns):
        assert ((masks >> k) & 1) == int(_brute_force_detects(nl, fault, pattern))


def test_faultsim_po_stem_fault():
    nl = _and_circuit()
    y = nl.outputs[0]
    sim = FaultSimulator(nl)
    # y s-a-0 detected by pattern a=b=1 (pattern 0b11)
    res = sim.simulate_word([0b11, 0b01], [Fault(y, 0)])
    assert res[Fault(y, 0)] == 0b01


# ----------------------------------------------------------------------
# PODEM
# ----------------------------------------------------------------------
def test_podem_finds_tests_for_all_adder_faults():
    nl = _adder(3)
    faults, _ = collapse_faults(nl)
    podem = Podem(nl, backtrack_limit=256)
    sim = FaultSimulator(nl)
    for fault in faults:
        result = podem.generate(fault)
        if result.outcome is PodemOutcome.DETECTED:
            assert sim.simulate_word([result.pattern], [fault])[fault], (
                f"PODEM pattern does not detect {fault.describe(nl)}"
            )
        else:
            # the const-0 carry-in makes a handful genuinely redundant
            assert result.outcome is PodemOutcome.UNTESTABLE


def test_podem_proves_redundancy():
    # y = a AND NOT a is constant 0: s-a-0 on y is untestable
    nl = Netlist("red")
    a = nl.add_input("a")
    na = nl.add_gate(CellType.NOT, [a])
    y = nl.add_gate(CellType.AND, [a, na], name="y")
    nl.add_output(y)
    podem = Podem(nl, backtrack_limit=64)
    result = podem.generate(Fault(y, 0))
    assert result.outcome is PodemOutcome.UNTESTABLE
    # ... while s-a-1 on y is testable by any pattern
    result = podem.generate(Fault(y, 1))
    assert result.outcome is PodemOutcome.DETECTED


def test_podem_xor_tree():
    wb = WordBuilder("x")
    word = wb.input_word("a", 6)
    wb.output_bit("y", wb.xor_reduce(list(word)))
    nl = wb.netlist
    faults, _ = collapse_faults(nl)
    podem = Podem(nl, backtrack_limit=128)
    sim = FaultSimulator(nl)
    detected = 0
    for fault in faults:
        result = podem.generate(fault)
        if result.outcome is PodemOutcome.DETECTED:
            assert sim.simulate_word([result.pattern], [fault])[fault]
            detected += 1
    assert detected == len(faults)   # XOR trees are fully testable


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
def test_engine_full_coverage_on_adder():
    nl = _adder(4)
    result = run_atpg(nl, use_cache=False)
    assert result.aborted == 0
    assert result.fault_coverage == 100.0
    assert result.num_patterns > 0
    # verify the pattern set truly covers every detected fault
    sim = FaultSimulator(nl)
    faults, _ = collapse_faults(nl)
    remaining = list(faults)
    for pattern in result.patterns:
        det = sim.simulate_word([pattern], remaining)
        remaining = [f for f in remaining if not det[f]]
    assert len(remaining) == result.num_faults - result.detected


def test_engine_structural_redundancy_pruning():
    # a gate that drives nothing reachable: pin faults pruned instantly
    nl = Netlist("dead")
    a = nl.add_input("a")
    b = nl.add_input("b")
    y = nl.add_gate(CellType.AND, [a, b], name="y")
    nl.add_gate(CellType.OR, [a, b], name="dead")  # no PO
    nl.add_output(y)
    result = run_atpg(nl, use_cache=False, random_words=1)
    assert result.aborted == 0
    assert result.redundant >= 2      # the dead OR's faults


def test_engine_compaction_reduces_or_keeps(rng):
    nl = _adder(4)
    loose = run_atpg(nl, use_cache=False, compact=False)
    tight = run_atpg(nl, use_cache=False, compact=True)
    assert tight.num_patterns <= loose.num_patterns
    assert tight.detected == loose.detected


def test_engine_deterministic():
    nl = _adder(4)
    r1 = run_atpg(nl, use_cache=False, seed=7)
    r2 = run_atpg(nl, use_cache=False, seed=7)
    assert r1.patterns == r2.patterns
    assert r1.detected == r2.detected


def test_engine_cache_roundtrip(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ATPG_CACHE", str(tmp_path))
    nl = _adder(4)
    r1 = run_atpg(nl, use_cache=True)
    r2 = run_atpg(nl, use_cache=True)
    assert r1.patterns == r2.patterns
    assert list(tmp_path.glob("*.json"))


def test_coverage_properties():
    nl = _adder(4)
    r = run_atpg(nl, use_cache=False)
    assert 0.0 <= r.raw_coverage <= 100.0
    assert r.raw_coverage <= r.fault_coverage <= 100.0
