"""Property tests: WordBuilder primitives vs plain Python semantics."""

from hypothesis import given
from hypothesis import strategies as st

from repro.netlist import WordBuilder
from repro.util.bitops import mask, to_signed, to_unsigned

WORD8 = st.integers(min_value=0, max_value=255)
WORD16 = st.integers(min_value=0, max_value=0xFFFF)


def _two_input_circuit(op_builder, width=8):
    wb = WordBuilder("t")
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)
    out = op_builder(wb, a, b)
    if isinstance(out, int):
        wb.output_bit("y", out)
    else:
        wb.output_word("y", out)
    wb.netlist.check()
    return wb.netlist


@given(WORD8, WORD8)
def test_xor_word(a, b):
    nl = _two_input_circuit(lambda wb, x, y: wb.xor_word(x, y))
    assert nl.evaluate_words({"a": a, "b": b})["y"] == a ^ b


@given(WORD8, WORD8)
def test_and_or_words(a, b):
    nl = _two_input_circuit(lambda wb, x, y: wb.and_word(x, y))
    assert nl.evaluate_words({"a": a, "b": b})["y"] == a & b
    nl = _two_input_circuit(lambda wb, x, y: wb.or_word(x, y))
    assert nl.evaluate_words({"a": a, "b": b})["y"] == a | b


@given(WORD8)
def test_not_word(a):
    wb = WordBuilder("t")
    word = wb.input_word("a", 8)
    wb.output_word("y", wb.not_word(word))
    assert wb.netlist.evaluate_words({"a": a})["y"] == (~a) & 0xFF


@given(WORD8, WORD8)
def test_ripple_adder(a, b):
    nl = _two_input_circuit(lambda wb, x, y: wb.ripple_adder(x, y)[0])
    assert nl.evaluate_words({"a": a, "b": b})["y"] == (a + b) & 0xFF


@given(WORD8, WORD8)
def test_adder_carry_out(a, b):
    nl = _two_input_circuit(lambda wb, x, y: wb.ripple_adder(x, y)[1])
    assert nl.evaluate_words({"a": a, "b": b})["y"] == int(a + b > 255)


@given(WORD8, WORD8)
def test_subtractor(a, b):
    nl = _two_input_circuit(lambda wb, x, y: wb.subtractor(x, y)[0])
    assert nl.evaluate_words({"a": a, "b": b})["y"] == (a - b) & 0xFF


@given(WORD8)
def test_incrementer(a):
    wb = WordBuilder("t")
    word = wb.input_word("a", 8)
    inc, _ = wb.incrementer(word)
    wb.output_word("y", inc)
    assert wb.netlist.evaluate_words({"a": a})["y"] == (a + 1) & 0xFF


@given(WORD8, WORD8)
def test_equal(a, b):
    nl = _two_input_circuit(lambda wb, x, y: wb.equal(x, y))
    assert nl.evaluate_words({"a": a, "b": b})["y"] == int(a == b)


@given(WORD8, WORD8)
def test_less_than_unsigned(a, b):
    nl = _two_input_circuit(lambda wb, x, y: wb.less_than_unsigned(x, y))
    assert nl.evaluate_words({"a": a, "b": b})["y"] == int(a < b)


@given(WORD8, WORD8)
def test_less_than_signed(a, b):
    nl = _two_input_circuit(lambda wb, x, y: wb.less_than_signed(x, y))
    expected = int(to_signed(a, 8) < to_signed(b, 8))
    assert nl.evaluate_words({"a": a, "b": b})["y"] == expected


@given(WORD8)
def test_is_zero(a):
    wb = WordBuilder("t")
    word = wb.input_word("a", 8)
    wb.output_bit("y", wb.is_zero(word))
    assert wb.netlist.evaluate_words({"a": a})["y"] == int(a == 0)


@given(st.integers(min_value=0, max_value=255))
def test_const_word(value):
    wb = WordBuilder("t")
    wb.output_word("y", wb.const_word(value, 8))
    assert wb.netlist.evaluate_words({})["y"] == value


@given(st.integers(min_value=0, max_value=7))
def test_decoder_one_hot(sel):
    wb = WordBuilder("t")
    sels = wb.input_word("s", 3)
    wb.output_word("y", wb.decoder(sels))
    out = wb.netlist.evaluate_words({"s": sel})["y"]
    assert out == 1 << sel


@given(
    st.lists(WORD8, min_size=1, max_size=8),
    st.integers(min_value=0, max_value=7),
)
def test_mux_tree_selects(words, sel):
    wb = WordBuilder("t")
    sels = wb.input_word("s", 3)
    word_nets = [wb.const_word(w, 8) for w in words]
    wb.output_word("y", wb.mux_tree(sels, word_nets))
    out = wb.netlist.evaluate_words({"s": sel})["y"]
    assert out == words[sel % len(words)]


@given(
    WORD16,
    st.integers(min_value=0, max_value=15),
    st.booleans(),
    st.booleans(),
)
def test_barrel_shifter(a, amount, right, arithmetic):
    wb = WordBuilder("t")
    word = wb.input_word("a", 16)
    amt = wb.input_word("n", 4)
    r = wb.input_bit("right")
    ar = wb.input_bit("arith")
    wb.output_word("y", wb.barrel_shifter(word, amt, r, ar))
    out = wb.netlist.evaluate_words(
        {"a": a, "n": amount, "right": int(right), "arith": int(arithmetic)}
    )["y"]
    if not right:
        expected = (a << amount) & mask(16)
    elif arithmetic:
        expected = to_unsigned(to_signed(a, 16) >> amount, 16)
    else:
        expected = a >> amount
    assert out == expected


@given(st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=10))
def test_reductions(bits):
    wb = WordBuilder("t")
    word = wb.input_word("a", len(bits))
    wb.output_bit("and", wb.and_reduce(list(word)))
    wb.output_bit("or", wb.or_reduce(list(word)))
    wb.output_bit("xor", wb.xor_reduce(list(word)))
    value = sum(b << i for i, b in enumerate(bits))
    result = wb.netlist.evaluate_words({"a": value})
    assert result["and"] == int(all(bits))
    assert result["or"] == int(any(bits))
    assert result["xor"] == sum(bits) % 2
