"""The architecture configuration space.

A point in the space is an :class:`ArchConfig`: bus count, number of
ALUs/comparators/shifters, and the register-file arrangement.  Every
configuration also carries the fixed per-architecture units (one LSU, one
PC, one immediate unit) which the paper excludes from the cost ranking
because "they always appear once for arbitrary architecture and
application".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.components.library import (
    alu_spec,
    cmp_spec,
    imm_spec,
    lsu_spec,
    mul_spec,
    pc_spec,
    rf_spec,
    shifter_spec,
)
from repro.tta.arch import Architecture, UnitInstance


@dataclass(frozen=True)
class RFConfig:
    """One register file: size and port arrangement."""

    num_regs: int
    read_ports: int = 1
    write_ports: int = 1

    def __str__(self) -> str:
        return f"{self.num_regs}r{self.read_ports}R{self.write_ports}W"


@dataclass(frozen=True)
class ArchConfig:
    """One candidate TTA template."""

    num_buses: int
    num_alus: int = 1
    num_cmps: int = 1
    num_shifters: int = 0
    num_muls: int = 0
    rfs: tuple[RFConfig, ...] = (RFConfig(8),)

    def label(self) -> str:
        rf_text = "+".join(str(rf) for rf in self.rfs)
        parts = [f"b{self.num_buses}", f"alu{self.num_alus}"]
        if self.num_cmps != 1:
            parts.append(f"cmp{self.num_cmps}")
        if self.num_shifters:
            parts.append(f"sh{self.num_shifters}")
        if self.num_muls:
            parts.append(f"mul{self.num_muls}")
        parts.append(rf_text)
        return "-".join(parts)

    @property
    def total_registers(self) -> int:
        return sum(rf.num_regs for rf in self.rfs)


def build_architecture(config: ArchConfig, width: int = 16) -> Architecture:
    """Instantiate the template (full port->bus connectivity)."""
    units: list[UnitInstance] = []
    for i in range(config.num_alus):
        units.append(UnitInstance(f"alu{i}", alu_spec(width)))
    for i in range(config.num_cmps):
        units.append(UnitInstance(f"cmp{i}", cmp_spec(width)))
    for i in range(config.num_shifters):
        units.append(UnitInstance(f"shifter{i}", shifter_spec(width)))
    for i in range(config.num_muls):
        units.append(UnitInstance(f"mul{i}", mul_spec(width)))
    for i, rf in enumerate(config.rfs):
        units.append(
            UnitInstance(
                f"rf{i}",
                rf_spec(rf.num_regs, width, rf.read_ports, rf.write_ports),
            )
        )
    units.append(UnitInstance("lsu0", lsu_spec(width)))
    units.append(UnitInstance("pc", pc_spec(width)))
    units.append(UnitInstance("imm0", imm_spec(width)))
    return Architecture(
        name=config.label(),
        width=width,
        num_buses=config.num_buses,
        units=units,
    )


#: Register-file arrangements offered to the Crypt exploration.
_CRYPT_RF_OPTIONS: tuple[tuple[RFConfig, ...], ...] = (
    (RFConfig(4),),
    (RFConfig(8),),
    (RFConfig(12),),
    (RFConfig(8), RFConfig(12)),            # the Fig. 9 arrangement
    (RFConfig(8, read_ports=2), RFConfig(12)),
    (RFConfig(12, read_ports=2), RFConfig(12, read_ports=2)),
    (RFConfig(16, read_ports=2, write_ports=2),),
)


def crypt_space() -> list[ArchConfig]:
    """The configuration grid explored for the Crypt application.

    4 bus counts x 3 ALU counts x 2 shifter options x 7 RF arrangements
    = 168 candidate templates, the same order of magnitude as the MOVE
    exploration sweeps.
    """
    space = []
    for buses, alus, shifters, rfs in itertools.product(
        (1, 2, 3, 4), (1, 2, 3), (0, 1), _CRYPT_RF_OPTIONS
    ):
        space.append(
            ArchConfig(
                num_buses=buses,
                num_alus=alus,
                num_shifters=shifters,
                rfs=rfs,
            )
        )
    return space


def small_space() -> list[ArchConfig]:
    """A fast sub-grid for unit tests and quick demos (12 points)."""
    space = []
    for buses, alus in itertools.product((1, 2, 3), (1, 2)):
        for rfs in ((RFConfig(8),), (RFConfig(8), RFConfig(12))):
            space.append(ArchConfig(num_buses=buses, num_alus=alus, rfs=rfs))
    return space
