"""Array multiplier FU (library component; Crypt does not use it).

Classic carry-save array: AND partial-product matrix reduced row by row
with ripple adders, returning the low ``width`` bits (modular multiply,
matching :func:`repro.components.reference.mul_reference`).

Ports: ``a[width]`` (O), ``b[width]`` (T), ``y[width]`` (R).
"""

from __future__ import annotations

from repro.netlist.builder import WordBuilder
from repro.netlist.netlist import Netlist


def build_multiplier(width: int = 16, name: str = "mul") -> Netlist:
    """Build a ``width``x``width`` -> ``width`` array multiplier netlist."""
    if width < 2:
        raise ValueError(f"multiplier width must be >= 2, got {width}")
    wb = WordBuilder(f"{name}{width}")
    a = wb.input_word("a", width)
    b = wb.input_word("b", width)

    # Row 0 of partial products is the initial accumulator.
    acc = [wb.and_(a[i], b[0]) for i in range(width)]
    for row in range(1, width):
        # Only bits that land inside the low `width` result matter.
        pp = [wb.and_(a[i], b[row]) for i in range(width - row)]
        upper = acc[row:]
        summed, _carry = wb.ripple_adder(upper, pp)
        acc = acc[:row] + summed
    wb.output_word("y", acc)
    wb.netlist.check()
    return wb.netlist
