"""The ``python -m repro`` command line.

The batch subcommands drive the paper's flow at campaign scale:

* ``study``    — the general entry point: one declarative spec
  (workloads, space, objectives, strategy) through the study engine,
* ``explore``  — one workload on one named space (a thin alias for a
  one-workload exhaustive study),
* ``campaign`` — a full spec (JSON file or flags): workloads x spaces x
  widths, parallel workers, on-disk result cache, per-run exports —
  executed as N studies sharing the cache,
* ``energy``   — compile one workload onto one configuration, simulate
  it with activity tracing and print the component-level energy
  breakdown,
* ``report``   — re-emit / Pareto-filter previously exported results,
* ``list``     — show the registered workloads, spaces, objectives,
  search strategies and technology parameter sets,
* ``bench``    — run the tracked evaluation-pipeline benchmark suite,
* ``trace``    — validate / summarize a recorded telemetry trace,
* ``cache``    — verify / repair / stat an on-disk result cache.

The service subcommands run the same engine as a long-lived job server
(see :mod:`repro.service`):

* ``serve``    — start the study server on a unix socket or TCP port,
* ``submit``   — send a study spec to a server (``--watch`` streams
  partial fronts and the job's state transitions),
* ``jobs``     — list a server's queue (``--stats`` adds cache/queue/
  dedupe counters),
* ``results``  — fetch a finished job's result JSON,
* ``cancel``   — cancel a queued or running job.

``study`` and ``campaign`` take ``--fault-policy skip|retry`` (plus
``--max-retries`` and ``--point-timeout``) so one dying configuration
costs a point, not the run; ``study`` additionally checkpoints with
``--checkpoint FILE`` / ``--checkpoint-every N`` and continues a killed
run with ``--resume FILE``.  Study exit codes are structured: 0 clean,
1 usage/runtime error, 3 interrupted (partial result), 4 completed but
with failed points recorded.

``study``, ``explore`` and ``campaign`` accept ``--profile`` to dump a
cProfile top-25 (cumulative) of the run to stderr.  ``study``,
``campaign`` and ``energy`` accept ``--trace FILE.jsonl`` (record the
structured telemetry stream) and ``--metrics-out FILE.json`` (write
the phase timers and counters); both are strictly opt-in and change no
results.

All tabular output goes through :mod:`repro.reporting`, so files written
here feed straight back into ``report`` (and any spreadsheet).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.apps.registry import workload_entry, workload_names
from repro.campaign import CampaignSpec, ResultCache, run_campaign
from repro.energy import technology_by_name, technology_names
from repro.explore.pareto import pareto_filter
from repro.explore.space import space_by_name, space_names
from repro.reporting import (
    exploration_from_csv,
    exploration_from_json,
    exploration_rows,
    exploration_to_csv,
    exploration_to_json,
)
from repro.study import (
    Study,
    StudySpec,
    objective_by_name,
    objective_names,
    strategy_by_name,
    strategy_names,
)


def _emit(text: str, output: str | None) -> None:
    if output:
        Path(output).write_text(text if text.endswith("\n") else text + "\n")
        print(f"wrote {output}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def _progress(line: str) -> None:
    print(line, file=sys.stderr)


def _maybe_profiled(args: argparse.Namespace, call):
    """Run ``call()``, optionally under cProfile (top-25 to stderr)."""
    if not getattr(args, "profile", False):
        return call()
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return call()
    finally:
        profiler.disable()
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats(
            "cumulative"
        ).print_stats(25)
        print(stream.getvalue(), file=sys.stderr)


def _make_cache(args: argparse.Namespace) -> ResultCache | None:
    if args.no_cache:
        return None
    return ResultCache(args.cache_dir)


def _make_tracer(args: argparse.Namespace):
    """A Tracer on ``--trace FILE.jsonl``, else None."""
    if not getattr(args, "trace", None):
        return None
    from repro.telemetry import Tracer

    return Tracer(args.trace)


def _collect_metrics(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "metrics_out", None) or getattr(args, "trace", None)
    )


def _make_policy(args: argparse.Namespace):
    """A FaultPolicy from ``--fault-policy``/friends, or None (default)."""
    mode = getattr(args, "fault_policy", None)
    timeout = getattr(args, "point_timeout", None)
    retries = getattr(args, "max_retries", None)
    if mode is None and timeout is None and retries is None:
        return None
    from repro.resilience import FaultPolicy

    return FaultPolicy(
        mode=mode or "fail_fast",
        max_retries=2 if retries is None else retries,
        timeout=timeout,
    )


def _make_cancel(args: argparse.Namespace):
    """A CancelToken from ``--cancel-after N``, or None."""
    after = getattr(args, "cancel_after", None)
    if not after:
        return None
    from repro.resilience import CancelToken

    return CancelToken(after_points=after)


def _study_exit_code(result) -> int:
    """0 clean; 3 interrupted (partial result); 4 failed points."""
    if result.interrupted:
        return 3
    if result.failures:
        return 4
    return 0


def _write_metrics(runs, args: argparse.Namespace) -> None:
    """``--metrics-out``: per-run phase/counter snapshots as JSON."""
    if not getattr(args, "metrics_out", None):
        return
    from repro.telemetry import merge_snapshots

    payload = {
        "runs": [
            {
                "label": r.label,
                "total": r.stats.total,
                "cache_hits": r.stats.cache_hits,
                "evaluated": r.stats.evaluated,
                "post_pass_hits": r.stats.post_pass_hits,
                "workers": r.stats.workers,
                "elapsed": round(r.stats.elapsed, 4),
                "phases": r.stats.phases,
                "counters": r.stats.counters,
            }
            for r in runs
        ],
        "merged": merge_snapshots(
            [
                {"phases": r.stats.phases, "counters": r.stats.counters}
                for r in runs
            ]
        ),
    }
    Path(args.metrics_out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.metrics_out}", file=sys.stderr)


def _points_text(points, fmt: str) -> str:
    if fmt == "csv":
        return exploration_to_csv(points)
    return exploration_to_json(points)


def _selection_lines(runs) -> list[str]:
    lines = []
    for run in runs:
        if run.selection is not None:
            sel = run.selection
            lines.append(
                f"selected [{run.label}]: {sel.point.label} "
                f"(norm={sel.norm:.4f})"
            )
    return lines


# ----------------------------------------------------------------------
# study
# ----------------------------------------------------------------------
def _parse_param(text: str) -> tuple[str, object]:
    """``key=value`` with value coerced to int/float when possible."""
    if "=" not in text:
        raise SystemExit(f"study: --param needs KEY=VALUE, got {text!r}")
    key, raw = text.split("=", 1)
    value: object = raw
    for cast in (int, float):
        try:
            value = cast(raw)
            break
        except ValueError:
            continue
    return key, value


def _study_spec_from_args(args: argparse.Namespace) -> StudySpec:
    if args.spec:
        return StudySpec.from_json(Path(args.spec).read_text())
    if not args.workloads:
        raise SystemExit("study: need --spec FILE or --workloads LIST")
    return StudySpec(
        name=args.name,
        workloads=tuple(args.workloads.split(",")),
        space=args.space,
        width=args.width,
        objectives=tuple(args.objectives.split(",")),
        strategy=args.strategy,
        strategy_params=dict(
            _parse_param(p) for p in (args.param or ())
        ),
        select=args.select,
        march=args.march,
        tech=args.tech,
    )


def _run_study(args: argparse.Namespace, spec: StudySpec | None):
    """Build and run one study from parsed CLI args (shared plumbing).

    ``spec=None`` means ``--resume``: the spec is rebuilt (and
    hash-verified) from the checkpoint file instead of the flags.
    The tracer is closed in the ``finally`` so an interrupted run
    still leaves a valid JSONL trace behind.
    """
    tracer = _make_tracer(args)
    common = dict(
        cache=_make_cache(args),
        workers=args.workers,
        progress=None if args.quiet else _progress,
        tracer=tracer,
        collect_metrics=_collect_metrics(args),
        policy=_make_policy(args),
        cancel=_make_cancel(args),
        checkpoint_every=getattr(args, "checkpoint_every", None) or 16,
        calibrate_front=getattr(args, "calibrate", False),
    )
    try:
        if spec is None:
            study = Study.resume(args.resume, **common)
        else:
            study = Study(
                spec,
                checkpoint=getattr(args, "checkpoint", None),
                **common,
            )
        return _maybe_profiled(args, study.run)
    finally:
        if tracer is not None:
            tracer.close()


def cmd_study(args: argparse.Namespace) -> int:
    spec = None if getattr(args, "resume", None) else (
        _study_spec_from_args(args)
    )
    result = _run_study(args, spec)
    _write_metrics(result.runs, args)
    for failure in result.failures:
        print(f"failed: {failure}", file=sys.stderr)
    if result.interrupted:
        print("study interrupted: result is partial", file=sys.stderr)
    if args.format == "summary":
        text = result.summary()
        for line in _selection_lines(result.runs):
            text += "\n" + line
        for run in result.runs:
            if run.calibrations:
                drifted = [r for r in run.calibrations if not r.ok]
                text += (
                    f"\n{run.label}: calibrated {len(run.calibrations)} "
                    f"front points, {len(drifted)} drifted"
                )
                for report in drifted:
                    text += (
                        f"\n  drift {report.config}: cycles "
                        f"{report.cycles_delta:+d}, area ratio "
                        f"{report.area_ratio:.2f}"
                    )
    else:
        if len(result.runs) != 1:
            raise SystemExit(
                "study: csv/json export needs a single-workload study "
                "(use --format summary)"
            )
        run = result.single
        points = run.pareto if args.pareto else run.result.points
        text = _points_text(points, args.format)
    _emit(text, args.output)
    return _study_exit_code(result)


# ----------------------------------------------------------------------
# explore (thin alias: a one-workload exhaustive study)
# ----------------------------------------------------------------------
def cmd_explore(args: argparse.Namespace) -> int:
    objectives = ("area", "cycles")
    if args.test_costs:
        objectives += ("test_cost",)
    result = _run_study(args, StudySpec(
        name=f"explore-{args.workload}",
        workloads=(args.workload,),
        space=args.space,
        width=args.width,
        objectives=objectives,
        strategy="exhaustive",
        select=args.select,
        march=args.march,
    ))
    run = result.single
    points = run.result.pareto2d if args.pareto else run.result.points
    if args.format == "summary":
        text = run.result.summary()
        text += (
            f"\n  cache: {run.stats.cache_hits} hits, "
            f"{run.stats.evaluated} evaluated in {run.stats.elapsed:.2f}s"
        )
        for line in _selection_lines(result.runs):
            text += "\n" + line
    else:
        text = _points_text(points, args.format)
    _emit(text, args.output)
    return 0


# ----------------------------------------------------------------------
# campaign
# ----------------------------------------------------------------------
def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    if args.spec:
        return CampaignSpec.from_json(Path(args.spec).read_text())
    if not args.workloads:
        raise SystemExit("campaign: need --spec FILE or --workloads LIST")
    return CampaignSpec(
        name=args.name,
        workloads=tuple(args.workloads.split(",")),
        spaces=tuple(args.spaces.split(",")),
        widths=tuple(int(w) for w in args.widths.split(",")),
        attach_test_costs=args.test_costs,
        select=args.select,
        march=args.march,
    )


def cmd_campaign(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    tracer = _make_tracer(args)
    try:
        campaign = _maybe_profiled(
            args,
            lambda: run_campaign(
                spec,
                workers=args.workers,
                cache=_make_cache(args),
                progress=None if args.quiet else _progress,
                tracer=tracer,
                collect_metrics=_collect_metrics(args),
                policy=_make_policy(args),
            ),
        )
    finally:
        if tracer is not None:
            tracer.close()
    _write_metrics(campaign.runs, args)
    if args.out_dir:
        out = Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / "spec.json").write_text(spec.to_json() + "\n")
        for run in campaign.runs:
            stem = run.label.replace("/", "__")
            text = _points_text(run.result.points, args.format)
            suffix = "csv" if args.format == "csv" else "json"
            (out / f"{stem}.{suffix}").write_text(text)
        print(f"wrote {len(campaign.runs)} result files to {out}",
              file=sys.stderr)
    print(campaign.summary())
    for line in _selection_lines(campaign.runs):
        print(line)
    return 0


# ----------------------------------------------------------------------
# energy
# ----------------------------------------------------------------------
def cmd_energy(args: argparse.Namespace) -> int:
    import json as _json

    from repro.energy import energy_report, format_energy_report
    from repro.explore.space import ArchConfig, build_architecture_cached
    from repro.study.engine import workload_profile
    from repro.apps.registry import build_workload
    from repro.explore.evaluate import EvaluationContext

    if args.config:
        config = ArchConfig.from_dict(
            _json.loads(Path(args.config).read_text())
        )
    else:
        space = space_by_name(args.space)
        if not 0 <= args.index < len(space):
            raise ValueError(
                f"--index {args.index} outside space "
                f"{args.space!r} (0..{len(space) - 1})"
            )
        config = space[args.index]
    tech = technology_by_name(args.tech)
    workload = build_workload(args.workload)
    profile = workload_profile(args.workload, args.width)
    metrics = None
    if _collect_metrics(args):
        from repro.telemetry import MetricsCollector

        metrics = MetricsCollector()
    tracer = _make_tracer(args)
    label = f"{args.workload}/{config.label()}/w{args.width}"
    try:
        if tracer is not None:
            tracer.study = f"energy:{args.workload}"
        context = EvaluationContext(
            workload, profile, args.width, metrics=metrics
        )
        point = context.evaluate(config, keep_compile_result=True)
        if not point.feasible:
            raise ValueError(
                f"{args.workload} does not compile onto {config.label()}"
            )
        arch = build_architecture_cached(config, args.width)

        def run_report():
            return energy_report(
                arch, point.compile_result.program, tech=tech,
                max_cycles=args.max_cycles, metrics=metrics,
            )

        if tracer is None:
            breakdown = _maybe_profiled(args, run_report)
        else:
            with tracer.span("run", run=label, config=config.label()):
                breakdown = _maybe_profiled(args, run_report)
        if metrics is not None:
            snapshot = metrics.snapshot()
            if tracer is not None:
                tracer.event(
                    "metrics", run=label,
                    phases=snapshot["phases"],
                    counters=snapshot["counters"],
                )
            if getattr(args, "metrics_out", None):
                Path(args.metrics_out).write_text(
                    json.dumps(snapshot, indent=2) + "\n"
                )
                print(f"wrote {args.metrics_out}", file=sys.stderr)
    finally:
        if tracer is not None:
            tracer.close()
    text = format_energy_report(breakdown)
    text += (
        f"\npoint: area={point.area:.0f} "
        f"static_cycles={point.cycles} energy={breakdown.total:.1f}"
    )
    _emit(text, args.output)
    return 0



# ----------------------------------------------------------------------
# rtl (full-core emission + model calibration)
# ----------------------------------------------------------------------
def _rtl_config(args: argparse.Namespace):
    """Resolve an ArchConfig exactly like ``energy`` does."""
    import json as _json

    from repro.explore.space import ArchConfig

    if args.config:
        return ArchConfig.from_dict(
            _json.loads(Path(args.config).read_text())
        )
    space = space_by_name(args.space)
    if not 0 <= args.index < len(space):
        raise ValueError(
            f"--index {args.index} outside space "
            f"{args.space!r} (0..{len(space) - 1})"
        )
    return space[args.index]


def cmd_rtl(args: argparse.Namespace) -> int:
    import json as _json

    from repro.apps.registry import build_workload
    from repro.explore.evaluate import EvaluationContext
    from repro.explore.space import build_architecture_cached
    from repro.rtl import (
        calibrate,
        elaborate_core,
        format_calibration_report,
        lint_core,
    )
    from repro.study.engine import workload_profile

    config = _rtl_config(args)

    if args.rtl_command == "emit":
        arch = build_architecture_cached(config, args.width)
        program = None
        if args.workload:
            workload = build_workload(args.workload)
            profile = workload_profile(args.workload, args.width)
            context = EvaluationContext(workload, profile, args.width)
            point = context.evaluate(config, keep_compile_result=True)
            if not point.feasible:
                raise ValueError(
                    f"{args.workload} does not compile onto "
                    f"{config.label()}"
                )
            program = point.compile_result.program
        design = elaborate_core(arch, program=program, top_name=args.top)
        problems = lint_core(design)
        for problem in problems:
            print(f"lint: {problem}", file=sys.stderr)
        if args.format == "json":
            text = _json.dumps(
                {
                    "top": design.top_name,
                    "config": config.label(),
                    "width": args.width,
                    "modules": list(design.modules),
                    "instances": design.instances,
                    "flop_bits": design.flop_bits,
                    "instruction_bits": design.instruction_bits,
                    "num_instructions": design.num_instructions,
                    "imem_bits": design.imem_bits,
                    "lint_problems": problems,
                },
                indent=2,
            )
        else:
            text = design.verilog
        _emit(text, args.output)
        return 1 if problems else 0

    # calibrate
    workload = build_workload(args.workload)
    tech = technology_by_name(args.tech)
    report = calibrate(
        workload, config, width=args.width, tech=tech,
        max_cycles=args.max_cycles,
    )
    if args.format == "json":
        text = _json.dumps(report.to_dict(), indent=2)
    else:
        text = format_calibration_report(report)
    _emit(text, args.output)
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
def cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.input)
    text = path.read_text()
    if path.suffix == ".csv":
        points = exploration_from_csv(text)
    else:
        points = exploration_from_json(text)
    if args.pareto:
        feasible = [p for p in points if p.feasible]
        points = pareto_filter(feasible, key=lambda p: p.cost2d())
    if args.format == "summary":
        rows = exploration_rows(points)
        widths = {k: max(len(k), *(len(str(r[k])) for r in rows))
                  for k in rows[0]} if rows else {}
        cols = [k for k in widths if k != "config"]
        lines = ["  ".join(k.ljust(widths[k]) for k in cols)]
        for r in rows:
            lines.append(
                "  ".join(str(r[k]).ljust(widths[k]) for k in cols)
            )
        out = "\n".join(lines)
    else:
        out = _points_text(points, args.format)
    _emit(out, args.output)
    return 0


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
def _cache_stats_text(cache: ResultCache) -> str:
    """The ``cache stats`` report: shards, sizes, lifetime counters."""
    shards = cache.shard_stats()
    entries = sum(s["entries"] for s in shards.values())
    total = sum(s["bytes"] for s in shards.values())
    lines = [
        f"cache {cache.directory}: {entries} entries, "
        f"{total} bytes in {len(shards)} shard(s)"
    ]
    for name in sorted(shards):
        shard = shards[name]
        lines.append(
            f"  shard {name:<6} {shard['entries']:>6} entries  "
            f"{shard['bytes']:>10} bytes"
        )
    quarantined = cache.quarantined_entries()
    if quarantined:
        lines.append(f"quarantine: {quarantined} entries")
    persisted = cache.persisted_stats()
    if persisted:
        lookups = persisted.get("hits", 0) + persisted.get("misses", 0)
        rate = persisted.get("hits", 0) / lookups if lookups else 0.0
        lines.append(
            "lifetime: "
            f"{persisted.get('hits', 0)} hits / {lookups} lookups "
            f"({rate:.1%}), {persisted.get('puts', 0)} puts, "
            f"{persisted.get('merged_axes', 0)} merged axes, "
            f"{persisted.get('quarantined', 0)} quarantined, "
            f"{persisted.get('evictions', 0)} evicted, "
            f"{persisted.get('migrated', 0)} migrated"
        )
    else:
        lines.append(
            "lifetime: no persisted counters yet (runs record them "
            "on completion)"
        )
    return "\n".join(lines)


def cmd_cache(args: argparse.Namespace) -> int:
    """``cache verify|repair|stats``: inspect a result-cache directory.

    ``verify`` reports and exits 1 when corrupt entries exist (leaving
    them in place); ``repair`` moves them to ``<dir>/quarantine/`` and
    exits 0 — re-evaluation then replaces them on the next run.
    ``stats`` prints per-shard entry counts and sizes plus the
    persisted lifetime hit/miss/quarantine counters; it works on both
    flat and sharded layouts (a flat remainder reports as ``(flat)``).
    """
    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        _emit(_cache_stats_text(cache), getattr(args, "output", None))
        return 0
    report = cache.verify(repair=args.action == "repair")
    print(
        f"cache {cache.directory}: {report['checked']} entries, "
        f"{report['ok']} ok, {report['stale']} stale, "
        f"{len(report['corrupt'])} corrupt"
    )
    for name in report["corrupt"]:
        print(f"  corrupt: {name}")
    if report["quarantined"]:
        print(
            f"quarantined {report['quarantined']} "
            f"entr{'y' if report['quarantined'] == 1 else 'ies'} "
            f"to {cache.directory / 'quarantine'}"
        )
    if args.action == "verify" and report["corrupt"]:
        return 1
    return 0


# ----------------------------------------------------------------------
# service (serve / submit / jobs / results / cancel)
# ----------------------------------------------------------------------
def cmd_serve(args: argparse.Namespace) -> int:
    """Run the study server until SIGINT/SIGTERM or a shutdown op."""
    import asyncio
    import signal

    from repro.service import StudyServer

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir, max_bytes=args.max_cache_bytes)
    tracer = _make_tracer(args)
    server = StudyServer(
        args.state_dir,
        cache=cache,
        total_workers=args.workers,
        job_workers=args.job_workers,
        tenant_max_running=args.tenant_max_running,
        stream_every=args.stream_every,
        checkpoint_every=args.checkpoint_every,
        tracer=tracer,
    )
    exporter = None
    if args.metrics_addr is not None:
        from repro.telemetry import MetricsExporter

        host, _, port = args.metrics_addr.rpartition(":")
        exporter = MetricsExporter(
            server.registry, host=host or "127.0.0.1", port=int(port),
        ).start()

    async def run() -> None:
        bound = await server.start(args.address)
        # The readiness line scripts and tests wait for; stdout so it
        # composes with `grep -m1` without touching diagnostics.
        print(f"listening on {bound}", flush=True)
        if exporter is not None:
            print(
                f"metrics on http://{exporter.address}/metrics",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, server.stop)
        await server.serve_until_stopped()

    try:
        asyncio.run(run())
    finally:
        if exporter is not None:
            exporter.stop()
        if tracer is not None:
            tracer.close()
    return 0


def _service_errors(call) -> int:
    """Run one client command; map service/transport errors to exit 1."""
    from repro.service.client import ServiceError

    try:
        return call()
    except (ServiceError, ConnectionError, TimeoutError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    spec = _study_spec_from_args(args)

    def run() -> int:
        with ServiceClient(args.server) as client:
            response = client.submit(
                spec.to_dict(), tenant=args.tenant, priority=args.priority
            )
            job = response["job"]
            note = (
                f" (duplicate: already {response['state']})"
                if response["deduped"] else ""
            )
            print(f"submitted {job}{note}")
            if not args.watch:
                return 0
            final = None
            for frame in client.watch(job):
                if frame["event"] == "front":
                    kind = "front" if not frame.get("final") else (
                        "final front"
                    )
                    print(
                        f"[{frame['run']}] {kind}: "
                        f"{len(frame['front'])} points "
                        f"({frame['done']} evaluated)"
                    )
                elif frame["event"] == "job_state":
                    line = f"[{job}] {frame['state']}"
                    if frame.get("error"):
                        line += f": {frame['error']}"
                    print(line)
                    if frame.get("terminal"):
                        final = frame["state"]
            # Mirror the batch study exit codes: 0 clean, 3
            # interrupted/cancelled, 4 failed points.
            return {"done": 0, "cancelled": 3, "failed": 4}.get(final, 1)

    return _service_errors(run)


def cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    def run() -> int:
        with ServiceClient(args.server) as client:
            jobs = client.jobs()
            if not jobs:
                print("no jobs")
            for job in jobs:
                line = (
                    f"{job['job']:<28} {job['state']:<10} "
                    f"tenant={job['tenant']} priority={job['priority']} "
                    f"name={job['name']}"
                )
                if job.get("error"):
                    line += f"  error: {job['error']}"
                print(line)
            if args.stats:
                stats = client.stats()
                stats.pop("ok", None)
                print(json.dumps(stats, indent=2, sort_keys=True))
        return 0

    return _service_errors(run)


def cmd_results(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    def run() -> int:
        with ServiceClient(args.server) as client:
            result = client.result(args.job)
        _emit(json.dumps(result, indent=2), args.output)
        return 0

    return _service_errors(run)


def cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    def run() -> int:
        with ServiceClient(args.server) as client:
            response = client.cancel(args.job)
        if response.get("noop"):
            print(
                f"{response['job']} already {response['state']}; "
                "nothing to cancel"
            )
        else:
            print(f"cancelling {response['job']} ({response['state']})")
        return 0

    return _service_errors(run)


def cmd_metrics(args: argparse.Namespace) -> int:
    """One-shot scrape of a running server's live metrics."""
    from repro.service import ServiceClient
    from repro.telemetry import render_prometheus

    def run() -> int:
        with ServiceClient(args.server) as client:
            metrics = client.metrics(tenant=args.tenant)
        if args.format == "json":
            _emit(json.dumps(metrics, indent=2, sort_keys=True),
                  args.output)
        else:
            _emit(render_prometheus(metrics["registry"]).rstrip("\n"),
                  args.output)
        return 0

    return _service_errors(run)


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard polling a running server."""
    from repro.service import run_top

    return _service_errors(
        lambda: run_top(
            args.server,
            interval=args.interval,
            iterations=args.iterations,
            clear=not args.no_clear,
        )
    )


# ----------------------------------------------------------------------
# trace
# ----------------------------------------------------------------------
def cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry import (
        format_trace_summary,
        load_trace,
        summarize_trace,
    )

    records = load_trace(args.input)
    if args.action == "validate":
        print(f"{args.input}: {len(records)} records, schema OK")
        return 0
    summary = summarize_trace(records)
    if args.format == "json":
        _emit(json.dumps(summary, indent=2, sort_keys=True), args.output)
    else:
        _emit(format_trace_summary(summary), args.output)
    return 0


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------
def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        append_history,
        format_report,
        run_benchmarks,
        write_report,
    )

    suites = (
        ("small", "medium") if args.suite == "full" else (args.suite,)
    )
    report = run_benchmarks(suites=suites)
    print(format_report(report))
    if not args.no_write:
        out = write_report(report, args.output)
        print(f"wrote {out}", file=sys.stderr)
        history = append_history(report, args.history)
        print(f"appended {history}", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
# list
# ----------------------------------------------------------------------
def cmd_list(args: argparse.Namespace) -> int:
    chosen = [
        section
        for section, wanted in (
            ("workloads", args.workloads),
            ("spaces", args.spaces),
            ("objectives", args.objectives),
            ("strategies", args.strategies),
            ("technologies", args.technologies),
        )
        if wanted
    ]
    sections = chosen or [
        "workloads", "spaces", "objectives", "strategies", "technologies",
    ]
    if "workloads" in sections:
        print("workloads:")
        for name in workload_names():
            entry = workload_entry(name)
            mul = "  [needs MUL]" if entry.needs_mul else ""
            print(f"  {name:<10} {entry.description}{mul}")
    if "spaces" in sections:
        print("spaces:")
        for name in space_names():
            print(f"  {name:<10} {len(space_by_name(name))} configurations")
    if "objectives" in sections:
        print("objectives:")
        for name in objective_names():
            objective = objective_by_name(name)
            post = ""
            if objective.requires_test_costs:
                post = "  [needs test-cost pass]"
            elif objective.requires_energy:
                post = "  [needs energy pass]"
            print(f"  {name:<10} {objective.description}{post}")
    if "strategies" in sections:
        print("strategies:")
        for name in strategy_names():
            entry = strategy_by_name(name)
            print(f"  {name:<10} {entry.description}")
            print(f"  {'':<10} params: {entry.params}")
    if "technologies" in sections:
        print("technologies:")
        for name in technology_names():
            tech = technology_by_name(name)
            print(
                f"  {name:<10} cap/area={tech.cap_per_area} "
                f"wire/bit={tech.wire_cap_per_bit} "
                f"leakage/area={tech.leakage_per_area}"
            )
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def _add_telemetry_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, metavar="FILE.jsonl",
                   help="record the structured telemetry stream here "
                        "(see: python -m repro trace summarize)")
    p.add_argument("--metrics-out", default=None, metavar="FILE.json",
                   help="write phase timers and counters here")


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: "
                        "$REPRO_CAMPAIGN_CACHE or ~/.cache/repro-tta/campaign)")
    p.add_argument("--no-cache", action="store_true",
                   help="re-evaluate every point, touch no cache")


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--fault-policy", choices=("fail_fast", "skip", "retry"),
                   default=None,
                   help="what a crashing evaluation does to the sweep: "
                        "abort it (fail_fast, default), record the point "
                        "as failed and continue (skip), or re-attempt "
                        "with backoff first (retry)")
    p.add_argument("--max-retries", type=int, default=None, metavar="N",
                   help="extra attempts per point under --fault-policy "
                        "retry (default 2)")
    p.add_argument("--point-timeout", type=float, default=None, metavar="SEC",
                   help="per-point wall-clock budget on the pool path; "
                        "a point past it is recorded as failed")


def _add_run_args(p: argparse.ArgumentParser, test_costs: bool = True) -> None:
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size; 1 = serial (default)")
    if test_costs:
        p.add_argument("--test-costs", action="store_true",
                       help="attach analytical test costs to the Pareto set")
    p.add_argument("--select", action="store_true",
                   help="pick an architecture with the weighted norm")
    p.add_argument("--march", default="March C-",
                   help="march algorithm for RF test costs")
    p.add_argument("--profile", action="store_true",
                   help="dump cProfile top-25 (cumulative) to stderr")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="suppress progress lines on stderr")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Design and test space exploration of TTAs "
                    "(DATE 2000) — study and campaign driver.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("study",
                       help="run a declarative study (objectives x strategy)")
    p.add_argument("--spec", default=None,
                   help="study spec JSON file (overrides the flags)")
    p.add_argument("--name", default="study")
    p.add_argument("--workloads", default=None,
                   help="comma-separated workload names")
    p.add_argument("--space", default="small",
                   help=f"one of: {', '.join(space_names())}")
    p.add_argument("--width", type=int, default=16)
    p.add_argument("--objectives", default="area,cycles",
                   help="comma-separated objective names "
                        "(see: python -m repro list --objectives)")
    p.add_argument("--strategy", default="exhaustive",
                   help="search strategy "
                        "(see: python -m repro list --strategies)")
    p.add_argument("--param", action="append", metavar="KEY=VALUE",
                   help="strategy parameter (repeatable), e.g. "
                        "--param budget=20 --param seed=1")
    p.add_argument("--tech", default="default",
                   help="technology parameter set for the energy "
                        "objectives (see: python -m repro list "
                        "--technologies)")
    p.add_argument("--pareto", action="store_true",
                   help="export only the objective-vector Pareto points")
    p.add_argument("--calibrate", action="store_true",
                   help="audit each run's base front against the "
                        "emitted RTL core (see: python -m repro rtl)")
    p.add_argument("--format", choices=("summary", "csv", "json"),
                   default="summary")
    p.add_argument("-o", "--output", default=None,
                   help="write to file instead of stdout")
    _add_run_args(p, test_costs=False)
    _add_cache_args(p)
    _add_telemetry_args(p)
    _add_fault_args(p)
    p.add_argument("--checkpoint", default=None, metavar="FILE.json",
                   help="write a resumable checkpoint here as points "
                        "complete (see --resume)")
    p.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                   help="flush the checkpoint every N points (default 16)")
    p.add_argument("--resume", default=None, metavar="FILE.json",
                   help="continue an interrupted study from its "
                        "checkpoint instead of building a spec from "
                        "the flags")
    p.add_argument("--cancel-after", type=int, default=None, metavar="N",
                   help="stop cleanly after N evaluated points "
                        "(testing aid; the run is flagged interrupted)")
    # None (not 1) so a --spec file's own `workers` field wins unless
    # the flag is given explicitly.
    p.set_defaults(func=cmd_study, workers=None)

    p = sub.add_parser("explore", help="one workload on one space")
    p.add_argument("--workload", required=True,
                   help=f"one of: {', '.join(workload_names())}")
    p.add_argument("--space", default="small",
                   help=f"one of: {', '.join(space_names())}")
    p.add_argument("--width", type=int, default=16)
    p.add_argument("--pareto", action="store_true",
                   help="export only the 2-D Pareto points")
    p.add_argument("--format", choices=("summary", "csv", "json"),
                   default="summary")
    p.add_argument("-o", "--output", default=None,
                   help="write to file instead of stdout")
    _add_run_args(p)
    _add_cache_args(p)
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser("campaign", help="run a multi-workload campaign")
    p.add_argument("--spec", default=None,
                   help="campaign spec JSON file (overrides the flags)")
    p.add_argument("--name", default="campaign")
    p.add_argument("--workloads", default=None,
                   help="comma-separated workload names")
    p.add_argument("--spaces", default="small",
                   help="comma-separated space names")
    p.add_argument("--widths", default="16",
                   help="comma-separated datapath widths")
    p.add_argument("--out-dir", default=None,
                   help="write spec.json + per-run result files here")
    p.add_argument("--format", choices=("csv", "json"), default="csv",
                   help="format of the per-run result files")
    _add_run_args(p)
    _add_cache_args(p)
    _add_telemetry_args(p)
    _add_fault_args(p)
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser("energy",
                       help="component-level energy breakdown of one "
                            "(workload, configuration) pair")
    p.add_argument("workload",
                   help=f"one of: {', '.join(workload_names())}")
    p.add_argument("--space", default="small",
                   help=f"configuration grid to pick from "
                        f"(one of: {', '.join(space_names())})")
    p.add_argument("--index", type=int, default=0,
                   help="configuration index within --space (default 0)")
    p.add_argument("--config", default=None,
                   help="ArchConfig JSON file (overrides --space/--index)")
    p.add_argument("--width", type=int, default=16)
    p.add_argument("--tech", default="default",
                   help="technology parameter set "
                        "(see: python -m repro list --technologies)")
    p.add_argument("--max-cycles", type=int, default=5_000_000,
                   help="simulation cycle budget (default 5M)")
    p.add_argument("--profile", action="store_true",
                   help="dump cProfile top-25 (cumulative) to stderr")
    p.add_argument("-o", "--output", default=None,
                   help="write to file instead of stdout")
    _add_telemetry_args(p)
    p.set_defaults(func=cmd_energy)

    p = sub.add_parser("rtl",
                       help="emit a full synthesizable TTA core, or "
                            "calibrate the model against it")
    rtl_sub = p.add_subparsers(dest="rtl_command", required=True)

    def _rtl_common(q, workload_required):
        if workload_required:
            q.add_argument("workload",
                           help=f"one of: {', '.join(workload_names())}")
        else:
            q.add_argument("workload", nargs="?", default=None,
                           help="workload whose compiled program to "
                                "embed as the instruction ROM "
                                "(omit for an external-imem core); "
                                f"one of: {', '.join(workload_names())}")
        q.add_argument("--space", default="small",
                       help=f"configuration grid to pick from "
                            f"(one of: {', '.join(space_names())})")
        q.add_argument("--index", type=int, default=0,
                       help="configuration index within --space "
                            "(default 0)")
        q.add_argument("--config", default=None,
                       help="ArchConfig JSON file (overrides "
                            "--space/--index)")
        q.add_argument("--width", type=int, default=16)
        q.add_argument("-o", "--output", default=None,
                       help="write to file instead of stdout")

    q = rtl_sub.add_parser("emit",
                           help="elaborate one configuration into "
                                "synthesizable Verilog")
    _rtl_common(q, workload_required=False)
    q.add_argument("--top", default="tta_core",
                   help="top module name (default tta_core)")
    q.add_argument("--format", choices=("verilog", "json"),
                   default="verilog",
                   help="emit the Verilog text, or a JSON structure "
                        "summary with lint results")
    q.set_defaults(func=cmd_rtl)

    q = rtl_sub.add_parser("calibrate",
                           help="audit model area and cycles against "
                                "the emitted core")
    _rtl_common(q, workload_required=True)
    q.add_argument("--tech", default="default",
                   help="technology parameter set "
                        "(see: python -m repro list --technologies)")
    q.add_argument("--max-cycles", type=int, default=5_000_000,
                   help="simulation cycle budget (default 5M)")
    q.add_argument("--format", choices=("text", "json"), default="text")
    q.set_defaults(func=cmd_rtl)

    p = sub.add_parser("report",
                       help="re-emit exported results (CSV or JSON)")
    p.add_argument("input", help="a result file written by explore/campaign")
    p.add_argument("--pareto", action="store_true",
                   help="keep only the 2-D Pareto points")
    p.add_argument("--format", choices=("summary", "csv", "json"),
                   default="summary")
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("bench",
                       help="run the evaluation-pipeline benchmark suite")
    p.add_argument("--suite", choices=("small", "medium", "full"),
                   default="full",
                   help="which sweep sizes to time (default: full)")
    p.add_argument("-o", "--output", default="BENCH_evaluate.json",
                   help="benchmark report file (default: ./BENCH_evaluate.json)")
    p.add_argument("--no-write", action="store_true",
                   help="print the report without touching the file")
    p.add_argument("--history", default="benchmarks/history.jsonl",
                   help="JSONL file each run appends one line to "
                        "(timestamp, commit, headline speedups); "
                        "default: benchmarks/history.jsonl")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser("cache",
                       help="verify, repair or stat a result-cache "
                            "directory")
    p.add_argument("action", choices=("verify", "repair", "stats"),
                   help="verify: report corrupt entries (exit 1 if any); "
                        "repair: move them to <dir>/quarantine/; "
                        "stats: per-shard sizes + lifetime hit/miss "
                        "counters")
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: "
                        "$REPRO_CAMPAIGN_CACHE or ~/.cache/repro-tta/campaign)")
    p.add_argument("-o", "--output", default=None,
                   help="write to file instead of stdout")
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("serve",
                       help="run the study job server (see repro submit)")
    p.add_argument("address",
                   help="bind address: unix:PATH, PATH.sock, "
                        "tcp:HOST:PORT, HOST:PORT or PORT (0 picks a "
                        "free port)")
    p.add_argument("--state-dir", default="repro-service",
                   help="queue state, per-job checkpoints and results "
                        "live here (default: ./repro-service)")
    p.add_argument("--workers", type=int, default=2,
                   help="shared evaluation-worker budget leased across "
                        "running jobs (default 2)")
    p.add_argument("--job-workers", type=int, default=1,
                   help="minimum worker lease per job (default 1)")
    p.add_argument("--tenant-max-running", type=int, default=2,
                   help="max concurrently running jobs per tenant "
                        "(default 2)")
    p.add_argument("--stream-every", type=int, default=4,
                   help="recompute+stream a watching client's partial "
                        "front every N completed points (default 4)")
    p.add_argument("--checkpoint-every", type=int, default=4,
                   help="flush per-job study checkpoints every N points "
                        "(default 4)")
    p.add_argument("--max-cache-bytes", type=int, default=None,
                   metavar="BYTES",
                   help="LRU budget for the result cache (default: "
                        "unbounded)")
    _add_cache_args(p)
    p.add_argument("--trace", default=None, metavar="FILE.jsonl",
                   help="record job/queue telemetry events here")
    p.add_argument("--metrics-addr", default=None, metavar="HOST:PORT",
                   help="serve Prometheus text at "
                        "http://HOST:PORT/metrics (port 0 picks a free "
                        "one; a bare PORT binds 127.0.0.1)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit",
                       help="submit a study spec to a running server")
    p.add_argument("--server", required=True,
                   help="server address (same forms as repro serve)")
    p.add_argument("--tenant", default="default",
                   help="tenant name for fairness/quota accounting")
    p.add_argument("--priority", type=int, default=0,
                   help="higher runs earlier within your tenant "
                        "(default 0)")
    p.add_argument("--watch", action="store_true",
                   help="stay connected; print partial fronts and state "
                        "changes until the job finishes")
    p.add_argument("--spec", default=None,
                   help="study spec JSON file (overrides the flags)")
    p.add_argument("--name", default="study")
    p.add_argument("--workloads", default=None,
                   help="comma-separated workload names")
    p.add_argument("--space", default="small",
                   help=f"one of: {', '.join(space_names())}")
    p.add_argument("--width", type=int, default=16)
    p.add_argument("--objectives", default="area,cycles",
                   help="comma-separated objective names")
    p.add_argument("--strategy", default="exhaustive",
                   help="search strategy")
    p.add_argument("--param", action="append", metavar="KEY=VALUE",
                   help="strategy parameter (repeatable)")
    p.add_argument("--select", action="store_true",
                   help="pick an architecture with the weighted norm")
    p.add_argument("--march", default="March C-",
                   help="march algorithm for RF test costs")
    p.add_argument("--tech", default="default",
                   help="technology parameter set")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs", help="list a running server's job queue")
    p.add_argument("--server", required=True,
                   help="server address (same forms as repro serve)")
    p.add_argument("--stats", action="store_true",
                   help="also print queue/worker/dedupe/cache counters")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("results",
                       help="fetch a finished job's result JSON")
    p.add_argument("job", help="job id (see repro jobs)")
    p.add_argument("--server", required=True,
                   help="server address (same forms as repro serve)")
    p.add_argument("-o", "--output", default=None,
                   help="write to file instead of stdout")
    p.set_defaults(func=cmd_results)

    p = sub.add_parser("cancel", help="cancel a queued or running job")
    p.add_argument("job", help="job id (see repro jobs)")
    p.add_argument("--server", required=True,
                   help="server address (same forms as repro serve)")
    p.set_defaults(func=cmd_cancel)

    p = sub.add_parser("metrics",
                       help="scrape a running server's live metrics")
    p.add_argument("action", choices=("dump",),
                   help="dump: one-shot scrape over the metrics op")
    p.add_argument("--server", required=True,
                   help="server address (same forms as repro serve)")
    p.add_argument("--tenant", default=None,
                   help="narrow per-tenant aggregates to one tenant")
    p.add_argument("--format", choices=("prom", "json"), default="prom",
                   help="prom: Prometheus text exposition (default); "
                        "json: the full metrics op response")
    p.add_argument("-o", "--output", default=None,
                   help="write to file instead of stdout")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser("top",
                       help="live dashboard: tenants, jobs, queue depth, "
                            "latency percentiles")
    p.add_argument("--server", required=True,
                   help="server address (same forms as repro serve)")
    p.add_argument("--interval", type=float, default=2.0,
                   help="seconds between polls (default 2)")
    p.add_argument("--iterations", type=int, default=None,
                   help="stop after N frames (default: run until ^C)")
    p.add_argument("--no-clear", action="store_true",
                   help="append frames instead of redrawing (for "
                        "transcripts and pipes)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("trace",
                       help="validate or summarize a telemetry trace "
                            "(JSONL written by --trace)")
    p.add_argument("action", choices=("summarize", "validate"),
                   help="summarize: phase/cache/wave report; "
                        "validate: schema-check every record")
    p.add_argument("input", help="a .jsonl trace file")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="summarize output: human report (default) or "
                        "the raw summary dict as JSON")
    p.add_argument("-o", "--output", default=None,
                   help="write to file instead of stdout")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("list",
                       help="show known workloads, spaces, objectives, "
                            "strategies and technologies")
    p.add_argument("--workloads", action="store_true",
                   help="list only the workload registry")
    p.add_argument("--spaces", action="store_true",
                   help="list only the space registry")
    p.add_argument("--objectives", action="store_true",
                   help="list only the objective registry")
    p.add_argument("--strategies", action="store_true",
                   help="list only the strategy registry")
    p.add_argument("--technologies", action="store_true",
                   help="list only the technology parameter sets")
    p.set_defaults(func=cmd_list)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError, OSError) as exc:
        # str(KeyError) is the repr of its message; unwrap for clean output
        message = (
            exc.args[0]
            if isinstance(exc, KeyError) and exc.args
            else exc
        )
        print(f"error: {message}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
