"""Back-annotation of per-component test data (the paper's Sec. 3 inputs).

"The components are already predesigned up to the gate-level ... the
numbers of the test patterns for each functional unit (and register file)
is back-annotated with an automatic test pattern generation tool."

Functional units get ``n_p`` and fault coverage from :mod:`repro.atpg` on
their generated netlist; register files get the march-test operation
count from :mod:`repro.memtest` (multi-port memories are march-tested,
not scanned); every component's socket gets the socket-ATPG pattern
count for eq. 13.  Results are cached aggressively — the explorer asks
for the same component types hundreds of times.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.atpg.engine import run_atpg
from repro.components.library import component_datasheet
from repro.components.socket import build_socket
from repro.components.spec import ComponentKind, ComponentSpec
from repro.memtest.march import MARCH_ALGORITHMS, MARCH_CM, march_pattern_count

#: ATPG settings used for all component back-annotation.  The backtrack
#: limit is sized so PODEM can *prove* the components' structural
#: redundancies (e.g. the ALU's add/sub mux aliasing needs ~131
#: backtracks) instead of counting them as aborted.
ATPG_SEED = 0
ATPG_RANDOM_WORDS = 16
ATPG_BACKTRACK_LIMIT = 384


@dataclass(frozen=True)
class Backannotation:
    """Everything the cost formulas need to know about one component."""

    spec_name: str
    num_patterns: int          # n_p
    fault_coverage: float      # percent, FUs only (RFs: march = 100%)
    scan_chain_length: int     # n_l
    socket_patterns: int       # n_p of the socket control (eq. 13)

    @property
    def socket_cost(self) -> int:
        return self.socket_patterns * self.scan_chain_length


@lru_cache(maxsize=1)
def socket_pattern_count() -> tuple[int, float]:
    """(n_p, coverage) of the socket control/decode logic."""
    result = run_atpg(
        build_socket(),
        seed=ATPG_SEED,
        random_words=ATPG_RANDOM_WORDS,
        backtrack_limit=ATPG_BACKTRACK_LIMIT,
    )
    return result.num_patterns, result.fault_coverage


@lru_cache(maxsize=None)
def component_backannotation(
    spec: ComponentSpec,
    march_name: str = MARCH_CM.name,
) -> Backannotation:
    """Back-annotate one component type (cached per spec + march)."""
    socket_np, _socket_fc = socket_pattern_count()
    if spec.kind is ComponentKind.RF:
        march = MARCH_ALGORITHMS[march_name]
        np_rf = march_pattern_count(
            march,
            spec.num_regs,
            read_ports=spec.n_out,
            write_ports=spec.n_in,
        )
        return Backannotation(
            spec_name=spec.name,
            num_patterns=np_rf,
            fault_coverage=100.0,
            scan_chain_length=spec.scan_chain_length,
            socket_patterns=socket_np,
        )

    datasheet = component_datasheet(spec)
    netlist = datasheet.netlist()
    if netlist is None:
        raise ValueError(f"{spec.name}: no netlist to back-annotate")
    result = run_atpg(
        netlist,
        seed=ATPG_SEED,
        random_words=ATPG_RANDOM_WORDS,
        backtrack_limit=ATPG_BACKTRACK_LIMIT,
    )
    return Backannotation(
        spec_name=spec.name,
        num_patterns=result.num_patterns,
        fault_coverage=result.fault_coverage,
        scan_chain_length=spec.scan_chain_length,
        socket_patterns=socket_np,
    )
