"""Cycle-accurate simulator semantics (the hybrid pipelining of Fig. 3)."""

import pytest

from repro.tta import TTASimulator, assemble
from repro.tta.simulator import SimulationError

from tests.conftest import make_arch


def run(src, arch=None, max_cycles=10_000, **kwargs):
    arch = arch or make_arch(2)
    program = assemble(src, arch)
    sim = TTASimulator(arch, program, **kwargs)
    result = sim.run(max_cycles=max_cycles)
    return sim, result


def test_add_through_rf():
    sim, result = run(
        """
        #5 -> alu0.a
        #7 -> alu0.b:add
        alu0.y -> rf0.w0[0]
        halt
        """
    )
    assert result.halted and result.reason == "halt"
    assert sim.rf_value("rf0", 0) == 12


def test_same_cycle_operand_and_trigger():
    """Eq. 2 with equality: operand in the trigger's cycle feeds it."""
    sim, _ = run(
        """
        #5 -> alu0.a ; #7 -> alu0.b:add
        alu0.y -> rf0.w0[0]
        halt
        """
    )
    assert sim.rf_value("rf0", 0) == 12


def test_result_not_readable_same_cycle():
    """Eq. 3: reading R in the trigger's own cycle is a runtime error."""
    with pytest.raises(SimulationError, match="eq. 3"):
        run(
            """
            #5 -> alu0.a
            #7 -> alu0.b:add ; alu0.y -> rf0.w0[0]
            halt
            """
        )


def test_operand_register_persistence():
    """O registers hold their value across operations (operand reuse)."""
    sim, _ = run(
        """
        #10 -> alu0.a
        #1 -> alu0.b:add
        alu0.y -> rf0.w0[0]
        #2 -> alu0.b:add
        alu0.y -> rf0.w0[1]
        halt
        """
    )
    assert sim.rf_value("rf0", 0) == 11
    assert sim.rf_value("rf0", 1) == 12


def test_rf_write_visible_next_cycle():
    sim, _ = run(
        """
        #42 -> rf0.w0[3]
        rf0.r0[3] -> rf0.w0[4]
        halt
        """
    )
    assert sim.rf_value("rf0", 4) == 42


def test_guard_squash_and_pass():
    sim, result = run(
        """
        #1 -> guard.g0
        (g0) #11 -> rf0.w0[0] ; (!g0) #22 -> rf0.w0[1]
        halt
        """
    )
    assert sim.rf_value("rf0", 0) == 11
    assert sim.rf_value("rf0", 1) == 0
    assert result.moves_squashed == 1


def test_jump_has_one_delay_slot():
    sim, _ = run(
        """
        @target -> pc.target:jump
        #1 -> rf0.w0[0]
        #2 -> rf0.w0[1]
    target:
        #3 -> rf0.w0[2]
        halt
        """
    )
    assert sim.rf_value("rf0", 0) == 1     # delay slot executes
    assert sim.rf_value("rf0", 1) == 0     # skipped
    assert sim.rf_value("rf0", 2) == 3


def test_guarded_jump_not_taken():
    sim, _ = run(
        """
        #0 -> guard.g0
        (g0) @skip -> pc.target:jump
        #1 -> rf0.w0[0]
        halt
    skip:
        #2 -> rf0.w0[0]
        halt
        """
    )
    assert sim.rf_value("rf0", 0) == 1


def test_store_load_roundtrip():
    sim, _ = run(
        """
        #77 -> lsu0.wdata ; #100 -> lsu0.addr:st
        #100 -> lsu0.addr:ld
        nop
        lsu0.rdata -> rf0.w0[0]
        halt
        """
    )
    assert sim.dmem_read(100) == 77
    assert sim.rf_value("rf0", 0) == 77


def test_load_extension_modes():
    sim, _ = run(
        """
        .data 50 0x8182
        #50 -> lsu0.addr:ld_ls
        nop
        lsu0.rdata -> rf0.w0[0]
        #50 -> lsu0.addr:ld_lu
        nop
        lsu0.rdata -> rf0.w0[1]
        #50 -> lsu0.addr:ld_h
        nop
        lsu0.rdata -> rf0.w0[2]
        halt
        """
    )
    assert sim.rf_value("rf0", 0) == 0xFF82   # sign-extended low byte
    assert sim.rf_value("rf0", 1) == 0x0082
    assert sim.rf_value("rf0", 2) == 0x0081


def test_cmp_writes_guard():
    sim, _ = run(
        """
        #5 -> cmp0.a
        #5 -> cmp0.b:eq
        cmp0.y -> guard.g1
        (g1) #9 -> rf0.w0[0]
        halt
        """
    )
    assert sim.rf_value("rf0", 0) == 9


def test_rf_read_port_overflow_detected():
    arch = make_arch(2)
    with pytest.raises(RuntimeError, match="read-port overflow"):
        run(
            """
            #1 -> rf0.w0[0]
            rf0.r0[0] -> alu0.a ; rf0.r0[0] -> alu0.b:add
            halt
            """,
            arch=arch,
        )


def test_end_of_program_halts():
    sim, result = run("#1 -> rf0.w0[0]\n")
    assert result.halted
    assert result.reason == "end-of-program"


def test_max_cycles_guard():
    sim, result = run(
        """
    spin:
        @spin -> pc.target:jump
        nop
        """,
        max_cycles=50,
    )
    assert not result.halted
    assert result.reason == "max-cycles"
    assert result.cycles == 50


def test_data_image_loaded():
    sim, _ = run(
        """
        .data 10 1 2 3
        halt
        """
    )
    assert sim.dmem_read(10) == 1
    assert sim.dmem_read(12) == 3


def test_read_before_result_rejected():
    with pytest.raises(SimulationError, match="before any result"):
        run(
            """
            alu0.y -> rf0.w0[0]
            halt
            """
        )


def test_ipc_accounting():
    _, result = run(
        """
        #1 -> rf0.w0[0] ; #2 -> alu0.a
        halt
        """
    )
    assert result.moves_executed == 2
    assert 0 < result.ipc <= 2
